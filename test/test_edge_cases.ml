(* Edge-case and cross-module integration coverage that does not fit the
   per-library suites. *)

open Sparse_graph

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Degenerate graphs through every layer                               *)
(* ------------------------------------------------------------------ *)

let test_tiny_graphs_everywhere () =
  let singleton = Graph.empty 1 in
  let edge = Generators.path 2 in
  (* decomposition *)
  let d1 = Spectral.Expander_decomposition.decompose singleton ~epsilon:0.5 in
  check "singleton one cluster" 1 d1.k;
  let d2 = Spectral.Expander_decomposition.decompose edge ~epsilon:0.5 in
  check "edge one cluster" 1 d2.k;
  (* solvers *)
  check "mis singleton" 1 (Optimize.Mis.exact_size singleton);
  check "mcm edge" 1
    (Matching.Blossom.size (Matching.Blossom.max_cardinality_matching edge));
  check "dominating edge" 1 (Optimize.Dominating.exact_size edge);
  (* planarity *)
  checkb "tiny planar (demoucron)" true (Minorfree.Planarity.is_planar edge);
  checkb "tiny planar (lr)" true (Minorfree.Lr_planarity.is_planar edge);
  (* pipeline *)
  let p = Core.Pipeline.prepare ~mode:Core.Pipeline.Charged edge ~epsilon:0.5 ~seed:1 in
  check "pipeline on an edge" 1 p.report.k

let test_empty_graph_everywhere () =
  let g = Graph.empty 4 in
  let d = Spectral.Expander_decomposition.decompose g ~epsilon:0.5 in
  check "all singletons" 4 d.k;
  check "mis takes everything" 4 (Optimize.Mis.exact_size g);
  check "vc empty" 0 (Optimize.Vertex_cover.exact_size g);
  check "dominating = n" 4 (Optimize.Dominating.exact_size g);
  checkb "planar" true (Minorfree.Planarity.is_planar g);
  let r = Core.App_mis.run ~mode:Core.Pipeline.Charged g ~epsilon:0.3 ~seed:2 in
  check "app mis takes everything" 4 r.size

let test_self_contained_star () =
  (* a star stresses degree skew in every phase *)
  let g = Generators.star 40 in
  let p = Core.Pipeline.prepare g ~epsilon:0.4 ~seed:3 in
  check "star is one cluster" 1 p.report.k;
  check "hub is leader" 0 p.leader_of.(17);
  let mis = Core.App_mis.run ~mode:Core.Pipeline.Charged g ~epsilon:0.4 ~seed:3 in
  check "leaves win" 40 mis.size

(* ------------------------------------------------------------------ *)
(* Cluster view                                                        *)
(* ------------------------------------------------------------------ *)

let test_cluster_view_accessors () =
  let g = Generators.grid 2 4 in
  let labels = Array.init 8 (fun v -> if v mod 4 < 2 then 0 else 1) in
  let view = Distr.Cluster_view.of_labels g labels in
  check "intra degree corner" 2 (Distr.Cluster_view.intra_degree view 0);
  Alcotest.(check (list int)) "members" [ 0; 1; 4; 5 ]
    (Distr.Cluster_view.members view 0);
  check "cluster edges" 4 (Distr.Cluster_view.cluster_edges view 0);
  Alcotest.check_raises "bad labels"
    (Invalid_argument "Cluster_view.of_labels: label array length mismatch")
    (fun () -> ignore (Distr.Cluster_view.of_labels g [| 0 |]))

(* ------------------------------------------------------------------ *)
(* Preprocess mapping integrity                                        *)
(* ------------------------------------------------------------------ *)

let test_preprocess_mapping_integrity () =
  for seed = 0 to 4 do
    let g =
      Generators.attach_stars (Generators.random_planar 25 0.5 ~seed)
        ~stars:5 ~leaves:4 ~seed
    in
    let r = Matching.Preprocess.eliminate_fixpoint g in
    (* to_orig/to_sub are inverse on survivors *)
    Array.iteri
      (fun sub orig -> check "inverse maps" sub r.mapping.to_sub.(orig))
      r.mapping.to_orig;
    (* removed vertices map nowhere *)
    List.iter (fun v -> check "removed unmapped" (-1) r.mapping.to_sub.(v))
      r.removed;
    (* every reduced edge corresponds to an original edge on the same pair *)
    Graph.iter_edges r.graph (fun e u v ->
        let ou = r.mapping.to_orig.(u) and ov = r.mapping.to_orig.(v) in
        let orig = r.mapping.edge_to_orig.(e) in
        let a, b = Graph.endpoints g orig in
        checkb "edge maps to the same endpoints" true
          ((a, b) = (min ou ov, max ou ov)))
  done

(* ------------------------------------------------------------------ *)
(* Blob chain generator                                                *)
(* ------------------------------------------------------------------ *)

let test_blob_chain_structure () =
  let g = Generators.blob_chain ~blobs:4 ~blob_size:10 ~seed:5 in
  check "n" 40 (Graph.n g);
  checkb "connected" true (Traversal.is_connected g);
  checkb "planar" true (Minorfree.Lr_planarity.is_planar g);
  (* exactly 3 bridges *)
  let bridges =
    List.length
      (List.filter
         (fun b -> List.length b = 1)
         (Minorfree.Blocks.blocks g))
  in
  check "three bridges" 3 bridges;
  Alcotest.check_raises "bad params"
    (Invalid_argument
       "Generators.blob_chain: need blobs >= 1 and blob_size >= 3") (fun () ->
      ignore (Generators.blob_chain ~blobs:0 ~blob_size:5 ~seed:0))

(* ------------------------------------------------------------------ *)
(* Weighted matching reconstruction (qcheck)                           *)
(* ------------------------------------------------------------------ *)

let arb_small =
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 2 14) (int_range 0 10_000) (int_range 0 12))

let build (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_mwm_reconstruction_consistent =
  QCheck.Test.make ~name:"subset-DP reconstruction matches its value"
    ~count:150 arb_small (fun input ->
      let _, seed, _ = input in
      let g = build input in
      let w = Weights.random g ~max_w:40 ~seed in
      let value, edges = Matching.Exact_small.max_weight_matching_edges g w in
      (* value = sum of edge weights, edges form a matching *)
      let used = Array.make (Graph.n g) false in
      let sum = ref 0 in
      let ok = ref true in
      List.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          if used.(u) || used.(v) then ok := false;
          used.(u) <- true;
          used.(v) <- true;
          sum := !sum + Weights.get w e)
        edges;
      !ok && !sum = value
      && value = Matching.Exact_small.max_weight_matching g w)

let prop_scaling_never_worse_than_empty =
  QCheck.Test.make ~name:"scaling output weight is consistent with its mate"
    ~count:80 arb_small (fun input ->
      let _, seed, _ = input in
      let g = build input in
      let w = Weights.random g ~max_w:40 ~seed in
      let mate = Matching.Scaling.run g w in
      Matching.Blossom.is_valid_matching g mate
      && Matching.Approx.weight g w mate >= 0)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"graph IO roundtrip preserves the edge set"
    ~count:100 arb_small (fun input ->
      let g = build input in
      let g', _ = Graph_io.of_string (Graph_io.to_string g) in
      Graph.n g = Graph.n g'
      && Graph.m g = Graph.m g'
      && Graph.fold_edges g (fun acc _ u v -> acc && Graph.mem_edge g' u v) true)

let prop_partition_cut_fraction_bounds =
  QCheck.Test.make ~name:"cut fraction always in [0, 1]" ~count:80
    QCheck.(pair arb_small (int_range 1 5))
    (fun (input, parts) ->
      let g = build input in
      let labels = Array.init (Graph.n g) (fun v -> v mod parts) in
      let p = Decomp.Partition.of_labels g labels in
      let f = Decomp.Partition.cut_fraction g p in
      f >= 0. && f <= 1.)

let prop_lr_planarity_minor_closed =
  QCheck.Test.make ~name:"LR planarity is preserved under edge contraction"
    ~count:60 arb_small (fun input ->
      let g = build input in
      if Graph.m g = 0 || not (Minorfree.Lr_planarity.is_planar g) then true
      else begin
        let minor, _ = Graph_ops.contract_edges g [ 0 ] in
        Minorfree.Lr_planarity.is_planar minor
      end)

let prop_decomposition_deterministic =
  QCheck.Test.make ~name:"decomposition is deterministic for a fixed seed"
    ~count:40 arb_small (fun input ->
      let g = build input in
      let a = Spectral.Expander_decomposition.decompose g ~epsilon:0.3 in
      let b = Spectral.Expander_decomposition.decompose g ~epsilon:0.3 in
      a.labels = b.labels)

let prop_modes_agree =
  QCheck.Test.make
    ~name:"Charged and Simulated pipelines produce identical clusterings"
    ~count:25 arb_small (fun input ->
      let g = build input in
      let a =
        Core.Pipeline.prepare ~mode:Core.Pipeline.Charged g ~epsilon:0.4
          ~seed:7
      in
      let b =
        Core.Pipeline.prepare ~mode:Core.Pipeline.Simulated g ~epsilon:0.4
          ~seed:7
      in
      a.leader_of = b.leader_of
      && a.decomposition.labels = b.decomposition.labels)

let prop_io_fuzz_never_crashes =
  QCheck.Test.make ~name:"graph IO parser fails cleanly on junk" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun junk ->
      match Graph_io.of_string junk with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mwm_reconstruction_consistent;
      prop_decomposition_deterministic;
      prop_modes_agree;
      prop_io_fuzz_never_crashes;
      prop_scaling_never_worse_than_empty;
      prop_io_roundtrip;
      prop_partition_cut_fraction_bounds;
      prop_lr_planarity_minor_closed;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "edge_cases"
    [
      ( "degenerate",
        [
          tc "tiny graphs through every layer" test_tiny_graphs_everywhere;
          tc "empty graph through every layer" test_empty_graph_everywhere;
          tc "star stress" test_self_contained_star;
        ] );
      ("cluster_view", [ tc "accessors" test_cluster_view_accessors ]);
      ("preprocess", [ tc "mapping integrity" test_preprocess_mapping_integrity ]);
      ("blob_chain", [ tc "structure" test_blob_chain_structure ]);
      ("qcheck", qcheck_cases);
    ]
