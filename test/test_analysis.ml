(* Engine-level tests for the static-analysis pass: per-rule
   positive/negative fixture pairs over inline snippets, the suppression
   comment path, and the baseline round trip. Fixtures are parsed with the
   same compiler-libs front end as the real run, so a finding asserted
   here is exactly what `dune build @lint` would report. *)

open Analysis

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* run the engine over (path, content) fixtures; returns fresh findings *)
let run ?baseline fixtures =
  let sources =
    List.map (fun (path, content) -> Source.of_string ~path content) fixtures
  in
  Engine.analyze ?baseline sources

let fresh ?baseline fixtures = Engine.fresh (run ?baseline fixtures)

let count_rule rule findings =
  List.length (List.filter (fun (f : Finding.t) -> f.rule = rule) findings)

(* ------------------------------------------------------------------ *)
(* D001: global PRNG                                                    *)
(* ------------------------------------------------------------------ *)

let test_d001_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let pick n = Random.int n\nlet seeded () = Random.self_init ()" );
      ]
  in
  check "two global draws" 2 (count_rule "D001" fs);
  let f = List.hd fs in
  checks "file" "lib/fake/a.ml" f.file;
  check "line of first" 1 f.line

let test_d001_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let pick st n = Random.State.int st n\n\
           let st = Random.State.make [| 42 |]" );
      ]
  in
  check "seeded state is fine" 0 (count_rule "D001" fs)

let test_d001_self_init_state () =
  let fs =
    fresh
      [ ("lib/fake/a.ml", "let st () = Random.State.make_self_init ()") ]
  in
  check "make_self_init flagged" 1 (count_rule "D001" fs)

(* the fault-injection RNG pattern (lib/congest/faults.ml): a state seeded
   from an explicit integer array, drawn with Random.State — D001-clean *)
let test_d001_fault_rng_clean () =
  let fs =
    fresh
      [
        ( "lib/fake/faults.ml",
          "let rng t = Random.State.make [| t.seed; 0x6A09; 0xE667 |]\n\
           let drops t st = Random.State.float st 1. < t.drop_rate" );
      ]
  in
  check "seeded fault rng passes" 0 (count_rule "D001" fs)

(* the same layer written against the global PRNG must be flagged: the
   drop decisions would then depend on ambient draws and break the
   cross-jobs byte-identity contract *)
let test_d001_fault_rng_global_flagged () =
  let fs =
    fresh
      [
        ( "lib/fake/faults.ml",
          "let drops t = Random.float 1. < t.drop_rate\n\
           let dups t = Random.bool ()" );
      ]
  in
  check "global fault rng flagged" 2 (count_rule "D001" fs)

(* ------------------------------------------------------------------ *)
(* D002: unordered-iteration escape                                     *)
(* ------------------------------------------------------------------ *)

let test_d002_fold_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []" );
      ]
  in
  check "unsorted fold flagged" 1 (count_rule "D002" fs)

let test_d002_fold_sorted_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let keys tbl =\n\
          \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
          \  |> List.sort compare\n\
           let keys2 tbl =\n\
          \  List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])"
        );
      ]
  in
  check "sorted folds pass" 0 (count_rule "D002" fs)

let test_d002_fold_commutative_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let biggest tbl = Hashtbl.fold (fun _ s acc -> max s acc) tbl 1" );
      ]
  in
  check "max fold passes" 0 (count_rule "D002" fs)

let test_d002_iter_counter_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let label tbl out =\n\
          \  let fresh = ref 0 in\n\
          \  Hashtbl.iter (fun k _ -> out.(k) <- !fresh; incr fresh) tbl" );
      ]
  in
  check "hash-order counter flagged" 1 (count_rule "D002" fs)

let test_d002_iter_local_ref_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let ok tbl flag =\n\
          \  Hashtbl.iter\n\
          \    (fun _ vs ->\n\
          \      let acc = ref [] in\n\
          \      List.iter (fun v -> acc := v :: !acc) vs;\n\
          \      if List.length !acc > 3 then flag := false)\n\
          \    tbl" );
      ]
  in
  check "callback-local accumulator passes" 0 (count_rule "D002" fs)

(* ------------------------------------------------------------------ *)
(* D003: wall clock                                                     *)
(* ------------------------------------------------------------------ *)

let test_d003_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let stamp () = Unix.gettimeofday ()\nlet cpu () = Sys.time ()" );
      ]
  in
  check "both clocks flagged" 2 (count_rule "D003" fs)

let test_d003_negative () =
  let fs =
    fresh [ ("lib/fake/a.ml", "let stamp counter = counter + 1") ]
  in
  check "no clock, no finding" 0 (count_rule "D003" fs)

let test_d003_obs_clock_exempt () =
  (* lib/obs/clock.ml is the single sanctioned wall-clock sink: raw clock
     primitives are allowed there without suppression comments *)
  let fs =
    fresh
      [
        ( "lib/obs/clock.ml",
          "let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)\n\
           let wall_s () = Unix.gettimeofday ()" );
      ]
  in
  check "sanctioned clock module passes" 0 (count_rule "D003" fs)

let test_d003_other_clock_module_flagged () =
  (* the exemption is the exact path, not any file called clock.ml or any
     directory called obs *)
  let fs =
    fresh
      [
        ("lib/fake/clock.ml", "let now () = Unix.gettimeofday ()");
        ("lib/obs/timer.ml", "let now () = Unix.gettimeofday ()");
        ("bench/obs/clock.ml", "let now () = Unix.gettimeofday ()");
      ]
  in
  check "clock reads outside lib/obs/clock.ml stay flagged" 3
    (count_rule "D003" fs)

(* ------------------------------------------------------------------ *)
(* P001: domain-unsafe parallel task                                    *)
(* ------------------------------------------------------------------ *)

let test_p001_direct_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let cache = Hashtbl.create 16\n\
           let slow x = Hashtbl.replace cache x x; x\n\
           let all pool arr = Parallel.Pool.map pool slow arr" );
        ("lib/parallel/pool.ml", "let map _pool f arr = Array.map f arr");
      ]
  in
  check "task touching toplevel Hashtbl flagged" 1 (count_rule "P001" fs);
  let f = List.find (fun (f : Finding.t) -> f.rule = "P001") fs in
  checkb "names the mutable binding"
    true
    (let rec contains i =
       i + 7 <= String.length f.message
       && (String.sub f.message i 7 = "A.cache" || contains (i + 1))
     in
     contains 0)

let test_p001_pure_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let slow x = x * x\n\
           let all pool arr = Parallel.Pool.map pool slow arr" );
        ("lib/parallel/pool.ml", "let map _pool f arr = Array.map f arr");
      ]
  in
  check "pure task passes" 0 (count_rule "P001" fs)

let test_p001_transitive_positive () =
  (* the mutable state is two call-graph hops away, in another module *)
  let fs =
    fresh
      [
        ( "lib/fake/state.ml",
          "let hits = ref 0\nlet bump () = incr hits" );
        ( "lib/fake/a.ml",
          "let middle x = State.bump (); x\n\
           let task x = middle x\n\
           let all pool arr = Parallel.Pool.map pool task arr" );
        ("lib/parallel/pool.ml", "let map _pool f arr = Array.map f arr");
      ]
  in
  check "cross-module transitive reach flagged" 1 (count_rule "P001" fs)

let test_p001_wrapper_positive () =
  (* the pool call is hidden behind a project wrapper taking the task as
     a parameter (the bench/experiments.ml `grid` shape) *)
  let fs =
    fresh
      [
        ( "lib/fake/wrap.ml",
          "let pool = ref 0\n\
           let grid tasks f = List.concat (Parallel.Pool.map_list !pool f tasks)"
        );
        ( "lib/fake/a.ml",
          "let seen = Buffer.create 64\n\
           let table xs = Wrap.grid xs (fun x -> Buffer.add_string seen x; [ x ])"
        );
        ("lib/parallel/pool.ml", "let map_list _pool f l = List.map f l");
      ]
  in
  check "wrapper-forwarded task flagged" 1 (count_rule "P001" fs)

let test_p001_lambda_local_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let all pool arr =\n\
          \  Parallel.Pool.map pool\n\
          \    (fun x ->\n\
          \      let buf = Buffer.create 8 in\n\
          \      Buffer.add_string buf x;\n\
          \      Buffer.contents buf)\n\
          \    arr" );
        ("lib/parallel/pool.ml", "let map _pool f arr = Array.map f arr");
      ]
  in
  check "task-local buffer passes" 0 (count_rule "P001" fs)

(* ------------------------------------------------------------------ *)
(* P002: non-atomic write under a captured closure                      *)
(* ------------------------------------------------------------------ *)

let test_p002_captured_ref_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let work team counts =\n\
          \  let total = ref 0 in\n\
          \  Parallel.Pool.Team.run team (fun i -> total := !total + counts.(i));\n\
          \  !total" );
      ]
  in
  check "captured ref written in task flagged" 1 (count_rule "P002" fs);
  let f = List.find (fun (f : Finding.t) -> f.rule = "P002") fs in
  checkb "names the captured binding" true
    (let rec contains i =
       i + 5 <= String.length f.message
       && (String.sub f.message i 5 = "total" || contains (i + 1))
     in
     contains 0)

let test_p002_task_local_array_negative () =
  (* the shard-private pattern: all mutation lands on state the task
     itself binds, so nothing escapes to another domain *)
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let work team =\n\
          \  Parallel.Pool.Team.run team (fun i ->\n\
          \      let scratch = Array.make 8 0 in\n\
          \      scratch.(i land 7) <- i;\n\
          \      ignore scratch)" );
      ]
  in
  check "task-local array passes" 0 (count_rule "P002" fs)

let test_p002_atomic_counter_negative () =
  (* Atomic is the sanctioned cross-domain write; deliberately not in the
     write-form table *)
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let work team total =\n\
          \  Parallel.Pool.Team.run team (fun _i -> Atomic.incr total)" );
      ]
  in
  check "atomic counter passes" 0 (count_rule "P002" fs)

let test_p002_domain_spawn_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let fire results i x =\n\
          \  Domain.spawn (fun () -> results.(i) <- x)" );
      ]
  in
  check "Domain.spawn task writing captured array flagged" 1
    (count_rule "P002" fs)

(* ------------------------------------------------------------------ *)
(* P003: atomic get-then-set instead of a read-modify-write primitive   *)
(* ------------------------------------------------------------------ *)

let test_p003_get_then_set_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let bump c =\n\
          \  let v = Atomic.get c in\n\
          \  Atomic.set c (v + 1)" );
      ]
  in
  check "get-then-set flagged" 1 (count_rule "P003" fs)

let test_p003_fetch_and_add_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let bump c = Atomic.incr c\n\
           let add c n = ignore (Atomic.fetch_and_add c n)\n\
           let swap c v = ignore (Atomic.exchange c v)" );
      ]
  in
  check "read-modify-write primitives pass" 0 (count_rule "P003" fs)

let test_p003_separate_defs_negative () =
  (* a get in one definition and a set in another is not a lost-update
     window; the rule is per-binding *)
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let is_enabled f = Atomic.get f\n\
           let enable f = Atomic.set f true" );
      ]
  in
  check "get and set in separate defs pass" 0 (count_rule "P003" fs)

(* ------------------------------------------------------------------ *)
(* A001: allocation on a hot path                                       *)
(* ------------------------------------------------------------------ *)

let test_a001_allocating_hot_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "(* lint: hot *)\nlet push xs x = x :: xs" );
      ]
  in
  check "allocating hot function flagged" 1 (count_rule "A001" fs)

let test_a001_non_allocating_hot_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "(* lint: hot *)\n\
           let bump a i = a.(i) <- a.(i) + 1\n\
           (* lint: hot *)\n\
           let clamp x lo hi = if x < lo then lo else if x > hi then hi else x"
        );
      ]
  in
  check "non-allocating hot functions pass" 0 (count_rule "A001" fs)

let test_a001_transitive_via_helper_positive () =
  (* the allocation lives in an unmarked helper reached from the hot
     root; the finding is attributed to the root *)
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let helper x = Some x\n\
           (* lint: hot *)\n\
           let hot x = helper x" );
      ]
  in
  check "helper allocation reached from hot root" 1 (count_rule "A001" fs);
  let f = List.find (fun (f : Finding.t) -> f.rule = "A001") fs in
  checkb "attributed to the hot root" true
    (let rec contains i =
       i + 5 <= String.length f.message
       && (String.sub f.message i 5 = "'hot'" || contains (i + 1))
     in
     contains 0)

let test_a001_error_path_exempt_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "(* lint: hot *)\n\
           let check v lim =\n\
          \  if v > lim then\n\
          \    invalid_arg (Printf.sprintf \"check: %d over %d\" v lim)" );
      ]
  in
  check "error path is exempt" 0 (count_rule "A001" fs)

(* ------------------------------------------------------------------ *)
(* H001: float equality                                                 *)
(* ------------------------------------------------------------------ *)

let test_h001_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let degenerate x = x = 0.\n\
           let close a b = compare (a *. 2.) (float_of_int b)" );
      ]
  in
  check "literal and arithmetic operands flagged" 2 (count_rule "H001" fs)

let test_h001_negative () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let same a b = a = b\nlet zero n = n = 0\nlet lt x = x < 1.5" );
      ]
  in
  check "int equality and float ordering pass" 0 (count_rule "H001" fs)

(* ------------------------------------------------------------------ *)
(* S001: Obj.* / assert false in library code                           *)
(* ------------------------------------------------------------------ *)

let test_s001_positive () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let f = function Some x -> x | None -> assert false\n\
           let coerce x = Obj.magic x" );
      ]
  in
  check "assert false and Obj.magic flagged" 2 (count_rule "S001" fs)

let test_s001_outside_lib_negative () =
  let fs =
    fresh
      [
        ( "bench/a.ml",
          "let f = function Some x -> x | None -> assert false" );
      ]
  in
  check "bench code exempt from S001" 0 (count_rule "S001" fs)

(* ------------------------------------------------------------------ *)
(* suppression comments                                                 *)
(* ------------------------------------------------------------------ *)

let test_suppression_same_and_preceding_line () =
  let report =
    run
      [
        ( "lib/fake/a.ml",
          "let a () = Unix.gettimeofday () (* lint: allow D003 timing *)\n\
           (* lint: allow D003 timing *)\n\
           let b () = Unix.gettimeofday ()\n\
           let c () = Unix.gettimeofday ()" );
      ]
  in
  let fresh_count, suppressed, _ = Engine.counts report in
  check "third site still fires" 1 fresh_count;
  check "two sites suppressed" 2 suppressed

let test_suppression_wrong_rule_does_not_mask () =
  let fs =
    fresh
      [
        ( "lib/fake/a.ml",
          "let a () = Unix.gettimeofday () (* lint: allow D001 wrong id *)" );
      ]
  in
  check "allow for another rule does not mask" 1 (count_rule "D003" fs)

(* ------------------------------------------------------------------ *)
(* baseline round trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_baseline_round_trip () =
  let fixtures =
    [
      ( "lib/fake/a.ml",
        "let pick n = Random.int n\nlet degenerate x = x = 0." );
    ]
  in
  let before = fresh fixtures in
  check "two findings before baselining" 2 (List.length before);
  (* write baseline -> re-run -> zero new findings *)
  let baseline = Baseline.parse (Baseline.to_string (Baseline.of_findings before)) in
  let report = run ~baseline fixtures in
  let fresh_count, _, baselined = Engine.counts report in
  check "zero new findings" 0 fresh_count;
  check "both grandfathered" 2 baselined;
  (* a fresh finding on an unbaselined line still fails *)
  let fixtures2 =
    [
      ( "lib/fake/a.ml",
        "let pick n = Random.int n\n\
         let degenerate x = x = 0.\n\
         let extra () = Sys.time ()" );
    ]
  in
  check "new finding escapes the baseline" 1
    (List.length (fresh ~baseline fixtures2))

let test_parse_error_is_a_finding () =
  let fs = fresh [ ("lib/fake/bad.ml", "let = ") ] in
  check "E000 reported" 1 (count_rule "E000" fs)

(* ------------------------------------------------------------------ *)
(* real-tree smoke: the shipped rule set stays clean on this repo       *)
(* ------------------------------------------------------------------ *)

let repo_root () =
  (* tests run from test/ inside _build; the repo sources sit two levels
     up only in the source tree, so walk upward until lib/ is found *)
  let rec up dir depth =
    if depth > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "lib")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then Some dir
    else up (Filename.dirname dir) (depth + 1)
  in
  up (Sys.getcwd ()) 0

let test_repo_tree_loads () =
  match repo_root () with
  | None -> () (* sandboxed test run without the tree; nothing to assert *)
  | Some root ->
      let sources, libraries =
        Engine.load_tree ~root ~dirs:[ "lib"; "bench"; "bin" ] ()
      in
      checkb "found a library map" true (List.length libraries >= 5);
      checkb "found the sources" true (List.length sources >= 50);
      let report = Engine.analyze ~libraries sources in
      (* D-rules and the parallel-safety/allocation rules must be clean
         modulo inline suppressions; H001 may carry baseline entries,
         which appear as fresh here because we pass no baseline *)
      let hard =
        List.filter
          (fun (f : Finding.t) ->
            match f.rule with
            | "D001" | "D002" | "P001" | "P002" | "P003" | "A001" | "E000" ->
                true
            | _ -> false)
          (Engine.fresh report)
      in
      checks "no hard findings"
        ""
        (String.concat "; " (List.map Finding.to_text hard))

(* the linter's own cross-jobs parity contract: fanning file loading and
   the per-file rules out over the domain pool must not change a byte of
   the report *)
let test_jobs_parity () =
  match repo_root () with
  | None -> ()
  | Some root ->
      let report_with jobs =
        let pool = Parallel.Pool.create ~jobs () in
        let sources, libraries =
          Engine.load_tree ~pool ~root ~dirs:[ "lib"; "bench"; "bin" ] ()
        in
        Engine.to_json (Engine.analyze ~pool ~libraries sources)
      in
      checks "jobs 1 and jobs 4 reports byte-identical" (report_with 1)
        (report_with 4)

let () =
  let tc = Alcotest.test_case in
  let t name f = tc name `Quick f in
  Alcotest.run "analysis"
    [
      ( "d001",
        [
          t "global draws flagged" test_d001_positive;
          t "seeded state passes" test_d001_negative;
          t "make_self_init flagged" test_d001_self_init_state;
          t "seeded fault rng passes" test_d001_fault_rng_clean;
          t "global fault rng flagged" test_d001_fault_rng_global_flagged;
        ] );
      ( "d002",
        [
          t "unsorted fold flagged" test_d002_fold_positive;
          t "sorted fold passes" test_d002_fold_sorted_negative;
          t "commutative fold passes" test_d002_fold_commutative_negative;
          t "iter counter flagged" test_d002_iter_counter_positive;
          t "local accumulator passes" test_d002_iter_local_ref_negative;
        ] );
      ( "d003",
        [
          t "clocks flagged" test_d003_positive;
          t "no clock passes" test_d003_negative;
          t "Obs.Clock exempt" test_d003_obs_clock_exempt;
          t "other clock modules flagged" test_d003_other_clock_module_flagged;
        ] );
      ( "p001",
        [
          t "direct reach flagged" test_p001_direct_positive;
          t "pure task passes" test_p001_pure_negative;
          t "transitive reach flagged" test_p001_transitive_positive;
          t "wrapper forwarding flagged" test_p001_wrapper_positive;
          t "task-local state passes" test_p001_lambda_local_negative;
        ] );
      ( "p002",
        [
          t "captured ref flagged" test_p002_captured_ref_positive;
          t "task-local array passes" test_p002_task_local_array_negative;
          t "atomic counter passes" test_p002_atomic_counter_negative;
          t "Domain.spawn flagged" test_p002_domain_spawn_positive;
        ] );
      ( "p003",
        [
          t "get-then-set flagged" test_p003_get_then_set_positive;
          t "fetch_and_add passes" test_p003_fetch_and_add_negative;
          t "separate defs pass" test_p003_separate_defs_negative;
        ] );
      ( "a001",
        [
          t "allocating hot flagged" test_a001_allocating_hot_positive;
          t "non-allocating hot passes" test_a001_non_allocating_hot_negative;
          t "transitive helper flagged" test_a001_transitive_via_helper_positive;
          t "error path exempt" test_a001_error_path_exempt_negative;
        ] );
      ( "h001",
        [
          t "float operands flagged" test_h001_positive;
          t "non-float passes" test_h001_negative;
        ] );
      ( "s001",
        [
          t "assert false and Obj flagged" test_s001_positive;
          t "bench exempt" test_s001_outside_lib_negative;
        ] );
      ( "engine",
        [
          t "suppression lines" test_suppression_same_and_preceding_line;
          t "suppression rule mismatch" test_suppression_wrong_rule_does_not_mask;
          t "baseline round trip" test_baseline_round_trip;
          t "parse error finding" test_parse_error_is_a_finding;
          t "repo tree clean" test_repo_tree_loads;
          t "cross-jobs parity" test_jobs_parity;
        ] );
    ]
