open Sparse_graph

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph core                                                          *)
(* ------------------------------------------------------------------ *)

let test_of_edges_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Graph.check_invariants g;
  check "n" 4 (Graph.n g);
  check "m" 4 (Graph.m g);
  check "deg" 2 (Graph.degree g 1);
  checkb "mem" true (Graph.mem_edge g 0 3);
  checkb "not mem" false (Graph.mem_edge g 0 2)

let test_of_edges_dedup () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 0); (1, 1); (2, 1); (1, 2) ] in
  Graph.check_invariants g;
  check "m dedups and drops loops" 2 (Graph.m g)

let test_of_edges_range () =
  Alcotest.check_raises "out of range" (Invalid_argument
    "Graph.of_edges: endpoint out of range (0,3), n=3")
    (fun () -> ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_neighbor_at () =
  (* CSR indexing agrees with the neighbor list on assorted graphs *)
  let graphs =
    [ Generators.grid 4 5;
      Generators.random_tree 30 ~seed:7;
      Generators.random_apollonian 25 ~seed:11;
      Graph.of_edges 1 [] ]
  in
  List.iter
    (fun g ->
      for v = 0 to Graph.n g - 1 do
        let nbrs = Graph.neighbors g v in
        List.iteri
          (fun i w -> check "neighbor_at = nth neighbor" w (Graph.neighbor_at g v i))
          nbrs;
        check "degree bound" (List.length nbrs) (Graph.degree g v)
      done)
    graphs

let test_neighbor_at_bounds () =
  let g = Generators.path 3 in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "vertex too large" (fun () -> Graph.neighbor_at g 3 0);
  expect_invalid "vertex negative" (fun () -> Graph.neighbor_at g (-1) 0);
  expect_invalid "index too large" (fun () -> Graph.neighbor_at g 0 1);
  expect_invalid "index negative" (fun () -> Graph.neighbor_at g 1 (-1));
  check "valid lookup" 1 (Graph.neighbor_at g 0 0);
  check "middle vertex" 2 (Graph.neighbor_at g 1 1)

let test_endpoints_normalized () =
  let g = Graph.of_edges 3 [ (2, 0); (1, 0) ] in
  for e = 0 to Graph.m g - 1 do
    let u, v = Graph.endpoints g e in
    checkb "normalized" true (u < v)
  done

let test_find_edge () =
  let g = Graph.of_edges 5 [ (0, 4); (1, 3); (2, 4) ] in
  let e = Graph.find_edge g 4 0 in
  Alcotest.(check (pair int int)) "endpoints" (0, 4) (Graph.endpoints g e);
  Alcotest.check_raises "absent" Not_found (fun () ->
      ignore (Graph.find_edge g 0 1))

let test_max_degree () =
  let g = Generators.star 7 in
  check "max degree" 7 (Graph.max_degree g);
  check "hub" 0 (Graph.max_degree_vertex g)

let test_degree_sum () =
  let g = Generators.random_apollonian 50 ~seed:1 in
  let total = ref 0 in
  for v = 0 to Graph.n g - 1 do
    total := !total + Graph.degree g v
  done;
  check "handshake" (2 * Graph.m g) !total

let test_volume () =
  let g = Generators.cycle 6 in
  check "volume of 3 vertices" 6 (Graph.volume g [ 0; 2; 4 ])

let test_iter_edges_order () =
  let g = Graph.of_edges 4 [ (3, 2); (0, 1); (0, 2) ] in
  let order = Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc) [] in
  Alcotest.(check (list (pair int int)))
    "lexicographic ids" [ (2, 3); (0, 2); (0, 1) ] order

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check "initial count" 6 (Union_find.count uf);
  checkb "union new" true (Union_find.union uf 0 1);
  checkb "union again" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  checkb "same" true (Union_find.same uf 1 2);
  checkb "not same" false (Union_find.same uf 1 4);
  check "count" 3 (Union_find.count uf);
  Alcotest.(check (list (list int)))
    "groups" [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ] (Union_find.groups uf)

let test_union_find_groups_sorted () =
  (* regression: [groups] leaves its internal hash table sorted — members
     ascending, groups by smallest member — whatever the union order *)
  let uf = Union_find.create 7 in
  List.iter
    (fun (a, b) -> ignore (Union_find.union uf a b))
    [ (6, 5); (5, 4); (1, 0); (6, 2) ];
  Alcotest.(check (list (list int)))
    "groups" [ [ 0; 1 ]; [ 2; 4; 5; 6 ]; [ 3 ] ] (Union_find.groups uf)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let test_bfs_path () =
  let g = Generators.path 5 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |]
    (Traversal.bfs g 0)

let test_bfs_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Traversal.bfs g 0 in
  check "unreachable" (-1) d.(2)

let test_bfs_multi () =
  let g = Generators.path 5 in
  let d = Traversal.bfs_multi g [ 0; 4 ] in
  Alcotest.(check (array int)) "multi distances" [| 0; 1; 2; 1; 0 |] d

let test_bfs_layers () =
  let g = Generators.cycle 6 in
  let layers = Traversal.bfs_layers g 0 in
  Alcotest.(check (list int)) "layer 1" [ 1; 5 ] layers.(1);
  Alcotest.(check (list int)) "layer 3" [ 3 ] layers.(3)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let _, count = Traversal.components g in
  check "three components" 3 count;
  checkb "not connected" false (Traversal.is_connected g);
  Alcotest.(check (list (list int)))
    "component list" [ [ 0; 1 ]; [ 2; 3; 4 ]; [ 5 ] ]
    (Traversal.component_list g)

let test_diameter_cycle () =
  check "diameter C10" 5 (Traversal.diameter (Generators.cycle 10));
  check "diameter P7" 6 (Traversal.diameter (Generators.path 7));
  check "diameter K5" 1 (Traversal.diameter (Generators.complete 5))

let test_double_sweep_tree () =
  let g = Generators.random_tree 60 ~seed:3 in
  check "double sweep exact on trees" (Traversal.diameter g)
    (Traversal.diameter_double_sweep g)

let test_dijkstra_unit_matches_bfs () =
  let g = Generators.random_apollonian 40 ~seed:5 in
  let bfs = Traversal.bfs g 0 in
  let dij = Traversal.dijkstra g (fun _ -> 1) 0 in
  Array.iteri (fun v d -> check "dij = bfs" d dij.(v)) bfs

let test_dijkstra_weighted () =
  (* triangle with a heavy direct edge *)
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let w e =
    let u, v = Graph.endpoints g e in
    if (u, v) = (0, 2) then 10 else 1
  in
  let d = Traversal.dijkstra g w 0 in
  check "shortcut through middle" 2 d.(2)

let test_acyclic () =
  checkb "tree acyclic" true
    (Traversal.is_acyclic (Generators.random_tree 30 ~seed:7));
  checkb "cycle not" false (Traversal.is_acyclic (Generators.cycle 5));
  checkb "forest acyclic" true
    (Traversal.is_acyclic (Graph.of_edges 5 [ (0, 1); (2, 3) ]))

let test_spanning_forest () =
  let g = Generators.random_apollonian 30 ~seed:9 in
  let forest = Traversal.spanning_forest g in
  check "tree edges" (Graph.n g - 1) (List.length forest);
  let sub, _ = Graph_ops.subgraph_of_edges g forest in
  checkb "spanning" true (Traversal.is_connected sub);
  checkb "acyclic" true (Traversal.is_acyclic sub)

(* ------------------------------------------------------------------ *)
(* Graph ops                                                           *)
(* ------------------------------------------------------------------ *)

let test_induced_subgraph () =
  let g = Generators.cycle 6 in
  let sub, map = Graph_ops.induced_subgraph g [ 0; 1; 2; 4 ] in
  Graph.check_invariants sub;
  check "sub n" 4 (Graph.n sub);
  check "sub m" 2 (Graph.m sub);
  check "to_orig" 4 map.to_orig.(3);
  check "to_sub" 3 map.to_sub.(4);
  check "dropped" (-1) map.to_sub.(5);
  Graph.iter_edges sub (fun e u v ->
      let ou = map.to_orig.(u) and ov = map.to_orig.(v) in
      let orig = map.edge_to_orig.(e) in
      let a, b = Graph.endpoints g orig in
      checkb "edge maps back" true ((a, b) = (min ou ov, max ou ov)))

let test_remove_edges () =
  let g = Generators.complete 4 in
  let e = Graph.find_edge g 0 1 in
  let g', _ = Graph_ops.remove_edges g [ e ] in
  check "one less" 5 (Graph.m g');
  checkb "gone" false (Graph.mem_edge g' 0 1)

let test_remove_vertices () =
  let g = Generators.complete 5 in
  let g', map = Graph_ops.remove_vertices g [ 0 ] in
  check "K4 remains" 6 (Graph.m g');
  check "n" 4 (Graph.n g');
  check "relabel" 1 map.to_orig.(0)

let test_disjoint_union () =
  let g = Graph_ops.disjoint_union (Generators.cycle 3) (Generators.path 3) in
  check "n" 6 (Graph.n g);
  check "m" 5 (Graph.m g);
  checkb "no cross edge" false (Graph.mem_edge g 2 3)

let test_contract_edges () =
  let g = Generators.cycle 4 in
  let e = Graph.find_edge g 0 1 in
  let minor, labels = Graph_ops.contract_edges g [ e ] in
  check "triangle n" 3 (Graph.n minor);
  check "triangle m" 3 (Graph.m minor);
  check "merged labels" labels.(0) labels.(1)

let test_contract_parallel_collapse () =
  (* contracting one edge of a triangle gives a single edge, not a multi-edge *)
  let g = Generators.cycle 3 in
  let minor, _ = Graph_ops.contract_edges g [ 0 ] in
  check "n" 2 (Graph.n minor);
  check "m" 1 (Graph.m minor)

let test_subdivide () =
  let g = Generators.complete 3 in
  let e = Graph.find_edge g 0 1 in
  let g' = Graph_ops.subdivide g e 2 in
  check "n" 5 (Graph.n g');
  check "m" 5 (Graph.m g');
  checkb "direct edge gone" false (Graph.mem_edge g' 0 1);
  checkb "path present" true
    (Graph.mem_edge g' 0 3 && Graph.mem_edge g' 3 4 && Graph.mem_edge g' 4 1)

let test_complement () =
  let g = Generators.path 4 in
  let c = Graph_ops.complement g in
  check "m + m' = C(4,2)" 6 (Graph.m g + Graph.m c);
  checkb "complement edge" true (Graph.mem_edge c 0 3)

let test_relabel () =
  let g = Generators.path 3 in
  let g' = Graph_ops.relabel g [| 2; 1; 0 |] in
  checkb "reversed path" true (Graph.mem_edge g' 2 1 && Graph.mem_edge g' 1 0)

let test_cluster_partition () =
  let g = Generators.grid 2 4 in
  (* split into left and right 2x2 halves *)
  let labels = Array.init 8 (fun v -> if v mod 4 < 2 then 0 else 1) in
  let clusters, inter = Graph_ops.cluster_partition g labels 2 in
  check "two clusters" 2 (Array.length clusters);
  let vs0, sub0, _ = clusters.(0) in
  check "cluster 0 size" 4 (List.length vs0);
  check "cluster 0 edges" 4 (Graph.m sub0);
  check "two crossing edges" 2 (List.length inter)

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)
(* ------------------------------------------------------------------ *)

let test_weights () =
  let g = Generators.cycle 4 in
  let w = Weights.random g ~max_w:10 ~seed:2 in
  checkb "max bound respected" true (Weights.max_weight w <= 10);
  checkb "positive" true (Array.for_all (fun x -> x >= 1) (Weights.raw w));
  let u = Weights.uniform ~w:3 g in
  check "uniform total" 12 (Weights.total_all u);
  check "partial total" 6 (Weights.total u [ 0; 2 ])

let test_weights_restrict () =
  let g = Generators.complete 4 in
  let w = Weights.of_array g (Array.init (Graph.m g) (fun e -> e + 1)) in
  let sub, map = Graph_ops.induced_subgraph g [ 0; 1; 2 ] in
  let w' = Weights.restrict w map in
  Graph.iter_edges sub (fun e _ _ ->
      check "restricted weight" (Weights.get w map.edge_to_orig.(e))
        (Weights.get w' e))

let test_weights_invalid () =
  let g = Generators.path 3 in
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Weights: weights must be positive integers") (fun () ->
      ignore (Weights.of_array g [| 1; 0 |]))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_grid_counts () =
  let g = Generators.grid 3 4 in
  check "n" 12 (Graph.n g);
  check "m" 17 (Graph.m g);
  check "max deg" 4 (Graph.max_degree g)

let test_torus_regular () =
  let g = Generators.torus 4 5 in
  check "m" 40 (Graph.m g);
  for v = 0 to Graph.n g - 1 do
    check "4-regular" 4 (Graph.degree g v)
  done

let test_hypercube () =
  let g = Generators.hypercube 4 in
  check "n" 16 (Graph.n g);
  check "m" 32 (Graph.m g);
  check "diameter" 4 (Traversal.diameter g)

let test_double_star_shape () =
  let g = Generators.double_star 3 in
  check "n" 5 (Graph.n g);
  check "m" 6 (Graph.m g);
  check "spoke degree" 2 (Graph.degree g 2)

let test_barbell_low_conductance () =
  let g = Generators.barbell 5 3 in
  check "n" 13 (Graph.n g);
  checkb "connected" true (Traversal.is_connected g)

let test_random_tree_is_tree () =
  for seed = 0 to 4 do
    let g = Generators.random_tree 37 ~seed in
    check "m = n-1" 36 (Graph.m g);
    checkb "connected" true (Traversal.is_connected g)
  done

let test_random_regular_degrees () =
  let g = Generators.random_regular 20 3 ~seed:4 in
  for v = 0 to 19 do
    check "3-regular" 3 (Graph.degree g v)
  done

let test_k_tree_density () =
  let g = Generators.random_k_tree 30 2 ~seed:6 in
  (* 2-tree on n vertices has 2n - 3 edges *)
  check "2-tree edges" 57 (Graph.m g);
  checkb "connected" true (Traversal.is_connected g)

let test_apollonian_planar_density () =
  let g = Generators.random_apollonian 50 ~seed:8 in
  (* maximal planar: 3n - 6 edges *)
  check "3n - 6 edges" 144 (Graph.m g);
  checkb "connected" true (Traversal.is_connected g)

let test_outerplanar_density () =
  let g = Generators.random_maximal_outerplanar 20 ~seed:10 in
  (* maximal outerplanar: 2n - 3 edges *)
  check "2n - 3 edges" 37 (Graph.m g);
  checkb "connected" true (Traversal.is_connected g)

let test_plant_k5s () =
  let g = Generators.grid 5 5 in
  let g' = Generators.plant_k5s g 2 ~seed:12 in
  checkb "denser" true (Graph.m g' > Graph.m g);
  check "same n" 25 (Graph.n g')

let test_attach_stars () =
  let g = Generators.cycle 5 in
  let g' = Generators.attach_stars g ~stars:2 ~leaves:3 ~seed:14 in
  check "n grows" 11 (Graph.n g');
  check "m grows" 11 (Graph.m g')

let test_attach_double_stars () =
  let g = Generators.cycle 5 in
  let g' = Generators.attach_double_stars g ~hubs:1 ~spokes:4 ~seed:16 in
  check "n grows" 9 (Graph.n g');
  check "m grows" 13 (Graph.m g')

let test_shuffle_preserves () =
  let g = Generators.random_apollonian 25 ~seed:18 in
  let g' = Generators.shuffle g ~seed:19 in
  check "same n" (Graph.n g) (Graph.n g');
  check "same m" (Graph.m g) (Graph.m g');
  let sorted_degrees h =
    let d = Array.init (Graph.n h) (Graph.degree h) in
    Array.sort compare d;
    d
  in
  Alcotest.(check (array int)) "degree sequence" (sorted_degrees g)
    (sorted_degrees g')

let test_sign_labels () =
  let g = Generators.grid 4 4 in
  let communities = Array.init 16 (fun v -> v / 8) in
  let labels =
    Generators.planted_sign_labels g communities ~noise:0. ~seed:20
  in
  Graph.iter_edges g (fun e u v ->
      checkb "label matches community" (communities.(u) = communities.(v))
        labels.(e))

(* ------------------------------------------------------------------ *)
(* Graph IO                                                            *)
(* ------------------------------------------------------------------ *)

let graphs_equal a b =
  Graph.n a = Graph.n b && Graph.m a = Graph.m b
  && Graph.fold_edges a (fun acc _ u v -> acc && Graph.mem_edge b u v) true

let test_io_roundtrip () =
  let g = Generators.random_apollonian 30 ~seed:80 in
  let g', w = Graph_io.of_string (Graph_io.to_string g) in
  checkb "unweighted roundtrip" true (graphs_equal g g');
  checkb "no weights" true (w = None)

let test_io_weighted_roundtrip () =
  let g = Generators.grid 4 4 in
  let w = Weights.random g ~max_w:9 ~seed:81 in
  let g', w' = Graph_io.of_string (Graph_io.to_string ~weights:w g) in
  checkb "graph matches" true (graphs_equal g g');
  match w' with
  | None -> Alcotest.fail "weights lost"
  | Some w' ->
      Graph.iter_edges g (fun e u v ->
          check "weight preserved" (Weights.get w e)
            (Weights.get w' (Graph.find_edge g' u v)))

let test_io_comments_and_errors () =
  let g, _ = Graph_io.of_string "# hi\n3 2\n0 1\n# mid\n1 2\n" in
  check "n" 3 (Graph.n g);
  check "m" 2 (Graph.m g);
  (match Graph_io.of_string "3 5\n0 1\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on count mismatch");
  match Graph_io.of_string "nope" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on bad header"

let test_io_file_roundtrip () =
  let g = Generators.random_tree 25 ~seed:82 in
  let path = Filename.temp_file "graphio" ".txt" in
  Graph_io.save g ~path;
  let g', _ = Graph_io.load ~path in
  Sys.remove path;
  checkb "file roundtrip" true (graphs_equal g g')

let test_dot_output () =
  let g = Generators.cycle 4 in
  let dot = Graph_io.to_dot ~labels:[| 0; 0; 1; 1 |] ~highlight:[ 0 ] g in
  checkb "has graph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "graph G");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "has bold edge" true (contains dot "penwidth")

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_graph =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    QCheck.Gen.(
      int_range 1 30 >>= fun n ->
      let edge = map2 (fun a b -> (a mod n, b mod n)) nat nat in
      map (fun es -> (n, es)) (list_size (int_range 0 60) edge))

let prop_invariants =
  QCheck.Test.make ~name:"CSR invariants hold for arbitrary edge lists"
    ~count:300 arb_graph (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      Graph.check_invariants g;
      true)

let prop_handshake =
  QCheck.Test.make ~name:"degree sum equals 2m" ~count:300 arb_graph
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let s = ref 0 in
      for v = 0 to n - 1 do
        s := !s + Graph.degree g v
      done;
      !s = 2 * Graph.m g)

let prop_induced_subgraph_edges =
  QCheck.Test.make ~name:"induced subgraph keeps exactly internal edges"
    ~count:200
    QCheck.(pair arb_graph (list small_nat))
    (fun ((n, edges), vs) ->
      let g = Graph.of_edges n edges in
      let vs = List.filter (fun v -> v < n) vs in
      let sub, map = Graph_ops.induced_subgraph g vs in
      Graph.check_invariants sub;
      let expected =
        Graph.fold_edges g
          (fun acc _ u v ->
            if map.to_sub.(u) >= 0 && map.to_sub.(v) >= 0 then acc + 1 else acc)
          0
      in
      Graph.m sub = expected)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances obey edge triangle inequality"
    ~count:200 arb_graph (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let d = Traversal.bfs g 0 in
      Graph.fold_edges g
        (fun ok _ u v ->
          ok
          && ((d.(u) < 0 && d.(v) < 0)
             || (d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) <= 1)))
        true)

let prop_contract_minor_smaller =
  QCheck.Test.make ~name:"contraction never increases n or m" ~count:200
    arb_graph (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      if Graph.m g = 0 then true
      else begin
        let minor, _ = Graph_ops.contract_edges g [ 0 ] in
        Graph.n minor < n && Graph.m minor < Graph.m g
      end)

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find equivalence is transitive" ~count:200
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if
              Union_find.same uf a b && Union_find.same uf b c
              && not (Union_find.same uf a c)
            then ok := false
          done
        done
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_invariants;
      prop_handshake;
      prop_induced_subgraph_edges;
      prop_bfs_triangle_inequality;
      prop_contract_minor_smaller;
      prop_union_find_transitive;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sparse_graph"
    [
      ( "graph",
        [
          tc "of_edges basic" test_of_edges_basic;
          tc "of_edges dedup" test_of_edges_dedup;
          tc "of_edges range check" test_of_edges_range;
          tc "endpoints normalized" test_endpoints_normalized;
          tc "neighbor_at" test_neighbor_at;
          tc "neighbor_at bounds" test_neighbor_at_bounds;
          tc "find_edge" test_find_edge;
          tc "max degree" test_max_degree;
          tc "handshake lemma" test_degree_sum;
          tc "volume" test_volume;
          tc "edge id order" test_iter_edges_order;
        ] );
      ( "union_find",
        [
          tc "operations" test_union_find;
          tc "groups sorted" test_union_find_groups_sorted;
        ] );
      ( "traversal",
        [
          tc "bfs path" test_bfs_path;
          tc "bfs disconnected" test_bfs_disconnected;
          tc "bfs multi-source" test_bfs_multi;
          tc "bfs layers" test_bfs_layers;
          tc "components" test_components;
          tc "diameter known graphs" test_diameter_cycle;
          tc "double sweep on trees" test_double_sweep_tree;
          tc "dijkstra unit = bfs" test_dijkstra_unit_matches_bfs;
          tc "dijkstra weighted" test_dijkstra_weighted;
          tc "acyclicity" test_acyclic;
          tc "spanning forest" test_spanning_forest;
        ] );
      ( "graph_ops",
        [
          tc "induced subgraph" test_induced_subgraph;
          tc "remove edges" test_remove_edges;
          tc "remove vertices" test_remove_vertices;
          tc "disjoint union" test_disjoint_union;
          tc "contract edge" test_contract_edges;
          tc "contract collapses parallels" test_contract_parallel_collapse;
          tc "subdivide" test_subdivide;
          tc "complement" test_complement;
          tc "relabel" test_relabel;
          tc "cluster partition" test_cluster_partition;
        ] );
      ( "weights",
        [
          tc "basics" test_weights;
          tc "restrict to subgraph" test_weights_restrict;
          tc "reject non-positive" test_weights_invalid;
        ] );
      ( "generators",
        [
          tc "grid counts" test_grid_counts;
          tc "torus regular" test_torus_regular;
          tc "hypercube" test_hypercube;
          tc "double star" test_double_star_shape;
          tc "barbell" test_barbell_low_conductance;
          tc "random tree" test_random_tree_is_tree;
          tc "random regular" test_random_regular_degrees;
          tc "k-tree density" test_k_tree_density;
          tc "apollonian density" test_apollonian_planar_density;
          tc "outerplanar density" test_outerplanar_density;
          tc "plant K5s" test_plant_k5s;
          tc "attach stars" test_attach_stars;
          tc "attach double stars" test_attach_double_stars;
          tc "shuffle preserves structure" test_shuffle_preserves;
          tc "planted sign labels" test_sign_labels;
        ] );
      ( "graph_io",
        [
          tc "roundtrip" test_io_roundtrip;
          tc "weighted roundtrip" test_io_weighted_roundtrip;
          tc "comments and errors" test_io_comments_and_errors;
          tc "file roundtrip" test_io_file_roundtrip;
          tc "dot export" test_dot_output;
        ] );
      ("properties", qcheck_cases);
    ]
