open Sparse_graph
open Decomp

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_of_labels () =
  let g = Generators.path 4 in
  let p = Partition.of_labels g [| 7; 7; 3; 3 |] in
  check "k" 2 p.k;
  check "renumbered" 0 p.labels.(0);
  check "renumbered second" 1 p.labels.(2);
  check "one crossing edge" 1 (List.length p.inter_edges);
  checkb "valid" true (Partition.is_valid g p);
  Alcotest.(check (float 1e-9)) "cut fraction" (1. /. 3.)
    (Partition.cut_fraction g p)

let test_partition_diameter () =
  let g = Generators.cycle 8 in
  let p = Partition.of_labels g (Array.init 8 (fun v -> v / 4)) in
  check "two arcs of diameter 3" 3 (Partition.max_cluster_diameter g p);
  (* a disconnected cluster reports max_int *)
  let p2 = Partition.of_labels g (Array.init 8 (fun v -> v mod 2)) in
  check "disconnected cluster" max_int (Partition.max_cluster_diameter g p2)

let test_partition_sizes () =
  let g = Generators.path 5 in
  let p = Partition.of_labels g [| 0; 0; 0; 1; 1 |] in
  Alcotest.(check (array int)) "sizes" [| 3; 2 |] (Partition.sizes p)

(* ------------------------------------------------------------------ *)
(* Edge separators                                                     *)
(* ------------------------------------------------------------------ *)

let separator_families seed =
  [
    ("grid", Generators.grid 10 10);
    ("apollonian", Generators.random_apollonian 120 ~seed);
    ("tree", Generators.random_tree 90 ~seed);
    ("outerplanar", Generators.random_maximal_outerplanar 80 ~seed);
    ("k-tree", Generators.random_k_tree 80 3 ~seed);
  ]

let test_separator_balance_and_quality () =
  List.iter
    (fun (name, g) ->
      let cut = Edge_separator.best g ~seed:1 in
      checkb (name ^ " balanced") true (Edge_separator.is_balanced g cut);
      (* Theorem 1.6 shape: crossing = O(sqrt(Delta n)); constant < 4 on
         these families empirically *)
      let q = Edge_separator.quality g cut in
      checkb (Printf.sprintf "%s quality %.2f < 4" name q) true (q < 4.))
    (separator_families 2)

let test_separator_grid_exact_shape () =
  (* 10x10 grid: a column cut has 10 crossing edges; sqrt(4*100) = 20 *)
  let g = Generators.grid 10 10 in
  let cut = Edge_separator.best g ~seed:3 in
  checkb "close to the column cut" true (cut.crossing <= 20)

let test_separator_refine_no_worse () =
  let g = Generators.random_apollonian 80 ~seed:4 in
  let c0 = Edge_separator.bfs_layered g in
  let c1 = Edge_separator.refine g c0 ~passes:3 in
  checkb "refinement does not worsen" true (c1.crossing <= c0.crossing)

let test_separator_consistency () =
  let g = Generators.grid 6 6 in
  let cut = Edge_separator.best g ~seed:5 in
  (* crossing count matches the mask *)
  let recount =
    Graph.fold_edges g
      (fun acc _ u v -> if cut.side.(u) <> cut.side.(v) then acc + 1 else acc)
      0
  in
  check "crossing consistent" recount cut.crossing

(* ------------------------------------------------------------------ *)
(* Region growing LDD                                                  *)
(* ------------------------------------------------------------------ *)

let test_region_growing_budget () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let p = Ldd.region_growing g ~epsilon:eps in
          checkb
            (Printf.sprintf "%s eps=%.2f within budget" name eps)
            true
            (Partition.cut_fraction g p <= eps +. 1e-9);
          checkb "valid" true (Partition.is_valid g p);
          checkb "finite diameters" true
            (Partition.max_cluster_diameter g p < max_int))
        [ 0.5; 0.25 ])
    (separator_families 6)

let test_region_growing_whole_graph_small_eps () =
  (* huge epsilon allows singleton-ish clusters; tiny epsilon returns few *)
  let g = Generators.grid 8 8 in
  let p_loose = Ldd.region_growing g ~epsilon:2. in
  let p_tight = Ldd.region_growing g ~epsilon:0.05 in
  checkb "loose epsilon: more clusters" true (p_loose.k >= p_tight.k)

let test_region_growing_diameter_shape () =
  (* D should shrink as epsilon grows *)
  let g = Generators.grid 12 12 in
  let d eps =
    Partition.max_cluster_diameter g (Ldd.region_growing g ~epsilon:eps)
  in
  checkb "diameter decreases with epsilon" true (d 1.0 <= d 0.1)

(* ------------------------------------------------------------------ *)
(* MPX                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mpx_partitions () =
  let g = Generators.grid 10 10 in
  let p = Ldd.mpx g ~beta:0.3 ~seed:7 in
  checkb "valid" true (Partition.is_valid g p);
  checkb "clusters connected" true
    (Partition.max_cluster_diameter g p < max_int)

let test_mpx_beta_tradeoff () =
  (* larger beta -> more clusters, smaller diameter, more cut edges *)
  let g = Generators.grid 14 14 in
  let p_small = Ldd.mpx g ~beta:0.05 ~seed:8 in
  let p_large = Ldd.mpx g ~beta:0.8 ~seed:8 in
  checkb "more clusters at large beta" true (p_large.k >= p_small.k);
  checkb "larger cut at large beta" true
    (List.length p_large.inter_edges >= List.length p_small.inter_edges)

(* ------------------------------------------------------------------ *)
(* KPR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_kpr_chop_basic () =
  let g = Generators.grid 10 10 in
  let p = Kpr.chop g ~width:4 ~levels:2 ~seed:9 in
  checkb "valid" true (Partition.is_valid g p);
  checkb "connected clusters" true
    (Partition.max_cluster_diameter g p < max_int)

let test_kpr_chop_pinned () =
  (* regression: the chop visits label groups in ascending order, so the
     shared offset draws and fresh-label counter make the result a pure
     function of (graph, seed) — not of hash-table iteration order *)
  let p = Kpr.chop (Generators.grid 4 4) ~width:3 ~levels:2 ~seed:9 in
  Alcotest.(check (array int))
    "labels"
    [| 0; 1; 2; 2; 3; 2; 2; 2; 4; 4; 2; 5; 4; 4; 6; 6 |]
    p.Partition.labels

let test_kpr_cut_expectation () =
  (* expected cut fraction <= levels / width; allow 2x slack *)
  let g = Generators.random_apollonian 200 ~seed:10 in
  let width = 8 and levels = 2 in
  let p = Kpr.chop g ~width ~levels ~seed:11 in
  let expect = float_of_int levels /. float_of_int width in
  checkb
    (Printf.sprintf "cut %.3f vs expectation %.3f"
       (Partition.cut_fraction g p) expect)
    true
    (Partition.cut_fraction g p <= 2.5 *. expect)

let test_kpr_ldd_budget () =
  List.iter
    (fun (name, g) ->
      let p = Kpr.ldd g ~epsilon:0.4 ~levels:2 ~seed:12 in
      checkb (name ^ " within budget") true
        (Partition.cut_fraction g p <= 0.4 +. 1e-9))
    (separator_families 13)

let test_kpr_diameter_linear_in_width () =
  (* the KPR shape: diameter grows linearly with width, not with n *)
  let g = Generators.grid 16 16 in
  let d width =
    Partition.max_cluster_diameter g (Kpr.chop g ~width ~levels:2 ~seed:14)
  in
  let d4 = d 4 and d8 = d 8 in
  checkb
    (Printf.sprintf "diam(width 4) = %d <= diam(width 8) = %d + slack" d4 d8)
    true
    (d4 <= (2 * d8) + 4);
  (* both far below the graph diameter times constant *)
  checkb "bounded by O(width)" true (d4 <= 8 * 4)

let test_kpr_validation () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Kpr.chop: need width >= 1 and levels >= 1") (fun () ->
      ignore (Kpr.chop g ~width:0 ~levels:1 ~seed:0))

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let arb_planarish =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 6 80) (int_range 0 10_000))

let prop_region_growing_budget =
  QCheck.Test.make ~name:"region growing respects the cut budget" ~count:60
    arb_planarish (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      let p = Ldd.region_growing g ~epsilon:0.3 in
      Partition.cut_fraction g p <= 0.3 +. 1e-9)

let prop_separator_balanced =
  QCheck.Test.make ~name:"separators are balanced" ~count:60 arb_planarish
    (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      Edge_separator.is_balanced g (Edge_separator.best g ~seed))

let prop_kpr_partition_valid =
  QCheck.Test.make ~name:"KPR partitions are valid with connected clusters"
    ~count:40 arb_planarish (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      let p = Kpr.chop g ~width:3 ~levels:2 ~seed in
      Partition.is_valid g p
      && Partition.max_cluster_diameter g p < max_int)

let prop_mpx_covers =
  QCheck.Test.make ~name:"MPX assigns every vertex" ~count:40 arb_planarish
    (fun (n, seed) ->
      let g = Generators.random_tree n ~seed in
      let p = Ldd.mpx g ~beta:0.4 ~seed in
      Partition.is_valid g p)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_region_growing_budget;
      prop_separator_balanced;
      prop_kpr_partition_valid;
      prop_mpx_covers;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decomp"
    [
      ( "partition",
        [
          tc "of_labels" test_partition_of_labels;
          tc "cluster diameter" test_partition_diameter;
          tc "sizes" test_partition_sizes;
        ] );
      ( "edge_separator",
        [
          tc "balance and sqrt(Dn) quality" test_separator_balance_and_quality;
          tc "grid column cut" test_separator_grid_exact_shape;
          tc "refinement monotone" test_separator_refine_no_worse;
          tc "internal consistency" test_separator_consistency;
        ] );
      ( "region_growing",
        [
          tc "cut budget" test_region_growing_budget;
          tc "epsilon extremes" test_region_growing_whole_graph_small_eps;
          tc "diameter vs epsilon" test_region_growing_diameter_shape;
        ] );
      ( "mpx",
        [
          tc "valid partition" test_mpx_partitions;
          tc "beta tradeoff" test_mpx_beta_tradeoff;
        ] );
      ( "kpr",
        [
          tc "basic chop" test_kpr_chop_basic;
          tc "pinned labels" test_kpr_chop_pinned;
          tc "cut expectation" test_kpr_cut_expectation;
          tc "ldd budget" test_kpr_ldd_budget;
          tc "diameter linear in width" test_kpr_diameter_linear_in_width;
          tc "parameter validation" test_kpr_validation;
        ] );
      ("qcheck", qcheck_cases);
    ]
