open Sparse_graph
open Matching

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Blossom                                                             *)
(* ------------------------------------------------------------------ *)

let mcm g = Blossom.size (Blossom.max_cardinality_matching g)

let test_blossom_known () =
  check "even cycle" 5 (mcm (Generators.cycle 10));
  check "odd cycle" 4 (mcm (Generators.cycle 9));
  check "path" 3 (mcm (Generators.path 7));
  check "complete even" 3 (mcm (Generators.complete 6));
  check "complete odd" 3 (mcm (Generators.complete 7));
  check "star" 1 (mcm (Generators.star 5));
  check "K33" 3 (mcm (Generators.complete_bipartite 3 3));
  check "K23" 2 (mcm (Generators.complete_bipartite 2 3))

let petersen =
  (* outer C5, inner pentagram, spokes *)
  Graph.of_edges 10
    ([ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
    @ [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ]
    @ List.init 5 (fun i -> (i, i + 5)))

let test_blossom_petersen () =
  (* the Petersen graph has a perfect matching *)
  check "petersen perfect matching" 5 (mcm petersen)

let test_blossom_needs_blossoms () =
  (* two triangles joined by an edge: needs odd-cycle handling; MCM = 3 *)
  let g =
    Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
  in
  check "triangle pair" 3 (mcm g)

let test_blossom_validity_and_optimality () =
  let g = Generators.random_apollonian 60 ~seed:1 in
  let mate = Blossom.max_cardinality_matching g in
  checkb "valid" true (Blossom.is_valid_matching g mate);
  checkb "maximum (no augmenting path)" true (Blossom.is_maximum g mate)

let test_blossom_edges () =
  let g = Generators.cycle 6 in
  let mate = Blossom.max_cardinality_matching g in
  check "three matched edges" 3 (List.length (Blossom.edges g mate))

(* ------------------------------------------------------------------ *)
(* Exact DP                                                            *)
(* ------------------------------------------------------------------ *)

let test_dp_matches_blossom_cardinality () =
  for seed = 0 to 9 do
    let g =
      Generators.add_random_edges
        (Generators.random_tree 12 ~seed)
        6 ~seed
    in
    check
      (Printf.sprintf "seed %d" seed)
      (mcm g) (Exact_small.max_cardinality g)
  done

let test_dp_weighted_known () =
  (* path a-b-c with weights 3, 2: best is just the 3-edge *)
  let g = Generators.path 3 in
  let w = Weights.of_array g [| 3; 2 |] in
  check "single heavy edge" 3 (Exact_small.max_weight_matching g w);
  (* path of 4 vertices, weights 2,3,2: ends beat middle *)
  let g4 = Generators.path 4 in
  let w4 = Weights.of_array g4 [| 2; 3; 2 |] in
  check "two end edges" 4 (Exact_small.max_weight_matching g4 w4)

let test_dp_reconstruction () =
  let g = Generators.complete 6 in
  let w = Weights.random g ~max_w:20 ~seed:2 in
  let value, edges = Exact_small.max_weight_matching_edges g w in
  check "value equals edge sum" value (Weights.total w edges);
  (* picked edges form a matching *)
  let seen = Array.make 6 false in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      checkb "endpoint fresh" false (seen.(u) || seen.(v));
      seen.(u) <- true;
      seen.(v) <- true)
    edges

let test_dp_size_limit () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Exact_small: graph too large for subset DP") (fun () ->
      ignore (Exact_small.max_cardinality (Generators.cycle 30)))

(* ------------------------------------------------------------------ *)
(* Approximations                                                      *)
(* ------------------------------------------------------------------ *)

let ratio_check name algo ~bound g w =
  let mate = algo g w in
  checkb (name ^ " valid") true (Blossom.is_valid_matching g mate);
  let got = Approx.weight g w mate in
  let opt = Exact_small.max_weight_matching g w in
  checkb
    (Printf.sprintf "%s ratio %d/%d >= %.2f" name got opt bound)
    true
    (float_of_int got >= (bound *. float_of_int opt) -. 1e-9)

let small_weighted_instances =
  List.concat_map
    (fun seed ->
      let g =
        Generators.add_random_edges (Generators.random_tree 12 ~seed) 8 ~seed
      in
      [ (g, Weights.random g ~max_w:30 ~seed) ])
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_greedy_half () =
  List.iter
    (fun (g, w) -> ratio_check "greedy" Approx.greedy ~bound:0.5 g w)
    small_weighted_instances

let test_path_growing_half () =
  List.iter
    (fun (g, w) -> ratio_check "path-growing" Approx.path_growing ~bound:0.5 g w)
    small_weighted_instances

let test_local_search_improves () =
  List.iter
    (fun (g, w) ->
      ratio_check "local-search"
        (fun g w -> Approx.local_search g w ~len:3 ~passes:6 ())
        ~bound:0.5 g w)
    small_weighted_instances

let test_augment_short_paths_cardinality () =
  let g = Generators.random_apollonian 40 ~seed:3 in
  let mate = Array.make (Graph.n g) (-1) in
  Approx.augment_short_paths g mate ~k:4;
  checkb "valid" true (Blossom.is_valid_matching g mate);
  let opt = mcm g in
  let got = Blossom.size mate in
  (* k = 4 targets >= 4/5 of optimum *)
  checkb
    (Printf.sprintf "got %d vs opt %d" got opt)
    true
    (float_of_int got >= 0.8 *. float_of_int opt)

let test_augment_from_greedy () =
  let g = Generators.grid 6 6 in
  let mate = Approx.greedy g (Weights.uniform g) in
  let before = Blossom.size mate in
  Approx.augment_short_paths g mate ~k:6;
  checkb "no regression" true (Blossom.size mate >= before);
  check "grid 6x6 perfect matching" 18 (Blossom.size mate)

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)
(* ------------------------------------------------------------------ *)

let test_scaling_beats_greedy () =
  let better = ref 0 and total = ref 0 in
  List.iter
    (fun (g, w) ->
      let s = Approx.weight g w (Scaling.run ~params:(Scaling.of_epsilon 0.2) g w) in
      let gr = Approx.weight g w (Approx.greedy g w) in
      incr total;
      if s >= gr then incr better)
    small_weighted_instances;
  (* scaling should be at least as good as greedy on most instances *)
  checkb
    (Printf.sprintf "scaling >= greedy on %d/%d" !better !total)
    true
    (!better * 4 >= !total * 3)

let test_scaling_near_optimal_small () =
  List.iter
    (fun (g, w) ->
      ratio_check "scaling"
        (fun g w -> Scaling.run ~params:(Scaling.of_epsilon 0.1) g w)
        ~bound:0.8 g w)
    small_weighted_instances

let test_scaling_scales_list () =
  let g = Generators.path 5 in
  let w = Weights.of_array g [| 100; 10; 3; 1 |] in
  let ss = Scaling.scales w in
  checkb "starts at max weight" true (List.hd ss = 100);
  checkb "descending" true
    (List.for_all2 ( > ) (List.filteri (fun i _ -> i < List.length ss - 1) ss)
       (List.tl ss));
  checkb "ends at 1" true (List.nth ss (List.length ss - 1) = 1)

let test_scaling_uniform_weights () =
  (* degenerate single scale *)
  let g = Generators.grid 4 4 in
  let w = Weights.uniform g in
  let mate = Scaling.run g w in
  checkb "valid" true (Blossom.is_valid_matching g mate);
  checkb "decent size" true (Blossom.size mate >= 6)

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                       *)
(* ------------------------------------------------------------------ *)

let test_preprocess_star () =
  (* star with 5 leaves: keep center + 1 leaf *)
  let g = Generators.star 5 in
  let r = Preprocess.eliminate g in
  check "four leaves removed" 4 (List.length r.removed);
  check "two vertices left" 2 (Graph.n r.graph);
  check "mcm preserved" (mcm g) (mcm r.graph)

let test_preprocess_double_star () =
  (* double star with 5 spokes: keep hubs + 2 spokes *)
  let g = Generators.double_star 5 in
  let r = Preprocess.eliminate g in
  check "three spokes removed" 3 (List.length r.removed);
  check "mcm preserved" (mcm g) (mcm r.graph);
  checkb "no 3-double-star left" false (Preprocess.has_3_double_star r.graph)

let test_preprocess_preserves_mcm () =
  for seed = 0 to 7 do
    let g =
      Generators.attach_double_stars
        (Generators.attach_stars
           (Generators.random_planar 30 0.5 ~seed)
           ~stars:4 ~leaves:4 ~seed)
        ~hubs:2 ~spokes:5 ~seed
    in
    let r = Preprocess.eliminate_fixpoint g in
    check (Printf.sprintf "mcm preserved seed %d" seed) (mcm g) (mcm r.graph);
    checkb "no 2-star" false (Preprocess.has_2_star r.graph);
    checkb "no 3-double-star" false (Preprocess.has_3_double_star r.graph)
  done

let test_preprocess_detectors () =
  checkb "star has 2-star" true (Preprocess.has_2_star (Generators.star 3));
  checkb "path has none" false (Preprocess.has_2_star (Generators.path 5));
  checkb "double star detected" true
    (Preprocess.has_3_double_star (Generators.double_star 3));
  checkb "K23 detected" true
    (Preprocess.has_3_double_star (Generators.complete_bipartite 2 3));
  checkb "cycle clean" false (Preprocess.has_3_double_star (Generators.cycle 8))

let test_preprocess_lemma31_shape () =
  (* Lemma 3.1: without 2-stars/3-double-stars, MCM = Omega(n). Check the
     reduced graphs have MCM at least n-bar / 5 across planar instances. *)
  for seed = 0 to 4 do
    let g =
      Generators.attach_stars
        (Generators.random_planar 60 0.55 ~seed)
        ~stars:8 ~leaves:5 ~seed
    in
    let r = Preprocess.eliminate_fixpoint g in
    (* count non-isolated vertices *)
    let live = ref 0 in
    for v = 0 to Graph.n r.graph - 1 do
      if Graph.degree r.graph v > 0 then incr live
    done;
    let matching = mcm r.graph in
    checkb
      (Printf.sprintf "seed %d: mcm %d vs live %d" seed matching !live)
      true
      (5 * matching >= !live)
  done

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let arb_small_graph =
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 2 14) (int_range 0 10_000) (int_range 0 12))

let build (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_blossom_equals_dp =
  QCheck.Test.make ~name:"blossom equals subset-DP cardinality" ~count:150
    arb_small_graph (fun input ->
      let g = build input in
      mcm g = Exact_small.max_cardinality g)

let prop_blossom_maximum =
  QCheck.Test.make ~name:"blossom leaves no augmenting path" ~count:100
    arb_small_graph (fun input ->
      let g = build input in
      Blossom.is_maximum g (Blossom.max_cardinality_matching g))

let prop_greedy_half_weighted =
  QCheck.Test.make ~name:"greedy achieves half the optimal weight" ~count:100
    arb_small_graph (fun input ->
      let (_, seed, _) = input in
      let g = build input in
      let w = Weights.random g ~max_w:50 ~seed in
      let got = Approx.weight g w (Approx.greedy g w) in
      2 * got >= Exact_small.max_weight_matching g w)

let prop_scaling_valid =
  QCheck.Test.make ~name:"scaling returns a valid matching" ~count:100
    arb_small_graph (fun input ->
      let (_, seed, _) = input in
      let g = build input in
      let w = Weights.random g ~max_w:50 ~seed in
      Blossom.is_valid_matching g (Scaling.run g w))

let prop_preprocess_mcm_preserved =
  QCheck.Test.make ~name:"preprocessing preserves maximum matching size"
    ~count:100 arb_small_graph (fun input ->
      let g = build input in
      let r = Preprocess.eliminate_fixpoint g in
      mcm g = mcm r.graph)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_blossom_equals_dp;
      prop_blossom_maximum;
      prop_greedy_half_weighted;
      prop_scaling_valid;
      prop_preprocess_mcm_preserved;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "matching"
    [
      ( "blossom",
        [
          tc "known values" test_blossom_known;
          tc "petersen" test_blossom_petersen;
          tc "odd components" test_blossom_needs_blossoms;
          tc "validity and optimality" test_blossom_validity_and_optimality;
          tc "matched edges" test_blossom_edges;
        ] );
      ( "exact_dp",
        [
          tc "cardinality vs blossom" test_dp_matches_blossom_cardinality;
          tc "weighted known" test_dp_weighted_known;
          tc "reconstruction" test_dp_reconstruction;
          tc "size limit" test_dp_size_limit;
        ] );
      ( "approx",
        [
          tc "greedy half" test_greedy_half;
          tc "path growing half" test_path_growing_half;
          tc "local search" test_local_search_improves;
          tc "short augmenting paths" test_augment_short_paths_cardinality;
          tc "augment from greedy" test_augment_from_greedy;
        ] );
      ( "scaling",
        [
          tc "beats greedy" test_scaling_beats_greedy;
          tc "near optimal small" test_scaling_near_optimal_small;
          tc "scale thresholds" test_scaling_scales_list;
          tc "uniform weights" test_scaling_uniform_weights;
        ] );
      ( "preprocess",
        [
          tc "2-star elimination" test_preprocess_star;
          tc "3-double-star elimination" test_preprocess_double_star;
          tc "mcm preserved" test_preprocess_preserves_mcm;
          tc "pattern detectors" test_preprocess_detectors;
          tc "lemma 3.1 shape" test_preprocess_lemma31_shape;
        ] );
      ("qcheck", qcheck_cases);
    ]
