open Sparse_graph
open Minorfree

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)
(* ------------------------------------------------------------------ *)

let test_blocks_two_triangles () =
  (* two triangles sharing vertex 2: two blocks, one cut vertex *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  check "two blocks" 2 (List.length (Blocks.blocks g));
  Alcotest.(check (list int)) "cut vertex" [ 2 ] (Blocks.cut_vertices g)

let test_blocks_bridge () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check "each edge its own block" 3 (List.length (Blocks.blocks g));
  Alcotest.(check (list int)) "cut vertices" [ 1; 2 ] (Blocks.cut_vertices g)

let test_blocks_cycle () =
  let g = Generators.cycle 6 in
  check "one block" 1 (List.length (Blocks.blocks g));
  Alcotest.(check (list int)) "no cut vertices" [] (Blocks.cut_vertices g);
  checkb "biconnected" true (Blocks.is_biconnected g)

let test_blocks_partition_edges () =
  let g = Generators.random_planar 60 0.6 ~seed:1 in
  let bs = Blocks.blocks g in
  let total = List.fold_left (fun acc b -> acc + List.length b) 0 bs in
  check "blocks partition the edges" (Graph.m g) total;
  let seen = Array.make (Graph.m g) false in
  List.iter
    (List.iter (fun e ->
         checkb "edge in one block" false seen.(e);
         seen.(e) <- true))
    bs

let test_not_biconnected () =
  checkb "path not biconnected" false (Blocks.is_biconnected (Generators.path 4));
  checkb "star not biconnected" false (Blocks.is_biconnected (Generators.star 4));
  checkb "K4 biconnected" true (Blocks.is_biconnected (Generators.complete 4))

(* ------------------------------------------------------------------ *)
(* Planarity                                                           *)
(* ------------------------------------------------------------------ *)

let planar_cases =
  [
    ("K4", Generators.complete 4, true);
    ("K5", Generators.complete 5, false);
    ("K6", Generators.complete 6, false);
    ("K33", Generators.complete_bipartite 3 3, false);
    ("K23", Generators.complete_bipartite 2 3, true);
    ("grid 5x5", Generators.grid 5 5, true);
    ("cycle", Generators.cycle 12, true);
    ("tree", Generators.random_tree 40 ~seed:2, true);
    ("apollonian", Generators.random_apollonian 60 ~seed:3, true);
    ("outerplanar", Generators.random_maximal_outerplanar 30 ~seed:4, true);
    ("petersen-like K5 subdivision",
     Graph_ops.subdivide (Generators.complete 5) 0 3, false);
    ("hypercube Q3", Generators.hypercube 3, true);
    ("hypercube Q4", Generators.hypercube 4, false);
    ("torus 3x3 = K33-ish", Generators.torus 3 3, false);
  ]

let test_planarity_known () =
  List.iter
    (fun (name, g, expected) ->
      checkb name expected (Planarity.is_planar g))
    planar_cases

let test_planarity_disconnected () =
  let g = Graph_ops.disjoint_union (Generators.complete 4) (Generators.grid 3 3) in
  checkb "union of planars is planar" true (Planarity.is_planar g);
  let g' = Graph_ops.disjoint_union (Generators.complete 5) (Generators.grid 3 3) in
  checkb "union with K5 is not" false (Planarity.is_planar g')

let test_planarity_k5_in_big_planar () =
  let g = Generators.grid 8 8 in
  let g' = Generators.plant_k5s g 1 ~seed:5 in
  checkb "planted K5 detected" false (Planarity.is_planar g')

let test_embed_block_faces () =
  (* Euler check on the returned embedding: f = m - n + 2 *)
  List.iter
    (fun (name, g) ->
      match Planarity.embed_block g with
      | None -> Alcotest.fail (name ^ ": should embed")
      | Some faces ->
          check
            (name ^ ": Euler face count")
            (Graph.m g - Graph.n g + 2)
            (List.length faces))
    [
      ("K4", Generators.complete 4);
      ("cycle", Generators.cycle 7);
      ("grid 4x4", Generators.grid 4 4);
      ("apollonian", Generators.random_apollonian 40 ~seed:6);
      ("K23", Generators.complete_bipartite 2 3);
    ]

let test_embed_block_pinned () =
  (* regression: attachment lists leave the embedder's hash table in
     sorted order, so the embedding is a function of the graph alone *)
  let faces g =
    match Planarity.embed_block g with
    | Some f -> f
    | None -> Alcotest.fail "should embed"
  in
  Alcotest.(check (list (list int)))
    "K4 faces"
    [ [ 2; 1; 3 ]; [ 3; 0; 2 ]; [ 1; 0; 3 ]; [ 0; 1; 2 ] ]
    (faces (Generators.complete 4));
  Alcotest.(check (list (list int)))
    "K23 faces"
    [ [ 0; 3; 1; 4 ]; [ 1; 2; 0; 4 ]; [ 0; 2; 1; 3 ] ]
    (faces (Generators.complete_bipartite 2 3))

let test_embed_block_rejects () =
  checkb "K5 rejected" true (Planarity.embed_block (Generators.complete 5) = None);
  checkb "K33 rejected" true
    (Planarity.embed_block (Generators.complete_bipartite 3 3) = None)

let test_embed_block_requires_biconnected () =
  Alcotest.check_raises "path rejected"
    (Invalid_argument "Planarity.embed_block: graph is not biconnected")
    (fun () -> ignore (Planarity.embed_block (Generators.path 4)))

let test_outerplanarity () =
  checkb "cycle outerplanar" true (Planarity.is_outerplanar (Generators.cycle 8));
  checkb "maximal outerplanar" true
    (Planarity.is_outerplanar (Generators.random_maximal_outerplanar 25 ~seed:7));
  checkb "K4 not outerplanar" false
    (Planarity.is_outerplanar (Generators.complete 4));
  checkb "K23 not outerplanar" false
    (Planarity.is_outerplanar (Generators.complete_bipartite 2 3));
  checkb "grid 3x3 not outerplanar" false
    (Planarity.is_outerplanar (Generators.grid 3 3));
  checkb "tree outerplanar" true
    (Planarity.is_outerplanar (Generators.random_tree 20 ~seed:8))

(* ------------------------------------------------------------------ *)
(* Left-right planarity (independent implementation)                   *)
(* ------------------------------------------------------------------ *)

let test_lr_known () =
  List.iter
    (fun (name, g, expected) ->
      checkb name expected (Lr_planarity.is_planar g))
    planar_cases

let test_lr_agrees_with_demoucron () =
  for seed = 0 to 60 do
    let st = Random.State.make [| seed; 7 |] in
    let n = 5 + Random.State.int st 25 in
    let extra = Random.State.int st 22 in
    let g =
      Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed
    in
    checkb
      (Printf.sprintf "agreement on seed %d" seed)
      (Planarity.is_planar g)
      (Lr_planarity.is_planar g)
  done

let test_lr_large_planar () =
  checkb "apollonian 2000 accepted" true
    (Lr_planarity.is_planar (Generators.random_apollonian 2000 ~seed:9));
  checkb "grid 40x40 accepted" true
    (Lr_planarity.is_planar (Generators.grid 40 40));
  checkb "planted K5 in big grid rejected" false
    (Lr_planarity.is_planar
       (Generators.plant_k5s (Generators.grid 30 30) 1 ~seed:10))

(* ------------------------------------------------------------------ *)
(* Minor checking                                                      *)
(* ------------------------------------------------------------------ *)

let test_subgraph_iso () =
  checkb "triangle in K4" true
    (Minor_check.subgraph_isomorphic (Generators.complete 3) (Generators.complete 4));
  checkb "C4 in grid" true
    (Minor_check.subgraph_isomorphic (Generators.cycle 4) (Generators.grid 2 2));
  checkb "K3 not in K23" false
    (Minor_check.subgraph_isomorphic (Generators.complete 3)
       (Generators.complete_bipartite 2 3));
  checkb "P3 in triangle" true
    (Minor_check.subgraph_isomorphic (Generators.path 3) (Generators.cycle 3))

let test_minor_basic () =
  checkb "K4 minor of K5" true
    (Minor_check.has_minor (Generators.complete 4) (Generators.complete 5));
  checkb "K3 minor of C6" true
    (Minor_check.has_minor (Generators.complete 3) (Generators.cycle 6));
  checkb "K3 not minor of tree" false
    (Minor_check.has_minor (Generators.complete 3) (Generators.random_tree 8 ~seed:9));
  checkb "K4 minor of Q3 (hypercube)" true
    (Minor_check.has_minor (Generators.complete 4) (Generators.hypercube 3))

let test_minor_subdivision () =
  (* a subdivision of H always contains H as a minor *)
  let h = Generators.complete 4 in
  let sub = Graph_ops.subdivide (Graph_ops.subdivide h 0 2) 3 1 in
  checkb "subdivided K4 has K4 minor" true (Minor_check.has_minor h sub)

let test_clique_minor_shortcuts () =
  checkb "K3 in cycle" true (Minor_check.has_clique_minor (Generators.cycle 5) 3);
  checkb "no K3 in forest" false
    (Minor_check.has_clique_minor (Generators.random_tree 30 ~seed:10) 3);
  checkb "K4 in K4" true (Minor_check.has_clique_minor (Generators.complete 4) 4);
  checkb "no K4 in outerplanar" false
    (Minor_check.has_clique_minor
       (Generators.random_maximal_outerplanar 25 ~seed:11) 4);
  checkb "no K5 in apollonian (planar)" false
    (Minor_check.has_clique_minor (Generators.random_apollonian 60 ~seed:12) 5);
  checkb "K5 in K6" true (Minor_check.has_clique_minor (Generators.complete 6) 5)

let test_series_parallel () =
  checkb "cycle is sp" true (Minor_check.is_series_parallel (Generators.cycle 10));
  checkb "2-tree is sp" true
    (Minor_check.is_series_parallel (Generators.random_k_tree 20 2 ~seed:13));
  checkb "outerplanar is sp" true
    (Minor_check.is_series_parallel
       (Generators.random_maximal_outerplanar 20 ~seed:14));
  checkb "K4 is not sp" false (Minor_check.is_series_parallel (Generators.complete 4));
  checkb "grid 3x3 not sp" false (Minor_check.is_series_parallel (Generators.grid 3 3));
  checkb "3-tree not sp" false
    (Minor_check.is_series_parallel (Generators.random_k_tree 15 3 ~seed:15))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let test_property_membership () =
  let tree = Generators.random_tree 20 ~seed:16 in
  let apo = Generators.random_apollonian 30 ~seed:17 in
  checkb "tree is forest" true (Properties.forest.holds tree);
  checkb "apollonian not forest" false (Properties.forest.holds apo);
  checkb "path is linear forest" true (Properties.linear_forest.holds (Generators.path 9));
  checkb "star not linear forest" false
    (Properties.linear_forest.holds (Generators.star 4));
  checkb "apollonian planar" true (Properties.planar.holds apo);
  checkb "apollonian not sp" false (Properties.series_parallel.holds apo)

let test_forbidden_cliques_consistent () =
  List.iter
    (fun (p : Properties.t) ->
      match Properties.smallest_forbidden_clique p with
      | Some s -> check (p.name ^ " forbidden clique") p.forbidden_clique s
      | None -> Alcotest.fail (p.name ^ ": no forbidden clique found"))
    Properties.all

let test_far_from_forest () =
  (* dense planar graph: cycle rank is large *)
  let g = Generators.random_apollonian 40 ~seed:18 in
  checkb "apollonian far from forest" true
    (Properties.far_from ~epsilon:0.3 g Properties.forest);
  let almost_tree =
    Generators.add_random_edges (Generators.random_tree 50 ~seed:19) 2 ~seed:19
  in
  checkb "near-tree not far" false
    (Properties.far_from ~epsilon:0.3 almost_tree Properties.forest)

let test_far_from_planar () =
  (* K8 has 28 edges, needs >= 28 - 18 = 10 removals: 10/28 > 0.3 *)
  checkb "K8 far from planar" true
    (Properties.far_from ~epsilon:0.3 (Generators.complete 8) Properties.planar);
  checkb "grid not far from planar" false
    (Properties.far_from ~epsilon:0.1 (Generators.grid 5 5) Properties.planar)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_generated_planar_accepts =
  QCheck.Test.make ~name:"generated planar families pass the planarity test"
    ~count:30
    QCheck.(pair (int_range 4 60) (int_range 0 1000))
    (fun (n, seed) ->
      Planarity.is_planar (Generators.random_apollonian n ~seed)
      && Planarity.is_planar (Generators.random_planar n 0.7 ~seed)
      && Planarity.is_planar (Generators.random_tree n ~seed))

let prop_k5_overlay_rejected =
  QCheck.Test.make ~name:"planting a K5 breaks planarity" ~count:30
    QCheck.(pair (int_range 10 50) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.plant_k5s (Generators.grid n 5) 1 ~seed in
      not (Planarity.is_planar g))

let prop_minor_closed_under_contraction =
  QCheck.Test.make ~name:"planarity is preserved by contraction" ~count:30
    QCheck.(pair (int_range 5 30) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      let st = Random.State.make [| seed |] in
      let e = Random.State.int st (Graph.m g) in
      let minor, _ = Graph_ops.contract_edges g [ e ] in
      Planarity.is_planar minor)

let prop_sp_implies_planar =
  QCheck.Test.make ~name:"series-parallel implies planar" ~count:30
    QCheck.(pair (int_range 4 40) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_k_tree n 2 ~seed in
      Minor_check.is_series_parallel g && Planarity.is_planar g)

let prop_outerplanar_implies_sp =
  QCheck.Test.make ~name:"maximal outerplanar implies series-parallel"
    ~count:30
    QCheck.(pair (int_range 3 40) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_maximal_outerplanar n ~seed in
      Planarity.is_outerplanar g && Minor_check.is_series_parallel g)

let prop_lr_demoucron_agree =
  QCheck.Test.make ~name:"left-right test agrees with Demoucron" ~count:120
    QCheck.(triple (int_range 5 28) (int_range 0 1000) (int_range 0 24))
    (fun (n, seed, extra) ->
      let g =
        Generators.add_random_edges (Generators.random_tree n ~seed) extra
          ~seed
      in
      Planarity.is_planar g = Lr_planarity.is_planar g)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_planar_accepts;
      prop_lr_demoucron_agree;
      prop_k5_overlay_rejected;
      prop_minor_closed_under_contraction;
      prop_sp_implies_planar;
      prop_outerplanar_implies_sp;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "minorfree"
    [
      ( "blocks",
        [
          tc "two triangles" test_blocks_two_triangles;
          tc "bridges" test_blocks_bridge;
          tc "cycle" test_blocks_cycle;
          tc "edge partition" test_blocks_partition_edges;
          tc "biconnectivity" test_not_biconnected;
        ] );
      ( "planarity",
        [
          tc "known graphs" test_planarity_known;
          tc "disconnected" test_planarity_disconnected;
          tc "planted K5" test_planarity_k5_in_big_planar;
          tc "embedding face counts" test_embed_block_faces;
          tc "embedding pinned" test_embed_block_pinned;
          tc "embedding rejects" test_embed_block_rejects;
          tc "biconnected precondition" test_embed_block_requires_biconnected;
          tc "outerplanarity" test_outerplanarity;
        ] );
      ( "lr_planarity",
        [
          tc "known graphs" test_lr_known;
          tc "agrees with demoucron" test_lr_agrees_with_demoucron;
          tc "large instances" test_lr_large_planar;
        ] );
      ( "minors",
        [
          tc "subgraph isomorphism" test_subgraph_iso;
          tc "basic minors" test_minor_basic;
          tc "subdivision minors" test_minor_subdivision;
          tc "clique minor shortcuts" test_clique_minor_shortcuts;
          tc "series parallel" test_series_parallel;
        ] );
      ( "properties",
        [
          tc "membership" test_property_membership;
          tc "forbidden cliques" test_forbidden_cliques_consistent;
          tc "far from forest" test_far_from_forest;
          tc "far from planar" test_far_from_planar;
        ] );
      ("qcheck", qcheck_cases);
    ]
