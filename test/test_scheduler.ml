(* Active-vertex scheduler tests: Network.run (Every_round and
   Event_driven) against Network.run_reference. The qcheck suites pin the
   PR's equivalence contract — identical final states and statistics on
   fault-free runs and under fixed fault seeds, at every pool size — and
   the unit tests pin the event-mode corners: halting-round sends,
   recover-round empty inboxes, halted-receiver drop accounting under the
   flat inbox representation, wake_after validation, fast-forward round
   accounting, and inbox ordering. *)

open Sparse_graph
open Congest

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let stats =
  Alcotest.testable Network.pp_stats (fun (a : Network.stats) b -> a = b)

(* ------------------------------------------------------------------ *)
(* Chaos workload                                                      *)
(* ------------------------------------------------------------------ *)

(* A deterministic algorithm exercising the scheduler while obeying the
   wake-up contract: vertex v originates traffic on multiples of its own
   period, relays on a hash predicate when messages arrive, and halts one
   round past the budget. A step with an empty inbox outside those rounds
   returns the state unchanged and sends nothing, so Event_driven may
   legally skip it. The inbox fold is order-sensitive on purpose: any
   deviation in delivery order between the loops shows up in the final
   states. *)
let mix a b = ((a * 0x9e3779b1) lxor ((b * 0x85ebca6b) + 0x27d4eb2f)) land 0xfffffff

let chaos_budget = 24

let chaos_round r (ctx : Network.ctx) st inbox =
  let v = ctx.id in
  let st =
    List.fold_left
      (fun a (s, x) -> ((a * 31) + (s * 7) + x) mod 1_000_003)
      st inbox
  in
  if r > chaos_budget then begin
    (* a halting vertex's final sends still go out *)
    let send =
      if v land 1 = 0 && Array.length ctx.neighbors > 0 then
        [ (ctx.neighbors.(0), st land 63) ]
      else []
    in
    Network.step st ~send ~halt:true
  end
  else begin
    let period = 2 + (v mod 3) in
    let fires = r mod period = 0 in
    let send =
      if fires then
        let m = (st + (r * 13) + v) land 1023 in
        Array.to_list (Array.map (fun w -> (w, m)) ctx.neighbors)
      else if inbox <> [] && mix v (st + r) land 3 = 0 then
        List.filter_map
          (fun w -> if w land 1 = 1 then Some (w, st land 255) else None)
          (Array.to_list ctx.neighbors)
      else []
    in
    let st = if fires || inbox <> [] then (st + 1) mod 1_000_003 else st in
    let d = period - (r mod period) in
    let wake = if r + d > chaos_budget then chaos_budget + 1 - r else d in
    Network.step st ~send ~wake_after:wake
  end

let chaos_init (ctx : Network.ctx) = (ctx.id * 97) land 1023

(* worker pools shared by the sharded runs below; created on first use *)
let shard_pool1 = lazy (Parallel.Pool.create ~jobs:1 ())
let shard_pool4 = lazy (Parallel.Pool.create ~jobs:4 ())

let shard_pool jobs = Lazy.force (if jobs = 1 then shard_pool1 else shard_pool4)

let run_chaos ?faults ~how g =
  let n = Graph.n g in
  match how with
  | `Reference ->
      Network.run_reference ?faults g ~bandwidth:Network.Local
        ~msg_bits:(fun _ -> Bits.id_bits n)
        ~init:chaos_init ~round:chaos_round
        ~max_rounds:(chaos_budget + 2)
  | `Every_round ->
      Network.run ?faults ~schedule:Network.Every_round g
        ~bandwidth:Network.Local
        ~msg_bits:(fun _ -> Bits.id_bits n)
        ~init:chaos_init ~round:chaos_round
        ~max_rounds:(chaos_budget + 2)
  | `Event ->
      Network.run ?faults ~schedule:Network.Event_driven g
        ~bandwidth:Network.Local
        ~msg_bits:(fun _ -> Bits.id_bits n)
        ~init:chaos_init ~round:chaos_round
        ~max_rounds:(chaos_budget + 2)
  | `Sharded (schedule, shards, jobs, packed) ->
      (* chaos messages are small non-negative ints, so both codecs are
         exact; the boxed one exercises the wide-spill path *)
      let codec =
        if packed then Network.int_codec else Network.boxed_codec ()
      in
      Network.run ?faults ~schedule
        ~exec:(Network.Sharded { shards; pool = shard_pool jobs })
        ~codec g ~bandwidth:Network.Local
        ~msg_bits:(fun _ -> Bits.id_bits n)
        ~init:chaos_init ~round:chaos_round
        ~max_rounds:(chaos_budget + 2)

(* ------------------------------------------------------------------ *)
(* Pinned unit regressions                                             *)
(* ------------------------------------------------------------------ *)

let test_event_halting_round_sends () =
  (* vertex 0 announces and halts in its very first round; the neighbor —
     asleep, with no wake-up of its own — must still be scheduled to
     receive the message in round 2 *)
  let g = Generators.path 2 in
  let got = ref [] in
  let round r (ctx : Network.ctx) () inbox =
    List.iter (fun (s, x) -> got := ((r, ctx.id), (s, x)) :: !got) inbox;
    if ctx.id = 0 then Network.step () ~send:[ (1, 42) ] ~halt:true
    else Network.step () ~halt:(inbox <> [])
  in
  let _, st =
    Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "halting-round send delivered"
    [ ((2, 1), (0, 42)) ]
    (List.rev !got);
  checkb "completed" true st.Network.completed;
  check "rounds" 2 st.Network.rounds;
  check "delivered" 1 (Network.delivered st)

let test_event_recover_round_empty_inbox () =
  (* vertex 0 streams to vertex 1 every round; 1 crashes in round 2 and
     recovers in round 4. The round-1 message is wiped by the crash before
     it is read, the rounds-2/3 sends are dropped at the crashed receiver,
     the recovery-round inbox is empty, and delivery resumes in round 5. *)
  let g = Generators.path 2 in
  let faults =
    Faults.make
      ~crashes:[ { Faults.vertex = 1; at_round = 2; recover_round = Some 4 } ]
      ~seed:5 ()
  in
  let seen = ref [] in
  let round r (ctx : Network.ctx) () inbox =
    if ctx.id = 0 then
      if r > 6 then Network.step () ~halt:true
      else Network.step () ~send:[ (1, r) ] ~wake_after:1
    else begin
      List.iter (fun (_, x) -> seen := (r, x) :: !seen) inbox;
      Network.step () ~halt:(r > 6)
    end
  in
  let _, st =
    Network.run g ~faults ~schedule:Network.Event_driven
      ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  Alcotest.(check (list (pair int int)))
    "crashed rounds lose traffic; recovery round inbox empty"
    [ (5, 4); (6, 5); (7, 6) ]
    (List.rev !seen);
  (* rounds 2 and 3 sends hit a crashed receiver *)
  check "dropped" 2 st.Network.dropped;
  check "crashed rounds" 2 st.Network.crashed_rounds

let test_event_halted_receiver_drop_accounting () =
  (* vertex 1 halts immediately; vertex 0 keeps sending to it. Every such
     message is counted dropped so delivered + dropped = messages holds
     under the flat inbox representation. *)
  let g = Generators.path 2 in
  let round r (ctx : Network.ctx) () _ =
    if ctx.id = 1 then Network.step () ~halt:true
    else if r > 3 then Network.step () ~halt:true
    else Network.step () ~send:[ (1, r) ] ~wake_after:1
  in
  let _, st =
    Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  check "messages" 3 st.Network.messages;
  (* the round-1 send arrives in round 2, after the receiver halted *)
  check "dropped" 3 st.Network.dropped;
  check "delivered" 0 (Network.delivered st);
  checkb "completed" true st.Network.completed

let test_wake_after_validation () =
  let g = Generators.path 2 in
  let attempt d =
    ignore
      (Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
         ~msg_bits:(fun _ -> 1)
         ~init:(fun _ -> ())
         ~round:(fun _ _ () _ -> Network.step () ~wake_after:d)
         ~max_rounds:5)
  in
  (match attempt 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wake_after 0: expected Invalid_argument");
  (match attempt (-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wake_after -3: expected Invalid_argument")

(* sleeps (rescheduling its own wake-up, so a recovery step keeps the
   chain alive) until [halt_round], then halts *)
let sleeper_round ~halt_round r _ () _ =
  if r >= halt_round then Network.step () ~halt:true
  else Network.step () ~wake_after:(halt_round - r)

let test_event_fast_forward_accounting () =
  (* everyone sleeps from round 1 to round 50 and halts at 51: the event
     loop fast-forwards over the silent stretch but must report the same
     statistics as the reference, which steps through it. *)
  let g = Generators.path 5 in
  let run how =
    let round = sleeper_round ~halt_round:51 in
    match how with
    | `Reference ->
        Network.run_reference g ~bandwidth:Network.Local
          ~msg_bits:(fun _ -> 1)
          ~init:(fun _ -> ())
          ~round ~max_rounds:100
    | `Event ->
        Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
          ~msg_bits:(fun _ -> 1)
          ~init:(fun _ -> ())
          ~round ~max_rounds:100
  in
  let _, ref_stats = run `Reference in
  let _, ev_stats = run `Event in
  Alcotest.check stats "fast-forward preserves stats" ref_stats ev_stats;
  check "halts at 51" 51 ev_stats.Network.rounds;
  checkb "completed" true ev_stats.Network.completed

let test_event_fast_forward_stops_at_fault_events () =
  (* a crash in round 7 and recovery in round 30 land inside the silent
     stretch; fast-forwarding must not jump over them, and crashed_rounds
     must count every skipped round of the outage *)
  let g = Generators.path 5 in
  let faults () =
    Faults.make
      ~crashes:[ { Faults.vertex = 2; at_round = 7; recover_round = Some 30 } ]
      ~seed:3 ()
  in
  let round = sleeper_round ~halt_round:51 in
  let _, ref_stats =
    Network.run_reference ~faults:(faults ()) g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:100
  in
  let _, ev_stats =
    Network.run ~faults:(faults ()) g ~schedule:Network.Event_driven
      ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:100
  in
  Alcotest.check stats "fault events inside a skipped stretch" ref_stats
    ev_stats;
  (* rounds 7..29 inclusive *)
  check "crashed rounds" 23 ev_stats.Network.crashed_rounds

let test_event_permanent_crash_fast_forward () =
  (* a permanently crashed vertex accrues crashed_rounds through the
     fast-forwarded stretch until the run completes *)
  let g = Generators.path 4 in
  let faults () =
    Faults.make
      ~crashes:[ { Faults.vertex = 1; at_round = 3; recover_round = None } ]
      ~seed:9 ()
  in
  let round = sleeper_round ~halt_round:21 in
  let _, ref_stats =
    Network.run_reference ~faults:(faults ()) g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:40
  in
  let _, ev_stats =
    Network.run ~faults:(faults ()) g ~schedule:Network.Event_driven
      ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:40
  in
  Alcotest.check stats "permanent crash accounting" ref_stats ev_stats;
  checkb "completed without the crashed vertex" true
    ev_stats.Network.completed

let test_event_inbox_ordering () =
  (* the flat inbox must present messages sender-ascending, preserving
     each sender's list order — including within-round multi-sends *)
  let g = Generators.star 4 in
  let seen = ref [] in
  let round r (ctx : Network.ctx) () inbox =
    if ctx.id = 0 then begin
      List.iter (fun (s, x) -> seen := (s, x) :: !seen) inbox;
      Network.step () ~halt:(r > 1)
    end
    else if r = 1 then
      (* leaves fire in reverse id order at the send site *)
      Network.step () ~send:[ (0, ctx.id * 10); (0, (ctx.id * 10) + 1) ]
        ~halt:true
    else Network.step () ~halt:true
  in
  let _, st =
    Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:5
  in
  Alcotest.(check (list (pair int int)))
    "sender-ascending, list order within sender"
    [ (1, 10); (1, 11); (2, 20); (2, 21); (3, 30); (3, 31); (4, 40); (4, 41) ]
    (List.rev !seen);
  check "messages" 8 st.Network.messages

let test_event_skips_sleeping_vertices () =
  (* the point of the scheduler: on a long path where only vertex 0 works
     every round, the event loop must invoke the round function far fewer
     times than the reference *)
  let g = Generators.path 50 in
  let count = ref 0 in
  let round r (ctx : Network.ctx) () _ =
    incr count;
    if ctx.id = 0 then
      if r > 40 then Network.step () ~halt:true
      else Network.step () ~wake_after:1
    else if r > 40 then Network.step () ~halt:true
    else Network.step () ~wake_after:(41 - r)
  in
  let run how =
    count := 0;
    (match how with
    | `Reference ->
        ignore
          (Network.run_reference g ~bandwidth:Network.Local
             ~msg_bits:(fun _ -> 1)
             ~init:(fun _ -> ())
             ~round ~max_rounds:60)
    | `Event ->
        ignore
          (Network.run g ~schedule:Network.Event_driven
             ~bandwidth:Network.Local
             ~msg_bits:(fun _ -> 1)
             ~init:(fun _ -> ())
             ~round ~max_rounds:60));
    !count
  in
  let ref_calls = run `Reference in
  let ev_calls = run `Event in
  check "reference steps everyone every round" (50 * 41) ref_calls;
  (* event mode: vertex 0 steps 41 times; the other 49 step in round 1
     and in the halt round *)
  check "event mode steps the frontier" (41 + (49 * 2)) ev_calls

let test_every_round_ignores_wake_after () =
  (* under Every_round the wake_after field must be inert: a request of 5
     does not stop the vertex from being stepped every round *)
  let g = Generators.path 2 in
  let count = ref 0 in
  let round r _ () _ =
    incr count;
    if r > 3 then Network.step () ~halt:true
    else Network.step () ~wake_after:5
  in
  ignore
    (Network.run g ~schedule:Network.Every_round ~bandwidth:Network.Local
       ~msg_bits:(fun _ -> 1)
       ~init:(fun _ -> ())
       ~round ~max_rounds:10);
  check "stepped every round" 8 !count

(* ------------------------------------------------------------------ *)
(* Wake-vs-crash pins                                                  *)
(* ------------------------------------------------------------------ *)

(* The contract under test: a crash cancels the vertex's pending wake;
   only the recovery step re-arms it. Vertex 1 arms a wake for round 11
   in round 1 and re-aims every later step at round 11, halting there;
   vertex 0 halts immediately. The event log records every round in which
   vertex 1 was stepped (only vertex 1 writes, and the step-phase barrier
   orders the writes, so the log is race-free under the sharded loop). *)
let wake_crash_harness ~crashes how =
  let g = Generators.path 2 in
  let log = ref [] in
  let round r (ctx : Network.ctx) () _ =
    if ctx.id = 0 then
      (* stays alive past every outage so the network can wait for the
         crashed vertex's recovery *)
      if r >= 16 then Network.step () ~halt:true
      else Network.step () ~wake_after:(16 - r)
    else begin
      log := r :: !log;
      if r >= 11 then Network.step () ~halt:true
      else if r = 1 then Network.step () ~wake_after:10
      else Network.step () ~wake_after:(11 - r)
    end
  in
  let faults = Faults.make ~crashes ~seed:21 () in
  let run schedule exec =
    log := [];
    let _, st =
      Network.run g ~faults ~schedule ?exec ~codec:Network.int_codec
        ~bandwidth:Network.Local
        ~msg_bits:(fun _ -> 1)
        ~init:(fun _ -> ())
        ~round ~max_rounds:20
    in
    (st, List.rev !log)
  in
  let _, ref_stats =
    Network.run_reference g ~faults ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:20
  in
  let exec =
    match how with
    | `Event -> None
    | `Sharded ->
        Some (Network.Sharded { shards = 2; pool = shard_pool 4 })
  in
  let st, steps = run Network.Event_driven exec in
  Alcotest.check stats "stats match reference" ref_stats st;
  steps

let test_crash_before_wake () =
  (* crash lands before the armed round and the outage covers it: the
     round-11 wake is lost; the vertex next steps at recovery (15) and,
     being past round 11, halts there *)
  let crashes =
    [ { Faults.vertex = 1; at_round = 2; recover_round = Some 15 } ]
  in
  List.iter
    (fun how ->
      Alcotest.(check (list int))
        "stepped at 1 and recovery only" [ 1; 15 ]
        (wake_crash_harness ~crashes how))
    [ `Event; `Sharded ]

let test_recover_before_wake () =
  (* recovery lands before the armed round: the recovery step re-arms the
     round-11 wake, which must fire exactly once *)
  let crashes =
    [ { Faults.vertex = 1; at_round = 2; recover_round = Some 3 } ]
  in
  List.iter
    (fun how ->
      Alcotest.(check (list int))
        "one wake after re-arm" [ 1; 3; 11 ]
        (wake_crash_harness ~crashes how))
    [ `Event; `Sharded ]

let test_crash_recover_crash () =
  (* two outages before the armed round: each crash cancels, each
     recovery re-arms, and the wake still fires exactly once *)
  let crashes =
    [
      { Faults.vertex = 1; at_round = 2; recover_round = Some 4 };
      { Faults.vertex = 1; at_round = 6; recover_round = Some 9 };
    ]
  in
  List.iter
    (fun how ->
      Alcotest.(check (list int))
        "wake survives the crash/recover chain" [ 1; 4; 9; 11 ]
        (wake_crash_harness ~crashes how))
    [ `Event; `Sharded ]

let test_fast_forwarded_wake_traffic () =
  (* the only traffic of the run is sent from a fast-forwarded wake: the
     event loop jumps from round 1 to round 11, and the send landing in
     the post-jump round must set last_traffic_round exactly as the
     reference loop does *)
  let g = Generators.path 2 in
  let round r (ctx : Network.ctx) () inbox =
    if ctx.id = 0 then
      if r >= 11 then Network.step () ~send:[ (1, 7) ] ~halt:true
      else Network.step () ~wake_after:(11 - r)
    else Network.step () ~halt:(inbox <> [])
  in
  let _, ref_stats =
    Network.run_reference g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:20
  in
  let _, ev_stats =
    Network.run g ~schedule:Network.Event_driven ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:20
  in
  let _, sh_stats =
    Network.run g ~schedule:Network.Event_driven
      ~exec:(Network.Sharded { shards = 2; pool = shard_pool 4 })
      ~codec:Network.int_codec ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:20
  in
  check "last_traffic_round" 11 ref_stats.Network.last_traffic_round;
  Alcotest.check stats "event matches" ref_stats ev_stats;
  Alcotest.check stats "sharded matches" ref_stats sh_stats

(* ------------------------------------------------------------------ *)
(* Inbox footprint                                                     *)
(* ------------------------------------------------------------------ *)

(* burst-then-trickle-then-quiescent: round 1 floods the star center
   (growing its flat inbox past the 64-slot shrink threshold), then a
   single leaf trickles one message per round. The high-watermark shrink
   must return the footprint to near-baseline — pinned through the
   net.inbox_*_words meters. *)
let inbox_shrink_harness exec =
  let leaves = 100 in
  let g = Generators.star leaves in
  let round r (ctx : Network.ctx) _ _ =
    if r >= 12 then Network.step 0 ~halt:true
    else if ctx.id = 0 then Network.step 0 ~wake_after:1
    else if r = 1 then Network.step 0 ~send:[ (0, ctx.id) ] ~wake_after:1
    else if ctx.id = 1 then Network.step 0 ~send:[ (0, r) ] ~wake_after:1
    else Network.step 0 ~wake_after:(12 - r)
  in
  Obs.reset ();
  Obs.enable ();
  Obs.Span.with_ "net" (fun () ->
      ignore
        (Network.run g ?exec ~codec:Network.int_codec
           ~schedule:Network.Event_driven ~bandwidth:Network.Local
           ~msg_bits:(fun _ -> 1)
           ~init:(fun _ -> 0)
           ~round ~max_rounds:20));
  let tree = Obs.snapshot_tree () in
  Obs.disable ();
  match Obs.Agg.find_path tree [ "net" ] with
  | None -> Alcotest.fail "no span recorded"
  | Some node ->
      let max_of key =
        match Obs.Agg.SMap.find_opt key node.Obs.Agg.maxes with
        | Some v -> v
        | None -> 0
      in
      (max_of Obs.Meter.k_inbox_peak_words,
       max_of Obs.Meter.k_inbox_final_words)

let test_inbox_shrinks_after_burst () =
  let peak, final = inbox_shrink_harness None in
  (* the burst put >= 100 two-word slots in the center's inbox *)
  checkb "peak reflects the burst" true (peak >= 200);
  checkb "footprint returned to baseline" true (final <= 64);
  let peak, final =
    inbox_shrink_harness
      (Some (Network.Sharded { shards = 4; pool = shard_pool 4 }))
  in
  (* arena slots are three words plus the wide spill *)
  checkb "sharded peak reflects the burst" true (peak >= 300);
  checkb "sharded arena shrank" true (final <= peak / 2)

(* ------------------------------------------------------------------ *)
(* qcheck equivalence properties                                       *)
(* ------------------------------------------------------------------ *)

let graph_gen =
  let open QCheck.Gen in
  oneof
    [
      (int_range 3 30 >>= fun n -> return (Printf.sprintf "path(%d)" n, Generators.path n));
      (int_range 2 5 >>= fun rc ->
       int_range 2 5 >>= fun cc ->
       return (Printf.sprintf "grid(%d,%d)" rc cc, Generators.grid rc cc));
      (int_range 4 30 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       return
         (Printf.sprintf "tree(%d,%d)" n seed, Generators.random_tree n ~seed));
      (int_range 4 30 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       return
         (Printf.sprintf "apollonian(%d,%d)" n seed,
          Generators.random_apollonian n ~seed));
    ]

let fault_gen =
  let open QCheck.Gen in
  graph_gen >>= fun (name, g) ->
  let n = Graph.n g in
  int_range 0 10_000 >>= fun seed ->
  oneofl [ 0.; 0.1; 0.3 ] >>= fun drop ->
  oneofl [ 0.; 0.1 ] >>= fun dup ->
  int_range 0 (n - 1) >>= fun cv ->
  int_range 2 (chaos_budget - 4) >>= fun cr ->
  oneofl [ None; Some 2; Some 6 ] >>= fun rec_delta ->
  bool >>= fun with_crash ->
  bool >>= fun with_outage ->
  let crashes =
    if with_crash then
      [ { Faults.vertex = cv;
          at_round = cr;
          recover_round = Option.map (fun d -> cr + d) rec_delta } ]
    else []
  in
  let outages =
    if with_outage && n >= 2 then
      [ { Faults.u = 0; v = 1; from_round = 2; until_round = 6 } ]
    else []
  in
  let faults =
    Faults.make ~drop_rate:drop ~duplicate_rate:dup ~crashes ~outages ~seed ()
  in
  return
    ( Printf.sprintf "%s seed=%d drop=%.1f dup=%.1f crash=%b outage=%b" name
        seed drop dup with_crash with_outage,
      g, faults )

let graph_arb = QCheck.make ~print:fst graph_gen
let fault_arb = QCheck.make ~print:(fun (name, _, _) -> name) fault_gen

let equiv_fault_free =
  QCheck.Test.make ~name:"event = reference (fault-free)" ~count:60 graph_arb
    (fun (_, g) ->
      let s_ref, st_ref = run_chaos ~how:`Reference g in
      let s_ev, st_ev = run_chaos ~how:`Event g in
      s_ref = s_ev && st_ref = st_ev)

let equiv_every_round =
  QCheck.Test.make ~name:"run Every_round = reference (faulty)" ~count:40
    fault_arb (fun (_, g, faults) ->
      let s_ref, st_ref = run_chaos ~faults ~how:`Reference g in
      let s_er, st_er = run_chaos ~faults ~how:`Every_round g in
      s_ref = s_er && st_ref = st_er)

let equiv_under_faults =
  QCheck.Test.make ~name:"event = reference (fixed fault seed)" ~count:60
    fault_arb (fun (_, g, faults) ->
      let s_ref, st_ref = run_chaos ~faults ~how:`Reference g in
      let s_ev, st_ev = run_chaos ~faults ~how:`Event g in
      s_ref = s_ev && st_ref = st_ev)

let equiv_across_pool_sizes =
  (* scheduling is per-run state: packing event-driven runs into worker
     pools of different sizes must not change any outcome *)
  let pool1 = lazy (Parallel.Pool.create ~jobs:1 ()) in
  let pool4 = lazy (Parallel.Pool.create ~jobs:4 ()) in
  QCheck.Test.make ~name:"event run: jobs 1 = jobs 4" ~count:15 fault_arb
    (fun (_, g, faults) ->
      let task seed =
        let faults =
          Faults.make ~drop_rate:faults.Faults.drop_rate
            ~duplicate_rate:faults.Faults.duplicate_rate
            ~crashes:faults.Faults.crashes ~outages:faults.Faults.outages
            ~seed ()
        in
        run_chaos ~faults ~how:`Event g
      in
      let seeds = List.init 3 (fun i -> Parallel.Pool.derive_seed 77 i) in
      Parallel.Pool.map_list (Lazy.force pool1) task seeds
      = Parallel.Pool.map_list (Lazy.force pool4) task seeds)

(* shard-grid configurations: shard counts around and above the vertex
   counts the graph generator produces, both pool sizes, both codecs *)
let sharded_conf_gen =
  let open QCheck.Gen in
  oneofl [ 1; 2; 3; 5 ] >>= fun shards ->
  oneofl [ 1; 4 ] >>= fun jobs ->
  bool >>= fun packed -> return (shards, jobs, packed)

let sharded_arb =
  QCheck.make
    ~print:(fun ((name, _), (shards, jobs, packed)) ->
      Printf.sprintf "%s shards=%d jobs=%d packed=%b" name shards jobs packed)
    QCheck.Gen.(pair graph_gen sharded_conf_gen)

let sharded_fault_arb =
  QCheck.make
    ~print:(fun ((name, _, _), (shards, jobs, packed)) ->
      Printf.sprintf "%s shards=%d jobs=%d packed=%b" name shards jobs packed)
    QCheck.Gen.(pair fault_gen sharded_conf_gen)

let equiv_sharded_fault_free =
  QCheck.Test.make ~name:"sharded = reference (fault-free)" ~count:40
    sharded_arb (fun ((_, g), (shards, jobs, packed)) ->
      let s_ref, st_ref = run_chaos ~how:`Reference g in
      let s_sh, st_sh =
        run_chaos ~how:(`Sharded (Network.Event_driven, shards, jobs, packed)) g
      in
      s_ref = s_sh && st_ref = st_sh)

let equiv_sharded_under_faults =
  QCheck.Test.make ~name:"sharded = reference (fixed fault seed)" ~count:40
    sharded_fault_arb (fun ((_, g, faults), (shards, jobs, packed)) ->
      let s_ref, st_ref = run_chaos ~faults ~how:`Reference g in
      let s_sh, st_sh =
        run_chaos ~faults
          ~how:(`Sharded (Network.Event_driven, shards, jobs, packed))
          g
      in
      s_ref = s_sh && st_ref = st_sh)

let equiv_sharded_every_round =
  QCheck.Test.make ~name:"sharded Every_round = reference (faulty)" ~count:20
    sharded_fault_arb (fun ((_, g, faults), (shards, jobs, packed)) ->
      let s_ref, st_ref = run_chaos ~faults ~how:`Reference g in
      let s_sh, st_sh =
        run_chaos ~faults
          ~how:(`Sharded (Network.Every_round, shards, jobs, packed))
          g
      in
      s_ref = s_sh && st_ref = st_sh)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "scheduler"
    [
      ( "event mode",
        [
          tc "halting-round sends" test_event_halting_round_sends;
          tc "recover-round empty inbox" test_event_recover_round_empty_inbox;
          tc "halted receiver drop accounting"
            test_event_halted_receiver_drop_accounting;
          tc "wake_after validation" test_wake_after_validation;
          tc "fast-forward accounting" test_event_fast_forward_accounting;
          tc "fast-forward stops at fault events"
            test_event_fast_forward_stops_at_fault_events;
          tc "permanent crash fast-forward"
            test_event_permanent_crash_fast_forward;
          tc "inbox ordering" test_event_inbox_ordering;
          tc "skips sleeping vertices" test_event_skips_sleeping_vertices;
          tc "Every_round ignores wake_after"
            test_every_round_ignores_wake_after;
        ] );
      ( "wake vs crash",
        [
          tc "crash before wake" test_crash_before_wake;
          tc "recover before wake" test_recover_before_wake;
          tc "crash-recover-crash" test_crash_recover_crash;
          tc "fast-forwarded wake traffic" test_fast_forwarded_wake_traffic;
        ] );
      ( "inbox footprint",
        [ tc "shrinks after a burst" test_inbox_shrinks_after_burst ] );
      ( "equivalence",
        [
          qt equiv_fault_free;
          qt equiv_every_round;
          qt equiv_under_faults;
          qt equiv_across_pool_sizes;
        ] );
      ( "sharded equivalence",
        [
          qt equiv_sharded_fault_free;
          qt equiv_sharded_under_faults;
          qt equiv_sharded_every_round;
        ] );
    ]
