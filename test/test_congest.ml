open Sparse_graph
open Congest

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* simple flooding: everyone learns the max id; counts rounds *)
let flood_max g rounds_budget =
  let init (ctx : Network.ctx) = ctx.id in
  let round r (ctx : Network.ctx) best inbox =
    let best = List.fold_left (fun b (_, x) -> max b x) best inbox in
    if r > rounds_budget then { Network.wake_after = None; state = best; send = []; halt = true }
    else
      {
        Network.wake_after = None;
        state = best;
        send = Array.to_list (Array.map (fun w -> (w, best)) ctx.neighbors);
        halt = false;
      }
  in
  Network.run g
    ~bandwidth:(Network.congest_bandwidth (Graph.n g))
    ~msg_bits:(fun _ -> Bits.words (Graph.n g) 1)
    ~init ~round ~max_rounds:(rounds_budget + 1)

let test_flood_path () =
  let g = Generators.path 6 in
  let states, stats = flood_max g 5 in
  Array.iter (fun s -> check "all know max" 5 s) states;
  checkb "completed" true stats.Network.completed;
  check "rounds" 6 stats.Network.rounds

let test_flood_insufficient_rounds () =
  let g = Generators.path 6 in
  let states, _ = flood_max g 2 in
  (* vertex 0 is 5 hops from vertex 5: cannot know it after 2 rounds *)
  checkb "vertex 0 not yet informed" true (states.(0) < 5)

let test_synchronous_delivery () =
  (* messages sent in round r arrive exactly in round r + 1 *)
  let g = Generators.path 2 in
  let log = ref [] in
  let init (ctx : Network.ctx) = ctx.id in
  let round r (ctx : Network.ctx) st inbox =
    List.iter (fun (s, x) -> log := (r, ctx.id, s, x) :: !log) inbox;
    if r >= 3 then { Network.wake_after = None; state = st; send = []; halt = true }
    else
      { Network.wake_after = None; state = st;
        send = (if ctx.id = 0 then [ (1, 100 + r) ] else []);
        halt = false }
  in
  let _ =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init ~round ~max_rounds:5
  in
  let received = List.rev !log in
  Alcotest.(check (list (pair int (pair int (pair int int)))))
    "delivery schedule"
    [ (2, (1, (0, 101))); (3, (1, (0, 102))) ]
    (List.map (fun (r, v, s, x) -> (r, (v, (s, x)))) received)

let test_congestion_enforced () =
  let g = Generators.path 2 in
  let init _ = () in
  let round _ (ctx : Network.ctx) () _ =
    { Network.wake_after = None; state = ();
      send = (if ctx.id = 0 then [ (1, ()) ] else []);
      halt = false }
  in
  let run () =
    ignore
      (Network.run g ~bandwidth:(Network.Congest 8)
         ~msg_bits:(fun () -> 9)
         ~init ~round ~max_rounds:2)
  in
  (match run () with
  | exception Network.Congestion_violation { bits = 9; budget = 8; _ } -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | () -> Alcotest.fail "violation not detected")

let test_congestion_accumulates () =
  (* two messages of 5 bits on one edge in one round exceed an 8-bit budget *)
  let g = Generators.path 2 in
  let init _ = () in
  let round _ (ctx : Network.ctx) () _ =
    { Network.wake_after = None; state = ();
      send = (if ctx.id = 0 then [ (1, ()); (1, ()) ] else []);
      halt = false }
  in
  (match
     Network.run g ~bandwidth:(Network.Congest 8)
       ~msg_bits:(fun () -> 5)
       ~init ~round ~max_rounds:2
   with
  | exception Network.Congestion_violation { bits = 10; _ } -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "violation not detected")

let test_local_mode_unbounded () =
  let g = Generators.path 2 in
  let init _ = () in
  let round r (ctx : Network.ctx) () _ =
    if r > 1 then { Network.wake_after = None; state = (); send = []; halt = true }
    else
      { Network.wake_after = None; state = ();
        send = (if ctx.id = 0 then [ (1, ()) ] else []);
        halt = false }
  in
  let _, stats =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun () -> 1_000_000)
      ~init ~round ~max_rounds:3
  in
  check "big message went through" 1_000_000 stats.Network.max_edge_bits

let test_send_to_non_neighbor_rejected () =
  let g = Generators.path 3 in
  let init _ = () in
  let round _ (ctx : Network.ctx) () _ =
    { Network.wake_after = None; state = ();
      send = (if ctx.id = 0 then [ (2, ()) ] else []);
      halt = false }
  in
  (match
     Network.run g ~bandwidth:Network.Local
       ~msg_bits:(fun () -> 1)
       ~init ~round ~max_rounds:2
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_halted_vertices_drop_messages () =
  let g = Generators.path 2 in
  let got = ref 0 in
  let init _ = () in
  let round r (ctx : Network.ctx) () inbox =
    if ctx.id = 1 then { Network.wake_after = None; state = (); send = []; halt = true }
    else begin
      got := !got + List.length inbox;
      if r >= 3 then { Network.wake_after = None; state = (); send = []; halt = true }
      else { Network.wake_after = None; state = (); send = [ (1, ()) ]; halt = false }
    end
  in
  let _, stats =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun () -> 1)
      ~init ~round ~max_rounds:5
  in
  check "vertex 0 received nothing" 0 !got;
  checkb "completed" true stats.Network.completed

(* Regression: the seed simulator silently discarded messages addressed
   to a vertex that halted in the same round — they were counted as sent
   but never as lost, so no accounting identity held. They now land in
   [stats.dropped] and [delivered + dropped = messages] is an invariant. *)
let test_halted_destination_drops_counted () =
  let g = Generators.path 2 in
  let init _ = () in
  let round r (ctx : Network.ctx) () _ =
    if ctx.id = 1 then { Network.wake_after = None; state = (); send = []; halt = true }
    else
      { Network.wake_after = None; state = ();
        send = [ (1, ()) ];
        halt = r >= 3 }
  in
  let _, stats =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun () -> 1)
      ~init ~round ~max_rounds:5
  in
  (* vertex 1 halts in round 1; all three sends (including the round-1
     send, in flight while the destination halted) are charged and lost *)
  check "messages charged" 3 stats.Network.messages;
  check "all counted as dropped" 3 stats.Network.dropped;
  check "nothing delivered" 0 (Network.delivered stats);
  check "invariant" stats.Network.messages
    (Network.delivered stats + stats.Network.dropped);
  check "no fault layer involved" 0 stats.Network.duplicated;
  check "no crashes" 0 stats.Network.crashed_rounds

let test_stats_accounting () =
  let g = Generators.cycle 4 in
  let init _ = () in
  let round r (ctx : Network.ctx) () _ =
    if r > 2 then { Network.wake_after = None; state = (); send = []; halt = true }
    else
      { Network.wake_after = None; state = ();
        send = Array.to_list (Array.map (fun w -> (w, ())) ctx.neighbors);
        halt = false }
  in
  let _, stats =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun () -> 3)
      ~init ~round ~max_rounds:4
  in
  (* 4 vertices x 2 neighbors x 2 rounds *)
  check "messages" 16 stats.Network.messages;
  check "bits" 48 stats.Network.total_bits;
  check "max edge bits" 3 stats.Network.max_edge_bits;
  check "last traffic" 2 stats.Network.last_traffic_round

let test_bandwidth_helper () =
  (match Network.congest_bandwidth 1024 with
  | Network.Congest b -> check "8 * log2 1024" 80 b
  | Network.Local -> Alcotest.fail "expected Congest");
  (match Network.congest_bandwidth ~c:1 2 with
  | Network.Congest b -> check "minimum one word" 1 b
  | Network.Local -> Alcotest.fail "expected Congest")

(* Regression: the budget at exact powers of two must be c * log2 n, with
   no float rounding drift. The FP formula ceil(log n / log 2) overshoots
   at n = 2^29 (log2 returns 29.000000000000004), granting one extra word
   of bandwidth per edge. *)
let test_bandwidth_powers_of_two () =
  let expect n bits =
    match Network.congest_bandwidth ~c:8 n with
    | Network.Congest b ->
        check (Printf.sprintf "budget at n = %d" n) (8 * bits) b
    | Network.Local -> Alcotest.fail "expected Congest"
  in
  expect 2 1;
  expect 1024 10;
  expect 4096 12;
  expect 65536 16;
  expect (1 lsl 29) 29;
  (* off-by-one neighborhoods of a power of two *)
  expect 1023 10;
  expect 1025 11;
  expect ((1 lsl 29) - 1) 29;
  expect ((1 lsl 29) + 1) 30

(* Regression: a vertex's sends in its halting round must still be
   delivered. The seed simulator assigned [outgoing] only on the
   non-halting branch, silently discarding the final message; a two-node
   protocol in which node 0 announces a value and halts immediately would
   leave node 1 uninformed forever. *)
let test_halting_round_sends_delivered () =
  let g = Generators.path 2 in
  let init _ = -1 in
  let round r (ctx : Network.ctx) st inbox =
    if ctx.id = 0 then
      (* announce 42 and halt in the same round *)
      { Network.wake_after = None; state = 42; send = [ (1, 42) ]; halt = true }
    else
      let st = List.fold_left (fun acc (_, x) -> max acc x) st inbox in
      if st >= 0 || r >= 3 then { Network.wake_after = None; state = st; send = []; halt = true }
      else { Network.wake_after = None; state = st; send = []; halt = false }
  in
  let states, stats =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 6)
      ~init ~round ~max_rounds:5
  in
  check "node 1 heard the announcement" 42 states.(1);
  checkb "completed" true stats.Network.completed;
  (* the halting-round traffic is still accounted *)
  check "message counted" 1 stats.Network.messages

let test_bits_helper () =
  check "id bits of 1024" 10 (Bits.id_bits 1024);
  check "id bits of 1025" 11 (Bits.id_bits 1025);
  check "id bits small" 1 (Bits.id_bits 1);
  check "words" 30 (Bits.words 1024 3)

let test_empty_graph_run () =
  let _, stats =
    Network.run (Graph.empty 3) ~bandwidth:Network.Local
      ~msg_bits:(fun () -> 1)
      ~init:(fun _ -> ())
      ~round:(fun _ _ () _ -> { Network.wake_after = None; state = (); send = []; halt = true })
      ~max_rounds:3
  in
  checkb "completed" true stats.Network.completed;
  check "one round" 1 stats.Network.rounds

(* ------------------------------------------------------------------ *)
(* Hand-computed accounting, asserted directly and via the obs meter    *)
(* ------------------------------------------------------------------ *)

(* run [f] inside an enabled, freshly reset Obs span and return its
   result together with the span's aggregate node *)
let with_meter f =
  Obs.reset ();
  Obs.enable ();
  let r = Obs.Span.with_ "net" f in
  let tree = Obs.snapshot_tree () in
  Obs.disable ();
  match Obs.Agg.find_path tree [ "net" ] with
  | Some node -> (r, node)
  | None -> Alcotest.fail "meter recorded no span"

let metered (node : Obs.Agg.node) key =
  match Obs.Agg.SMap.find_opt key node.Obs.Agg.sums with
  | Some v -> v
  | None -> 0

(* the meter must agree with the directly returned stats, field by field *)
let assert_meter_agrees (node : Obs.Agg.node) (stats : Network.stats) =
  check "meter: one run" 1 (metered node Obs.Meter.k_runs);
  check "meter: rounds" stats.Network.rounds (metered node Obs.Meter.k_rounds);
  check "meter: messages" stats.Network.messages
    (metered node Obs.Meter.k_messages);
  check "meter: bits" stats.Network.total_bits (metered node Obs.Meter.k_bits);
  check "meter: max edge bits" stats.Network.max_edge_bits
    (match Obs.Agg.SMap.find_opt Obs.Meter.k_max_edge_bits node.Obs.Agg.maxes with
    | Some v -> v
    | None -> 0)

let test_broadcast_accounting_hand_computed () =
  (* path 0-1-2-3, broadcast from vertex 0. A vertex that is informed at
     the start of a round forwards to all neighbors and halts; its final
     sends still go out (the PR-1 halting-round semantics). By hand:
       round 1: 0 sends to {1}            -> 1 message
       round 2: 1 sends to {0,2}          -> 2 messages (0 halted: dropped)
       round 3: 2 sends to {1,3}          -> 2 messages
       round 4: 3 sends to {2}, all halted -> 1 message
     rounds 4, messages 6, each 5 bits, max one message per directed
     edge per round, last traffic in round 4. *)
  let g = Generators.path 4 in
  let msg_bits = 5 in
  let init (ctx : Network.ctx) = ctx.id = 0 in
  let round _ (ctx : Network.ctx) informed inbox =
    let informed = informed || inbox <> [] in
    if informed then
      {
        Network.wake_after = None;
        state = true;
        send = Array.to_list (Array.map (fun w -> (w, ())) ctx.neighbors);
        halt = true;
      }
    else { Network.wake_after = None; state = false; send = []; halt = false }
  in
  let (states, stats), node =
    with_meter (fun () ->
        Network.run g ~bandwidth:(Network.Congest msg_bits)
          ~msg_bits:(fun () -> msg_bits)
          ~init ~round ~max_rounds:10)
  in
  Array.iter (fun s -> checkb "everyone informed" true s) states;
  check "rounds" 4 stats.Network.rounds;
  check "messages" 6 stats.Network.messages;
  check "total bits" (6 * msg_bits) stats.Network.total_bits;
  check "max edge bits" msg_bits stats.Network.max_edge_bits;
  checkb "completed" true stats.Network.completed;
  check "last traffic round" 4 stats.Network.last_traffic_round;
  assert_meter_agrees node stats

let test_halting_round_accounting () =
  (* vertex 0 sends in the same round it halts; the message is delivered
     to vertex 1 in round 2 and must be counted exactly once *)
  let g = Generators.path 2 in
  let init _ = false in
  let round _ (ctx : Network.ctx) got inbox =
    if ctx.id = 0 then
      { Network.wake_after = None; state = got; send = [ (1, 99) ]; halt = true }
    else
      let got = got || List.exists (fun (_, x) -> x = 99) inbox in
      { Network.wake_after = None; state = got; send = []; halt = got }
  in
  let (states, stats), node =
    with_meter (fun () ->
        Network.run g ~bandwidth:Network.Local
          ~msg_bits:(fun _ -> 7)
          ~init ~round ~max_rounds:5)
  in
  checkb "final send delivered" true states.(1);
  check "rounds" 2 stats.Network.rounds;
  check "one message" 1 stats.Network.messages;
  check "bits" 7 stats.Network.total_bits;
  check "max edge bits" 7 stats.Network.max_edge_bits;
  checkb "completed" true stats.Network.completed;
  check "last traffic round" 1 stats.Network.last_traffic_round;
  assert_meter_agrees node stats

let test_meter_silent_when_disabled () =
  Obs.reset ();
  Obs.disable ();
  let g = Generators.path 2 in
  let _ =
    Network.run g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round:(fun _ _ () _ -> { Network.wake_after = None; state = (); send = []; halt = true })
      ~max_rounds:2
  in
  let tree = Obs.snapshot_tree () in
  checkb "nothing recorded" true (Obs.Agg.SMap.is_empty tree.Obs.Agg.sums)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "congest"
    [
      ( "network",
        [
          tc "flooding reaches everyone" test_flood_path;
          tc "insufficient rounds" test_flood_insufficient_rounds;
          tc "synchronous delivery schedule" test_synchronous_delivery;
          tc "congestion enforced" test_congestion_enforced;
          tc "congestion accumulates per edge" test_congestion_accumulates;
          tc "LOCAL mode unbounded" test_local_mode_unbounded;
          tc "non-neighbor send rejected" test_send_to_non_neighbor_rejected;
          tc "halted vertices drop input" test_halted_vertices_drop_messages;
          tc "halted-destination drops counted"
            test_halted_destination_drops_counted;
          tc "statistics accounting" test_stats_accounting;
          tc "bandwidth helper" test_bandwidth_helper;
          tc "bandwidth at powers of two" test_bandwidth_powers_of_two;
          tc "halting-round sends delivered" test_halting_round_sends_delivered;
          tc "bit accounting helper" test_bits_helper;
          tc "degenerate empty graph" test_empty_graph_run;
        ] );
      ( "accounting",
        [
          tc "hand-computed broadcast, stats and meter"
            test_broadcast_accounting_hand_computed;
          tc "halting-round sends counted once" test_halting_round_accounting;
          tc "meter silent when disabled" test_meter_silent_when_disabled;
        ] );
    ]
