open Sparse_graph
open Spectral

let checkb = Alcotest.(check bool)
let checkf msg ~eps expected got =
  Alcotest.(check (float eps)) msg expected got

(* ------------------------------------------------------------------ *)
(* Conductance                                                         *)
(* ------------------------------------------------------------------ *)

let test_volume_boundary () =
  let g = Generators.cycle 6 in
  let mask = Conductance.mask_of_list 6 [ 0; 1; 2 ] in
  Alcotest.(check int) "volume" 6 (Conductance.volume g mask);
  Alcotest.(check int) "boundary" 2 (Conductance.boundary g mask);
  checkf "conductance" ~eps:1e-9 (2. /. 6.) (Conductance.of_cut g mask)

let test_trivial_cut_zero () =
  let g = Generators.cycle 4 in
  checkf "empty" ~eps:1e-9 0. (Conductance.of_cut g (Array.make 4 false));
  checkf "full" ~eps:1e-9 0. (Conductance.of_cut g (Array.make 4 true))

let test_exact_complete () =
  (* K4: best cut is 2 vs 2 vertices: boundary 4, min vol 6 -> 2/3 *)
  checkf "Phi(K4)" ~eps:1e-9 (2. /. 3.) (Conductance.exact (Generators.complete 4))

let test_exact_cycle () =
  (* C8: best cut is an arc of 4: boundary 2, vol 8 -> 1/4 *)
  checkf "Phi(C8)" ~eps:1e-9 0.25 (Conductance.exact (Generators.cycle 8))

let test_exact_path () =
  (* P6: cut in the middle: boundary 1, min vol 5 -> 1/5 *)
  checkf "Phi(P6)" ~eps:1e-9 (1. /. 5.) (Conductance.exact (Generators.path 6))

let test_exact_barbell_small () =
  let g = Generators.barbell 4 1 in
  (* bridge cut: boundary 1, each side vol = 2*C(4,2) + 1 endpoints ... just
     assert it is far below the clique conductance *)
  let phi = Conductance.exact g in
  checkb "barbell has low conductance" true (phi < 0.1)

let test_exact_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  checkf "disconnected Phi = 0" ~eps:1e-9 0. (Conductance.exact g)

let test_exact_limit () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Conductance.exact: graph too large for enumeration")
    (fun () -> ignore (Conductance.exact (Generators.cycle 30)))

let test_sparsity () =
  let g = Generators.cycle 6 in
  let mask = Conductance.mask_of_list 6 [ 0; 1 ] in
  checkf "sparsity" ~eps:1e-9 1. (Conductance.sparsity_of_cut g mask)

(* ------------------------------------------------------------------ *)
(* Random walks                                                        *)
(* ------------------------------------------------------------------ *)

let test_stationary_sums_to_one () =
  let g = Generators.random_apollonian 30 ~seed:1 in
  let pi = Random_walk.stationary g in
  checkf "sum pi = 1" ~eps:1e-9 1. (Array.fold_left ( +. ) 0. pi)

let test_step_preserves_mass () =
  let g = Generators.grid 4 4 in
  let p = Random_walk.distribution g 0 7 in
  checkf "mass preserved" ~eps:1e-9 1. (Array.fold_left ( +. ) 0. p)

let test_stationary_is_fixed_point () =
  let g = Generators.random_apollonian 20 ~seed:2 in
  let pi = Random_walk.stationary g in
  let pi' = Random_walk.step g pi in
  Array.iteri (fun v x -> checkf "fixed point" ~eps:1e-9 pi.(v) x) pi'

let test_walk_converges_complete () =
  let g = Generators.complete 8 in
  checkb "K8 mixes fast" true
    (match Random_walk.mixing_time g ~max_t:100 with
    | Some t -> t <= 30
    | None -> false)

let test_mixing_monotone_in_conductance () =
  (* expander-ish (complete) mixes faster than a cycle of the same size *)
  let tk = Random_walk.mixing_time (Generators.complete 12) ~max_t:2000 in
  let tc = Random_walk.mixing_time (Generators.cycle 12) ~max_t:2000 in
  match (tk, tc) with
  | Some a, Some b -> checkb "complete mixes faster" true (a < b)
  | _ -> Alcotest.fail "walks did not mix within bound"

let test_mixing_unmixed_none () =
  (* disconnected graph never mixes *)
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  checkb "never mixes" true (Random_walk.mixing_time g ~max_t:50 = None)

(* Regression: the mixing criterion |p(u) - pi(u)| <= pi(u)/n has a zero
   threshold at degree-0 vertices, so any graph with an isolated vertex
   reported "never mixes". The check is now restricted to the stationary
   support, and mixing_time skips isolated start vertices (the walk from
   one never moves). *)
let test_mixing_ignores_isolated_vertices () =
  (* one edge plus an isolated vertex: the walk on the edge component is
     already stationary after one step *)
  let g = Graph.of_edges 3 [ (0, 1) ] in
  checkb "is_mixed on the support" true
    (Random_walk.is_mixed g (Random_walk.distribution g 0 1));
  (match Random_walk.mixing_time g ~max_t:10 with
  | Some t -> Alcotest.(check int) "mixes in one step" 1 t
  | None -> Alcotest.fail "graph with isolated vertex reported as unmixed");
  (* the isolated start is skipped, not treated as mixing trivially *)
  checkb "mixing_time_from isolated start never mixes" true
    (Random_walk.mixing_time_from g 2 ~max_t:10 = None)

let test_sample_walk_valid () =
  let g = Generators.grid 5 5 in
  let rng = Random.State.make [| 7 |] in
  let visits = Random_walk.sample_walk g ~start:12 ~steps:50 ~rng in
  Alcotest.(check int) "length" 51 (Array.length visits);
  Alcotest.(check int) "start" 12 visits.(0);
  for i = 1 to 50 do
    checkb "moves along edges or stays" true
      (visits.(i) = visits.(i - 1) || Graph.mem_edge g visits.(i) visits.(i - 1))
  done

(* ------------------------------------------------------------------ *)
(* Sweep cuts                                                          *)
(* ------------------------------------------------------------------ *)

let test_fiedler_orthogonal () =
  let g = Generators.grid 4 4 in
  let embedding, lambda2 = Sweep_cut.fiedler g ~iters:300 ~seed:3 in
  (* embedding is D^{-1/2} x with x orthogonal to d^{1/2}: so
     sum_v deg(v) * embedding(v) = 0 *)
  let s = ref 0. in
  Array.iteri
    (fun v e -> s := !s +. (float_of_int (Graph.degree g v) *. e))
    embedding;
  checkf "degree-weighted mean zero" ~eps:1e-6 0. !s;
  checkb "lambda2 in (0, 2]" true (lambda2 > 0. && lambda2 <= 2.)

let test_sweep_finds_barbell_bridge () =
  let g = Generators.barbell 8 2 in
  let cut = Sweep_cut.best_cut g ~iters:400 ~seed:4 in
  (* the bridge cut has conductance ~ 1 / (2 * C(8,2) + 1); sweep should get
     within a factor of ~2 of the optimum *)
  checkb "found a low cut" true (cut.conductance < 0.05)

let test_sweep_on_disconnected_graph () =
  let g = Graph_ops.disjoint_union (Generators.complete 5) (Generators.complete 5) in
  let cut = Sweep_cut.best_cut g ~iters:300 ~seed:5 in
  checkf "zero cut found" ~eps:1e-9 0. cut.conductance

let test_sweep_vs_exact_cheeger () =
  (* on small graphs: exact Phi <= sweep conductance (sweep is a real cut) *)
  List.iter
    (fun (name, g) ->
      let phi = Conductance.exact g in
      let cut = Sweep_cut.best_cut g ~iters:400 ~seed:6 in
      checkb (name ^ ": sweep upper-bounds Phi") true
        (cut.conductance >= phi -. 1e-9))
    [
      ("C10", Generators.cycle 10);
      ("P9", Generators.path 9);
      ("K7", Generators.complete 7);
      ("grid3x4", Generators.grid 3 4);
      ("K33", Generators.complete_bipartite 3 3);
    ]

let test_sweep_near_optimal_on_cycle () =
  let g = Generators.cycle 16 in
  let cut = Sweep_cut.best_cut g ~iters:600 ~seed:7 in
  (* optimal is 2/16 = 0.125; spectral sweep on a cycle is optimal *)
  checkb "near optimal" true (cut.conductance <= 0.2)

let test_certified_lower_bound () =
  let g = Generators.complete 8 in
  let cut = Sweep_cut.best_cut g ~iters:400 ~seed:8 in
  let lb = Sweep_cut.certified_lower_bound cut in
  let phi = Conductance.exact g in
  checkb "lower bound below true Phi (converged)" true (lb <= phi +. 0.05)

(* Regression: Array.sort is unstable, so ties between equal embedding
   values made the returned cut depend on sort internals. Ties now break
   by vertex id; these cuts are pinned exactly. *)
let test_sweep_tie_break_by_vertex_id () =
  (* constant embedding: the sweep order is decided entirely by the
     tie-break, so the best prefix is the first three ids *)
  let g = Generators.cycle 6 in
  let cut = Sweep_cut.sweep g (Array.make 6 0.) in
  Alcotest.(check (array bool))
    "constant embedding cuts the lowest ids"
    [| true; true; true; false; false; false |]
    cut.side;
  checkf "arc conductance" ~eps:1e-9 (2. /. 6.) cut.conductance;
  (* two-level embedding with ties inside each level: among the equally
     good prefixes the id order makes {1} the deterministic winner *)
  let g4 = Generators.cycle 4 in
  let cut4 = Sweep_cut.sweep g4 [| 1.; 0.; 1.; 0. |] in
  Alcotest.(check (array bool))
    "equal values sweep in id order"
    [| false; true; false; false |]
    cut4.side

(* Regression: lambda2 used to be a NaN placeholder on cuts that came
   from non-spectral sweep orders (BFS, tree, PPR, plain sweep), and the
   NaN leaked into certified lower bounds and reports. The field is now a
   [float option]: [Some] only when a converged spectral embedding backs
   the estimate. *)
let test_lambda2_only_from_spectral_embeddings () =
  let g = Generators.grid 4 4 in
  (match (Sweep_cut.best_cut g ~iters:300 ~seed:12).lambda2 with
  | Some l -> checkb "spectral cut reports its eigenvalue" true (l > 0. && l <= 2.)
  | None -> Alcotest.fail "spectral cut must carry lambda2");
  checkb "plain sweep has none" true
    ((Sweep_cut.sweep g (Array.init 16 float_of_int)).lambda2 = None);
  checkb "bfs sweep has none" true ((Sweep_cut.bfs_sweep g).lambda2 = None);
  checkb "tree cut has none" true
    ((Sweep_cut.tree_cut (Generators.random_tree 20 ~seed:13)).lambda2 = None);
  let chain = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:71 in
  checkb "local PPR cut has none" true
    ((Local_cluster.find chain ~seed_vertex:30 ~target_volume:70).lambda2 = None)

let test_lambda2_lower_bound_branches () =
  let mk lambda2 =
    { Sweep_cut.side = [| true; false |]; conductance = 0.5; lambda2 }
  in
  checkf "None falls back to c^2/4" ~eps:1e-9 0.0625
    (Sweep_cut.certified_lower_bound (mk None));
  checkf "Some uses max(l/2, c^2/4)" ~eps:1e-9 0.2
    (Sweep_cut.certified_lower_bound (mk (Some 0.4)));
  checkf "small lambda2 loses to the sweep bound" ~eps:1e-9 0.0625
    (Sweep_cut.certified_lower_bound (mk (Some 0.01)));
  (* no producer can leak a non-finite bound *)
  let g = Generators.barbell 6 1 in
  List.iter
    (fun (name, cut) ->
      checkb (name ^ " bound is finite") true
        (Float.is_finite (Sweep_cut.certified_lower_bound cut)))
    [
      ("bfs", Sweep_cut.bfs_sweep g);
      ("tree", Sweep_cut.tree_cut g);
      ("spectral", Sweep_cut.best_cut g ~iters:200 ~seed:14);
      ("combined", Sweep_cut.combined_cut g ~iters:200 ~seed:14);
    ]

let test_bfs_sweep_path () =
  (* BFS sweep finds the middle cut of a path exactly *)
  let g = Generators.path 20 in
  let cut = Sweep_cut.bfs_sweep g in
  checkf "optimal path cut" ~eps:1e-9 (Conductance.exact (Generators.path 20))
    (Conductance.exact (Generators.path 20));
  checkb "near optimal" true (cut.conductance <= 2. /. 19.)

let test_tree_cut_exact_on_trees () =
  (* on a tree the optimum cut is a single edge; tree_cut finds one *)
  for seed = 0 to 4 do
    let g = Generators.random_tree 40 ~seed in
    let cut = Sweep_cut.tree_cut g in
    let boundary = Conductance.boundary g cut.side in
    Alcotest.(check int) "single edge boundary" 1 boundary;
    checkf "conductance consistent" ~eps:1e-9
      (Conductance.of_cut g cut.side)
      cut.conductance
  done

let test_tree_cut_with_extra_edges () =
  let g = Generators.add_random_edges (Generators.random_tree 30 ~seed:41) 8 ~seed:41 in
  let cut = Sweep_cut.tree_cut g in
  checkf "reported value matches mask" ~eps:1e-9
    (Conductance.of_cut g cut.side)
    cut.conductance

let test_combined_cut_dominates () =
  (* combined picks the min of its candidates *)
  List.iter
    (fun (name, g) ->
      let c = Sweep_cut.combined_cut g ~iters:150 ~seed:5 in
      let s = Sweep_cut.best_cut g ~iters:150 ~seed:5 in
      let b = Sweep_cut.bfs_sweep g in
      checkb (name ^ " combined <= spectral") true
        (c.conductance <= s.conductance +. 1e-9);
      checkb (name ^ " combined <= bfs") true
        (c.conductance <= b.conductance +. 1e-9))
    [
      ("path", Generators.path 40);
      ("tree", Generators.random_tree 50 ~seed:42);
      ("grid", Generators.grid 7 7);
      ("barbell", Generators.barbell 8 2);
    ]

(* ------------------------------------------------------------------ *)
(* Local clustering (PPR nibble)                                       *)
(* ------------------------------------------------------------------ *)

let test_ppr_mass_bounds () =
  let g = Generators.grid 8 8 in
  let v = Local_cluster.ppr g ~seed_vertex:0 ~alpha:0.1 ~eps:1e-4 in
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0. v in
  checkb "positive mass" true (total > 0.);
  checkb "mass at most 1" true (total <= 1. +. 1e-9);
  checkb "seed has mass" true (List.mem_assoc 0 v)

let test_ppr_locality () =
  (* on a blob chain, PPR from inside a blob stays concentrated there *)
  let g = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:70 in
  let v = Local_cluster.ppr g ~seed_vertex:30 ~alpha:0.2 ~eps:1e-4 in
  let inside, outside =
    List.fold_left
      (fun (i, o) (u, m) -> if u / 12 = 2 then (i +. m, o) else (i, o +. m))
      (0., 0.) v
  in
  checkb "concentrated in the seed blob" true (inside > 4. *. outside)

let test_ppr_pairs_vertex_sorted () =
  (* regression: the sparse PPR vector is accumulated in a Hashtbl; the
     pairs must leave in ascending vertex order, not hash order *)
  let g = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:72 in
  let v = Local_cluster.ppr g ~seed_vertex:17 ~alpha:0.15 ~eps:1e-4 in
  let rec ascending = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  checkb "nonempty" true (v <> []);
  checkb "strictly ascending vertices" true (ascending v)

let test_local_cluster_finds_blob () =
  let g = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:71 in
  let cut = Local_cluster.find g ~seed_vertex:30 ~target_volume:70 in
  (* blob boundaries are bridges: the local cut should be very sparse *)
  checkb
    (Printf.sprintf "sparse local cut %.4f" cut.conductance)
    true
    (cut.conductance <= 0.05);
  checkf "cut value consistent" ~eps:1e-9
    (Conductance.of_cut g cut.side)
    cut.conductance

let test_local_sweep_cut_tie_break () =
  (* all support vertices have equal mass/degree: the sweep order is
     decided entirely by the ascending-id tie-break, pinning the cut to
     the contiguous low-id arc rather than an arbitrary tied permutation *)
  let g = Generators.cycle 8 in
  let vector = [ (5, 0.25); (2, 0.25); (0, 0.25); (1, 0.25) ] in
  let cut = Local_cluster.sweep_cut g vector in
  Alcotest.(check (array bool))
    "tied masses sweep in id order"
    [| true; true; true; false; false; false; false; false |]
    cut.side;
  checkf "arc conductance" ~eps:1e-9 (1. /. 3.) cut.conductance

let test_ppr_validation () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Local_cluster.ppr: need 0 < alpha < 1") (fun () ->
      ignore (Local_cluster.ppr g ~seed_vertex:0 ~alpha:1.5 ~eps:0.1))

(* ------------------------------------------------------------------ *)
(* Expander decomposition                                              *)
(* ------------------------------------------------------------------ *)

let check_decomposition ?(params = Expander_decomposition.default_params) g eps =
  let d = Expander_decomposition.decompose ~params g ~epsilon:eps in
  (* labels cover 0..k-1 *)
  Array.iter
    (fun l -> checkb "label in range" true (l >= 0 && l < d.k))
    d.labels;
  let inter_ok, worst = Expander_decomposition.verify ~params g d in
  checkb "inter-cluster fraction within epsilon" true inter_ok;
  (* every accepted cluster's measured conductance should be >= tau (sweep
     value it was accepted at) up to re-estimation noise; we check the
     certified target phi *)
  checkb
    (Printf.sprintf "cluster conductance %.4f >= phi %.4f" worst d.phi)
    true
    (worst >= d.phi -. 1e-9);
  d

let test_decompose_grid () =
  ignore (check_decomposition (Generators.grid 8 8) 0.3)

let test_decompose_apollonian () =
  ignore (check_decomposition (Generators.random_apollonian 150 ~seed:9) 0.25)

let test_decompose_tree () =
  ignore (check_decomposition (Generators.random_tree 100 ~seed:10) 0.3)

let test_decompose_barbell_splits_bridge () =
  let g = Generators.barbell 10 2 in
  let d = Expander_decomposition.decompose g ~epsilon:0.2 in
  (* the two cliques must end in different clusters *)
  checkb "cliques separated" true (d.labels.(0) <> d.labels.(Graph.n g - 1))

let test_decompose_expander_stays_whole () =
  (* K16 is an excellent expander: no cut should happen at small epsilon *)
  let g = Generators.complete 16 in
  let d = Expander_decomposition.decompose g ~epsilon:0.3 in
  Alcotest.(check int) "one cluster" 1 d.k

let test_decompose_disconnected () =
  let g =
    Graph_ops.disjoint_union (Generators.cycle 8) (Generators.complete 5)
  in
  let d = check_decomposition g 0.3 in
  checkb "at least two clusters" true (d.k >= 2);
  (* no inter-cluster edge can exist between components *)
  Alcotest.(check int) "no phantom inter edges counted against epsilon" 0
    (List.length
       (List.filter
          (fun e ->
            let u, v = Graph.endpoints g e in
            (u < 8) <> (v < 8))
          d.inter_edges))

let test_decompose_epsilon_monotone () =
  (* smaller epsilon -> at most as many inter-cluster edges allowed;
     verify both settings satisfy their own budget *)
  let g = Generators.random_apollonian 120 ~seed:11 in
  List.iter
    (fun eps -> ignore (check_decomposition g eps))
    [ 0.5; 0.3; 0.15 ]

let test_decompose_rejects_bad_epsilon () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "eps = 0"
    (Invalid_argument "Expander_decomposition.decompose: need 0 < epsilon < 1")
    (fun () -> ignore (Expander_decomposition.decompose g ~epsilon:0.))

let test_singleton_and_empty () =
  let d = Expander_decomposition.decompose (Graph.empty 5) ~epsilon:0.5 in
  Alcotest.(check int) "five singleton clusters" 5 d.k;
  let d1 = Expander_decomposition.decompose (Graph.empty 1) ~epsilon:0.5 in
  Alcotest.(check int) "one cluster" 1 d1.k

let test_bfs_ball_baseline () =
  let g = Generators.grid 6 6 in
  let d = Expander_decomposition.bfs_ball_baseline g ~radius:2 in
  Array.iter (fun l -> checkb "labelled" true (l >= 0 && l < d.k)) d.labels;
  checkb "multiple clusters" true (d.k >= 2)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_connected_graph =
  (* random connected graph: random tree plus extra random edges *)
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 4 40) (int_range 0 1000) (int_range 0 20))

let build_connected (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_walk_mass =
  QCheck.Test.make ~name:"lazy walk preserves probability mass" ~count:100
    arb_connected_graph (fun input ->
      let g = build_connected input in
      let p = Random_walk.distribution g 0 5 in
      abs_float (Array.fold_left ( +. ) 0. p -. 1.) < 1e-9)

let prop_sweep_is_real_cut =
  QCheck.Test.make ~name:"sweep conductance equals its own cut's conductance"
    ~count:60 arb_connected_graph (fun input ->
      let g = build_connected input in
      let cut = Sweep_cut.best_cut g ~iters:150 ~seed:1 in
      let recomputed = Conductance.of_cut g cut.side in
      abs_float (recomputed -. cut.conductance) < 1e-9)

let prop_decomposition_budget =
  QCheck.Test.make ~name:"decomposition respects the epsilon edge budget"
    ~count:60
    QCheck.(pair arb_connected_graph (int_range 1 3))
    (fun (input, e) ->
      let g = build_connected input in
      let epsilon = float_of_int e /. 4. in
      let d = Expander_decomposition.decompose g ~epsilon in
      float_of_int (List.length d.inter_edges)
      <= (epsilon *. float_of_int (Graph.m g)) +. 1e-9)

let prop_decomposition_covers =
  QCheck.Test.make ~name:"decomposition labels partition the vertex set"
    ~count:60 arb_connected_graph (fun input ->
      let g = build_connected input in
      let d = Expander_decomposition.decompose g ~epsilon:0.3 in
      Array.for_all (fun l -> l >= 0 && l < d.k) d.labels)

let prop_exact_phi_below_any_cut =
  QCheck.Test.make ~name:"exact Phi lower-bounds random cuts" ~count:100
    QCheck.(pair arb_connected_graph (list (int_bound 39)))
    (fun (input, vs) ->
      let n, _, _ = input in
      let g = build_connected input in
      if n > 12 then true
      else begin
        let phi = Conductance.exact g in
        let mask = Conductance.mask_of_list n (List.filter (fun v -> v < n) vs) in
        let c = Conductance.of_cut g mask in
        c = 0. || phi <= c +. 1e-9
      end)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_walk_mass;
      prop_sweep_is_real_cut;
      prop_decomposition_budget;
      prop_decomposition_covers;
      prop_exact_phi_below_any_cut;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "spectral"
    [
      ( "conductance",
        [
          tc "volume and boundary" test_volume_boundary;
          tc "trivial cuts are zero" test_trivial_cut_zero;
          tc "exact Phi of K4" test_exact_complete;
          tc "exact Phi of C8" test_exact_cycle;
          tc "exact Phi of P6" test_exact_path;
          tc "barbell low conductance" test_exact_barbell_small;
          tc "disconnected graph" test_exact_disconnected;
          tc "enumeration size guard" test_exact_limit;
          tc "sparsity" test_sparsity;
        ] );
      ( "random_walk",
        [
          tc "stationary sums to one" test_stationary_sums_to_one;
          tc "step preserves mass" test_step_preserves_mass;
          tc "stationary is fixed point" test_stationary_is_fixed_point;
          tc "complete graph mixes fast" test_walk_converges_complete;
          tc "mixing reflects conductance" test_mixing_monotone_in_conductance;
          tc "disconnected never mixes" test_mixing_unmixed_none;
          tc "isolated vertices excluded from mixing"
            test_mixing_ignores_isolated_vertices;
          tc "sampled walk follows edges" test_sample_walk_valid;
        ] );
      ( "sweep_cut",
        [
          tc "fiedler orthogonality" test_fiedler_orthogonal;
          tc "finds barbell bridge" test_sweep_finds_barbell_bridge;
          tc "zero cut on disconnected" test_sweep_on_disconnected_graph;
          tc "sweep upper-bounds exact Phi" test_sweep_vs_exact_cheeger;
          tc "near-optimal on cycle" test_sweep_near_optimal_on_cycle;
          tc "certified lower bound sane" test_certified_lower_bound;
          tc "tie-break by vertex id" test_sweep_tie_break_by_vertex_id;
          tc "lambda2 only from spectral embeddings"
            test_lambda2_only_from_spectral_embeddings;
          tc "lambda2 lower-bound branches" test_lambda2_lower_bound_branches;
          tc "bfs sweep on path" test_bfs_sweep_path;
          tc "tree cut exact on trees" test_tree_cut_exact_on_trees;
          tc "tree cut on augmented trees" test_tree_cut_with_extra_edges;
          tc "combined cut dominates" test_combined_cut_dominates;
        ] );
      ( "local_cluster",
        [
          tc "ppr mass bounds" test_ppr_mass_bounds;
          tc "ppr locality" test_ppr_locality;
          tc "ppr pairs sorted" test_ppr_pairs_vertex_sorted;
          tc "finds the seed blob" test_local_cluster_finds_blob;
          tc "sweep_cut tie-break by vertex id" test_local_sweep_cut_tie_break;
          tc "parameter validation" test_ppr_validation;
        ] );
      ( "expander_decomposition",
        [
          tc "grid" test_decompose_grid;
          tc "apollonian" test_decompose_apollonian;
          tc "tree" test_decompose_tree;
          tc "barbell splits at bridge" test_decompose_barbell_splits_bridge;
          tc "expander stays whole" test_decompose_expander_stays_whole;
          tc "disconnected input" test_decompose_disconnected;
          tc "several epsilons" test_decompose_epsilon_monotone;
          tc "epsilon validation" test_decompose_rejects_bad_epsilon;
          tc "degenerate graphs" test_singleton_and_empty;
          tc "bfs ball baseline" test_bfs_ball_baseline;
        ] );
      ("properties", qcheck_cases);
    ]
