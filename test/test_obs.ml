(* Observability subsystem tests: span-tree aggregation, disabled-mode
   no-op behaviour, the hand-rolled JSON codec, meter/metric recording,
   the exporters, and the cross-jobs parity property — the deterministic
   profile section must be byte-identical at --jobs 1 and --jobs 4. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* run [f] inside an enabled, freshly reset Obs; return its result and
   the merged snapshot tree, leaving Obs disabled afterwards *)
let recording f =
  Obs.reset ();
  Obs.enable ();
  let r = f () in
  let tree = Obs.snapshot_tree () in
  Obs.disable ();
  (r, tree)

let sum_of (node : Obs.Agg.node) key =
  match Obs.Agg.SMap.find_opt key node.Obs.Agg.sums with
  | Some v -> v
  | None -> 0

let max_of (node : Obs.Agg.node) key =
  match Obs.Agg.SMap.find_opt key node.Obs.Agg.maxes with
  | Some v -> v
  | None -> 0

let node_at tree path =
  match Obs.Agg.find_path tree path with
  | Some n -> n
  | None -> Alcotest.fail ("no span node at " ^ String.concat "/" path)

(* ------------------------------------------------------------------ *)
(* Span tree                                                            *)
(* ------------------------------------------------------------------ *)

let test_span_tree () =
  let (), tree =
    recording (fun () ->
        Obs.Span.with_ "root" (fun () ->
            Obs.Metric.count "items" 3;
            for _ = 1 to 2 do
              Obs.Span.with_ "child" (fun () -> Obs.Metric.incr "hits")
            done;
            Obs.Span.with_ "other" (fun () -> Obs.Metric.set_max "peak" 7);
            Obs.Span.with_ "other" (fun () -> Obs.Metric.set_max "peak" 5)))
  in
  let root = node_at tree [ "root" ] in
  check "root completed once" 1 root.Obs.Agg.count;
  check "root counter" 3 (sum_of root "items");
  let child = node_at tree [ "root"; "child" ] in
  check "child completed twice" 2 child.Obs.Agg.count;
  check "incr summed" 2 (sum_of child "hits");
  let other = node_at tree [ "root"; "other" ] in
  check "set_max merges with max" 7 (max_of other "peak");
  let ascii = Obs.Export.to_ascii tree in
  List.iter
    (fun needle ->
      let present =
        let ln = String.length needle and la = String.length ascii in
        let rec go i = i + ln <= la && (String.sub ascii i ln = needle || go (i + 1)) in
        go 0
      in
      checkb ("ascii mentions " ^ needle) true present)
    [ "root"; "child"; "other" ]

let test_exception_safe_span () =
  let (), tree =
    recording (fun () ->
        match
          Obs.Span.with_ "outer" (fun () ->
              Obs.Span.with_ "boom" (fun () -> failwith "x"))
        with
        | exception Failure _ -> ()
        | () -> Alcotest.fail "exception swallowed")
  in
  (* both spans closed despite the raise, so both completed in the tree *)
  check "outer closed" 1 (node_at tree [ "outer" ]).Obs.Agg.count;
  check "inner closed" 1 (node_at tree [ "outer"; "boom" ]).Obs.Agg.count

let test_disabled_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  Obs.Span.with_ "ghost" (fun () ->
      Obs.Metric.count "n" 5;
      Obs.Metric.set_max "m" 9;
      Obs.Meter.net ~rounds:1 ~messages:2 ~total_bits:3 ~max_edge_bits:4);
  let tree = Obs.snapshot_tree () in
  check "no completions" 0 tree.Obs.Agg.count;
  checkb "no children" true (Obs.Agg.SMap.is_empty tree.Obs.Agg.children);
  checkb "no sums" true (Obs.Agg.SMap.is_empty tree.Obs.Agg.sums)

let test_hist_buckets () =
  let (), tree =
    recording (fun () ->
        Obs.Span.with_ "h" (fun () ->
            List.iter (Obs.Metric.hist "sz") [ 1; 2; 3; 5; 900 ]))
  in
  let h = node_at tree [ "h" ] in
  (* power-of-two buckets: 1 -> p2_00, 2 -> p2_01, 3 -> p2_02, 5 -> p2_03,
     900 -> p2_10 (2^10 = 1024 is the first power >= 900) *)
  check "bucket 0" 1 (sum_of h "sz.p2_00");
  check "bucket 1" 1 (sum_of h "sz.p2_01");
  check "bucket 2" 1 (sum_of h "sz.p2_02");
  check "bucket 3" 1 (sum_of h "sz.p2_03");
  check "bucket 10" 1 (sum_of h "sz.p2_10")

(* ------------------------------------------------------------------ *)
(* JSON codec                                                           *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("s", Str "a \"quoted\"\nline\\path");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("nl", Null);
        ("l", List [ Int 0; Str ""; Obj []; List [] ]);
      ]
  in
  checkb "compact round trip" true (of_string (to_string v) = v);
  checkb "pretty round trip" true (of_string (to_string_pretty v) = v);
  (match of_string "{ bad" with
  | exception Parse_error _ -> ()
  | _ -> Alcotest.fail "parse error not raised");
  match member "i" v with
  | Some (Int i) when i = -42 -> ()
  | _ -> Alcotest.fail "member lookup failed"

(* ------------------------------------------------------------------ *)
(* Meter and export                                                     *)
(* ------------------------------------------------------------------ *)

let test_meter_accumulates () =
  let (), tree =
    recording (fun () ->
        Obs.Span.with_ "net" (fun () ->
            Obs.Meter.net ~rounds:3 ~messages:10 ~total_bits:80
              ~max_edge_bits:16;
            Obs.Meter.net ~rounds:2 ~messages:4 ~total_bits:32
              ~max_edge_bits:24))
  in
  let n = node_at tree [ "net" ] in
  check "runs" 2 (sum_of n Obs.Meter.k_runs);
  check "rounds summed" 5 (sum_of n Obs.Meter.k_rounds);
  check "messages summed" 14 (sum_of n Obs.Meter.k_messages);
  check "bits summed" 112 (sum_of n Obs.Meter.k_bits);
  check "edge bits maxed" 24 (max_of n Obs.Meter.k_max_edge_bits)

let test_profile_shape () =
  let (), tree =
    recording (fun () ->
        Obs.Span.with_ "a" (fun () -> Obs.Metric.incr "x"))
  in
  let p = Obs.Export.profile_json ~meta:[ ("jobs", Obs.Json.Int 1) ] tree in
  (match Obs.Json.member "schema" p with
  | Some (Obs.Json.Str s) -> checks "schema name" Obs.Export.schema_name s
  | _ -> Alcotest.fail "schema missing");
  (match Obs.Json.member "version" p with
  | Some (Obs.Json.Int v) -> check "schema version" Obs.Export.schema_version v
  | _ -> Alcotest.fail "version missing");
  (match Obs.Json.member "deterministic" p with
  | Some det ->
      checkb "deterministic section round-trips" true
        (Obs.Json.of_string (Obs.Json.to_string det) = det)
  | None -> Alcotest.fail "deterministic missing");
  match Obs.Json.member "volatile" p with
  | Some (Obs.Json.Obj fields) ->
      checkb "meta merged into volatile" true (List.mem_assoc "jobs" fields)
  | _ -> Alcotest.fail "volatile missing"

let test_trace_events () =
  let (_, events) =
    (Obs.reset ();
     Obs.enable ();
     Obs.Span.with_ "t" (fun () -> Obs.Span.with_ "u" (fun () -> ()));
     let s = Obs.snapshot () in
     Obs.disable ();
     s)
  in
  check "two slices" 2 (List.length events);
  match Obs.Trace.to_json events with
  | Obs.Json.Obj fields ->
      (match List.assoc_opt "traceEvents" fields with
      | Some (Obs.Json.List l) -> check "two trace events" 2 (List.length l)
      | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "trace not an object"

(* ------------------------------------------------------------------ *)
(* Cross-jobs parity property                                           *)
(* ------------------------------------------------------------------ *)

let graph_gen =
  let open QCheck.Gen in
  oneof
    [
      (int_range 2 40 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       float_range 0.05 0.35 >>= fun p ->
       return
         ( Printf.sprintf "er(%d,%.2f,%d)" n p seed,
           Sparse_graph.Generators.erdos_renyi n p ~seed ));
      (int_range 2 6 >>= fun r ->
       int_range 2 6 >>= fun c ->
       return (Printf.sprintf "grid(%d,%d)" r c, Sparse_graph.Generators.grid r c));
      (int_range 4 40 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       return
         ( Printf.sprintf "apollonian(%d,%d)" n seed,
           Sparse_graph.Generators.random_apollonian n ~seed ));
    ]

let graph_arb = QCheck.make ~print:(fun (name, _) -> name) graph_gen

let pool4 = lazy (Parallel.Pool.create ~jobs:4 ())

(* the deterministic profile of one instrumented workload *)
let profile_of pool g =
  let _, tree =
    recording (fun () ->
        Obs.Span.with_ "workload" (fun () ->
            let d = Spectral.Expander_decomposition.decompose ~pool g ~epsilon:0.3 in
            ignore (Core.Pipeline.prepare ~mode:Core.Pipeline.Charged ~pool g ~epsilon:0.3 ~seed:7);
            d))
  in
  Obs.Export.deterministic_string tree

let parity =
  QCheck.Test.make ~name:"deterministic profile: jobs 1 = jobs 4" ~count:25
    graph_arb (fun (_, g) ->
      let s1 = profile_of Parallel.Pool.sequential g in
      let s4 = profile_of (Lazy.force pool4) g in
      String.equal s1 s4)

let rerun_stability =
  QCheck.Test.make ~name:"deterministic profile: run = rerun" ~count:15
    graph_arb (fun (_, g) ->
      let p = Lazy.force pool4 in
      String.equal (profile_of p g) (profile_of p g))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "obs"
    [
      ( "spans",
        [
          tc "span tree aggregation" test_span_tree;
          tc "exception-safe spans" test_exception_safe_span;
          tc "disabled mode records nothing" test_disabled_records_nothing;
          tc "histogram buckets" test_hist_buckets;
        ] );
      ("json", [ tc "round trip and errors" test_json_roundtrip ]);
      ( "export",
        [
          tc "meter accumulates" test_meter_accumulates;
          tc "profile shape" test_profile_shape;
          tc "trace events" test_trace_events;
        ] );
      ("parity", [ qt parity; qt rerun_stability ]);
    ]
