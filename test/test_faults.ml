(* Fault-injection layer tests: the Faults spec, deterministic fault
   semantics in Network.run (drops, duplication, crash / crash-recover,
   link outages), the Reliable ack/retry/backoff transport, and the
   retry-hardened primitives. The qcheck suites pin the PR's contracts:
   same fault seed => identical runs at every pool size; drop rate 0 =>
   byte-identical to a faultless run; retry-hardened broadcast / BFS /
   election complete at drop rates up to 0.2. *)

open Sparse_graph
open Congest

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Faults spec                                                          *)
(* ------------------------------------------------------------------ *)

let test_make_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "drop_rate > 1" (fun () ->
      Faults.make ~drop_rate:1.5 ~seed:1 ());
  expect_invalid "drop_rate < 0" (fun () ->
      Faults.make ~drop_rate:(-0.1) ~seed:1 ());
  expect_invalid "duplicate_rate > 1" (fun () ->
      Faults.make ~duplicate_rate:2. ~seed:1 ());
  expect_invalid "crash round 0" (fun () ->
      Faults.make
        ~crashes:[ { Faults.vertex = 0; at_round = 0; recover_round = None } ]
        ~seed:1 ());
  expect_invalid "recover before crash" (fun () ->
      Faults.make
        ~crashes:[ { Faults.vertex = 0; at_round = 3; recover_round = Some 3 } ]
        ~seed:1 ());
  expect_invalid "outage interval reversed" (fun () ->
      Faults.make
        ~outages:[ { Faults.u = 0; v = 1; from_round = 5; until_round = 4 } ]
        ~seed:1 ());
  expect_invalid "outage self-loop" (fun () ->
      Faults.make
        ~outages:[ { Faults.u = 2; v = 2; from_round = 1; until_round = 1 } ]
        ~seed:1 ());
  (* a well-formed spec goes through *)
  ignore
    (Faults.make ~drop_rate:0.2 ~duplicate_rate:0.05
       ~crashes:[ { Faults.vertex = 1; at_round = 2; recover_round = Some 4 } ]
       ~outages:[ { Faults.u = 0; v = 1; from_round = 1; until_round = 2 } ]
       ~seed:7 ())

let test_is_active () =
  checkb "none inactive" false (Faults.is_active Faults.none);
  checkb "defaults inactive" false (Faults.is_active (Faults.make ~seed:3 ()));
  checkb "drop active" true
    (Faults.is_active (Faults.make ~drop_rate:0.1 ~seed:3 ()));
  checkb "crash active" true
    (Faults.is_active
       (Faults.make
          ~crashes:[ { Faults.vertex = 0; at_round = 1; recover_round = None } ]
          ~seed:3 ()))

let test_rng_deterministic () =
  let spec = Faults.make ~drop_rate:0.5 ~seed:99 () in
  let draw st = List.init 8 (fun _ -> Random.State.float st 1.) in
  Alcotest.(check (list (float 0.)))
    "identical streams from the same spec"
    (draw (Faults.rng spec))
    (draw (Faults.rng spec));
  let other = Faults.make ~drop_rate:0.5 ~seed:100 () in
  checkb "distinct seeds give distinct streams" false
    (draw (Faults.rng spec) = draw (Faults.rng other))

let test_shard_rng () =
  let spec = Faults.make ~drop_rate:0.5 ~seed:99 () in
  let draw st = List.init 8 (fun _ -> Random.State.float st 1.) in
  Alcotest.(check (list (float 0.)))
    "identical streams from the same shard"
    (draw (Faults.shard_rng spec ~shard:3))
    (draw (Faults.shard_rng spec ~shard:3));
  checkb "distinct shards give distinct streams" false
    (draw (Faults.shard_rng spec ~shard:0)
    = draw (Faults.shard_rng spec ~shard:1));
  checkb "decorrelated from the spec rng" false
    (draw (Faults.shard_rng spec ~shard:0) = draw (Faults.rng spec));
  match Faults.shard_rng spec ~shard:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shard -1: expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Network.run fault semantics on hand-built instances                  *)
(* ------------------------------------------------------------------ *)

(* vertex 0 sends [x] to every neighbor each round until [last], halting
   at [last]; everyone else counts receptions and halts at [last] *)
let sender_protocol ?faults g ~last =
  let received = Array.make (Graph.n g) 0 in
  let init _ = () in
  let round r (ctx : Network.ctx) () inbox =
    received.(ctx.id) <- received.(ctx.id) + List.length inbox;
    let send =
      if ctx.id = 0 && r <= last then
        Array.to_list (Array.map (fun w -> (w, r)) ctx.neighbors)
      else []
    in
    { Network.wake_after = None; state = (); send; halt = r > last }
  in
  let _, stats =
    Network.run ?faults g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 4)
      ~init ~round ~max_rounds:(last + 2)
  in
  (received, stats)

let test_drop_everything () =
  let g = Generators.path 2 in
  let faults = Faults.make ~drop_rate:1.0 ~seed:5 () in
  let received, stats = sender_protocol ~faults g ~last:4 in
  check "nothing received" 0 received.(1);
  check "messages still charged" 4 stats.Network.messages;
  check "all dropped" 4 stats.Network.dropped;
  check "delivered" 0 (Network.delivered stats);
  check "invariant" stats.Network.messages
    (Network.delivered stats + stats.Network.dropped)

let test_duplicate_everything () =
  let g = Generators.path 2 in
  let faults = Faults.make ~duplicate_rate:1.0 ~seed:5 () in
  let received, stats = sender_protocol ~faults g ~last:3 in
  (* every delivery arrives twice: 3 sends -> 6 receptions *)
  check "double receptions" 6 received.(1);
  check "messages" 3 stats.Network.messages;
  check "dropped" 0 stats.Network.dropped;
  check "duplicated" 3 stats.Network.duplicated

let test_crash_permanent () =
  (* path 0-1-2: crashing the middle vertex cuts the flood and must not
     block completion *)
  let g = Generators.path 3 in
  let faults =
    Faults.make
      ~crashes:[ { Faults.vertex = 1; at_round = 1; recover_round = None } ]
      ~seed:5 ()
  in
  let received, stats = sender_protocol ~faults g ~last:3 in
  check "crashed vertex saw nothing" 0 received.(1);
  check "far vertex saw nothing" 0 received.(2);
  check "sends to the crashed vertex dropped" 3 stats.Network.dropped;
  checkb "permanently crashed vertex does not block completion" true
    stats.Network.completed;
  (* rounds 1..4, vertex 1 crashed throughout *)
  check "crashed rounds" stats.Network.rounds stats.Network.crashed_rounds

let test_crash_recover () =
  (* vertex 1 is down for rounds 2-3: the round-1 send sits in its inbox
     when the crash wipes it, the round-2/3 sends are dropped on the wire,
     and the round-4/5 sends arrive after recovery *)
  let g = Generators.path 2 in
  let faults =
    Faults.make
      ~crashes:[ { Faults.vertex = 1; at_round = 2; recover_round = Some 4 } ]
      ~seed:5 ()
  in
  let received, stats = sender_protocol ~faults g ~last:5 in
  check "post-recovery receptions only" 2 received.(1);
  check "in-crash sends dropped" 2 stats.Network.dropped;
  check "two crashed rounds" 2 stats.Network.crashed_rounds;
  check "invariant" stats.Network.messages
    (Network.delivered stats + stats.Network.dropped)

let test_outage_interval () =
  (* triangle: link 0-1 is down for rounds 1-2; link 0-2 is untouched *)
  let g = Generators.cycle 3 in
  let faults =
    Faults.make
      ~outages:[ { Faults.u = 0; v = 1; from_round = 1; until_round = 2 } ]
      ~seed:5 ()
  in
  let received, stats = sender_protocol ~faults g ~last:3 in
  check "only the post-outage send crossed 0-1" 1 received.(1);
  check "link 0-2 unaffected" 3 received.(2);
  check "two drops" 2 stats.Network.dropped

let test_inactive_spec_is_identity () =
  (* three ways of running faultlessly must agree bit for bit *)
  let g = Generators.grid 3 3 in
  let plain = sender_protocol g ~last:4 in
  let none = sender_protocol ~faults:Faults.none g ~last:4 in
  let zeroed = sender_protocol ~faults:(Faults.make ~seed:13 ()) g ~last:4 in
  checkb "?faults absent = Faults.none" true (plain = none);
  checkb "?faults absent = all-zero spec" true (plain = zeroed)

let test_active_spec_without_firing_faults () =
  (* an outage scheduled after the horizon keeps the spec active (the
     bookkeeping runs) but must not change the execution *)
  let g = Generators.grid 3 3 in
  let plain = sender_protocol g ~last:4 in
  let dormant =
    sender_protocol
      ~faults:
        (Faults.make
           ~outages:
             [ { Faults.u = 0; v = 1; from_round = 900; until_round = 901 } ]
           ~seed:13 ())
      g ~last:4
  in
  checkb "dormant active spec = faultless run" true (plain = dormant)

let test_duplication_last_traffic () =
  (* every delivery is duplicated: the duplicate rides in the same round
     as its original, so last_traffic_round must equal the last sending
     round — identically in the reference, event-driven and sharded
     loops (the satellite-4 accounting pin) *)
  let g = Generators.path 2 in
  let faults () = Faults.make ~duplicate_rate:1.0 ~seed:11 () in
  let last = 3 in
  let round r (ctx : Network.ctx) () _ =
    if ctx.id = 0 then
      if r > last then Network.step () ~halt:true
      else Network.step () ~send:[ (1, r) ] ~wake_after:1
    else if r > last + 1 then Network.step () ~halt:true
    else Network.step () ~wake_after:(last + 2 - r)
  in
  let _, ref_stats =
    Network.run_reference ~faults:(faults ()) g ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  let _, ev_stats =
    Network.run ~faults:(faults ()) g ~schedule:Network.Event_driven
      ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  let pool = Parallel.Pool.create ~jobs:2 () in
  let _, sh_stats =
    Network.run ~faults:(faults ()) g ~schedule:Network.Event_driven
      ~exec:(Network.Sharded { shards = 2; pool })
      ~codec:Network.int_codec ~bandwidth:Network.Local
      ~msg_bits:(fun _ -> 1)
      ~init:(fun _ -> ())
      ~round ~max_rounds:10
  in
  check "last traffic = last sending round" last
    ref_stats.Network.last_traffic_round;
  check "every delivery duplicated" last ref_stats.Network.duplicated;
  checkb "event loop matches" true (ref_stats = ev_stats);
  checkb "sharded loop matches" true (ref_stats = sh_stats)

let test_fault_counters_metered () =
  Obs.reset ();
  Obs.enable ();
  let g = Generators.path 2 in
  let faults = Faults.make ~drop_rate:1.0 ~seed:5 () in
  let stats =
    Obs.Span.with_ "net" (fun () -> snd (sender_protocol ~faults g ~last:4))
  in
  let tree = Obs.snapshot_tree () in
  Obs.disable ();
  match Obs.Agg.find_path tree [ "net" ] with
  | None -> Alcotest.fail "no span recorded"
  | Some node ->
      let sum key =
        match Obs.Agg.SMap.find_opt key node.Obs.Agg.sums with
        | Some v -> v
        | None -> 0
      in
      check "net.dropped metered" stats.Network.dropped
        (sum Obs.Meter.k_dropped);
      check "net.duplicated metered" stats.Network.duplicated
        (sum Obs.Meter.k_duplicated);
      check "net.crashed_rounds metered" stats.Network.crashed_rounds
        (sum Obs.Meter.k_crashed_rounds)

(* ------------------------------------------------------------------ *)
(* Reliable transport                                                   *)
(* ------------------------------------------------------------------ *)

let payload seq body = Distr.Reliable.Payload { seq; body }
let ack seq = Distr.Reliable.Ack { seq }

let test_reliable_ack_cycle () =
  let open Distr.Reliable in
  let sender = send (create ()) ~dst:7 "hello" in
  check "one pending" 1 (pending sender);
  let sender, out = flush sender ~now:1 in
  Alcotest.(check int) "one transmission" 1 (List.length out);
  (* the receiver (vertex 7) sees the payload from vertex 3 *)
  let receiver, fresh, acks = deliver (create ()) [ (3, payload 0 "hello") ] in
  Alcotest.(check (list (pair int string))) "fresh once" [ (3, "hello") ] fresh;
  check "one ack" 1 (List.length acks);
  checkb "receiver queue untouched" true (idle receiver);
  (* the ack returns to the sender and clears the queue *)
  let sender, _, _ = deliver sender [ (7, ack 0) ] in
  checkb "sender idle after ack" true (idle sender)

let test_reliable_dedup () =
  let open Distr.Reliable in
  let st, fresh1, acks1 = deliver (create ()) [ (3, payload 0 "x") ] in
  let _, fresh2, acks2 = deliver st [ (3, payload 0 "x") ] in
  check "first delivery fresh" 1 (List.length fresh1);
  check "duplicate not fresh" 0 (List.length fresh2);
  (* but the duplicate is re-acked: the first ack may have been lost *)
  check "first ack" 1 (List.length acks1);
  check "duplicate re-acked" 1 (List.length acks2)

let test_reliable_backoff_schedule () =
  let open Distr.Reliable in
  let st = send (create ()) ~dst:2 "m" in
  let emitted st now =
    let st, out = flush st ~now in
    (st, List.length out)
  in
  (* due immediately; then backoff 2, 4, capped at 8 *)
  let st, k1 = emitted st 1 in
  check "first transmission" 1 k1;
  let st, k2 = emitted st 2 in
  check "not due at now+1" 0 k2;
  let st, k3 = emitted st 3 in
  check "retry after backoff 2" 1 k3;
  let st, k4 = emitted st 6 in
  check "not due before backoff 4" 0 k4;
  let st, k5 = emitted st 7 in
  check "retry after backoff 4" 1 k5;
  let st, k6 = emitted st 14 in
  check "not due before capped backoff 8" 0 k6;
  let _, k7 = emitted st 15 in
  check "retry after capped backoff 8" 1 k7

let test_reliable_cancel () =
  let open Distr.Reliable in
  let st = send (send (create ()) ~dst:1 "a") ~dst:2 "b" in
  let st = cancel st ~dst:1 in
  let _, out = flush st ~now:1 in
  Alcotest.(check (list int)) "only dst 2 remains" [ 2 ] (List.map fst out)

let test_reliable_max_per_dst () =
  let open Distr.Reliable in
  let st =
    send (send (send (create ()) ~dst:4 "a") ~dst:4 "b") ~dst:4 "c"
  in
  let st, out1 = flush ~max_per_dst:1 st ~now:1 in
  check "capped to one per flush" 1 (List.length out1);
  let _, out2 = flush ~max_per_dst:1 st ~now:1 in
  check "next flush sends the next one" 1 (List.length out2);
  checkb "oldest first" true (out1 <> out2)

(* ------------------------------------------------------------------ *)
(* Crash recovery in the retry-hardened primitives                      *)
(* ------------------------------------------------------------------ *)

let test_election_reelects_after_leader_crash () =
  (* 4x4 grid: the faultless winner is the max-(degree, id) vertex; crash
     it permanently and the survivors must evict it and agree on the best
     live candidate *)
  let g = Generators.grid 4 4 in
  let view = Distr.Cluster_view.whole g in
  let plain = Distr.Leader_election.run view ~rounds:10 in
  let old_leader = plain.Distr.Leader_election.leader_of.(0) in
  let faults =
    Faults.make
      ~crashes:
        [ { Faults.vertex = old_leader; at_round = 3; recover_round = None } ]
      ~seed:11 ()
  in
  let r = Distr.Leader_election.run_reliable ~faults ~patience:4 view ~rounds:60 in
  let live = List.filter (fun v -> v <> old_leader) (List.init 16 Fun.id) in
  let new_leader = r.Distr.Leader_election.leader_of.(List.hd live) in
  checkb "new leader elected" true (new_leader <> old_leader);
  List.iter
    (fun v ->
      check "survivors agree" new_leader r.Distr.Leader_election.leader_of.(v))
    live;
  (* best live candidate: max (intra degree, id) over the survivors *)
  let expected =
    List.fold_left
      (fun (bd, bi) v ->
        let d = Distr.Cluster_view.intra_degree view v in
        if d > bd || (d = bd && v > bi) then (d, v) else (bd, bi))
      (-1, -1) live
  in
  check "new leader is the best survivor" (snd expected) new_leader

let test_bfs_reroots_after_crash () =
  (* 4x4 grid rooted at 0: crash interior vertex 5; its children re-root
     onto the live tree and every survivor converges to the BFS distance
     of the graph without the crashed vertex *)
  let g = Generators.grid 4 4 in
  let n = Graph.n g in
  let view = Distr.Cluster_view.whole g in
  let crashed = 5 in
  let faults =
    Faults.make
      ~crashes:[ { Faults.vertex = crashed; at_round = 3; recover_round = None } ]
      ~seed:11 ()
  in
  let roots = Array.init n (fun v -> v = 0) in
  let r = Distr.Bfs_tree.run_reliable ~faults ~patience:3 view ~roots ~rounds:80 in
  (* centralized BFS skipping the crashed vertex *)
  let dist = Array.make n (-1) in
  dist.(0) <- 0;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if w <> crashed && dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
      (Graph.neighbors g v)
  done;
  for v = 0 to n - 1 do
    if v <> crashed then begin
      check
        (Printf.sprintf "depth of %d" v)
        dist.(v)
        r.Distr.Bfs_tree.depth.(v);
      if v <> 0 then begin
        checkb "parent is live" true (r.Distr.Bfs_tree.parent.(v) <> crashed);
        check "parent one level up"
          (dist.(v) - 1)
          dist.(r.Distr.Bfs_tree.parent.(v))
      end
    end
  done

let test_bfs_orphans_disconnected_vertex () =
  (* path 0-1-2 rooted at 0: crashing the middle vertex leaves vertex 2
     with no live neighbor, so after the patience timeout it must end up
     orphaned rather than keeping a stale parent *)
  let g = Generators.path 3 in
  let view = Distr.Cluster_view.whole g in
  let faults =
    Faults.make
      ~crashes:[ { Faults.vertex = 1; at_round = 2; recover_round = None } ]
      ~seed:11 ()
  in
  let roots = [| true; false; false |] in
  let r = Distr.Bfs_tree.run_reliable ~faults ~patience:3 view ~roots ~rounds:40 in
  check "root depth" 0 r.Distr.Bfs_tree.depth.(0);
  check "cut-off vertex orphaned" (-1) r.Distr.Bfs_tree.depth.(2);
  check "cut-off vertex has no parent" (-1) r.Distr.Bfs_tree.parent.(2)

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let graph_gen =
  let open QCheck.Gen in
  oneof
    [
      (int_range 2 5 >>= fun rc ->
       int_range 2 5 >>= fun cc ->
       return (Printf.sprintf "grid(%d,%d)" rc cc, Generators.grid rc cc));
      (int_range 4 40 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       return
         (Printf.sprintf "apollonian(%d,%d)" n seed,
          Generators.random_apollonian n ~seed));
    ]

let fault_case_gen =
  let open QCheck.Gen in
  graph_gen >>= fun (name, g) ->
  int_range 0 10_000 >>= fun fseed ->
  oneofl [ 0.05; 0.1; 0.2 ] >>= fun rate ->
  return (Printf.sprintf "%s seed=%d drop=%.2f" name fseed rate, g, fseed, rate)

let fault_case_arb =
  QCheck.make ~print:(fun (name, _, _, _) -> name) fault_case_gen

let run_reliable_broadcast ?faults g ~rounds =
  let view = Distr.Cluster_view.whole g in
  let sources =
    Array.init (Graph.n g) (fun v -> if v = 0 then Some 424242 else None)
  in
  (view, sources, Distr.Broadcast.run_reliable ?faults view ~sources ~rounds)

let budget g = (4 * Traversal.diameter_double_sweep g) + 40

let same_seed_same_run_across_pool_sizes =
  (* the fault sweep's parity contract: running the same faulty simulation
     as tasks of a 1-worker and a 4-worker pool yields identical results
     and statistics *)
  let pool1 = lazy (Parallel.Pool.create ~jobs:1 ()) in
  let pool4 = lazy (Parallel.Pool.create ~jobs:4 ()) in
  QCheck.Test.make ~name:"fault run: jobs 1 = jobs 4" ~count:15 fault_case_arb
    (fun (_, g, fseed, rate) ->
      let task seed =
        let faults = Faults.make ~drop_rate:rate ~duplicate_rate:(rate /. 4.) ~seed () in
        let _, _, r = run_reliable_broadcast ~faults g ~rounds:(budget g) in
        (r.Distr.Broadcast.received, r.Distr.Broadcast.stats)
      in
      let seeds = List.init 3 (fun i -> Parallel.Pool.derive_seed fseed i) in
      Parallel.Pool.map_list (Lazy.force pool1) task seeds
      = Parallel.Pool.map_list (Lazy.force pool4) task seeds)

let zero_drop_equals_faultless =
  QCheck.Test.make ~name:"drop rate 0 = faultless run" ~count:25 fault_case_arb
    (fun (_, g, fseed, _) ->
      let rounds = budget g in
      let _, _, plain = run_reliable_broadcast g ~rounds in
      let faults = Faults.make ~drop_rate:0. ~duplicate_rate:0. ~seed:fseed () in
      let _, _, zeroed = run_reliable_broadcast ~faults g ~rounds in
      plain.Distr.Broadcast.received = zeroed.Distr.Broadcast.received
      && plain.Distr.Broadcast.stats = zeroed.Distr.Broadcast.stats)

let broadcast_completes_under_drops =
  QCheck.Test.make ~name:"reliable broadcast completes at drop <= 0.2"
    ~count:20 fault_case_arb (fun (_, g, fseed, rate) ->
      let faults =
        Faults.make ~drop_rate:rate ~duplicate_rate:(rate /. 4.) ~seed:fseed ()
      in
      let view, sources, r = run_reliable_broadcast ~faults g ~rounds:(budget g) in
      Distr.Broadcast.check view r ~sources
      && r.Distr.Broadcast.stats.Network.messages
         = Network.delivered r.Distr.Broadcast.stats
           + r.Distr.Broadcast.stats.Network.dropped)

let bfs_completes_under_drops =
  QCheck.Test.make ~name:"reliable BFS completes at drop <= 0.2" ~count:15
    fault_case_arb (fun (_, g, fseed, rate) ->
      let faults =
        Faults.make ~drop_rate:rate ~duplicate_rate:(rate /. 4.) ~seed:fseed ()
      in
      let view = Distr.Cluster_view.whole g in
      let roots = Array.init (Graph.n g) (fun v -> v = 0) in
      (* patience 10: a spurious orphaning needs 11 consecutive dropped
         parent heartbeats (p^11), so a late false timeout cannot leave a
         wrong final depth within the round budget *)
      let r =
        Distr.Bfs_tree.run_reliable ~faults ~patience:10 view ~roots
          ~rounds:(budget g)
      in
      Distr.Bfs_tree.check view r ~roots)

let election_completes_under_drops =
  QCheck.Test.make ~name:"reliable election completes at drop <= 0.2" ~count:15
    fault_case_arb (fun (_, g, fseed, rate) ->
      let faults =
        Faults.make ~drop_rate:rate ~duplicate_rate:(rate /. 4.) ~seed:fseed ()
      in
      let view = Distr.Cluster_view.whole g in
      let patience = (2 * Traversal.diameter_double_sweep g) + 8 in
      let r =
        Distr.Leader_election.run_reliable ~faults ~patience view
          ~rounds:(budget g)
      in
      Distr.Leader_election.check view r)

let accounting_invariant_under_faults =
  QCheck.Test.make ~name:"delivered + dropped = messages under faults"
    ~count:25 fault_case_arb (fun (_, g, fseed, rate) ->
      let faults =
        Faults.make ~drop_rate:rate ~duplicate_rate:rate
          ~crashes:
            [ { Faults.vertex = 1 mod Graph.n g; at_round = 2; recover_round = Some 5 } ]
          ~seed:fseed ()
      in
      let received = ref 0 in
      let init _ = () in
      let round r (ctx : Network.ctx) () inbox =
        received := !received + List.length inbox;
        let send =
          if r <= 6 then
            Array.to_list (Array.map (fun w -> (w, r)) ctx.neighbors)
          else []
        in
        { Network.wake_after = None; state = (); send; halt = r > 6 }
      in
      let _, stats =
        Network.run ~faults g ~bandwidth:Network.Local
          ~msg_bits:(fun _ -> 4)
          ~init ~round ~max_rounds:8
      in
      (* dropped accounts for every non-delivery; duplicates are extra
         inbox entries on top of delivered, minus whatever a crash wiped *)
      stats.Network.messages = Network.delivered stats + stats.Network.dropped
      && !received <= Network.delivered stats + stats.Network.duplicated)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "faults"
    [
      ( "spec",
        [
          tc "make validates" test_make_validation;
          tc "is_active" test_is_active;
          tc "rng deterministic" test_rng_deterministic;
          tc "shard rng streams" test_shard_rng;
        ] );
      ( "network",
        [
          tc "drop rate 1 loses everything" test_drop_everything;
          tc "duplicate rate 1 doubles deliveries" test_duplicate_everything;
          tc "permanent crash" test_crash_permanent;
          tc "crash and recover" test_crash_recover;
          tc "link outage interval" test_outage_interval;
          tc "inactive spec is the identity" test_inactive_spec_is_identity;
          tc "active spec without firing faults"
            test_active_spec_without_firing_faults;
          tc "duplication-only last traffic" test_duplication_last_traffic;
          tc "fault counters reach the meter" test_fault_counters_metered;
        ] );
      ( "reliable",
        [
          tc "send / deliver / ack cycle" test_reliable_ack_cycle;
          tc "duplicate payloads dedup and re-ack" test_reliable_dedup;
          tc "exponential backoff schedule" test_reliable_backoff_schedule;
          tc "cancel clears a destination" test_reliable_cancel;
          tc "per-destination flush cap" test_reliable_max_per_dst;
        ] );
      ( "crash recovery",
        [
          tc "election re-elects after leader crash"
            test_election_reelects_after_leader_crash;
          tc "BFS re-roots after crash" test_bfs_reroots_after_crash;
          tc "BFS orphans a disconnected vertex"
            test_bfs_orphans_disconnected_vertex;
        ] );
      ( "properties",
        [
          qt same_seed_same_run_across_pool_sizes;
          qt zero_drop_equals_faultless;
          qt broadcast_completes_under_drops;
          qt bfs_completes_under_drops;
          qt election_completes_under_drops;
          qt accounting_invariant_under_faults;
        ] );
    ]
