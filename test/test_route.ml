(* Expander routing: witness hierarchy, serving layer, and the fixed
   walk router. Pins the PR's contracts:

   - planned paths are real walks of the graph (src first, dst last,
     consecutive entries edges), for both decomposition engines and for
     witness reuse as well as forced rebuild;
   - the planner summary's accounting is internally consistent
     (delivered + failed = demands, p50 <= p99 <= max, congestion total
     = sum of weighted path lengths);
   - planner and CONGEST execution deliver the same demand multiset at
     every shards {1,4} x jobs {1,4} point, byte-identically;
   - the walk router's delivery order is pinned by a fixed-seed golden
     (own tokens in seq order, then arrival order);
   - qcheck: [delivered + undelivered = total] survives drop/crash
     schedules, every shards x jobs point, and halting-round cutoffs,
     for both the walk router and the witness router. *)

open Sparse_graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let pool_of jobs = Parallel.Pool.create ~jobs ()

let exec_points =
  [ (1, 1); (1, 4); (4, 1); (4, 4) ]
  |> List.map (fun (shards, jobs) ->
         ( Printf.sprintf "s%dj%d" shards jobs,
           Congest.Network.Sharded { shards; pool = pool_of jobs } ))

let service ?reuse ?pool ?(engine = Core.Pipeline.Spectral_engine)
    ?(epsilon = 0.3) g =
  let p = Core.Pipeline.prepare ~mode:Core.Pipeline.Charged ~engine g ~epsilon ~seed:5 in
  Core.Pipeline.routing_service ?reuse ?pool ~seed:11 p

let demands_of g ~count ~seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  let n = Graph.n g in
  Array.init count (fun _ ->
      {
        Route.Service.src = Random.State.int st n;
        dst = Random.State.int st n;
        weight = 1 + Random.State.int st 3;
      })

let valid_plan g (d : Route.Service.demand) p =
  let len = Array.length p in
  len >= 1
  && p.(0) = d.src
  && p.(len - 1) = d.dst
  &&
  let ok = ref true in
  for i = 1 to len - 1 do
    if p.(i - 1) = p.(i) then ok := false
    else
      match Graph.find_edge g p.(i - 1) p.(i) with
      | _ -> ()
      | exception Not_found -> ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Planner: path validity and summary accounting                       *)
(* ------------------------------------------------------------------ *)

let test_plans_valid_both_engines () =
  List.iter
    (fun engine ->
      let g = Generators.grid 7 6 in
      let svc = service ~engine g in
      let ds = demands_of g ~count:60 ~seed:3 in
      let plans = Route.Service.plan svc ds in
      Array.iteri
        (fun i p ->
          checkb "plan is a real walk" true (valid_plan g ds.(i) p))
        plans)
    [ Core.Pipeline.Spectral_engine; Core.Pipeline.Cut_matching_engine ]

let test_summary_accounting () =
  let g = Generators.random_planar 90 1.6 ~seed:4 in
  let svc = service g in
  let ds = demands_of g ~count:200 ~seed:9 in
  let s = Route.Service.serve svc ds in
  checki "delivered + failed = demands" s.Route.Service.demands
    (s.Route.Service.delivered + s.Route.Service.failed);
  checki "connected graph: all routable" 0 s.Route.Service.failed;
  checkb "p50 <= p99" true (s.Route.Service.rounds_p50 <= s.Route.Service.rounds_p99);
  checkb "p99 <= max" true (s.Route.Service.rounds_p99 <= s.Route.Service.rounds_max);
  (* congestion total must equal the weighted sum of plan lengths *)
  let plans = Route.Service.plan svc ds in
  let expect = ref 0 in
  Array.iteri
    (fun i p ->
      expect := !expect + (ds.(i).Route.Service.weight * (Array.length p - 1)))
    plans;
  checki "congestion accounting" !expect s.Route.Service.congestion_total;
  let cong = Route.Service.congestion svc in
  checki "per-edge loads sum to the total" s.Route.Service.congestion_total
    (Array.fold_left ( + ) 0 cong)

(* hot-spot pattern: most demands converge on one destination *)
let hot_demands g ~count ~seed =
  let st = Random.State.make [| seed; 0x407 |] in
  let n = Graph.n g in
  let hot = n / 2 in
  Array.init count (fun _ ->
      let dst = if Random.State.float st 1.0 < 0.9 then hot else Random.State.int st n in
      {
        Route.Service.src = Random.State.int st n;
        dst;
        weight = 1;
      })

(* least-loaded selection must not make the hottest edge worse than
   round-robin on these pinned workloads (the v2 bench axis, in the
   small) *)
let test_least_loaded_beats_round_robin () =
  List.iter
    (fun (g, count, seed) ->
      let svc = service g in
      let ds = hot_demands g ~count ~seed in
      let rr = Route.Service.serve ~policy:Route.Hierarchy.Round_robin svc ds in
      let ll = Route.Service.serve ~policy:Route.Hierarchy.Least_loaded svc ds in
      checki "same deliveries under both policies" rr.Route.Service.delivered
        ll.Route.Service.delivered;
      checkb "least-loaded congestion_max <= round-robin" true
        (ll.Route.Service.congestion_max <= rr.Route.Service.congestion_max))
    [
      (Generators.grid 12 12, 2000, 21);
      (Generators.random_planar 160 1.7 ~seed:6, 2000, 22);
      (Generators.random_regular 96 4 ~seed:3, 1500, 23);
    ]

(* epoch-parallel serving: summaries and plans are byte-identical at
   every pool size, for both policies *)
let test_jobs_parity_serve () =
  let g = Generators.grid 11 9 in
  let ds = demands_of g ~count:9000 ~seed:17 in
  List.iter
    (fun policy ->
      let base = service ~pool:(pool_of 1) g in
      let s1 = Route.Service.serve ~policy base ds in
      let p1 = Route.Service.plan ~policy base ds in
      List.iter
        (fun jobs ->
          let svc = service ~pool:(pool_of jobs) g in
          let s = Route.Service.serve ~policy svc ds in
          checkb
            (Printf.sprintf "summary identical at jobs %d" jobs)
            true (s = s1);
          let p = Route.Service.plan ~policy svc ds in
          checkb
            (Printf.sprintf "plans identical at jobs %d" jobs)
            true (p = p1);
          checkb "congestion arrays identical" true
            (Route.Service.congestion svc = Route.Service.congestion base))
        [ 2; 4 ])
    [ Route.Hierarchy.Round_robin; Route.Hierarchy.Least_loaded ]

let test_reuse_vs_rebuild () =
  let g = Generators.random_regular 48 4 ~seed:2 in
  let reused = service ~engine:Core.Pipeline.Cut_matching_engine ~reuse:true g in
  let rebuilt = service ~engine:Core.Pipeline.Cut_matching_engine ~reuse:false g in
  let ri = Route.Hierarchy.info (Route.Service.hierarchy reused) in
  let bi = Route.Hierarchy.info (Route.Service.hierarchy rebuilt) in
  checkb "game matchings were retained and reused" true
    (ri.Route.Hierarchy.shortcuts > 0);
  checki "no fresh games when reusing" 0 ri.Route.Hierarchy.rebuilt_leaves;
  checkb "forced rebuild replays games" true
    (bi.Route.Hierarchy.rebuilt_leaves > 0);
  let ds = demands_of g ~count:120 ~seed:8 in
  let sr = Route.Service.serve reused ds in
  let sb = Route.Service.serve rebuilt ds in
  checki "same deliveries either way" sr.Route.Service.delivered
    sb.Route.Service.delivered;
  Array.iteri
    (fun i p -> checkb "rebuilt plan valid" true (valid_plan g ds.(i) p))
    (Route.Service.plan rebuilt ds)

(* ------------------------------------------------------------------ *)
(* CONGEST execution parity                                            *)
(* ------------------------------------------------------------------ *)

let test_congest_matches_planner_all_points () =
  let g = Generators.grid 6 6 in
  let svc = service g in
  let ds = demands_of g ~count:48 ~seed:12 in
  let runs =
    List.map
      (fun (name, exec) ->
        let r = Route.Service.serve_congest ~exec svc ds ~max_rounds:4000 in
        checkb (name ^ ": simulator matches planner") true
          r.Route.Service.match_planner;
        (name, r.Route.Service.routed.Distr.Witness_routing.delivered))
      exec_points
  in
  match runs with
  | [] -> assert false
  | (_, first) :: rest ->
      List.iter
        (fun (name, d) ->
          checkb (name ^ ": deliveries byte-identical across points") true
            (d = first))
        rest

let test_self_demands_and_degenerate () =
  let g = Generators.star 5 in
  let svc = service g in
  let ds =
    [|
      { Route.Service.src = 2; dst = 2; weight = 7 };
      { Route.Service.src = 0; dst = 5; weight = 1 };
    |]
  in
  let r = Route.Service.serve_congest svc ds ~max_rounds:100 in
  checkb "self-demand delivered" true r.Route.Service.match_planner;
  checki "no congestion from a self-demand beyond the real hop" 1
    r.Route.Service.planner.Route.Service.congestion_max

(* ------------------------------------------------------------------ *)
(* Walk router: delivery order regression (fixed seed golden)          *)
(* ------------------------------------------------------------------ *)

let golden_run () =
  let g = Generators.complete 8 in
  let view = Distr.Cluster_view.whole g in
  let leaders = Distr.Leader_election.run view ~rounds:2 in
  Distr.Walk_routing.run view ~leader_of:leaders.Distr.Leader_election.leader_of
    ~tokens_of:(fun _ -> 2)
    ~walk_len:200 ~seed:3 ~max_rounds:2000

let test_walk_order_golden () =
  let r = golden_run () in
  match r.Distr.Walk_routing.delivered with
  | [ (leader, toks) ] ->
      checki "complete graph: max-degree tie broken to largest id" 7 leader;
      let got =
        List.map
          (fun (t : Distr.Walk_routing.token) -> (t.origin, t.seq))
          toks
      in
      (* leader's own tokens first in seq order, then arrival order;
         pinned against the fixed-seed run this PR ships *)
      Alcotest.(check (list (pair int int)))
        "delivery order"
        [ (7, 0); (7, 1); (6, 0); (0, 0); (3, 0); (6, 1); (3, 1); (4, 1);
          (2, 0); (5, 0); (1, 1); (4, 0); (0, 1); (1, 0); (2, 1); (5, 1) ]
        got
  | _ -> Alcotest.fail "expected a single leader"

(* ------------------------------------------------------------------ *)
(* qcheck: conservation under faults, shards x jobs, halting rounds    *)
(* ------------------------------------------------------------------ *)

let fault_gen =
  let open QCheck.Gen in
  let crash n =
    let* vertex = int_bound (n - 1) in
    let* at_round = map (fun r -> 1 + r) (int_bound 6) in
    let* recover = opt (map (fun r -> at_round + 1 + r) (int_bound 5)) in
    return { Congest.Faults.vertex; at_round; recover_round = recover }
  in
  fun n ->
    let* seed = int_bound 10_000 in
    let* drop = oneofl [ 0.; 0.1; 0.4 ] in
    let* crashes = list_size (int_bound 2) (crash n) in
    return (Congest.Faults.make ~drop_rate:drop ~crashes ~seed ())

let routing_case_gen =
  let open QCheck.Gen in
  let* rows = 2 -- 4 in
  let* cols = 2 -- 4 in
  let* shards, jobs = oneofl [ (1, 1); (1, 4); (4, 1); (4, 4) ] in
  let* max_rounds = oneofl [ 1; 3; 17; 2000 ] in
  let* faults = fault_gen (rows * cols) in
  let* seed = int_bound 1000 in
  return (rows, cols, shards, jobs, max_rounds, faults, seed)

let routing_case_arb =
  QCheck.make
    ~print:(fun (r, c, s, j, mr, f, seed) ->
      Printf.sprintf "grid %dx%d shards %d jobs %d max_rounds %d seed %d %s" r
        c s j mr seed
        (Format.asprintf "%a" Congest.Faults.pp f))
    routing_case_gen

(* shortest-path plans, so witness-router conservation is exercised
   independently of the planner *)
let bfs_plan g src dst =
  let n = Graph.n g in
  let pred = Array.make n (-1) in
  pred.(src) <- src;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_neighbors g v (fun w ->
        if pred.(w) < 0 then begin
          pred.(w) <- v;
          Queue.add w q
        end)
  done;
  let rec walk acc v = if v = src then v :: acc else walk (v :: acc) pred.(v) in
  Array.of_list (walk [] dst)

let qcheck_walk_conservation =
  QCheck.Test.make ~name:"walk router: delivered + undelivered = total"
    ~count:40 routing_case_arb
    (fun (rows, cols, shards, jobs, max_rounds, faults, seed) ->
      let g = Generators.grid rows cols in
      let view = Distr.Cluster_view.whole g in
      let leaders = Distr.Leader_election.run view ~rounds:(rows + cols) in
      let r =
        Distr.Walk_routing.run
          ~exec:(Congest.Network.Sharded { shards; pool = pool_of jobs })
          ~faults view
          ~leader_of:leaders.Distr.Leader_election.leader_of
          ~tokens_of:(fun v -> v mod 3)
          ~walk_len:30 ~seed ~max_rounds
      in
      let total = ref 0 in
      for v = 0 to Graph.n g - 1 do
        total := !total + (v mod 3)
      done;
      let got =
        List.fold_left
          (fun acc (_, toks) -> acc + List.length toks)
          0 r.Distr.Walk_routing.delivered
      in
      got + r.Distr.Walk_routing.undelivered = !total
      && r.Distr.Walk_routing.expired <= r.Distr.Walk_routing.undelivered
      && r.Distr.Walk_routing.held <= r.Distr.Walk_routing.undelivered)

let qcheck_witness_conservation =
  QCheck.Test.make ~name:"witness router: delivered + undelivered = demands"
    ~count:40 routing_case_arb
    (fun (rows, cols, shards, jobs, max_rounds, faults, seed) ->
      let g = Generators.grid rows cols in
      let n = Graph.n g in
      let st = Random.State.make [| seed; 31 |] in
      let plans =
        Array.init (n * 2) (fun _ ->
            bfs_plan g (Random.State.int st n) (Random.State.int st n))
      in
      let r =
        Distr.Witness_routing.run
          ~exec:(Congest.Network.Sharded { shards; pool = pool_of jobs })
          ~faults g ~plans ~max_rounds
      in
      let got =
        List.fold_left
          (fun acc (_, ds) -> acc + List.length ds)
          0 r.Distr.Witness_routing.delivered
      in
      got + r.Distr.Witness_routing.undelivered = Array.length plans
      && Distr.Witness_routing.check ~plans r)

(* qcheck: the serve summary's congestion_total always equals the
   weighted sum of the planned path lengths, under either policy *)
let accounting_case_arb =
  let open QCheck.Gen in
  let gen =
    let* pick = 0 -- 2 in
    let* count = 50 -- 250 in
    let* seed = int_bound 10_000 in
    let* ll = bool in
    return (pick, count, seed, ll)
  in
  QCheck.make
    ~print:(fun (pick, count, seed, ll) ->
      Printf.sprintf "graph %d count %d seed %d policy %s" pick count seed
        (if ll then "least_loaded" else "round_robin"))
    gen

let qcheck_congestion_accounting =
  QCheck.Test.make ~name:"serve: congestion_total = sum weight x length"
    ~count:30 accounting_case_arb
    (fun (pick, count, seed, ll) ->
      let g =
        match pick with
        | 0 -> Generators.grid 9 7
        | 1 -> Generators.random_planar 80 1.6 ~seed:(1 + (seed land 7))
        | _ -> Generators.random_regular 64 4 ~seed:(1 + (seed land 15))
      in
      let policy =
        if ll then Route.Hierarchy.Least_loaded else Route.Hierarchy.Round_robin
      in
      let svc = service g in
      let ds = demands_of g ~count ~seed in
      let s = Route.Service.serve ~policy svc ds in
      let plans = Route.Service.plan ~policy svc ds in
      let expect = ref 0 in
      Array.iteri
        (fun i p ->
          if Array.length p > 0 then
            expect :=
              !expect + (ds.(i).Route.Service.weight * (Array.length p - 1)))
        plans;
      s.Route.Service.demands = s.Route.Service.delivered + s.Route.Service.failed
      && !expect = s.Route.Service.congestion_total
      && Array.fold_left ( + ) 0 (Route.Service.congestion svc)
         = s.Route.Service.congestion_total)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "route"
    [
      ( "planner",
        [
          tc "plans valid, both engines" test_plans_valid_both_engines;
          tc "summary accounting" test_summary_accounting;
          tc "least-loaded vs round-robin" test_least_loaded_beats_round_robin;
          tc "jobs parity (serve epochs)" test_jobs_parity_serve;
          tc "witness reuse vs rebuild" test_reuse_vs_rebuild;
        ] );
      ( "congest",
        [
          tc "matches planner at all shards x jobs"
            test_congest_matches_planner_all_points;
          tc "self-demands and leaves" test_self_demands_and_degenerate;
        ] );
      ( "walk router", [ tc "delivery order golden" test_walk_order_golden ] );
      ( "conservation",
        [
          qt qcheck_walk_conservation;
          qt qcheck_witness_conservation;
          qt qcheck_congestion_accounting;
        ] );
    ]
