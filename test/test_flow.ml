open Sparse_graph
open Flow

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg ~eps expected got =
  Alcotest.(check (float eps)) msg expected got

(* ------------------------------------------------------------------ *)
(* Residual networks                                                   *)
(* ------------------------------------------------------------------ *)

let test_net_structure () =
  let g = Generators.cycle 4 in
  let net = Net.of_graph g in
  checki "arc count" (2 * Graph.m g) (Array.length net.Net.cap);
  for e = 0 to Graph.m g - 1 do
    checki "twin of forward arc" ((2 * e) + 1) (Net.twin (2 * e));
    checki "twin of reverse arc" (2 * e) (Net.twin ((2 * e) + 1));
    checki "zero flow initially" 0 (Net.edge_flow net e)
  done;
  checkb "feasible initially" true (Net.feasible net);
  for v = 0 to 3 do
    checki "zero divergence initially" 0 (Net.divergence net v)
  done

let test_net_capacity_and_reset () =
  let g = Generators.path 3 in
  let net = Net.of_graph ~capacity:(fun e -> e + 2) g in
  checki "edge 0 capacity" 2 net.Net.cap0.(0);
  checki "edge 1 capacity" 3 net.Net.cap0.(2);
  net.Net.cap.(0) <- 0;
  net.Net.cap.(1) <- 4;
  checkb "flow shows on the edge" true (Net.edge_flow net 0 <> 0);
  Net.reset net;
  checki "reset restores arc 0" 2 net.Net.cap.(0);
  checki "reset restores twin" 2 net.Net.cap.(1);
  checki "reset clears flow" 0 (Net.edge_flow net 0)

let test_net_rejects_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Flow.Net.of_graph: negative capacity -1 on edge 0")
    (fun () ->
      ignore (Net.of_graph ~capacity:(fun _ -> -1) (Generators.cycle 3)))

(* ------------------------------------------------------------------ *)
(* Exact s-t max flow                                                  *)
(* ------------------------------------------------------------------ *)

let flow_value g ?capacity ~s ~t () =
  let v, net, outcome = Push_relabel.max_flow_st ?capacity g ~s ~t in
  (* conservation: the flow diverges only at the endpoints *)
  checkb "network stays feasible" true (Net.feasible net);
  checki "source divergence" v (Net.divergence net s);
  checki "sink divergence" (-v) (Net.divergence net t);
  for u = 0 to Graph.n g - 1 do
    if u <> s && u <> t then checki "interior vertex" 0 (Net.divergence net u)
  done;
  checkb "exact run fully routes or saturates" true
    (outcome.Push_relabel.routed = v);
  v

let test_max_flow_cycle () =
  checki "two arc-disjoint paths around C8" 2
    (flow_value (Generators.cycle 8) ~s:0 ~t:4 ())

let test_max_flow_path () =
  checki "single path" 1 (flow_value (Generators.path 6) ~s:0 ~t:5 ())

let test_max_flow_complete () =
  (* K6 with unit capacities: the direct edge plus 4 two-hop paths *)
  checki "K6 connectivity" 5 (flow_value (Generators.complete 6) ~s:0 ~t:3 ())

let test_max_flow_barbell_bridge () =
  let g = Generators.barbell 5 1 in
  checki "bridge bottleneck" 1 (flow_value g ~s:0 ~t:(Graph.n g - 1) ())

let test_max_flow_weighted () =
  (* C4 with capacity 3 on every edge: both directions carry 3 *)
  checki "weighted cycle" 6
    (flow_value (Generators.cycle 4) ~capacity:(fun _ -> 3) ~s:0 ~t:2 ())

let test_max_flow_validation () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "s = t"
    (Invalid_argument "Flow.Push_relabel.max_flow_st: bad endpoints")
    (fun () ->
      ignore (Push_relabel.max_flow_st g ~s:1 ~t:1))

(* brute-force min cut: enumerate every side containing s but not t *)
let brute_min_cut g ~capacity ~s ~t =
  let n = Graph.n g in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl t) = 0 then begin
      let c =
        Graph.fold_edges g
          (fun acc e u v ->
            let su = mask land (1 lsl u) <> 0 in
            let sv = mask land (1 lsl v) <> 0 in
            if su <> sv then acc + capacity e else acc)
          0
      in
      if c < !best then best := c
    end
  done;
  !best

let test_max_flow_equals_min_cut_fixed () =
  List.iter
    (fun (name, g) ->
      let capacity e = 1 + (e mod 3) in
      let v, _, _ = Push_relabel.max_flow_st ~capacity g ~s:0 ~t:(Graph.n g - 1) in
      checki (name ^ ": max flow = min cut")
        (brute_min_cut g ~capacity ~s:0 ~t:(Graph.n g - 1))
        v)
    [
      ("C6", Generators.cycle 6);
      ("K5", Generators.complete 5);
      ("grid2x4", Generators.grid 2 4);
      ("barbell", Generators.barbell 4 1);
    ]

(* ------------------------------------------------------------------ *)
(* Bounded-height runs and level cuts                                  *)
(* ------------------------------------------------------------------ *)

let test_bounded_height_retires () =
  (* barbell: 8 units of supply in one clique, sinks in the other; only
     one unit fits through the bridge, the rest retires at the cap *)
  let g = Generators.barbell 8 2 in
  let n = Graph.n g in
  let net = Net.of_graph g in
  let supply = Array.init n (fun v -> if v < 8 then 1 else 0) in
  let sink_cap = Array.init n (fun v -> if v >= n - 8 then 1 else 0) in
  let limit = 4 in
  let outcome = Push_relabel.run net ~supply ~sink_cap ~limit in
  checki "supply counted" 8 outcome.Push_relabel.supply_total;
  checkb "not fully routed" false (Push_relabel.fully_routed outcome);
  Array.iter
    (fun h -> checkb "height within the cap" true (h >= 0 && h <= limit))
    outcome.Push_relabel.height;
  (* the level structure certifies a sparse cut *)
  match Push_relabel.level_cut g ~height:outcome.Push_relabel.height ~limit with
  | None -> Alcotest.fail "retired run must yield a level cut"
  | Some (side, c) ->
      checkf "reported conductance matches the mask" ~eps:1e-9
        (Spectral.Conductance.of_cut g side)
        c;
      checkb "cut is sparse (bridge-like)" true (c <= 0.2)

let test_level_cut_none_when_flat () =
  let g = Generators.cycle 4 in
  match Push_relabel.level_cut g ~height:(Array.make 4 0) ~limit:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "flat heights have no level structure"

let test_run_validation () =
  let g = Generators.cycle 4 in
  let net = Net.of_graph g in
  Alcotest.check_raises "negative supply"
    (Invalid_argument "Flow.Push_relabel.run: negative supply") (fun () ->
      ignore
        (Push_relabel.run net ~supply:[| -1; 0; 0; 0 |]
           ~sink_cap:(Array.make 4 1) ~limit:5))

(* ------------------------------------------------------------------ *)
(* Path decomposition                                                  *)
(* ------------------------------------------------------------------ *)

let test_decompose_st_flow () =
  let g = Generators.grid 4 4 in
  let v, net, _ = Push_relabel.max_flow_st g ~s:0 ~t:15 in
  let dec = Path_decompose.decompose net in
  checki "total equals flow value" v dec.Path_decompose.total;
  checki "amounts add up" v
    (List.fold_left
       (fun acc p -> acc + p.Path_decompose.amount)
       0 dec.Path_decompose.paths);
  List.iter
    (fun p ->
      checki "every path starts at s" 0 p.Path_decompose.src;
      checki "every path ends at t" 15 p.Path_decompose.dst;
      checkb "positive length" true (p.Path_decompose.length >= 1);
      checkb "length within max" true
        (p.Path_decompose.length <= dec.Path_decompose.max_length))
    dec.Path_decompose.paths

let test_decompose_leaves_net_intact () =
  let g = Generators.cycle 8 in
  let _, net, _ = Push_relabel.max_flow_st g ~s:0 ~t:4 in
  let before = Array.copy net.Net.cap in
  ignore (Path_decompose.decompose net);
  Alcotest.(check (array int)) "net not mutated" before net.Net.cap

let test_decompose_zero_flow () =
  let net = Net.of_graph (Generators.cycle 5) in
  let dec = Path_decompose.decompose net in
  checki "no paths" 0 (List.length dec.Path_decompose.paths);
  checki "zero total" 0 dec.Path_decompose.total

(* ------------------------------------------------------------------ *)
(* Cut heuristics                                                      *)
(* ------------------------------------------------------------------ *)

let test_component_cut () =
  let g =
    Graph_ops.disjoint_union (Generators.cycle 5) (Generators.complete 4)
  in
  (match Cut_heuristics.component_cut g with
  | None -> Alcotest.fail "disconnected graph must yield a component cut"
  | Some cut ->
      checkf "zero conductance" ~eps:1e-9 0. cut.Cut_heuristics.conductance;
      checkf "mask agrees" ~eps:1e-9 0.
        (Spectral.Conductance.of_cut g cut.Cut_heuristics.side);
      Alcotest.(check string) "source" "component" cut.Cut_heuristics.source);
  checkb "connected graph has none" true
    (Cut_heuristics.component_cut (Generators.cycle 5) = None)

let test_cheapest_finds_barbell () =
  let g = Generators.barbell 8 2 in
  match Cut_heuristics.cheapest g ~tau:0.3 with
  | None -> Alcotest.fail "a sweep should see the bridge"
  | Some cut ->
      checkb "below tau" true (cut.Cut_heuristics.conductance < 0.3);
      checkf "mask agrees" ~eps:1e-9
        (Spectral.Conductance.of_cut g cut.Cut_heuristics.side)
        cut.Cut_heuristics.conductance

let test_cheapest_rejects_expander () =
  (* K12's best cut has conductance ~0.55: no sweep beats tau = 0.1 *)
  checkb "no cheap cut on K12" true
    (Cut_heuristics.cheapest (Generators.complete 12) ~tau:0.1 = None)

(* ------------------------------------------------------------------ *)
(* Cut-matching game                                                   *)
(* ------------------------------------------------------------------ *)

let matching_is_partial_perfect ~n pairs =
  (* every vertex at most once, endpoints in range, n/2 pairs *)
  let seen = Array.make n false in
  Array.for_all
    (fun (a, b) ->
      a >= 0 && a < n && b >= 0 && b < n && a <> b
      && (not seen.(a)) && not seen.(b)
      &&
      (seen.(a) <- true;
       seen.(b) <- true;
       true))
    pairs
  && Array.length pairs = n / 2

let test_game_accepts_complete () =
  let g = Generators.complete 16 in
  let verdict, stats = Cut_matching.run g ~tau:0.2 ~seed:5 in
  match verdict with
  | Cut_matching.Cut _ -> Alcotest.fail "K16 is an expander"
  | Cut_matching.Expander w ->
      checkb "some rounds played" true (w.Cut_matching.rounds >= 1);
      checkb "every routed round embedded a matching" true
        (List.length w.Cut_matching.matchings = w.Cut_matching.rounds);
      checkb "flow ran" true (stats.Cut_matching.flow_calls >= 1);
      checki "congestion is the per-edge capacity" 5 w.Cut_matching.congestion;
      checkb "paths have positive length" true
        (w.Cut_matching.max_path_length >= 1);
      List.iter
        (fun pairs ->
          checkb "each matching is perfect across the bisection" true
            (matching_is_partial_perfect ~n:16 pairs))
        w.Cut_matching.matchings

let test_game_cuts_barbell () =
  let g = Generators.barbell 8 2 in
  let verdict, _ = Cut_matching.run g ~tau:0.25 ~seed:3 in
  match verdict with
  | Cut_matching.Expander _ -> Alcotest.fail "the barbell bridge must be found"
  | Cut_matching.Cut c ->
      checkb "below tau" true (c.Cut_matching.conductance < 0.25);
      checkf "mask agrees" ~eps:1e-9
        (Spectral.Conductance.of_cut g c.Cut_matching.side)
        c.Cut_matching.conductance;
      checkb "via is tagged" true
        (List.mem c.Cut_matching.via
           [ "projection"; "flow"; "projection-fallback" ])

let test_game_trivial_accepts () =
  List.iter
    (fun g ->
      match Cut_matching.run g ~tau:0.5 ~seed:1 with
      | Cut_matching.Expander w, stats ->
          checki "no rounds" 0 w.Cut_matching.rounds;
          checki "no flow" 0 stats.Cut_matching.flow_calls
      | Cut_matching.Cut _, _ -> Alcotest.fail "trivial cluster was cut")
    [ Generators.path 2; Generators.cycle 3; Graph.empty 5 ]

let test_game_deterministic () =
  let g = Generators.random_apollonian 40 ~seed:9 in
  let v1 = Cut_matching.run g ~tau:0.2 ~seed:17 in
  let v2 = Cut_matching.run g ~tau:0.2 ~seed:17 in
  checkb "identical verdict and stats on identical input" true (v1 = v2)

(* ------------------------------------------------------------------ *)
(* Flow-based decomposition engine                                     *)
(* ------------------------------------------------------------------ *)

let check_cm_decomposition g eps =
  let d, stats = Decomp_engine.decompose g ~epsilon:eps in
  let open Spectral.Expander_decomposition in
  Array.iter
    (fun l -> checkb "label in range" true (l >= 0 && l < d.k))
    d.labels;
  let inter_ok, worst = verify g d in
  checkb "inter-cluster fraction within epsilon" true inter_ok;
  checkb
    (Printf.sprintf "cluster conductance %.4f >= phi %.4f" worst d.phi)
    true
    (worst >= d.phi -. 1e-9);
  (d, stats)

(* the acceptance oracle: on graphs small enough to enumerate, every
   accepted cluster's exact conductance must reach the certified phi *)
let check_against_exact_oracle g eps =
  let d, _ = Decomp_engine.decompose g ~epsilon:eps in
  Array.iter
    (fun (_, sub, _) ->
      if Graph.n sub >= 2 && Graph.m sub > 0 then
        checkb
          (Printf.sprintf "exact cluster conductance >= phi %.4f" d.Spectral.Expander_decomposition.phi)
          true
          (Spectral.Conductance.exact sub
          >= d.Spectral.Expander_decomposition.phi -. 1e-9))
    (Spectral.Expander_decomposition.clusters g d)

let test_engine_grid () = ignore (check_cm_decomposition (Generators.grid 8 8) 0.3)

let test_engine_apollonian () =
  let _, stats =
    check_cm_decomposition (Generators.random_apollonian 150 ~seed:12) 0.25
  in
  ignore stats

let test_engine_barbell_splits () =
  let g = Generators.barbell 10 2 in
  let d, _ = Decomp_engine.decompose g ~epsilon:0.2 in
  checkb "cliques separated" true
    (d.Spectral.Expander_decomposition.labels.(0)
    <> d.Spectral.Expander_decomposition.labels.(Graph.n g - 1))

let test_engine_expander_stays_whole () =
  let g = Generators.complete 16 in
  let d, _ = Decomp_engine.decompose g ~epsilon:0.3 in
  checki "one cluster" 1 d.Spectral.Expander_decomposition.k

let test_engine_oracle_small_graphs () =
  List.iter
    (fun g -> check_against_exact_oracle g 0.3)
    [
      Generators.grid 4 6;
      Generators.cycle 20;
      Generators.barbell 8 2;
      Generators.random_apollonian 24 ~seed:13;
      Generators.random_tree 24 ~seed:14;
    ]

let test_engine_pool_parity () =
  let g = Generators.random_apollonian 120 ~seed:15 in
  let p1 = Parallel.Pool.create ~jobs:1 () in
  let p4 = Parallel.Pool.create ~jobs:4 () in
  let d1, s1 = Decomp_engine.decompose ~pool:p1 g ~epsilon:0.3 in
  let d4, s4 = Decomp_engine.decompose ~pool:p4 g ~epsilon:0.3 in
  let dseq, sseq = Decomp_engine.decompose g ~epsilon:0.3 in
  Alcotest.(check (array int))
    "labels identical across pool sizes"
    d1.Spectral.Expander_decomposition.labels
    d4.Spectral.Expander_decomposition.labels;
  Alcotest.(check (array int))
    "sequential agrees" d1.Spectral.Expander_decomposition.labels
    dseq.Spectral.Expander_decomposition.labels;
  checkb "stats identical" true (s1 = s4 && s1 = sseq)

let test_engine_validation () =
  Alcotest.check_raises "eps = 0"
    (Invalid_argument "Decomp_engine.decompose: need 0 < epsilon < 1")
    (fun () ->
      ignore (Decomp_engine.decompose (Generators.cycle 5) ~epsilon:0.))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_connected_graph =
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 4 10) (int_range 0 1000) (int_range 0 12))

let build_connected (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_max_flow_min_cut =
  QCheck.Test.make ~name:"max flow equals brute-force min cut" ~count:80
    arb_connected_graph (fun input ->
      let g = build_connected input in
      let n = Graph.n g in
      let capacity e = 1 + (e mod 3) in
      let v, net, _ = Push_relabel.max_flow_st ~capacity g ~s:0 ~t:(n - 1) in
      Net.feasible net && v = brute_min_cut g ~capacity ~s:0 ~t:(n - 1))

let prop_flow_conservation =
  QCheck.Test.make ~name:"routed flow conserves at interior vertices"
    ~count:80 arb_connected_graph (fun input ->
      let g = build_connected input in
      let n = Graph.n g in
      let v, net, _ = Push_relabel.max_flow_st g ~s:0 ~t:(n - 1) in
      Net.divergence net 0 = v
      && Net.divergence net (n - 1) = -v
      && (let ok = ref true in
          for u = 1 to n - 2 do
            if Net.divergence net u <> 0 then ok := false
          done;
          !ok))

let prop_path_decomposition_total =
  QCheck.Test.make ~name:"path decomposition accounts for the full flow"
    ~count:80 arb_connected_graph (fun input ->
      let g = build_connected input in
      let n = Graph.n g in
      let v, net, _ = Push_relabel.max_flow_st g ~s:0 ~t:(n - 1) in
      let dec = Path_decompose.decompose net in
      dec.Path_decompose.total = v
      && List.for_all
           (fun p ->
             p.Path_decompose.src = 0 && p.Path_decompose.dst = n - 1)
           dec.Path_decompose.paths)

let prop_bounded_height_certifies =
  QCheck.Test.make
    ~name:"a retired bounded run yields a valid level-cut certificate"
    ~count:80 arb_connected_graph (fun input ->
      let g = build_connected input in
      let n = Graph.n g in
      let net = Net.of_graph g in
      let supply = Array.make n 0 in
      let sink_cap = Array.make n 0 in
      supply.(0) <- n;
      sink_cap.(n - 1) <- n;
      let limit = 3 in
      let outcome = Push_relabel.run net ~supply ~sink_cap ~limit in
      if Push_relabel.fully_routed outcome then true
      else
        match
          Push_relabel.level_cut g ~height:outcome.Push_relabel.height ~limit
        with
        | None -> false
        | Some (side, c) ->
            abs_float (Spectral.Conductance.of_cut g side -. c) < 1e-9)

let prop_game_verdict_sound =
  QCheck.Test.make
    ~name:"cut-matching verdicts agree with the exact conductance oracle"
    ~count:40 arb_connected_graph (fun input ->
      let g = build_connected input in
      let n = Graph.n g in
      let tau = 0.15 in
      match Cut_matching.run g ~tau ~seed:7 with
      | Cut_matching.Cut c, _ ->
          (* a reported cut must be a real cut of that conductance *)
          abs_float
            (Spectral.Conductance.of_cut g c.Cut_matching.side
            -. c.Cut_matching.conductance)
          < 1e-9
          && Array.exists Fun.id c.Cut_matching.side
          && not (Array.for_all Fun.id c.Cut_matching.side)
      | Cut_matching.Expander w, _ ->
          (* an accepted cluster really has conductance >= tau^2 / 4 *)
          List.for_all (matching_is_partial_perfect ~n) w.Cut_matching.matchings
          && Spectral.Conductance.exact g >= (tau *. tau /. 4.) -. 1e-9)

let prop_engine_budget_and_parity =
  QCheck.Test.make
    ~name:"flow engine respects the edge budget at every pool size" ~count:30
    arb_connected_graph (fun input ->
      let g = build_connected input in
      let d, _ = Decomp_engine.decompose g ~epsilon:0.3 in
      let pool = Parallel.Pool.create ~jobs:4 () in
      let d4, _ = Decomp_engine.decompose ~pool g ~epsilon:0.3 in
      d.Spectral.Expander_decomposition.labels
      = d4.Spectral.Expander_decomposition.labels
      && float_of_int
           (List.length d.Spectral.Expander_decomposition.inter_edges)
         <= (0.3 *. float_of_int (Graph.m g)) +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_max_flow_min_cut;
      prop_flow_conservation;
      prop_path_decomposition_total;
      prop_bounded_height_certifies;
      prop_game_verdict_sound;
      prop_engine_budget_and_parity;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flow"
    [
      ( "net",
        [
          tc "twin-arc structure" test_net_structure;
          tc "capacities and reset" test_net_capacity_and_reset;
          tc "rejects negative capacity" test_net_rejects_negative_capacity;
        ] );
      ( "max_flow",
        [
          tc "cycle" test_max_flow_cycle;
          tc "path" test_max_flow_path;
          tc "complete graph" test_max_flow_complete;
          tc "barbell bridge" test_max_flow_barbell_bridge;
          tc "weighted edges" test_max_flow_weighted;
          tc "validation" test_max_flow_validation;
          tc "equals brute-force min cut" test_max_flow_equals_min_cut_fixed;
        ] );
      ( "bounded_height",
        [
          tc "retirement at the cap" test_bounded_height_retires;
          tc "no cut from flat heights" test_level_cut_none_when_flat;
          tc "validation" test_run_validation;
        ] );
      ( "path_decompose",
        [
          tc "s-t flow" test_decompose_st_flow;
          tc "does not mutate the net" test_decompose_leaves_net_intact;
          tc "zero flow" test_decompose_zero_flow;
        ] );
      ( "cut_heuristics",
        [
          tc "component cut" test_component_cut;
          tc "finds the barbell bridge" test_cheapest_finds_barbell;
          tc "rejects an expander" test_cheapest_rejects_expander;
        ] );
      ( "cut_matching",
        [
          tc "accepts K16" test_game_accepts_complete;
          tc "cuts the barbell" test_game_cuts_barbell;
          tc "trivial clusters accepted" test_game_trivial_accepts;
          tc "deterministic" test_game_deterministic;
        ] );
      ( "decomp_engine",
        [
          tc "grid" test_engine_grid;
          tc "apollonian" test_engine_apollonian;
          tc "barbell splits at bridge" test_engine_barbell_splits;
          tc "expander stays whole" test_engine_expander_stays_whole;
          tc "exact oracle on small graphs" test_engine_oracle_small_graphs;
          tc "pool parity" test_engine_pool_parity;
          tc "epsilon validation" test_engine_validation;
        ] );
      ("properties", qcheck_cases);
    ]
