open Sparse_graph
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_simulated_small () =
  let g = Generators.random_apollonian 40 ~seed:1 in
  let p = Pipeline.prepare g ~epsilon:0.3 ~seed:1 in
  (* every vertex belongs to exactly one cluster; leaders are members *)
  let seen = Array.make (Graph.n g) 0 in
  Array.iter
    (fun (cl : Pipeline.cluster) ->
      checkb "leader is member" true (List.mem cl.leader cl.members);
      List.iter (fun v -> seen.(v) <- seen.(v) + 1) cl.members;
      (* leader has the maximum intra-cluster degree *)
      let ld = Graph.degree cl.sub cl.mapping.to_sub.(cl.leader) in
      List.iter
        (fun v ->
          checkb "leader degree maximal" true
            (Graph.degree cl.sub cl.mapping.to_sub.(v) <= ld))
        cl.members)
    p.clusters;
  Array.iter (fun c -> check "each vertex once" 1 c) seen;
  checkb "simulated stats present" true (p.report.election_stats <> None);
  checkb "positive simulated rounds" true (p.report.simulated_rounds > 0);
  checkb "charged construction positive" true
    (p.report.charged_construction_rounds > 0)

let test_pipeline_charged_matches_simulated_clusters () =
  let g = Generators.grid 6 6 in
  let ps = Pipeline.prepare ~mode:Simulated g ~epsilon:0.3 ~seed:2 in
  let pc = Pipeline.prepare ~mode:Charged g ~epsilon:0.3 ~seed:2 in
  Alcotest.(check (array int)) "same leaders" ps.leader_of pc.leader_of;
  check "same cluster count" ps.report.k pc.report.k;
  checkb "charged has no sim stats" true (pc.report.election_stats = None)

let test_pipeline_inter_fraction () =
  let g = Generators.random_apollonian 100 ~seed:3 in
  let p = Pipeline.prepare ~mode:Charged g ~epsilon:0.25 ~seed:3 in
  checkb "within budget" true (p.report.inter_fraction <= 0.25 +. 1e-9)

let test_pipeline_solve_locally () =
  let g = Generators.grid 5 5 in
  let p = Pipeline.prepare ~mode:Charged g ~epsilon:0.4 ~seed:4 in
  let sizes = Pipeline.solve_locally p (fun cl -> List.length cl.members) in
  check "sizes sum to n" 25 (Array.fold_left ( + ) 0 sizes)

let test_pipeline_broadcast () =
  let g = Generators.random_apollonian 30 ~seed:5 in
  let p = Pipeline.prepare g ~epsilon:0.3 ~seed:5 in
  match Pipeline.broadcast_result p ~payload:(fun leader -> leader) with
  | None -> Alcotest.fail "expected stats in simulated mode"
  | Some stats -> checkb "broadcast ran" true (stats.Congest.Network.rounds > 0)

(* ------------------------------------------------------------------ *)
(* MaxIS application (Theorem 1.2)                                     *)
(* ------------------------------------------------------------------ *)

let test_mis_app_ratio () =
  List.iter
    (fun (name, g) ->
      let r = App_mis.run ~mode:Charged g ~epsilon:0.4 ~seed:6 in
      checkb (name ^ " independent") true
        (Optimize.Mis.is_independent g r.independent_set);
      let opt = Optimize.Mis.exact_size g in
      let ratio = App_mis.ratio r ~opt in
      checkb
        (Printf.sprintf "%s ratio %.3f >= 0.6" name ratio)
        true (ratio >= 0.6))
    [
      ("grid", Generators.grid 7 7);
      ("apollonian", Generators.random_apollonian 60 ~seed:7);
      ("outerplanar", Generators.random_maximal_outerplanar 50 ~seed:8);
      ("tree", Generators.random_tree 50 ~seed:9);
    ]

let test_mis_app_simulated_consistent () =
  let g = Generators.random_apollonian 35 ~seed:10 in
  let rs = App_mis.run ~mode:Simulated g ~epsilon:0.4 ~seed:10 in
  let rc = App_mis.run ~mode:Charged g ~epsilon:0.4 ~seed:10 in
  check "same result both modes" rc.size rs.size

let test_mis_app_epsilon_improves () =
  (* smaller epsilon must not hurt on average; check a single seed pair *)
  let g = Generators.random_apollonian 80 ~seed:11 in
  let loose = App_mis.run ~mode:Charged g ~epsilon:0.8 ~seed:11 in
  let tight = App_mis.run ~mode:Charged g ~epsilon:0.1 ~seed:11 in
  let opt = Optimize.Mis.exact_size g in
  checkb "tight at least as good" true
    (App_mis.ratio tight ~opt >= App_mis.ratio loose ~opt -. 0.1)

let test_mis_app_weighted () =
  for seed = 0 to 3 do
    let g =
      Generators.add_random_edges (Generators.random_tree 14 ~seed) 8 ~seed
    in
    let st = Random.State.make [| seed; 4099 |] in
    let weights = Array.init (Graph.n g) (fun _ -> 1 + Random.State.int st 25) in
    let r = App_mis.run_weighted ~mode:Charged g ~weights ~epsilon:0.3 ~seed in
    checkb "independent" true
      (Optimize.Mis.is_independent g r.w_independent_set);
    let opt = Optimize.Mis.brute_force_weighted g weights in
    checkb
      (Printf.sprintf "seed %d weighted ratio %d/%d" seed r.total_weight opt)
      true
      (float_of_int r.total_weight >= 0.6 *. float_of_int opt)
  done

let test_construction_charges () =
  let c1 = Pipeline.construction_charge ~n:1024 ~epsilon:0.5 in
  let c2 = Pipeline.construction_charge ~n:4096 ~epsilon:0.5 in
  checkb "monotone in n" true (c2 > c1);
  let d1 = Pipeline.construction_charge_deterministic ~n:1024 ~epsilon:0.5 in
  let d2 = Pipeline.construction_charge_deterministic ~n:4096 ~epsilon:0.5 in
  checkb "deterministic monotone" true (d2 > d1);
  (* 2^sqrt(log n log log n) is superpolylog: must dominate eventually *)
  let big = Pipeline.construction_charge_deterministic ~n:(1 lsl 30) ~epsilon:0.5 in
  let poly = Pipeline.construction_charge ~n:(1 lsl 30) ~epsilon:0.5 in
  checkb "subexponential above polylog at large n" true (big > poly / 30)

(* ------------------------------------------------------------------ *)
(* Matching application (Theorems 3.2 and 1.1)                         *)
(* ------------------------------------------------------------------ *)

let test_mcm_planar_ratio () =
  List.iter
    (fun (name, g) ->
      let r = App_matching.mcm_planar ~mode:Charged g ~epsilon:0.3 ~seed:12 in
      checkb (name ^ " valid") true (Matching.Blossom.is_valid_matching g r.mate);
      let opt =
        Matching.Blossom.size (Matching.Blossom.max_cardinality_matching g)
      in
      let ratio = if opt = 0 then 1. else float_of_int r.size /. float_of_int opt in
      checkb
        (Printf.sprintf "%s mcm ratio %.3f >= 0.7" name ratio)
        true (ratio >= 0.7))
    [
      ("grid", Generators.grid 8 8);
      ("apollonian", Generators.random_apollonian 70 ~seed:13);
      ("planar+stars",
       Generators.attach_stars (Generators.random_planar 50 0.6 ~seed:14)
         ~stars:5 ~leaves:4 ~seed:14);
    ]

let test_mcm_planar_simulated () =
  let g = Generators.random_apollonian 30 ~seed:15 in
  let r = App_matching.mcm_planar ~mode:Simulated g ~epsilon:0.4 ~seed:15 in
  checkb "valid" true (Matching.Blossom.is_valid_matching g r.mate)

let test_mwm_ratio_small () =
  (* measured ratio against the exact DP optimum on small graphs *)
  for seed = 0 to 4 do
    let g =
      Generators.add_random_edges (Generators.random_tree 14 ~seed) 8 ~seed
    in
    let w = Weights.random g ~max_w:40 ~seed in
    let r = App_matching.mwm ~mode:Charged g w ~epsilon:0.25 ~seed in
    checkb "valid" true (Matching.Blossom.is_valid_matching g r.mate);
    let opt = Matching.Exact_small.max_weight_matching g w in
    let ratio = App_matching.ratio r ~opt in
    checkb
      (Printf.sprintf "seed %d mwm ratio %.3f >= 0.6" seed ratio)
      true (ratio >= 0.6)
  done

let test_mwm_beats_greedy_often () =
  let wins = ref 0 and total = ref 0 in
  for seed = 0 to 5 do
    let g = Generators.random_apollonian 60 ~seed in
    let w = Weights.random g ~max_w:60 ~seed in
    let r = App_matching.mwm ~mode:Charged g w ~epsilon:0.2 ~seed in
    let greedy =
      Matching.Approx.weight g w (Matching.Approx.greedy g w)
    in
    incr total;
    if r.weight >= greedy then incr wins
  done;
  checkb
    (Printf.sprintf "framework >= greedy on %d/%d" !wins !total)
    true
    (2 * !wins >= !total)

(* ------------------------------------------------------------------ *)
(* Correlation clustering application (Theorem 1.3)                    *)
(* ------------------------------------------------------------------ *)

let test_correlation_app_bound () =
  List.iter
    (fun seed ->
      let g = Generators.random_apollonian 50 ~seed in
      let labels = Generators.random_sign_labels g ~frac_pos:0.5 ~seed in
      let r = App_correlation.run ~mode:Charged g ~labels ~epsilon:0.3 ~seed in
      (* gamma >= m/2 always; the framework must achieve at least
         (1 - eps) * m/2 up to heuristic slack; check >= 0.4 m *)
      checkb
        (Printf.sprintf "seed %d score %d vs m %d" seed r.score (Graph.m g))
        true
        (5 * r.score >= 2 * Graph.m g))
    [ 0; 1; 2 ]

let test_correlation_app_planted () =
  (* planted communities, zero noise: the framework should score near m *)
  let g = Generators.grid 6 6 in
  let communities = Array.init 36 (fun v -> (v mod 6) / 3) in
  let labels = Generators.planted_sign_labels g communities ~noise:0. ~seed:16 in
  let r = App_correlation.run ~mode:Charged g ~labels ~epsilon:0.2 ~seed:16 in
  checkb
    (Printf.sprintf "score %d >= 0.85 m (%d)" r.score (Graph.m g))
    true
    (float_of_int r.score >= 0.85 *. float_of_int (Graph.m g))

let test_correlation_app_simulated () =
  let g = Generators.random_apollonian 25 ~seed:17 in
  let labels = Generators.random_sign_labels g ~frac_pos:0.6 ~seed:17 in
  let r = App_correlation.run ~mode:Simulated g ~labels ~epsilon:0.4 ~seed:17 in
  checkb "some positive score" true (r.score > 0)

(* ------------------------------------------------------------------ *)
(* Property testing application (Theorem 1.4)                          *)
(* ------------------------------------------------------------------ *)

let test_property_app_accepts_members () =
  (* one-sided error: members are always accepted *)
  List.iter
    (fun (pname, prop, g) ->
      let v = App_property.run ~mode:Charged g prop ~epsilon:0.2 ~seed:18 in
      checkb (pname ^ " accepted") true v.accepted)
    [
      ("planar/apollonian", Minorfree.Properties.planar,
       Generators.random_apollonian 60 ~seed:19);
      ("planar/grid", Minorfree.Properties.planar, Generators.grid 7 7);
      ("forest/tree", Minorfree.Properties.forest,
       Generators.random_tree 60 ~seed:20);
      ("outerplanar/outerplanar", Minorfree.Properties.outerplanar,
       Generators.random_maximal_outerplanar 40 ~seed:21);
      ("series-parallel/2-tree", Minorfree.Properties.series_parallel,
       Generators.random_k_tree 40 2 ~seed:22);
    ]

let test_property_app_rejects_far () =
  (* epsilon-far inputs must be rejected *)
  let eps = 0.15 in
  (* far from planar: plant many K5s on a grid *)
  let base = Generators.grid 10 10 in
  let count = 1 + int_of_float (eps *. float_of_int (Graph.m base)) in
  let count = min count (Graph.n base / 5) in
  let far_planar = Generators.plant_k5s base count ~seed:23 in
  checkb "construction is actually far" true
    (Minorfree.Properties.far_from ~epsilon:eps far_planar
       Minorfree.Properties.planar
    || count >= 20);
  let v =
    App_property.run ~mode:Charged far_planar Minorfree.Properties.planar
      ~epsilon:eps ~seed:23
  in
  checkb "far-from-planar rejected" true (not v.accepted);
  (* far from forest: a dense planar graph *)
  let cyclic = Generators.random_apollonian 60 ~seed:24 in
  checkb "far from forest" true
    (Minorfree.Properties.far_from ~epsilon:0.3 cyclic
       Minorfree.Properties.forest);
  let v2 =
    App_property.run ~mode:Charged cyclic Minorfree.Properties.forest
      ~epsilon:0.3 ~seed:24
  in
  checkb "far-from-forest rejected" true (not v2.accepted)

let test_property_app_simulated_accepts () =
  let g = Generators.random_apollonian 30 ~seed:25 in
  let v =
    App_property.run ~mode:Simulated g Minorfree.Properties.planar
      ~epsilon:0.3 ~seed:25
  in
  checkb "accepted under simulation" true v.accepted;
  (* the Section 2.3 diameter check ran and found no failure *)
  Alcotest.(check (option int)) "no diameter marks" (Some 0) v.diameter_marks

(* ------------------------------------------------------------------ *)
(* Covering applications (extensions)                                  *)
(* ------------------------------------------------------------------ *)

let test_covering_apps () =
  List.iter
    (fun (name, g, seed) ->
      let ds = App_covering.dominating_set ~mode:Charged g ~epsilon:0.3 ~seed in
      checkb (name ^ " dominating valid") true
        (Optimize.Dominating.is_dominating g ds.solution);
      let vc = App_covering.vertex_cover ~mode:Charged g ~epsilon:0.3 ~seed in
      checkb (name ^ " cover valid") true
        (Optimize.Vertex_cover.is_cover g vc.solution);
      if Graph.n g <= 80 then begin
        let ds_opt = Optimize.Dominating.exact_size g in
        checkb
          (Printf.sprintf "%s dominating %d within 1.5x of %d" name ds.size ds_opt)
          true
          (2 * ds.size <= 3 * ds_opt);
        let vc_opt = Optimize.Vertex_cover.exact_size g in
        checkb
          (Printf.sprintf "%s cover %d within 1.5x of %d" name vc.size vc_opt)
          true
          (2 * vc.size <= 3 * vc_opt)
      end)
    [
      ("grid", Generators.grid 7 7, 50);
      ("tree", Generators.random_tree 60 ~seed:51, 51);
      ("blob-chain", Generators.blob_chain ~blobs:5 ~blob_size:12 ~seed:52, 52);
    ]

(* ------------------------------------------------------------------ *)
(* LDD application (Theorem 1.5)                                       *)
(* ------------------------------------------------------------------ *)

let test_ldd_app_budget_and_diameter () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let r = App_ldd.run ~mode:Charged g ~epsilon:eps ~seed:26 in
          checkb
            (Printf.sprintf "%s eps=%.2f cut %.3f within budget" name eps
               r.cut_fraction)
            true
            (r.cut_fraction <= eps +. 1e-9);
          checkb "finite diameter" true (r.max_diameter < max_int);
          (* Theorem 1.5 shape: D = O(1/eps); generous constant 40 *)
          checkb
            (Printf.sprintf "%s diameter %d = O(1/eps)" name r.max_diameter)
            true
            (float_of_int r.max_diameter <= 40. /. eps))
        [ 0.5; 0.25 ])
    [
      ("grid", Generators.grid 10 10);
      ("apollonian", Generators.random_apollonian 120 ~seed:27);
      ("tree", Generators.random_tree 100 ~seed:28);
    ]

let test_ldd_app_diameter_shrinks () =
  let g = Generators.grid 14 14 in
  let d eps = (App_ldd.run ~mode:Charged g ~epsilon:eps ~seed:29).max_diameter in
  checkb "monotone-ish in epsilon" true (d 1.0 <= d 0.08 + 2)

(* ------------------------------------------------------------------ *)
(* QCheck: end-to-end invariants                                       *)
(* ------------------------------------------------------------------ *)

let arb_planar =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 8 60) (int_range 0 5_000))

let prop_mis_always_independent =
  QCheck.Test.make ~name:"framework MIS output is always independent"
    ~count:40 arb_planar (fun (n, seed) ->
      let g = Generators.random_planar n 0.7 ~seed in
      let r = App_mis.run ~mode:Charged g ~epsilon:0.3 ~seed in
      Optimize.Mis.is_independent g r.independent_set)

let prop_mcm_always_valid =
  QCheck.Test.make ~name:"framework MCM output is always a matching"
    ~count:40 arb_planar (fun (n, seed) ->
      let g = Generators.random_planar n 0.6 ~seed in
      let r = App_matching.mcm_planar ~mode:Charged g ~epsilon:0.3 ~seed in
      Matching.Blossom.is_valid_matching g r.mate)

let prop_property_one_sided =
  QCheck.Test.make ~name:"property tester accepts every planar input"
    ~count:40 arb_planar (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      (App_property.run ~mode:Charged g Minorfree.Properties.planar
         ~epsilon:0.25 ~seed)
        .accepted)

let prop_ldd_budget =
  QCheck.Test.make ~name:"LDD app stays within the cut budget" ~count:30
    arb_planar (fun (n, seed) ->
      let g = Generators.random_apollonian n ~seed in
      let r = App_ldd.run ~mode:Charged g ~epsilon:0.4 ~seed in
      r.cut_fraction <= 0.4 +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mis_always_independent;
      prop_mcm_always_valid;
      prop_property_one_sided;
      prop_ldd_budget;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "pipeline",
        [
          tc "simulated end to end" test_pipeline_simulated_small;
          tc "charged matches simulated" test_pipeline_charged_matches_simulated_clusters;
          tc "inter-cluster budget" test_pipeline_inter_fraction;
          tc "solve locally" test_pipeline_solve_locally;
          tc "broadcast" test_pipeline_broadcast;
        ] );
      ( "app_mis",
        [
          tc "ratio across families" test_mis_app_ratio;
          tc "simulated = charged" test_mis_app_simulated_consistent;
          tc "epsilon sensitivity" test_mis_app_epsilon_improves;
          tc "weighted extension" test_mis_app_weighted;
          tc "construction charges" test_construction_charges;
        ] );
      ( "app_matching",
        [
          tc "planar MCM ratio" test_mcm_planar_ratio;
          tc "planar MCM simulated" test_mcm_planar_simulated;
          tc "MWM ratio vs exact" test_mwm_ratio_small;
          tc "MWM vs greedy" test_mwm_beats_greedy_often;
        ] );
      ( "app_correlation",
        [
          tc "trivial bound" test_correlation_app_bound;
          tc "planted communities" test_correlation_app_planted;
          tc "simulated" test_correlation_app_simulated;
        ] );
      ( "app_property",
        [
          tc "accepts members" test_property_app_accepts_members;
          tc "rejects far inputs" test_property_app_rejects_far;
          tc "simulated accept" test_property_app_simulated_accepts;
        ] );
      ( "app_covering", [ tc "dominating set and vertex cover" test_covering_apps ] );
      ( "app_ldd",
        [
          tc "budget and diameter" test_ldd_app_budget_and_diameter;
          tc "diameter vs epsilon" test_ldd_app_diameter_shrinks;
        ] );
      ("qcheck", qcheck_cases);
    ]
