open Sparse_graph
open Distr

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

(* clustered views used across tests: whole-graph and decomposition-based *)
let decomposed_view g eps =
  let d = Spectral.Expander_decomposition.decompose g ~epsilon:eps in
  Cluster_view.of_labels g d.labels

let diam_bound (view : Cluster_view.t) =
  (* safe bound: max cluster diameter, computed centrally *)
  let g = view.graph in
  let n = Graph.n g in
  let best = ref 1 in
  for v = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(v) <- 0;
    Queue.add v queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            Queue.add w queue
          end)
        (Cluster_view.intra_neighbors view u)
    done;
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Leader election                                                     *)
(* ------------------------------------------------------------------ *)

let test_leader_whole_star () =
  let view = Cluster_view.whole (Generators.star 6) in
  let r = Leader_election.run view ~rounds:2 in
  checkb "valid" true (Leader_election.check view r);
  check "hub elected" 0 r.leader_of.(3);
  check "leader degree" 6 r.leader_deg.(3)

let test_leader_tie_break () =
  (* cycle: all degrees equal; largest id must win *)
  let view = Cluster_view.whole (Generators.cycle 7) in
  let r = Leader_election.run view ~rounds:7 in
  checkb "valid" true (Leader_election.check view r);
  check "largest id wins ties" 6 r.leader_of.(0)

let test_leader_clustered () =
  let g = Generators.random_apollonian 80 ~seed:1 in
  let view = decomposed_view g 0.3 in
  let r = Leader_election.run view ~rounds:(diam_bound view) in
  checkb "valid across clusters" true (Leader_election.check view r)

let test_leader_insufficient_rounds_detected () =
  let view = Cluster_view.whole (Generators.path 10) in
  let r = Leader_election.run view ~rounds:2 in
  (* vertex 0 cannot hear about the far end in 2 rounds; check must fail
     because agreement fails *)
  checkb "check detects failure" false (Leader_election.check view r)

(* ------------------------------------------------------------------ *)
(* BFS tree + broadcast                                                *)
(* ------------------------------------------------------------------ *)

let test_bfs_tree_whole () =
  let g = Generators.grid 5 6 in
  let view = Cluster_view.whole g in
  let roots = Array.init (Graph.n g) (fun v -> v = 7) in
  let r = Bfs_tree.run view ~roots ~rounds:12 in
  checkb "valid" true (Bfs_tree.check view r ~roots)

let test_bfs_tree_clustered () =
  let g = Generators.grid 8 8 in
  let view = decomposed_view g 0.3 in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let roots = Array.init (Graph.n g) (fun v -> leaders.leader_of.(v) = v) in
  let r = Bfs_tree.run view ~roots ~rounds:(diam_bound view + 1) in
  checkb "valid" true (Bfs_tree.check view r ~roots)

let test_broadcast_round_trip () =
  let g = Generators.random_apollonian 60 ~seed:2 in
  let view = decomposed_view g 0.3 in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let sources =
    Array.init (Graph.n g) (fun v ->
        if leaders.leader_of.(v) = v then Some (1000 + v) else None)
  in
  let r = Broadcast.run view ~sources ~rounds:(diam_bound view + 1) in
  checkb "everyone got the leader's value" true
    (Broadcast.check view r ~sources)

(* ------------------------------------------------------------------ *)
(* Orientation                                                         *)
(* ------------------------------------------------------------------ *)

let test_orientation_planar () =
  (* maximal planar: density < 3, so out-degree <= ceil(2 * 1.5 * 3) = 9 *)
  let g = Generators.random_apollonian 100 ~seed:3 in
  let view = Cluster_view.whole g in
  let r = Orientation.run view ~density:3. () in
  checkb "valid" true (Orientation.check view r ~density:3. ~delta:0.5);
  checkb "finished peeling" true (r.phases > 0)

let test_orientation_tree () =
  let g = Generators.random_tree 64 ~seed:4 in
  let view = Cluster_view.whole g in
  let r = Orientation.run view ~density:1. () in
  checkb "valid" true (Orientation.check view r ~density:1. ~delta:0.5);
  (* trees have density < 1: every vertex out-degree <= 3 *)
  Array.iter (fun d -> checkb "small out-degree" true (d <= 3)) r.out_degree

let test_orientation_clustered () =
  let g = Generators.grid 7 7 in
  let view = decomposed_view g 0.3 in
  let r = Orientation.run view ~density:2. () in
  checkb "valid" true (Orientation.check view r ~density:2. ~delta:0.5);
  (* inter-cluster edges must stay unoriented *)
  Graph.iter_edges g (fun e u v ->
      if view.labels.(u) <> view.labels.(v) then
        check "unoriented" (-1) r.owner.(e))

let test_orientation_counts_cover () =
  let g = Generators.random_maximal_outerplanar 40 ~seed:5 in
  let view = Cluster_view.whole g in
  let r = Orientation.run view ~density:2. () in
  let total = Array.fold_left ( + ) 0 r.out_degree in
  check "every intra edge owned once" (Graph.m g) total

(* ------------------------------------------------------------------ *)
(* Walk routing + gather                                               *)
(* ------------------------------------------------------------------ *)

let test_walk_routing_delivers () =
  let g = Generators.complete 12 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:2 in
  let r =
    Walk_routing.run view ~leader_of:leaders.leader_of
      ~tokens_of:(fun _ -> 2)
      ~walk_len:400 ~seed:6 ~max_rounds:3000
  in
  checkb "bookkeeping consistent" true
    (Walk_routing.check view ~leader_of:leaders.leader_of
       ~tokens_of:(fun _ -> 2) r);
  Alcotest.(check (float 0.001)) "all delivered" 1.
    (Walk_routing.delivery_rate view ~tokens_of:(fun _ -> 2) r)

let test_walk_routing_budget_too_small () =
  (* a tiny walk budget on a long path cannot deliver remote tokens *)
  let g = Generators.path 30 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:30 in
  let r =
    Walk_routing.run view ~leader_of:leaders.leader_of
      ~tokens_of:(fun _ -> 1)
      ~walk_len:4 ~seed:7 ~max_rounds:500
  in
  let rate = Walk_routing.delivery_rate view ~tokens_of:(fun _ -> 1) r in
  checkb "cannot deliver everything" true (rate < 1.);
  checkb "bookkeeping still consistent" true
    (Walk_routing.check view ~leader_of:leaders.leader_of
       ~tokens_of:(fun _ -> 1) r)

let test_gather_complete_small () =
  let g = Generators.random_apollonian 24 ~seed:8 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let r =
    Gather.run view ~leader_of:leaders.leader_of ~density:3. ~walk_len:4000
      ~seed:9 ~max_rounds:20000
  in
  Alcotest.(check (float 0.001)) "full delivery" 1. r.delivery;
  checkb "leader knows the topology" true
    (Gather.complete view ~leader_of:leaders.leader_of r)

let test_gather_clustered () =
  let g = Generators.grid 6 6 in
  let view = decomposed_view g 0.35 in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let r =
    Gather.run view ~leader_of:leaders.leader_of ~density:2. ~walk_len:6000
      ~seed:10 ~max_rounds:40000
  in
  checkb "every cluster gathered" true
    (Gather.complete view ~leader_of:leaders.leader_of r)

(* ------------------------------------------------------------------ *)
(* LOCAL-model gathering baseline                                      *)
(* ------------------------------------------------------------------ *)

let test_local_gather_whole () =
  let g = Generators.random_apollonian 40 ~seed:31 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let r =
    Local_gather.run view ~leader_of:leaders.leader_of
      ~rounds_budget:((2 * diam_bound view) + 6)
  in
  checkb "complete" true (Local_gather.complete view ~leader_of:leaders.leader_of r);
  (* LOCAL gathering is fast but its messages burst the CONGEST budget *)
  checkb "few rounds" true (r.rounds <= (2 * diam_bound view) + 6);
  (match Congest.Network.congest_bandwidth (Graph.n g) with
  | Congest.Network.Congest b ->
      checkb "needs more than CONGEST bandwidth" true (r.max_message_bits > b)
  | Congest.Network.Local -> ())

let test_local_gather_clustered () =
  let g = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:32 in
  let d = Spectral.Expander_decomposition.decompose g ~epsilon:0.4 in
  let view = Cluster_view.of_labels g d.labels in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let r =
    Local_gather.run view ~leader_of:leaders.leader_of
      ~rounds_budget:((2 * diam_bound view) + 6)
  in
  checkb "complete per cluster" true
    (Local_gather.complete view ~leader_of:leaders.leader_of r)

let test_local_gather_matches_walk_gather () =
  (* both gathering methods must deliver the same edge sets *)
  let g = Generators.random_apollonian 24 ~seed:33 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:(diam_bound view) in
  let local =
    Local_gather.run view ~leader_of:leaders.leader_of
      ~rounds_budget:((2 * diam_bound view) + 6)
  in
  let walks =
    Gather.run view ~leader_of:leaders.leader_of ~density:3. ~walk_len:4000
      ~seed:34 ~max_rounds:30000
  in
  checkb "walk gather complete" true
    (Gather.complete view ~leader_of:leaders.leader_of walks);
  let norm l = List.sort compare (List.map (fun (a, es) -> (a, es)) l) in
  Alcotest.(check bool) "same edge sets" true
    (norm local.edges_at_leader = norm walks.edges_at_leader)

(* ------------------------------------------------------------------ *)
(* Deterministic tree routing (Lemma 2.5 stand-in)                     *)
(* ------------------------------------------------------------------ *)

let test_tree_routing_delivers_all () =
  List.iter
    (fun (name, g) ->
      let view = Cluster_view.whole g in
      let leaders = Leader_election.run view ~rounds:(Graph.n g) in
      let r =
        Tree_routing.run view ~leader_of:leaders.leader_of
          ~tokens_of:(fun _ -> 2)
          ~max_rounds:(8 * Graph.n g)
      in
      Alcotest.(check (float 0.001))
        (name ^ " full delivery") 1.
        (Tree_routing.delivery_rate view ~tokens_of:(fun _ -> 2) r))
    [
      ("apollonian", Generators.random_apollonian 60 ~seed:90);
      ("path", Generators.path 40);
      ("grid", Generators.grid 7 7);
    ]

let test_tree_routing_deterministic () =
  let g = Generators.random_apollonian 40 ~seed:91 in
  let view = Cluster_view.whole g in
  let leaders = Leader_election.run view ~rounds:(Graph.n g) in
  let run () =
    let r =
      Tree_routing.run view ~leader_of:leaders.leader_of
        ~tokens_of:(fun _ -> 1)
        ~max_rounds:600
    in
    (r.stats.Congest.Network.last_traffic_round,
     List.map (fun (l, ts) -> (l, List.length ts)) r.delivered)
  in
  checkb "two runs identical" true (run () = run ())

let test_tree_routing_clustered () =
  let g = Generators.blob_chain ~blobs:5 ~blob_size:12 ~seed:92 in
  let d = Spectral.Expander_decomposition.decompose g ~epsilon:0.4 in
  let view = Cluster_view.of_labels g d.labels in
  let leaders = Leader_election.run view ~rounds:(Graph.n g) in
  let r =
    Tree_routing.run view ~leader_of:leaders.leader_of
      ~tokens_of:(fun _ -> 1)
      ~max_rounds:500
  in
  Alcotest.(check (float 0.001)) "delivery across clusters" 1.
    (Tree_routing.delivery_rate view ~tokens_of:(fun _ -> 1) r);
  (* each leader received only its own cluster's tokens *)
  List.iter
    (fun (leader, (toks : Walk_routing.token list)) ->
      List.iter
        (fun (t : Walk_routing.token) ->
          checkb "right leader" true (leaders.leader_of.(t.origin) = leader))
        toks)
    r.delivered

(* ------------------------------------------------------------------ *)
(* Diameter check (failure detection)                                  *)
(* ------------------------------------------------------------------ *)

let test_diameter_check_small_diameter () =
  let g = Generators.complete 8 in
  let view = Cluster_view.whole g in
  let r = Diameter_check.run view ~b:2 in
  checkb "no marks on small-diameter cluster" true
    (Array.for_all not r.marked);
  checkb "check" true (Diameter_check.check view r ~b:2)

let test_diameter_check_large_diameter () =
  let g = Generators.path 30 in
  let view = Cluster_view.whole g in
  let r = Diameter_check.run view ~b:3 in
  checkb "all marked on long path" true (Array.for_all Fun.id r.marked);
  checkb "check" true (Diameter_check.check view r ~b:3)

let test_diameter_check_mixed_clusters () =
  (* two clusters: a clique (diameter 1) and a long path *)
  let g = Graph_ops.disjoint_union (Generators.complete 6) (Generators.path 25) in
  let labels = Array.init (Graph.n g) (fun v -> if v < 6 then 0 else 1) in
  let view = Cluster_view.of_labels g labels in
  let r = Diameter_check.run view ~b:2 in
  checkb "clique unmarked" true (not r.marked.(0));
  checkb "path marked" true r.marked.(10);
  checkb "check" true (Diameter_check.check view r ~b:2)

(* ------------------------------------------------------------------ *)
(* Star elimination (Section 3.2 token protocol)                       *)
(* ------------------------------------------------------------------ *)

let test_star_elimination_star () =
  let g = Generators.star 6 in
  let view = Cluster_view.whole g in
  let r = Star_elimination.run view ~max_iterations:3 in
  checkb "valid" true (Star_elimination.check view r);
  (* keep center + one pendant *)
  check "five removed" 5
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.removed)

let test_star_elimination_double_star () =
  let g = Generators.double_star 5 in
  let view = Cluster_view.whole g in
  let r = Star_elimination.run view ~max_iterations:3 in
  checkb "valid" true (Star_elimination.check view r);
  check "three spokes removed" 3
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.removed)

let test_star_elimination_pinned () =
  (* regression: bounce lists are sorted before sending, so elimination
     does not depend on the spoke table's hash order *)
  let g = Generators.double_star 5 in
  let view = Cluster_view.whole g in
  let r = Star_elimination.run view ~max_iterations:5 in
  Alcotest.(check (array bool))
    "removed"
    [| false; false; false; false; true; true; true |]
    r.removed

let test_star_elimination_matches_centralized () =
  for seed = 0 to 5 do
    let g =
      Generators.attach_double_stars
        (Generators.attach_stars
           (Generators.random_planar 30 0.5 ~seed)
           ~stars:4 ~leaves:4 ~seed)
        ~hubs:2 ~spokes:5 ~seed
    in
    let view = Cluster_view.whole g in
    let r = Star_elimination.run view ~max_iterations:(Graph.n g) in
    checkb "protocol output clean" true (Star_elimination.check view r);
    let centralized = Matching.Preprocess.eliminate_fixpoint g in
    let expected = Array.make (Graph.n g) false in
    List.iter (fun v -> expected.(v) <- true) centralized.removed;
    Alcotest.(check (array bool))
      (Printf.sprintf "matches centralized (seed %d)" seed)
      expected r.removed
  done

let test_star_elimination_clean_input () =
  (* a cycle has nothing to eliminate *)
  let g = Generators.cycle 10 in
  let view = Cluster_view.whole g in
  let r = Star_elimination.run view ~max_iterations:2 in
  checkb "nothing removed" true (Array.for_all not r.removed)

(* ------------------------------------------------------------------ *)
(* Baselines: Luby MIS, greedy matching                                *)
(* ------------------------------------------------------------------ *)

let test_luby_mis_whole () =
  List.iter
    (fun (name, g) ->
      let view = Cluster_view.whole g in
      let r = Luby_mis.run view ~seed:11 in
      checkb (name ^ " valid MIS") true (Luby_mis.check view r))
    [
      ("grid", Generators.grid 8 8);
      ("apollonian", Generators.random_apollonian 80 ~seed:12);
      ("tree", Generators.random_tree 60 ~seed:13);
      ("complete", Generators.complete 15);
    ]

let test_luby_mis_clustered () =
  let g = Generators.random_apollonian 70 ~seed:14 in
  let view = decomposed_view g 0.3 in
  let r = Luby_mis.run view ~seed:15 in
  checkb "valid over clusters" true (Luby_mis.check view r)

let test_greedy_matching_whole () =
  List.iter
    (fun (name, g) ->
      let view = Cluster_view.whole g in
      let r = Greedy_matching.run view ~seed:16 () in
      checkb (name ^ " valid maximal matching") true
        (Greedy_matching.check view r))
    [
      ("grid", Generators.grid 7 6);
      ("apollonian", Generators.random_apollonian 60 ~seed:17);
      ("path", Generators.path 11);
      ("complete", Generators.complete 12);
    ]

let test_greedy_matching_weighted () =
  (* path of 3 edges with the middle edge heaviest: greedy takes it *)
  let g = Generators.path 4 in
  let w = Weights.of_array g [| 1; 5; 1 |] in
  let view = Cluster_view.whole g in
  let r = Greedy_matching.run view ~weights:w ~seed:18 () in
  checkb "valid" true (Greedy_matching.check view r);
  check "middle edge matched" 2 r.mate.(1);
  check "middle edge matched (rev)" 1 r.mate.(2)

let test_greedy_matching_half_approx () =
  (* cardinality at least half of maximum: on even path P10 max = 5 *)
  let g = Generators.path 10 in
  let view = Cluster_view.whole g in
  let r = Greedy_matching.run view ~seed:19 () in
  let size =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 r.mate / 2
  in
  checkb "at least half of optimum" true (size >= 3)

(* ------------------------------------------------------------------ *)
(* Distributed MPX clustering                                          *)
(* ------------------------------------------------------------------ *)

let test_mpx_clustering_valid () =
  let g = Generators.grid 10 10 in
  let view = Cluster_view.whole g in
  let r = Mpx_clustering.run view ~beta:0.3 ~seed:61 in
  checkb "valid partition" true (Decomp.Partition.is_valid g r.partition);
  checkb "connected clusters" true
    (Decomp.Partition.max_cluster_diameter g r.partition < max_int);
  checkb "rounds positive" true (r.stats.Congest.Network.rounds > 0)

let test_mpx_clustering_beta_tradeoff () =
  let g = Generators.grid 12 12 in
  let small = Mpx_clustering.run (Cluster_view.whole g) ~beta:0.05 ~seed:62 in
  let large = Mpx_clustering.run (Cluster_view.whole g) ~beta:0.9 ~seed:62 in
  checkb "more clusters at larger beta" true
    (large.partition.k >= small.partition.k)

let test_mpx_clustering_respects_view () =
  (* clusters never cross the view's boundaries *)
  let g = Graph_ops.disjoint_union (Generators.grid 4 4) (Generators.grid 4 4) in
  let labels = Array.init (Graph.n g) (fun v -> if v < 16 then 0 else 1) in
  let view = Cluster_view.of_labels g labels in
  let r = Mpx_clustering.run view ~beta:0.2 ~seed:63 in
  Graph.iter_edges g (fun _ u v ->
      if labels.(u) <> labels.(v) then
        checkb "no cross-boundary cluster" true
          (r.partition.labels.(u) <> r.partition.labels.(v)))

(* ------------------------------------------------------------------ *)
(* Distributed expander decomposition                                  *)
(* ------------------------------------------------------------------ *)

let test_distributed_decomposition_quality () =
  List.iter
    (fun (name, g, eps) ->
      let d = Distributed_decomposition.decompose g ~epsilon:eps in
      let inter_ok, worst = Distributed_decomposition.verify g d in
      checkb (name ^ " labels valid") true
        (Array.for_all (fun l -> l >= 0 && l < d.k) d.labels);
      checkb (name ^ " within epsilon budget") true inter_ok;
      checkb
        (Printf.sprintf "%s conductance %.4f >= tau %.4f" name worst d.tau)
        true
        (worst >= d.tau -. 1e-9);
      checkb (name ^ " simulated rounds positive") true (d.total_rounds > 0))
    [
      ("path", Generators.path 48, 0.3);
      ("blob-chain", Generators.blob_chain ~blobs:6 ~blob_size:10 ~seed:51, 0.4);
      ("barbell", Generators.barbell 8 2, 0.25);
      ("grid", Generators.grid 8 8, 0.3);
    ]

let test_distributed_decomposition_matches_oracle_clusters () =
  (* the same structural splits as the centralized oracle on bridge-heavy
     inputs: clusters must separate the blobs *)
  let g = Generators.blob_chain ~blobs:5 ~blob_size:10 ~seed:52 in
  let d = Distributed_decomposition.decompose g ~epsilon:0.4 in
  check "five blob clusters" 5 d.k;
  (* every blob stays whole: vertices of the same blob share a label *)
  for b = 0 to 4 do
    let l = d.labels.(b * 10) in
    for v = (b * 10) + 1 to (b * 10) + 9 do
      check "blob intact" l d.labels.(v)
    done
  done

let test_distributed_decomposition_bandwidth () =
  (* every message fits the declared CONGEST budget of 12 words *)
  let g = Generators.random_apollonian 64 ~seed:53 in
  let d = Distributed_decomposition.decompose g ~epsilon:0.3 in
  let budget = 12 * Congest.Bits.id_bits (Graph.n g) in
  checkb
    (Printf.sprintf "max bits %d <= budget %d" d.max_edge_bits budget)
    true
    (d.max_edge_bits <= budget)

let test_distributed_decomposition_expander_whole () =
  let g = Generators.complete 16 in
  let d = Distributed_decomposition.decompose g ~epsilon:0.3 in
  check "expander stays whole" 1 d.k

let test_distributed_decomposition_disconnected () =
  let g = Graph_ops.disjoint_union (Generators.cycle 6) (Generators.cycle 6) in
  let d = Distributed_decomposition.decompose g ~epsilon:0.5 in
  checkb "components separated" true (d.k >= 2);
  checkb "no inter edges across components" true
    (List.for_all
       (fun e ->
         let u, v = Graph.endpoints g e in
         (u < 6) = (v < 6))
       d.inter_edges)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_connected =
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 4 36) (int_range 0 1000) (int_range 0 15))

let build (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_leader_election =
  QCheck.Test.make ~name:"leader election valid on random graphs" ~count:40
    arb_connected (fun input ->
      let g = build input in
      let view = Cluster_view.whole g in
      let r = Leader_election.run view ~rounds:(Graph.n g) in
      Leader_election.check view r)

let prop_luby =
  QCheck.Test.make ~name:"Luby MIS valid on random graphs" ~count:40
    arb_connected (fun input ->
      let g = build input in
      let view = Cluster_view.whole g in
      Luby_mis.check view (Luby_mis.run view ~seed:1))

let prop_greedy_matching =
  QCheck.Test.make ~name:"greedy matching maximal on random graphs" ~count:40
    arb_connected (fun input ->
      let g = build input in
      let view = Cluster_view.whole g in
      Greedy_matching.check view (Greedy_matching.run view ~seed:2 ()))

let prop_orientation =
  QCheck.Test.make ~name:"orientation covers intra edges with bounded degree"
    ~count:40 arb_connected (fun input ->
      let g = build input in
      let view = Cluster_view.whole g in
      let density =
        max 1. (float_of_int (Graph.m g) /. float_of_int (Graph.n g))
      in
      let r = Orientation.run view ~density () in
      Orientation.check view r ~density ~delta:0.5)

let prop_bfs =
  QCheck.Test.make ~name:"distributed BFS matches centralized distances"
    ~count:40 arb_connected (fun input ->
      let g = build input in
      let view = Cluster_view.whole g in
      let roots = Array.init (Graph.n g) (fun v -> v = 0) in
      let r = Bfs_tree.run view ~roots ~rounds:(Graph.n g) in
      Bfs_tree.check view r ~roots)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_leader_election; prop_luby; prop_greedy_matching; prop_orientation;
      prop_bfs;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "distr"
    [
      ( "leader_election",
        [
          tc "star hub" test_leader_whole_star;
          tc "tie break by id" test_leader_tie_break;
          tc "clustered" test_leader_clustered;
          tc "insufficient rounds detected" test_leader_insufficient_rounds_detected;
        ] );
      ( "bfs_broadcast",
        [
          tc "bfs tree on grid" test_bfs_tree_whole;
          tc "bfs from cluster leaders" test_bfs_tree_clustered;
          tc "leader broadcast" test_broadcast_round_trip;
        ] );
      ( "orientation",
        [
          tc "planar" test_orientation_planar;
          tc "tree" test_orientation_tree;
          tc "clustered" test_orientation_clustered;
          tc "edges covered once" test_orientation_counts_cover;
        ] );
      ( "routing_gather",
        [
          tc "walk routing delivers" test_walk_routing_delivers;
          tc "walk budget too small" test_walk_routing_budget_too_small;
          tc "gather whole graph" test_gather_complete_small;
          tc "gather per cluster" test_gather_clustered;
        ] );
      ( "tree_routing",
        [
          tc "delivers everything" test_tree_routing_delivers_all;
          tc "deterministic" test_tree_routing_deterministic;
          tc "clustered" test_tree_routing_clustered;
        ] );
      ( "diameter_check",
        [
          tc "small diameter unmarked" test_diameter_check_small_diameter;
          tc "large diameter marked" test_diameter_check_large_diameter;
          tc "mixed clusters" test_diameter_check_mixed_clusters;
        ] );
      ( "mpx_clustering",
        [
          tc "valid partition" test_mpx_clustering_valid;
          tc "beta tradeoff" test_mpx_clustering_beta_tradeoff;
          tc "respects cluster view" test_mpx_clustering_respects_view;
        ] );
      ( "distributed_decomposition",
        [
          tc "quality across families" test_distributed_decomposition_quality;
          tc "matches oracle on blob chains" test_distributed_decomposition_matches_oracle_clusters;
          tc "bandwidth respected" test_distributed_decomposition_bandwidth;
          tc "expander stays whole" test_distributed_decomposition_expander_whole;
          tc "disconnected input" test_distributed_decomposition_disconnected;
        ] );
      ( "local_gather",
        [
          tc "whole graph" test_local_gather_whole;
          tc "clustered" test_local_gather_clustered;
          tc "agrees with walk gathering" test_local_gather_matches_walk_gather;
        ] );
      ( "star_elimination",
        [
          tc "2-star" test_star_elimination_star;
          tc "3-double-star" test_star_elimination_double_star;
          tc "pinned elimination" test_star_elimination_pinned;
          tc "matches centralized fixpoint" test_star_elimination_matches_centralized;
          tc "clean input untouched" test_star_elimination_clean_input;
        ] );
      ( "baselines",
        [
          tc "Luby MIS" test_luby_mis_whole;
          tc "Luby MIS clustered" test_luby_mis_clustered;
          tc "greedy matching" test_greedy_matching_whole;
          tc "greedy matching weighted" test_greedy_matching_weighted;
          tc "half approximation" test_greedy_matching_half_approx;
        ] );
      ("properties", qcheck_cases);
    ]
