open Sparse_graph
open Optimize

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* MIS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mis_known () =
  check "C6" 3 (Mis.exact_size (Generators.cycle 6));
  check "C7" 3 (Mis.exact_size (Generators.cycle 7));
  check "P7" 4 (Mis.exact_size (Generators.path 7));
  check "K5" 1 (Mis.exact_size (Generators.complete 5));
  check "K33" 3 (Mis.exact_size (Generators.complete_bipartite 3 3));
  check "star" 5 (Mis.exact_size (Generators.star 5));
  check "grid 3x3" 5 (Mis.exact_size (Generators.grid 3 3));
  check "petersen" 4
    (Mis.exact_size
       (Graph.of_edges 10
          ([ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
          @ [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ]
          @ List.init 5 (fun i -> (i, i + 5)))))

let test_mis_exact_is_independent () =
  let g = Generators.random_apollonian 50 ~seed:1 in
  let set = Mis.exact g in
  checkb "independent" true (Mis.is_independent g set)

let test_mis_matches_brute_force () =
  for seed = 0 to 9 do
    let g =
      Generators.add_random_edges (Generators.random_tree 13 ~seed) 8 ~seed
    in
    check
      (Printf.sprintf "seed %d" seed)
      (Mis.brute_force g) (Mis.exact_size g)
  done

let test_mis_greedy_bound () =
  (* greedy >= n / (2d + 1) where d = edge density *)
  List.iter
    (fun (name, g) ->
      let set = Mis.greedy g in
      checkb (name ^ " independent") true (Mis.is_independent g set);
      let d = Graph.edge_density g in
      let bound =
        int_of_float (floor (float_of_int (Graph.n g) /. ((2. *. d) +. 1.)))
      in
      checkb
        (Printf.sprintf "%s greedy %d >= bound %d" name (List.length set) bound)
        true
        (List.length set >= bound))
    [
      ("apollonian", Generators.random_apollonian 100 ~seed:2);
      ("grid", Generators.grid 9 9);
      ("tree", Generators.random_tree 80 ~seed:3);
      ("outerplanar", Generators.random_maximal_outerplanar 60 ~seed:4);
    ]

let test_mis_planar_quarter () =
  (* four-color theorem: alpha >= n/4 on planar graphs; exact must find it *)
  let g = Generators.random_apollonian 60 ~seed:5 in
  checkb "alpha >= n/4" true (Mis.exact_size g * 4 >= Graph.n g)

let test_mis_empty_and_tiny () =
  check "empty graph" 3 (Mis.exact_size (Graph.empty 3));
  check "single" 1 (Mis.exact_size (Graph.empty 1));
  check "one edge" 1 (Mis.exact_size (Generators.path 2))

(* ------------------------------------------------------------------ *)
(* Weighted MIS                                                        *)
(* ------------------------------------------------------------------ *)

let test_weighted_mis_known () =
  (* path a-b-c with center heavy: take the center alone *)
  let g = Generators.path 3 in
  check "heavy center" 10
    (Mis.weight_of [| 1; 10; 1 |] (Mis.exact_weighted g [| 1; 10; 1 |]));
  (* light center: take the two ends *)
  check "light center" 8
    (Mis.weight_of [| 4; 5; 4 |] (Mis.exact_weighted g [| 4; 5; 4 |]));
  (* star with heavy leaves *)
  let s = Generators.star 4 in
  let w = [| 3; 2; 2; 2; 2 |] in
  check "all leaves" 8 (Mis.weight_of w (Mis.exact_weighted s w))

let test_weighted_mis_matches_brute_force () =
  for seed = 0 to 9 do
    let g =
      Generators.add_random_edges (Generators.random_tree 12 ~seed) 7 ~seed
    in
    let st = Random.State.make [| seed; 997 |] in
    let w = Array.init (Graph.n g) (fun _ -> 1 + Random.State.int st 20) in
    let set = Mis.exact_weighted g w in
    checkb "independent" true (Mis.is_independent g set);
    check
      (Printf.sprintf "seed %d" seed)
      (Mis.brute_force_weighted g w)
      (Mis.weight_of w set)
  done

let test_weighted_mis_uniform_equals_unweighted () =
  let g = Generators.random_apollonian 40 ~seed:30 in
  let w = Array.make (Graph.n g) 1 in
  check "uniform weights = cardinality" (Mis.exact_size g)
    (List.length (Mis.exact_weighted g w))

let test_weighted_mis_rejects_bad_weights () =
  let g = Generators.path 3 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Mis.exact_weighted: weights must be positive")
    (fun () -> ignore (Mis.exact_weighted g [| 1; 0; 1 |]))

(* ------------------------------------------------------------------ *)
(* Correlation clustering                                              *)
(* ------------------------------------------------------------------ *)

let test_correlation_score () =
  let g = Generators.cycle 4 in
  let labels = [| true; false; true; false |] in
  (* all in one cluster: score = #positive = 2 *)
  check "one cluster" 2 (Correlation.score g labels (Array.make 4 0));
  (* singletons: score = #negative = 2 *)
  check "singletons" 2 (Correlation.score g labels (Array.init 4 Fun.id))

let test_correlation_trivial_bound () =
  for seed = 0 to 4 do
    let g = Generators.random_apollonian 30 ~seed in
    let labels = Generators.random_sign_labels g ~frac_pos:0.5 ~seed in
    let c = Correlation.trivial g labels in
    checkb "gamma >= m/2" true
      (2 * Correlation.score g labels c >= Graph.m g)
  done

let test_correlation_exact_all_positive () =
  let g = Generators.complete 6 in
  let labels = Array.make (Graph.m g) true in
  check "everything agrees" (Graph.m g) (Correlation.exact_score g labels);
  let clustering = Correlation.exact g labels in
  check "one cluster" 1 (Correlation.cluster_count clustering)

let test_correlation_exact_all_negative () =
  let g = Generators.complete 6 in
  let labels = Array.make (Graph.m g) false in
  check "everything agrees" (Graph.m g) (Correlation.exact_score g labels);
  check "singletons" 6
    (Correlation.cluster_count (Correlation.exact g labels))

let test_correlation_exact_planted () =
  (* two positive cliques joined by negative edges: planted optimum *)
  let k = 4 in
  let g =
    Graph.of_edges (2 * k)
      (List.concat
         [
           List.concat_map
             (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None)
                 (List.init k Fun.id))
             (List.init k Fun.id);
           List.concat_map
             (fun i ->
               List.filter_map
                 (fun j -> if i < j then Some (k + i, k + j) else None)
                 (List.init k Fun.id))
             (List.init k Fun.id);
           [ (0, k); (1, k + 1) ];
         ])
  in
  let labels =
    Array.init (Graph.m g) (fun e ->
        let u, v = Graph.endpoints g e in
        (u < k) = (v < k))
  in
  check "perfect score" (Graph.m g) (Correlation.exact_score g labels);
  let clustering = Correlation.exact g labels in
  checkb "communities recovered" true
    (clustering.(0) = clustering.(k - 1) && clustering.(k) = clustering.(2 * k - 1)
    && clustering.(0) <> clustering.(k))

let test_correlation_exact_beats_heuristics () =
  for seed = 0 to 5 do
    let g =
      Generators.add_random_edges (Generators.random_tree 12 ~seed) 10 ~seed
    in
    let labels = Generators.random_sign_labels g ~frac_pos:0.6 ~seed in
    let opt = Correlation.exact_score g labels in
    let triv = Correlation.score g labels (Correlation.trivial g labels) in
    let piv = Correlation.score g labels (Correlation.pivot g labels ~seed) in
    checkb "exact >= trivial" true (opt >= triv);
    checkb "exact >= pivot" true (opt >= piv)
  done

let test_correlation_local_improve_monotone () =
  let g = Generators.random_apollonian 40 ~seed:6 in
  let labels = Generators.random_sign_labels g ~frac_pos:0.5 ~seed:6 in
  let start = Correlation.pivot g labels ~seed:6 in
  let s0 = Correlation.score g labels start in
  let improved = Correlation.local_improve g labels start ~passes:3 in
  checkb "no regression" true (Correlation.score g labels improved >= s0)

let test_correlation_solve_dispatch () =
  (* small: exact; large: heuristic; both valid and >= trivial bound *)
  List.iter
    (fun (name, g, seed) ->
      let labels = Generators.random_sign_labels g ~frac_pos:0.5 ~seed in
      let c = Correlation.solve g labels ~seed in
      let s = Correlation.score g labels c in
      checkb (name ^ " >= m/2") true (2 * s >= Graph.m g))
    [
      ("small", Generators.cycle 10, 1);
      ("large", Generators.random_apollonian 80 ~seed:7, 2);
    ]

let test_correlation_size_limit () =
  let g = Generators.cycle 20 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Correlation.exact: graph too large") (fun () ->
      ignore (Correlation.exact g (Array.make 20 true)))

(* ------------------------------------------------------------------ *)
(* Dominating set / vertex cover                                       *)
(* ------------------------------------------------------------------ *)

let test_dominating_known () =
  check "star" 1 (Dominating.exact_size (Generators.star 6));
  check "P3" 1 (Dominating.exact_size (Generators.path 3));
  check "P6" 2 (Dominating.exact_size (Generators.path 6));
  check "C6" 2 (Dominating.exact_size (Generators.cycle 6));
  check "C7" 3 (Dominating.exact_size (Generators.cycle 7));
  check "K5" 1 (Dominating.exact_size (Generators.complete 5));
  (* grid 4x4: known domination number 4 *)
  check "grid 4x4" 4 (Dominating.exact_size (Generators.grid 4 4))

let test_dominating_matches_brute_force () =
  for seed = 0 to 7 do
    let g =
      Generators.add_random_edges (Generators.random_tree 12 ~seed) 6 ~seed
    in
    check
      (Printf.sprintf "seed %d" seed)
      (Dominating.brute_force g) (Dominating.exact_size g)
  done

let test_dominating_sets_valid () =
  let g = Generators.random_apollonian 50 ~seed:60 in
  checkb "exact dominates" true (Dominating.is_dominating g (Dominating.exact g));
  checkb "greedy dominates" true (Dominating.is_dominating g (Dominating.greedy g));
  checkb "exact <= greedy" true
    (Dominating.exact_size g <= List.length (Dominating.greedy g))

let test_vertex_cover_known () =
  check "star" 1 (Vertex_cover.exact_size (Generators.star 5));
  check "C6" 3 (Vertex_cover.exact_size (Generators.cycle 6));
  check "C7" 4 (Vertex_cover.exact_size (Generators.cycle 7));
  check "K5" 4 (Vertex_cover.exact_size (Generators.complete 5));
  check "P4" 2 (Vertex_cover.exact_size (Generators.path 4))

let test_vertex_cover_valid_and_bounds () =
  for seed = 0 to 4 do
    let g =
      Generators.add_random_edges (Generators.random_tree 30 ~seed) 12 ~seed
    in
    let exact = Vertex_cover.exact g in
    let approx = Vertex_cover.two_approx g in
    checkb "exact covers" true (Vertex_cover.is_cover g exact);
    checkb "2-approx covers" true (Vertex_cover.is_cover g approx);
    checkb "2-approx within factor 2" true
      (List.length approx <= 2 * List.length exact);
    (* Gallai: alpha + tau = n *)
    check "gallai identity" (Graph.n g)
      (Mis.exact_size g + List.length exact)
  done

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let arb_small =
  QCheck.make
    ~print:(fun (n, seed, extra) ->
      Printf.sprintf "n=%d seed=%d extra=%d" n seed extra)
    QCheck.Gen.(
      map3
        (fun n seed extra -> (n, seed, extra))
        (int_range 2 13) (int_range 0 10_000) (int_range 0 10))

let build (n, seed, extra) =
  Generators.add_random_edges (Generators.random_tree n ~seed) extra ~seed

let prop_mis_exact_brute =
  QCheck.Test.make ~name:"branch-and-bound equals brute force" ~count:150
    arb_small (fun input ->
      let g = build input in
      Mis.exact_size g = Mis.brute_force g)

let prop_weighted_mis_exact =
  QCheck.Test.make ~name:"weighted branch-and-bound equals brute force"
    ~count:120 arb_small (fun input ->
      let n, seed, _ = input in
      let g = build input in
      let st = Random.State.make [| seed; 1013 |] in
      let w = Array.init n (fun _ -> 1 + Random.State.int st 30) in
      Mis.weight_of w (Mis.exact_weighted g w) = Mis.brute_force_weighted g w)

let prop_mis_greedy_independent =
  QCheck.Test.make ~name:"greedy MIS is independent" ~count:100 arb_small
    (fun input ->
      let g = build input in
      Mis.is_independent g (Mis.greedy g))

let prop_correlation_exact_ge_merges =
  QCheck.Test.make
    ~name:"exact correlation beats random merge clusterings" ~count:100
    QCheck.(pair arb_small (int_range 0 100))
    (fun (input, salt) ->
      let n, seed, _ = input in
      let g = build input in
      let labels = Generators.random_sign_labels g ~frac_pos:0.5 ~seed in
      let st = Random.State.make [| salt |] in
      let rand_clustering = Array.init n (fun _ -> Random.State.int st 3) in
      Correlation.exact_score g labels
      >= Correlation.score g labels rand_clustering)

let prop_correlation_flip_symmetry =
  QCheck.Test.make
    ~name:"flipping all labels keeps optimal score >= m/2" ~count:80 arb_small
    (fun input ->
      let _, seed, _ = input in
      let g = build input in
      let labels = Generators.random_sign_labels g ~frac_pos:0.3 ~seed in
      let flipped = Array.map not labels in
      2 * Correlation.exact_score g flipped >= Graph.m g)

let prop_dominating_exact_brute =
  QCheck.Test.make ~name:"dominating branch-and-bound equals brute force"
    ~count:80 arb_small (fun input ->
      let g = build input in
      Dominating.exact_size g = Dominating.brute_force g)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mis_exact_brute;
      prop_weighted_mis_exact;
      prop_dominating_exact_brute;
      prop_mis_greedy_independent;
      prop_correlation_exact_ge_merges;
      prop_correlation_flip_symmetry;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "optimize"
    [
      ( "mis",
        [
          tc "known values" test_mis_known;
          tc "exact independent" test_mis_exact_is_independent;
          tc "vs brute force" test_mis_matches_brute_force;
          tc "greedy density bound" test_mis_greedy_bound;
          tc "planar quarter bound" test_mis_planar_quarter;
          tc "degenerate graphs" test_mis_empty_and_tiny;
        ] );
      ( "weighted_mis",
        [
          tc "known values" test_weighted_mis_known;
          tc "vs brute force" test_weighted_mis_matches_brute_force;
          tc "uniform equals unweighted" test_weighted_mis_uniform_equals_unweighted;
          tc "weight validation" test_weighted_mis_rejects_bad_weights;
        ] );
      ( "correlation",
        [
          tc "score function" test_correlation_score;
          tc "trivial m/2 bound" test_correlation_trivial_bound;
          tc "all positive" test_correlation_exact_all_positive;
          tc "all negative" test_correlation_exact_all_negative;
          tc "planted communities" test_correlation_exact_planted;
          tc "exact beats heuristics" test_correlation_exact_beats_heuristics;
          tc "local improve monotone" test_correlation_local_improve_monotone;
          tc "solve dispatch" test_correlation_solve_dispatch;
          tc "size limit" test_correlation_size_limit;
        ] );
      ( "covering",
        [
          tc "dominating known values" test_dominating_known;
          tc "dominating vs brute force" test_dominating_matches_brute_force;
          tc "dominating sets valid" test_dominating_sets_valid;
          tc "vertex cover known values" test_vertex_cover_known;
          tc "vertex cover bounds" test_vertex_cover_valid_and_bounds;
        ] );
      ("qcheck", qcheck_cases);
    ]
