(* Worker-pool unit tests plus the parallel/sequential equivalence
   property: decompose, verify, and Pipeline.prepare ~mode:Charged must
   produce identical results at every pool size. Run under the @parity
   alias with EXPANDER_JOBS set to 1 and 4 (see test/dune). *)

open Sparse_graph

let check = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_order_and_values () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let arr = Array.init 100 (fun i -> i) in
  let out = Parallel.Pool.map pool (fun x -> x * x) arr in
  Array.iteri (fun i v -> check "square in slot" (i * i) v) out;
  let out1 = Parallel.Pool.map Parallel.Pool.sequential (fun x -> x * x) arr in
  Alcotest.(check (array int)) "sequential agrees" out1 out

let test_mapi_indices () =
  let pool = Parallel.Pool.create ~jobs:3 () in
  let arr = Array.make 17 "x" in
  let out = Parallel.Pool.mapi pool (fun i s -> (i, s)) arr in
  Array.iteri (fun i (j, _) -> check "index passed through" i j) out

let test_map_reduce_order () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let arr = Array.init 50 (fun i -> i) in
  (* non-commutative reduction: list cons. Sequential fold order means the
     result is exactly the reversed map outputs. *)
  let folded =
    Parallel.Pool.map_reduce pool
      ~map:(fun x -> x * 3)
      ~reduce:(fun acc v -> v :: acc)
      ~init:[] arr
  in
  Alcotest.(check (list int))
    "fold in index order"
    (List.rev (List.init 50 (fun i -> i * 3)))
    folded

let test_map_list () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let out = Parallel.Pool.map_list pool (fun x -> x + 1) [ 5; 6; 7 ] in
  Alcotest.(check (list int)) "list map" [ 6; 7; 8 ] out

let test_exception_propagates () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let arr = Array.init 20 (fun i -> i) in
  match
    Parallel.Pool.map pool
      (fun x -> if x = 7 || x = 13 then failwith (string_of_int x) else x)
      arr
  with
  | exception Failure msg ->
      (* lowest-indexed failure wins, deterministically *)
      Alcotest.(check string) "first failure re-raised" "7" msg
  | _ -> Alcotest.fail "expected Failure"

let test_nested_map_runs_inline () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let out =
    Parallel.Pool.map pool
      (fun x ->
        (* a nested map on the same pool must not spawn more domains *)
        Array.fold_left ( + ) 0
          (Parallel.Pool.map pool (fun y -> x * y) [| 1; 2; 3 |]))
      (Array.init 10 (fun i -> i))
  in
  Array.iteri (fun i v -> check "nested result" (6 * i) v) out

let test_derive_seed_deterministic () =
  let a = Parallel.Pool.derive_seed 12345 678 in
  let b = Parallel.Pool.derive_seed 12345 678 in
  check "stable" a b;
  Alcotest.(check bool)
    "distinct salts give distinct seeds" true
    (Parallel.Pool.derive_seed 12345 678 <> Parallel.Pool.derive_seed 12345 679);
  Alcotest.(check bool) "non-negative" true (a >= 0)

let test_default_jobs_env () =
  (* EXPANDER_JOBS is set by the @parity alias; when present it must win *)
  match Sys.getenv_opt "EXPANDER_JOBS" with
  | Some v ->
      check "env respected" (int_of_string v) (Parallel.Pool.default_jobs ())
  | None ->
      Alcotest.(check bool)
        "positive default" true
        (Parallel.Pool.default_jobs () >= 1)

let test_default_jobs_rejects_malformed_env () =
  (* a malformed EXPANDER_JOBS must raise, never silently fall back to
     the machine default (the silent-substitution regression) *)
  let saved = Sys.getenv_opt "EXPANDER_JOBS" in
  let restore () =
    match saved with
    | Some v -> Unix.putenv "EXPANDER_JOBS" v
    | None -> Unix.putenv "EXPANDER_JOBS" ""
  in
  Fun.protect ~finally:restore @@ fun () ->
  let expect_invalid v =
    Unix.putenv "EXPANDER_JOBS" v;
    match Parallel.Pool.default_jobs () with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S: message names the variable" v)
          true
          (let has needle s =
             let nl = String.length needle and sl = String.length s in
             let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
             go 0
           in
           has "EXPANDER_JOBS" msg && has v msg)
    | j -> Alcotest.failf "EXPANDER_JOBS=%S: expected Invalid_argument, got %d" v j
  in
  List.iter expect_invalid [ "O"; "0"; "-3"; "4x"; "2.5" ];
  (* empty / whitespace values mean unset, valid values still win *)
  Unix.putenv "EXPANDER_JOBS" "";
  Alcotest.(check bool)
    "empty value falls back" true
    (Parallel.Pool.default_jobs () >= 1);
  Unix.putenv "EXPANDER_JOBS" " 3 ";
  check "whitespace-padded value parses" 3 (Parallel.Pool.default_jobs ())

(* ------------------------------------------------------------------ *)
(* Team barrier                                                         *)
(* ------------------------------------------------------------------ *)

let test_team_runs_every_task () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let team = Parallel.Pool.Team.create pool ~tasks:13 in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  let hits = Array.make 13 0 in
  (* several rounds over the same team: each run must execute every task
     exactly once, with writes visible after the barrier *)
  for round = 1 to 5 do
    Parallel.Pool.Team.run team (fun i -> hits.(i) <- hits.(i) + 1);
    Array.iteri
      (fun i h -> check (Printf.sprintf "round %d task %d" round i) round h)
      hits
  done

let test_team_exception_lowest_task_wins () =
  let pool = Parallel.Pool.create ~jobs:4 () in
  let team = Parallel.Pool.Team.create pool ~tasks:16 in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  (match
     Parallel.Pool.Team.run team (fun i ->
         if i = 5 || i = 11 then failwith (string_of_int i))
   with
  | exception Failure msg ->
      Alcotest.(check string) "lowest-indexed failure re-raised" "5" msg
  | () -> Alcotest.fail "expected Failure");
  (* the team survives a failed round *)
  let sum = Array.make 16 0 in
  Parallel.Pool.Team.run team (fun i -> sum.(i) <- i);
  check "next run still works" 120 (Array.fold_left ( + ) 0 sum)

let test_team_stale_error_cleared () =
  (* regression: run clears the per-task error slots at entry and
     raise_first clears the slot it re-raises, so an error left over from
     an earlier generation can never surface on a later, healthy run —
     and a later failure at a higher index raises that index, not a
     stale lower one *)
  let pool = Parallel.Pool.create ~jobs:4 () in
  let team = Parallel.Pool.Team.create pool ~tasks:16 in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  (match
     Parallel.Pool.Team.run team (fun i ->
         if i = 3 || i = 12 then failwith (string_of_int i))
   with
  | exception Failure msg ->
      Alcotest.(check string) "first round raises lowest" "3" msg
  | () -> Alcotest.fail "expected Failure");
  (match
     Parallel.Pool.Team.run team (fun i ->
         if i = 12 then failwith (string_of_int i))
   with
  | exception Failure msg ->
      Alcotest.(check string) "second round raises its own failure, not a \
                               stale slot" "12" msg
  | () -> Alcotest.fail "expected Failure");
  Parallel.Pool.Team.run team (fun _ -> ());
  (* reaching here means the healthy third round raised nothing *)
  ()

let test_team_sequential_error_semantics () =
  (* the inline (workers <= 1) path has the same contract as the parallel
     one: every task still runs, the lowest-indexed failure is re-raised,
     and the team stays usable *)
  let team = Parallel.Pool.Team.create Parallel.Pool.sequential ~tasks:7 in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  let ran = Array.make 7 false in
  (match
     Parallel.Pool.Team.run team (fun i ->
         ran.(i) <- true;
         if i = 2 || i = 5 then failwith (string_of_int i))
   with
  | exception Failure msg ->
      Alcotest.(check string) "lowest failure wins inline" "2" msg
  | () -> Alcotest.fail "expected Failure");
  Alcotest.(check bool)
    "every task ran despite the failure" true
    (Array.for_all Fun.id ran);
  let sum = ref 0 in
  Parallel.Pool.Team.run team (fun i -> sum := !sum + i);
  check "team reusable after inline failure" 21 !sum

let test_team_sequential_pool_inline () =
  let team = Parallel.Pool.Team.create Parallel.Pool.sequential ~tasks:7 in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  let order = ref [] in
  Parallel.Pool.Team.run team (fun i -> order := i :: !order);
  (* jobs = 1 runs the tasks inline, in ascending order *)
  Alcotest.(check (list int)) "inline ascending" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Parallel/sequential equivalence over random graphs                   *)
(* ------------------------------------------------------------------ *)

let graph_gen =
  let open QCheck.Gen in
  oneof
    [
      (int_range 2 60 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       float_range 0.05 0.35 >>= fun p ->
       return (Printf.sprintf "er(%d,%.2f,%d)" n p seed,
               Generators.erdos_renyi n p ~seed));
      (int_range 2 8 >>= fun r ->
       int_range 2 8 >>= fun c ->
       return (Printf.sprintf "grid(%d,%d)" r c, Generators.grid r c));
      (int_range 4 60 >>= fun n ->
       int_range 0 1000 >>= fun seed ->
       return (Printf.sprintf "apollonian(%d,%d)" n seed,
               Generators.random_apollonian n ~seed));
    ]

let graph_arb =
  QCheck.make ~print:(fun (name, _) -> name) graph_gen

let pool4 = lazy (Parallel.Pool.create ~jobs:4 ())

let decompose_equivalence =
  QCheck.Test.make ~name:"decompose: jobs 1 = jobs 4" ~count:40 graph_arb
    (fun (_, g) ->
      let open Spectral.Expander_decomposition in
      let seq = decompose g ~epsilon:0.3 in
      let par = decompose ~pool:(Lazy.force pool4) g ~epsilon:0.3 in
      seq.labels = par.labels && seq.k = par.k
      && seq.inter_edges = par.inter_edges
      && seq.phi = par.phi && seq.tau = par.tau)

let verify_equivalence =
  QCheck.Test.make ~name:"verify: jobs 1 = jobs 4" ~count:25 graph_arb
    (fun (_, g) ->
      let open Spectral.Expander_decomposition in
      let d = decompose g ~epsilon:0.3 in
      verify g d = verify ~pool:(Lazy.force pool4) g d)

let prepare_equivalence =
  QCheck.Test.make ~name:"Pipeline.prepare Charged: jobs 1 = jobs 4"
    ~count:25 graph_arb (fun (_, g) ->
      let open Core.Pipeline in
      let a = prepare ~mode:Charged g ~epsilon:0.3 ~seed:7 in
      let b =
        prepare ~mode:Charged ~pool:(Lazy.force pool4) g ~epsilon:0.3 ~seed:7
      in
      a.leader_of = b.leader_of
      && a.report = b.report
      && a.decomposition.Spectral.Expander_decomposition.labels
         = b.decomposition.Spectral.Expander_decomposition.labels
      && Array.length a.clusters = Array.length b.clusters
      && Array.for_all2
           (fun (x : cluster) (y : cluster) ->
             x.leader = y.leader && x.members = y.members
             && Graph.n x.sub = Graph.n y.sub
             && Graph.m x.sub = Graph.m y.sub)
           a.clusters b.clusters)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "map preserves order and values" test_map_order_and_values;
          tc "mapi passes indices" test_mapi_indices;
          tc "map_reduce folds in index order" test_map_reduce_order;
          tc "map_list" test_map_list;
          tc "lowest-indexed exception propagates" test_exception_propagates;
          tc "nested maps run inline" test_nested_map_runs_inline;
          tc "derive_seed deterministic" test_derive_seed_deterministic;
          tc "default_jobs honours EXPANDER_JOBS" test_default_jobs_env;
          tc "default_jobs rejects malformed EXPANDER_JOBS"
            test_default_jobs_rejects_malformed_env;
        ] );
      ( "team",
        [
          tc "run executes every task, repeatedly" test_team_runs_every_task;
          tc "lowest-indexed exception wins" test_team_exception_lowest_task_wins;
          tc "stale error slots are cleared" test_team_stale_error_cleared;
          tc "inline path keeps the error contract"
            test_team_sequential_error_semantics;
          tc "sequential pool runs inline in order"
            test_team_sequential_pool_inline;
        ] );
      ( "equivalence",
        [ qt decompose_equivalence; qt verify_equivalence;
          qt prepare_equivalence ] );
    ]
