(** Klein–Plotkin–Rao-style iterated band chopping: the minor-free
    low-diameter decomposition with the optimal D = O(1/epsilon) shape used
    by Theorem 1.5.

    One chop: BFS from an arbitrary vertex of each component, pick a random
    offset, and slice the layers into bands of [width] consecutive layers;
    edges between bands are cut (each edge crosses a band boundary with
    probability 1/width). Chopping is iterated [levels] times — for
    K_h-minor-free graphs, h-1 iterations leave clusters of weak diameter
    O(h * width) [KPR'93]; on the concrete minor-closed families we
    generate, measured strong diameters grow linearly in [width]
    (experiment E6 regenerates this). *)

(** [chop g ~width ~levels ~seed]. The expected cut fraction is at most
    [levels / width].
    @raise Invalid_argument unless [width >= 1] and [levels >= 1]. *)
val chop :
  Sparse_graph.Graph.t -> width:int -> levels:int -> seed:int -> Partition.t

(** [ldd g ~epsilon ~levels ~seed] picks [width = ceil(levels / epsilon)]
    so the expected cut fraction is at most [epsilon], then retries with
    fresh randomness (up to 20 times, doubling nothing) until the realized
    cut is within budget; returns the first partition within budget, or the
    best found. *)
val ldd :
  Sparse_graph.Graph.t -> epsilon:float -> levels:int -> seed:int ->
  Partition.t
