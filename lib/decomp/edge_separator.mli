(** Balanced edge separators (Theorem 1.6).

    An edge separator is a cut [S, V \ S] with [min(|S|, |V \ S|) >= n/3];
    its size is the number of crossing edges. Theorem 1.6: every
    H-minor-free graph has one of size O(sqrt(Delta * n)). The constructive
    algorithms here realize the bound empirically (experiment E7): BFS layer
    cuts, spectral sweep restricted to balanced prefixes, and a greedy
    exchange refinement. *)

type cut = {
  side : bool array;
  crossing : int;       (** separator size |d(S)| *)
  small_side : int;     (** min(|S|, |V \ S|) *)
}

(** Is the cut balanced, [min >= n/3]? (The paper's definition; [n < 3]
    graphs are vacuously balanced at [floor(n/3)].) *)
val is_balanced : Sparse_graph.Graph.t -> cut -> bool

(** Best balanced prefix over BFS layerings from several start vertices. *)
val bfs_layered : Sparse_graph.Graph.t -> cut

(** Best balanced prefix of the Fiedler embedding order. *)
val spectral : Sparse_graph.Graph.t -> seed:int -> cut

(** [refine g cut ~passes] moves boundary vertices across while the cut
    shrinks and balance is preserved. *)
val refine : Sparse_graph.Graph.t -> cut -> passes:int -> cut

(** Best of all methods, refined. Requires [n >= 2]. *)
val best : Sparse_graph.Graph.t -> seed:int -> cut

(** [quality g cut] is [crossing / sqrt(Delta * n)] — the Theorem 1.6 ratio
    reported by experiment E7. *)
val quality : Sparse_graph.Graph.t -> cut -> float
