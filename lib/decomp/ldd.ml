open Sparse_graph

let region_growing g ~epsilon =
  if epsilon <= 0. then invalid_arg "Ldd.region_growing: epsilon must be > 0";
  let n = Graph.n g in
  let labels = Array.make n (-1) in
  let next = ref 0 in
  for seed = 0 to n - 1 do
    if labels.(seed) < 0 then begin
      let c = !next in
      incr next;
      (* grow a BFS ball over unassigned vertices until the boundary is at
         most epsilon times the internal edge count *)
      let in_ball = Array.make n false in
      let ball = ref [ seed ] in
      in_ball.(seed) <- true;
      let frontier = ref [ seed ] in
      let internal = ref 0 in
      let stop = ref false in
      while not !stop do
        (* boundary: edges from the ball to unassigned outside vertices *)
        let boundary = ref 0 in
        let next_layer = ref [] in
        let seen_next = Hashtbl.create 16 in
        List.iter
          (fun v ->
            Graph.iter_neighbors g v (fun w ->
                if (not in_ball.(w)) && labels.(w) < 0 then begin
                  incr boundary;
                  if not (Hashtbl.mem seen_next w) then begin
                    Hashtbl.add seen_next w ();
                    next_layer := w :: !next_layer
                  end
                end))
          !frontier;
        if
          !boundary = 0
          || float_of_int !boundary <= epsilon *. float_of_int !internal
        then stop := true
        else begin
          (* absorb the next layer *)
          List.iter (fun w -> in_ball.(w) <- true) !next_layer;
          (* internal edges gained: all edges from new layer into the ball
             (including within the new layer) *)
          List.iter
            (fun w ->
              Graph.iter_neighbors g w (fun x ->
                  if in_ball.(x) && (x < w || not (Hashtbl.mem seen_next x))
                  then incr internal))
            !next_layer;
          ball := !next_layer @ !ball;
          frontier := !next_layer
        end
      done;
      List.iter (fun v -> labels.(v) <- c) !ball
    end
  done;
  Partition.of_labels g labels

let mpx g ~beta ~seed =
  if beta <= 0. then invalid_arg "Ldd.mpx: beta must be > 0";
  let n = Graph.n g in
  let st = Random.State.make [| seed; 467 |] in
  let delta =
    Array.init n (fun _ ->
        let u = max 1e-12 (Random.State.float st 1.) in
        -.log u /. beta)
  in
  (* multi-source Dijkstra over keys d(u, v) - delta_u; unit edge lengths *)
  let dist = Array.make n infinity in
  let owner = Array.make n (-1) in
  (* array-based binary min-heap of (key, vertex, source) entries *)
  let module H = struct
    type entry = { key : float; v : int; s : int }

    let data = ref (Array.make 16 { key = 0.; v = 0; s = 0 })
    let len = ref 0

    let swap i j =
      let t = !data.(i) in
      !data.(i) <- !data.(j);
      !data.(j) <- t

    let push key v s =
      if !len = Array.length !data then begin
        let bigger = Array.make (2 * !len) !data.(0) in
        Array.blit !data 0 bigger 0 !len;
        data := bigger
      end;
      !data.(!len) <- { key; v; s };
      incr len;
      let i = ref (!len - 1) in
      while !i > 0 && !data.((!i - 1) / 2).key > !data.(!i).key do
        swap ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done

    let pop () =
      if !len = 0 then None
      else begin
        let top = !data.(0) in
        decr len;
        !data.(0) <- !data.(!len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < !len && !data.(l).key < !data.(!s).key then s := l;
          if r < !len && !data.(r).key < !data.(!s).key then s := r;
          if !s = !i then continue := false
          else begin
            swap !i !s;
            i := !s
          end
        done;
        Some top
      end
  end in
  for v = 0 to n - 1 do
    H.push (-.delta.(v)) v v
  done;
  let finished = ref 0 in
  while !finished < n do
    match H.pop () with
    | None -> finished := n
    | Some { key; v; s } ->
        if key < dist.(v) then begin
          dist.(v) <- key;
          owner.(v) <- s;
          incr finished;
          Graph.iter_neighbors g v (fun w ->
              if key +. 1. < dist.(w) then H.push (key +. 1.) w s)
        end
  done;
  Partition.of_labels g owner
