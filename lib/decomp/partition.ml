open Sparse_graph

type t = {
  labels : int array;
  k : int;
  inter_edges : int list;
}

let of_labels g raw =
  let n = Graph.n g in
  if Array.length raw <> n then
    invalid_arg "Partition.of_labels: length mismatch";
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let labels =
    Array.map
      (fun l ->
        match Hashtbl.find_opt remap l with
        | Some x -> x
        | None ->
            let x = !next in
            incr next;
            Hashtbl.add remap l x;
            x)
      raw
  in
  let inter =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
  in
  { labels; k = !next; inter_edges = List.rev inter }

let cut_fraction g t =
  let m = Graph.m g in
  if m = 0 then 0.
  else float_of_int (List.length t.inter_edges) /. float_of_int m

let max_cluster_diameter g t =
  let members = Array.make t.k [] in
  Array.iteri (fun v l -> members.(l) <- v :: members.(l)) t.labels;
  Array.fold_left
    (fun acc vs ->
      if acc = max_int then max_int
      else begin
        let sub, _ = Graph_ops.induced_subgraph g vs in
        if not (Traversal.is_connected sub) then max_int
        else max acc (Traversal.diameter sub)
      end)
    0 members

let sizes t =
  let s = Array.make t.k 0 in
  Array.iter (fun l -> s.(l) <- s.(l) + 1) t.labels;
  s

let is_valid g t =
  Array.length t.labels = Graph.n g
  && Array.for_all (fun l -> l >= 0 && l < t.k) t.labels
