(** Shared representation of vertex partitions (clusterings) and their
    quality measures, used by the low-diameter decompositions. *)

type t = {
  labels : int array;      (** vertex -> cluster id in [0 .. k-1] *)
  k : int;
  inter_edges : int list;  (** edge ids crossing between clusters *)
}

(** Build from a label array (computes [k] and the crossing edges).
    Labels are renumbered to [0 .. k-1] preserving first appearance. *)
val of_labels : Sparse_graph.Graph.t -> int array -> t

(** Fraction of edges crossing, [|inter| / m]; 0 when m = 0. *)
val cut_fraction : Sparse_graph.Graph.t -> t -> float

(** Maximum over clusters of the strong diameter of the induced subgraph
    (infinite — [max_int] — if some induced cluster is disconnected). *)
val max_cluster_diameter : Sparse_graph.Graph.t -> t -> int

(** Sizes of the clusters. *)
val sizes : t -> int array

(** Every vertex has a label in range. *)
val is_valid : Sparse_graph.Graph.t -> t -> bool
