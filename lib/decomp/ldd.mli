(** Low-diameter decompositions (Theorem 1.5 substrate).

    An (epsilon, D) low-diameter decomposition cuts at most [epsilon * m]
    edges so every remaining cluster has diameter at most D. Three
    constructions:

    - {!region_growing}: deterministic ball growing; guarantees the cut
      budget outright and D = O(log(m)/epsilon) on any graph.
    - {!mpx}: Miller–Peng–Xu random exponential shifts; every edge is cut
      with probability O(beta), clusters have radius O(log(n)/beta) w.h.p.
    - {!Kpr}: iterated band chopping achieving the minor-free-optimal
      D = O(1/epsilon) shape (separate module).  *)

(** [region_growing g ~epsilon] grows a BFS ball from an arbitrary
    remaining vertex, stopping as soon as the next layer's boundary has
    fewer than [epsilon] times the edges already inside the ball, then
    carves the ball; repeats until the graph is exhausted. The total cut is
    less than [epsilon * m].
    @raise Invalid_argument unless [epsilon > 0]. *)
val region_growing : Sparse_graph.Graph.t -> epsilon:float -> Partition.t

(** [mpx g ~beta ~seed]: vertex [u] draws [delta_u ~ Exp(beta)]; each
    vertex joins the cluster of the [u] minimizing [d(u, v) - delta_u]. *)
val mpx : Sparse_graph.Graph.t -> beta:float -> seed:int -> Partition.t
