open Sparse_graph

(* one chopping pass applied within each current cluster: relabel so that
   vertices in the same band of the same cluster share a new label *)
let chop_once g labels ~width st =
  let n = Graph.n g in
  (* group members by label *)
  let groups = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let cur = try Hashtbl.find groups labels.(v) with Not_found -> [] in
    Hashtbl.replace groups labels.(v) (v :: cur)
  done;
  let fresh = ref 0 in
  let out = Array.make n (-1) in
  (* iterate groups in ascending label order: the offset draws and the
     fresh-label counter consume shared state, so hash order must not
     decide which group draws first *)
  let group_list =
    Hashtbl.fold (fun l members acc -> (l, members) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, members) ->
      (* BFS within the group; one BFS per connected piece *)
      let in_group = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.add in_group v ()) members;
      let dist = Hashtbl.create 16 in
      List.iter
        (fun src ->
          if not (Hashtbl.mem dist src) then begin
            let offset = Random.State.int st width in
            let queue = Queue.create () in
            Hashtbl.add dist src 0;
            Queue.add src queue;
            let piece = ref [ src ] in
            while not (Queue.is_empty queue) do
              let v = Queue.pop queue in
              let dv = Hashtbl.find dist v in
              Graph.iter_neighbors g v (fun w ->
                  if Hashtbl.mem in_group w && not (Hashtbl.mem dist w) then begin
                    Hashtbl.add dist w (dv + 1);
                    piece := w :: !piece;
                    Queue.add w queue
                  end)
            done;
            (* band index of v: floor((d + offset) / width); bands of this
               piece get fresh labels *)
            let band_label = Hashtbl.create 8 in
            List.iter
              (fun v ->
                let band = (Hashtbl.find dist v + offset) / width in
                let l =
                  match Hashtbl.find_opt band_label band with
                  | Some l -> l
                  | None ->
                      let l = !fresh in
                      incr fresh;
                      Hashtbl.add band_label band l;
                      l
                in
                out.(v) <- l)
              !piece
          end)
        members)
    group_list;
  out

let chop g ~width ~levels ~seed =
  if width < 1 || levels < 1 then
    invalid_arg "Kpr.chop: need width >= 1 and levels >= 1";
  Obs.Span.with_ "kpr.chop" @@ fun () ->
  let st = Random.State.make [| seed; 547 |] in
  let labels = ref (Array.make (Graph.n g) 0) in
  for level = 1 to levels do
    Obs.Span.with_ (Printf.sprintf "level-%d" level) (fun () ->
        labels := chop_once g !labels ~width st)
  done;
  (* bands may be internally disconnected; split into connected clusters so
     the partition has finite strong diameters *)
  let part = Partition.of_labels g !labels in
  let sub_labels = Array.make (Graph.n g) (-1) in
  let members = Array.make part.k [] in
  Array.iteri (fun v l -> members.(l) <- v :: members.(l)) part.labels;
  let fresh = ref 0 in
  Array.iter
    (fun vs ->
      let sub, mapping = Graph_ops.induced_subgraph g vs in
      let comp, count = Traversal.components sub in
      Array.iteri
        (fun sv c -> sub_labels.(mapping.to_orig.(sv)) <- !fresh + c)
        comp;
      fresh := !fresh + count)
    members;
  let part = Partition.of_labels g sub_labels in
  Obs.Metric.count "kpr.clusters" part.Partition.k;
  part

let ldd g ~epsilon ~levels ~seed =
  if epsilon <= 0. then invalid_arg "Kpr.ldd: epsilon must be > 0";
  let width = max 1 (int_of_float (ceil (float_of_int levels /. epsilon))) in
  let rec attempt i best_p best_frac =
    if i >= 20 then best_p
    else begin
      let p = chop g ~width ~levels ~seed:(seed + (101 * i)) in
      let frac = Partition.cut_fraction g p in
      if frac <= epsilon then p
      else if frac < best_frac then attempt (i + 1) p frac
      else attempt (i + 1) best_p best_frac
    end
  in
  let p0 = chop g ~width ~levels ~seed in
  let f0 = Partition.cut_fraction g p0 in
  if f0 <= epsilon then p0 else attempt 1 p0 f0
