open Sparse_graph

type cut = {
  side : bool array;
  crossing : int;
  small_side : int;
}

let of_side g side =
  let crossing =
    Graph.fold_edges g
      (fun acc _ u v -> if side.(u) <> side.(v) then acc + 1 else acc)
      0
  in
  let inside = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 side in
  { side; crossing; small_side = min inside (Graph.n g - inside) }

let is_balanced g cut = cut.small_side >= Graph.n g / 3

(* best balanced prefix cut of a vertex ordering *)
let best_prefix g order =
  let n = Graph.n g in
  let inside = Array.make n false in
  let crossing = ref 0 in
  let best = ref max_int in
  let best_at = ref (-1) in
  Array.iteri
    (fun i v ->
      let to_inside =
        Graph.fold_neighbors g v
          (fun acc w -> if inside.(w) then acc + 1 else acc)
          0
      in
      inside.(v) <- true;
      crossing := !crossing + Graph.degree g v - (2 * to_inside);
      let size = i + 1 in
      if size >= n / 3 && n - size >= n / 3 && !crossing < !best then begin
        best := !crossing;
        best_at := size
      end)
    order;
  if !best_at < 0 then None
  else begin
    let side = Array.make n false in
    for i = 0 to !best_at - 1 do
      side.(order.(i)) <- true
    done;
    Some (of_side g side)
  end

let arbitrary_balanced g =
  (* fallback: first n/2 vertices *)
  let n = Graph.n g in
  let side = Array.init n (fun v -> v < n / 2) in
  of_side g side

let bfs_layered g =
  let n = Graph.n g in
  let starts =
    List.sort_uniq compare
      [ 0; n / 2; n - 1; Graph.max_degree_vertex g ]
  in
  let candidates =
    List.filter_map
      (fun s ->
        let dist = Traversal.bfs g s in
        let order = Array.init n Fun.id in
        (* unreachable vertices (dist -1) go last *)
        Array.sort
          (fun a b ->
            let da = if dist.(a) < 0 then max_int else dist.(a) in
            let db = if dist.(b) < 0 then max_int else dist.(b) in
            compare (da, a) (db, b))
          order;
        best_prefix g order)
      starts
  in
  match candidates with
  | [] -> arbitrary_balanced g
  | c :: rest -> List.fold_left (fun a b -> if b.crossing < a.crossing then b else a) c rest

let spectral g ~seed =
  if Graph.m g = 0 then arbitrary_balanced g
  else begin
    let embedding, _ = Spectral.Sweep_cut.fiedler g ~iters:200 ~seed in
    let n = Graph.n g in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare (embedding.(a), a) (embedding.(b), b)) order;
    match best_prefix g order with
    | Some c -> c
    | None -> arbitrary_balanced g
  end

let refine g cut ~passes =
  let n = Graph.n g in
  let side = Array.copy cut.side in
  let crossing = ref cut.crossing in
  let inside =
    ref (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 side)
  in
  for _ = 1 to passes do
    for v = 0 to n - 1 do
      (* gain of flipping v = (crossing incident) - (non-crossing incident) *)
      let cross = ref 0 and same = ref 0 in
      Graph.iter_neighbors g v (fun w ->
          if side.(w) <> side.(v) then incr cross else incr same);
      let gain = !cross - !same in
      let new_inside = if side.(v) then !inside - 1 else !inside + 1 in
      let balanced =
        min new_inside (n - new_inside) >= n / 3
      in
      if gain > 0 && balanced then begin
        side.(v) <- not side.(v);
        inside := new_inside;
        crossing := !crossing - gain
      end
    done
  done;
  of_side g side

let best g ~seed =
  if Graph.n g < 2 then invalid_arg "Edge_separator.best: need n >= 2";
  let cands =
    [ bfs_layered g; spectral g ~seed ]
    |> List.map (fun c -> refine g c ~passes:3)
    |> List.filter (is_balanced g)
  in
  match cands with
  | [] -> refine g (arbitrary_balanced g) ~passes:3
  | c :: rest ->
      List.fold_left (fun a b -> if b.crossing < a.crossing then b else a) c rest

let quality g cut =
  let denom =
    sqrt (float_of_int (Graph.max_degree g) *. float_of_int (Graph.n g))
  in
  if denom = 0. then 0. else float_of_int cut.crossing /. denom
