(** Approximate matching algorithms: baselines and the local-improvement
    search used inside the weighted pipeline.

    All functions return mate arrays ([mate.(v)] = partner or -1). *)

(** Greedy by non-increasing weight (ties by edge id): a 1/2-approximation
    of MWM. *)
val greedy : Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> int array

(** Path-growing algorithm of Drake and Hougardy: alternately grow two
    matchings along locally heaviest paths, return the heavier one; 1/2-
    approximation in linear time. *)
val path_growing : Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> int array

(** [augment_short_paths g mate ~k] repeatedly augments along augmenting
    paths of length at most [2k - 1] found by depth-limited alternating DFS,
    in place, iterating passes to a fixpoint. On bipartite graphs this
    eliminates all such paths, giving a (k / (k+1))-approximation of MCM
    (Hopcroft–Karp lemma); on general graphs blossoms can hide rare paths,
    so the ratio is heuristic (benchmarks measure it). Pass
    [k = ceil(1/epsilon)] for the (1 - epsilon) shape. *)
val augment_short_paths : Sparse_graph.Graph.t -> int array -> k:int -> unit

(** [local_search g w ?init ~len ~passes ()] improves a matching by
    weight-increasing alternating walks of length at most [len], scanning
    all vertices [passes] times (the bounded-length augmentation shape of
    Duan–Pettie's scaling steps). *)
val local_search :
  Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> ?init:int array ->
  len:int -> passes:int -> unit -> int array

(** Total weight of a matching. *)
val weight : Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> int array -> int
