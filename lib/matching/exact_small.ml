open Sparse_graph

let limit = 22

let dp_table g weight_of =
  let n = Graph.n g in
  if n > limit then
    invalid_arg "Exact_small: graph too large for subset DP";
  let size = 1 lsl n in
  let dp = Array.make size 0 in
  (* incident (neighbor, edge) pairs per vertex for the transition *)
  for s = 1 to size - 1 do
    (* lowest vertex in s *)
    let v = ref 0 in
    while s land (1 lsl !v) = 0 do
      incr v
    done;
    let v = !v in
    let without_v = s lxor (1 lsl v) in
    let best = ref dp.(without_v) in
    Graph.iter_incident g v (fun u e ->
        if s land (1 lsl u) <> 0 then begin
          let cand = weight_of e + dp.(without_v lxor (1 lsl u)) in
          if cand > !best then best := cand
        end);
    dp.(s) <- !best
  done;
  dp

let max_weight_matching g w =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let dp = dp_table g (Weights.get w) in
    dp.((1 lsl n) - 1)
  end

let max_weight_matching_edges g w =
  let n = Graph.n g in
  if n = 0 then (0, [])
  else begin
    let weight_of = Weights.get w in
    let dp = dp_table g weight_of in
    (* reconstruct *)
    let s = ref ((1 lsl n) - 1) in
    let picked = ref [] in
    while !s <> 0 do
      let v = ref 0 in
      while !s land (1 lsl !v) = 0 do
        incr v
      done;
      let v = !v in
      let without_v = !s lxor (1 lsl v) in
      if dp.(!s) = dp.(without_v) then s := without_v
      else begin
        let found = ref false in
        Graph.iter_incident g v (fun u e ->
            if
              (not !found)
              && !s land (1 lsl u) <> 0
              && u <> v
              && dp.(!s) = weight_of e + dp.(without_v lxor (1 lsl u))
            then begin
              found := true;
              picked := e :: !picked;
              s := without_v lxor (1 lsl u)
            end);
        if not !found then
          invalid_arg
            (Printf.sprintf
               "Exact_small.max_weight_matching_edges: no edge at vertex %d \
                explains dp value %d on subset 0x%x — the weight function \
                changed between calls"
               v dp.(!s) !s)
      end
    done;
    (dp.((1 lsl n) - 1), !picked)
  end

let max_cardinality g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let dp = dp_table g (fun _ -> 1) in
    dp.((1 lsl n) - 1)
  end
