open Sparse_graph

(* Classic array-based Edmonds algorithm: repeated BFS searches for an
   augmenting path from each free vertex, contracting blossoms on the fly
   (base.(v) tracks each vertex's blossom base). *)

exception Augmented

let find_path g mate p base root =
  let n = Graph.n g in
  let used = Array.make n false in
  Array.fill p 0 n (-1);
  for i = 0 to n - 1 do
    base.(i) <- i
  done;
  used.(root) <- true;
  let q = Queue.create () in
  Queue.add root q;
  let lca a b =
    let seen = Array.make n false in
    let a = ref a in
    let continue = ref true in
    while !continue do
      a := base.(!a);
      seen.(!a) <- true;
      if mate.(!a) = -1 then continue := false else a := p.(mate.(!a))
    done;
    let b = ref b in
    let res = ref (-1) in
    while !res < 0 do
      b := base.(!b);
      if seen.(!b) then res := !b else b := p.(mate.(!b))
    done;
    !res
  in
  let blossom = Array.make n false in
  let mark_path v b child =
    let v = ref v and child = ref child in
    while base.(!v) <> b do
      blossom.(base.(!v)) <- true;
      blossom.(base.(mate.(!v))) <- true;
      p.(!v) <- !child;
      child := mate.(!v);
      v := p.(mate.(!v))
    done
  in
  let augment_from last =
    let v = ref last in
    while !v <> -1 do
      let pv = p.(!v) in
      let ppv = mate.(pv) in
      mate.(!v) <- pv;
      mate.(pv) <- !v;
      v := ppv
    done;
    raise Augmented
  in
  try
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Graph.iter_neighbors g v (fun t ->
          if base.(v) <> base.(t) && mate.(v) <> t then begin
            if t = root || (mate.(t) <> -1 && p.(mate.(t)) <> -1) then begin
              (* odd cycle: contract the blossom *)
              let curbase = lca v t in
              Array.fill blossom 0 n false;
              mark_path v curbase t;
              mark_path t curbase v;
              for i = 0 to n - 1 do
                if blossom.(base.(i)) then begin
                  base.(i) <- curbase;
                  if not used.(i) then begin
                    used.(i) <- true;
                    Queue.add i q
                  end
                end
              done
            end
            else if p.(t) = -1 then begin
              p.(t) <- v;
              if mate.(t) = -1 then augment_from t
              else begin
                used.(mate.(t)) <- true;
                Queue.add mate.(t) q
              end
            end
          end)
    done;
    false
  with Augmented -> true

let max_cardinality_matching g =
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let p = Array.make n (-1) in
  let base = Array.make n 0 in
  (* cheap greedy initialization speeds up the search phases *)
  Graph.iter_edges g (fun _ u v ->
      if mate.(u) = -1 && mate.(v) = -1 then begin
        mate.(u) <- v;
        mate.(v) <- u
      end);
  for v = 0 to n - 1 do
    if mate.(v) = -1 then ignore (find_path g mate p base v)
  done;
  mate

let size mate =
  Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate / 2

let edges g mate =
  Graph.fold_edges g
    (fun acc e u v -> if mate.(u) = v then e :: acc else acc)
    []
  |> List.rev

let is_valid_matching g mate =
  let ok = ref true in
  Array.iteri
    (fun v m ->
      if m >= 0 then begin
        if mate.(m) <> v then ok := false;
        if not (Graph.mem_edge g v m) then ok := false
      end)
    mate;
  !ok

let is_maximum g mate =
  is_valid_matching g mate
  &&
  let n = Graph.n g in
  let mate = Array.copy mate in
  let p = Array.make n (-1) in
  let base = Array.make n 0 in
  let augmentable = ref false in
  for v = 0 to n - 1 do
    if (not !augmentable) && mate.(v) = -1 then
      if find_path g mate p base v then augmentable := true
  done;
  not !augmentable
