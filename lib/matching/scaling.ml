open Sparse_graph

type params = {
  delta : float;
  search_len : int;
  passes : int;
}

let default_params = { delta = 0.2; search_len = 3; passes = 4 }

let of_epsilon eps =
  let eps = max 0.01 (min 0.9 eps) in
  {
    delta = eps /. 2.;
    search_len = max 3 (int_of_float (ceil (1. /. eps)));
    passes = max 4 (int_of_float (ceil (2. /. eps)));
  }

let scales ?(params = default_params) w =
  let max_w = Weights.max_weight w in
  if max_w = 0 then []
  else begin
    let base = 1. +. params.delta in
    let rec build t acc =
      if t < 1 then List.rev (1 :: acc)
      else build (int_of_float (floor (float_of_int t /. base))) (t :: acc)
    in
    (* thresholds from max weight downward; dedup adjacent *)
    let raw = build max_w [] in
    let rec dedup = function
      | a :: b :: rest when a = b -> dedup (b :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup raw
  end

let run ?(params = default_params) g w =
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let thresholds = scales ~params w in
  List.iter
    (fun threshold ->
      (* eligible edges at this scale: weight at least the threshold *)
      let eligible =
        Graph.fold_edges g
          (fun acc e _ _ -> if Weights.get w e >= threshold then e :: acc else acc)
          []
      in
      let sub, mapping = Graph_ops.subgraph_of_edges g (List.rev eligible) in
      let sub_w = Weights.restrict w mapping in
      (* improve the global matching inside the scale subgraph: seed with
         the current mates restricted to eligible edges *)
      let seed = Array.make n (-1) in
      Array.iteri
        (fun v m -> if m >= 0 && Graph.mem_edge sub v m then seed.(v) <- m)
        mate;
      let improved =
        Approx.local_search sub sub_w ~init:seed ~len:params.search_len
          ~passes:params.passes ()
      in
      (* merge: adopt improved pairs whose both endpoints are not matched
         outside the scale subgraph *)
      Array.iteri
        (fun v m ->
          if m > v then begin
            let free u = mate.(u) = -1 || Graph.mem_edge sub u mate.(u) in
            if free v && free m then begin
              (* release old partners inside the subgraph *)
              let release u =
                if mate.(u) >= 0 then begin
                  mate.(mate.(u)) <- -1;
                  mate.(u) <- -1
                end
              in
              release v;
              release m;
              mate.(v) <- m;
              mate.(m) <- v
            end
          end)
        improved)
    thresholds;
  (* final global cleanup pass at full length *)
  let final =
    Approx.local_search g w ~init:mate ~len:params.search_len
      ~passes:params.passes ()
  in
  final
