(** The planar-MCM preprocessing of Section 3.2 (from [27]): eliminate
    2-stars and 3-double-stars so that the surviving graph's maximum
    matching has size Omega(n) (Lemma 3.1).

    2-star elimination: every vertex keeps at most one pendant (degree-1)
    neighbor; the other pendants are removed (tokens bounced back). 3-double-
    star elimination: for every pair (x, y), at most two common degree-2
    spoke neighbors survive. Both eliminations preserve the maximum matching
    size: a center can match at most one of its pendants, and a hub pair can
    match at most two of its spokes. *)

type result = {
  graph : Sparse_graph.Graph.t;          (** the reduced graph G-bar *)
  mapping : Sparse_graph.Graph_ops.mapping; (** to/from the original graph *)
  removed : int list;                    (** removed original vertices *)
}

(** One round of both eliminations (the paper applies them once). *)
val eliminate : Sparse_graph.Graph.t -> result

(** Iterate {!eliminate} until neither pattern remains (removals can expose
    new pendants, so one round is not always enough for Lemma 3.1's
    hypothesis); mappings are composed back to the original graph. *)
val eliminate_fixpoint : Sparse_graph.Graph.t -> result

(** [has_2_star g] detects a vertex with two pendant neighbors. *)
val has_2_star : Sparse_graph.Graph.t -> bool

(** [has_3_double_star g] detects a pair with three common degree-2
    neighbors. *)
val has_3_double_star : Sparse_graph.Graph.t -> bool
