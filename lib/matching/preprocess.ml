open Sparse_graph

type result = {
  graph : Graph.t;
  mapping : Graph_ops.mapping;
  removed : int list;
}

let eliminate g =
  let n = Graph.n g in
  let removed = Array.make n false in
  (* 2-stars: each center keeps the pendant with the smallest id *)
  let kept_pendant = Array.make n (-1) in
  for u = 0 to n - 1 do
    if Graph.degree g u = 1 then begin
      let center = List.hd (Graph.neighbors g u) in
      if kept_pendant.(center) = -1 then kept_pendant.(center) <- u
      else removed.(u) <- true
    end
  done;
  (* 3-double-stars: spokes grouped by their hub pair; keep two *)
  let spokes = Hashtbl.create 16 in
  for u = 0 to n - 1 do
    if Graph.degree g u = 2 then begin
      match Graph.neighbors g u with
      | [ a; b ] ->
          let key = (min a b, max a b) in
          let cur = try Hashtbl.find spokes key with Not_found -> [] in
          Hashtbl.replace spokes key (u :: cur)
      | ns ->
          invalid_arg
            (Printf.sprintf
               "Preprocess.eliminate: vertex %d has degree 2 but %d \
                neighbor entries (self-loop or parallel edge?)"
               u (List.length ns))
    end
  done;
  Hashtbl.iter
    (fun _ us ->
      match List.rev us with
      | _ :: _ :: extras -> List.iter (fun u -> removed.(u) <- true) extras
      | _ -> ())
    spokes;
  let gone = ref [] in
  for u = n - 1 downto 0 do
    if removed.(u) then gone := u :: !gone
  done;
  let graph, mapping = Graph_ops.remove_vertices g !gone in
  { graph; mapping; removed = !gone }

let compose_mappings ~outer ~inner ~orig_n =
  (* inner maps original -> mid, outer maps mid -> final *)
  let to_orig =
    Array.map (fun mid -> inner.Graph_ops.to_orig.(mid)) outer.Graph_ops.to_orig
  in
  let to_sub = Array.make orig_n (-1) in
  Array.iteri (fun final orig -> to_sub.(orig) <- final) to_orig;
  let edge_to_orig =
    Array.map
      (fun mid_e -> inner.Graph_ops.edge_to_orig.(mid_e))
      outer.Graph_ops.edge_to_orig
  in
  { Graph_ops.to_sub; to_orig; edge_to_orig }

let eliminate_fixpoint g =
  let orig_n = Graph.n g in
  let rec go acc =
    let step = eliminate acc.graph in
    if step.removed = [] then acc
    else begin
      let mapping =
        compose_mappings ~outer:step.mapping ~inner:acc.mapping ~orig_n
      in
      let removed_orig =
        List.map (fun v -> acc.mapping.Graph_ops.to_orig.(v)) step.removed
      in
      go
        {
          graph = step.graph;
          mapping;
          removed = List.sort compare (removed_orig @ acc.removed);
        }
    end
  in
  let identity =
    {
      graph = g;
      mapping =
        {
          Graph_ops.to_sub = Array.init orig_n Fun.id;
          to_orig = Array.init orig_n Fun.id;
          edge_to_orig = Array.init (Graph.m g) Fun.id;
        };
      removed = [];
    }
  in
  go identity

let has_2_star g =
  let n = Graph.n g in
  let pendants = Array.make n 0 in
  let found = ref false in
  for u = 0 to n - 1 do
    if Graph.degree g u = 1 then begin
      let center = List.hd (Graph.neighbors g u) in
      pendants.(center) <- pendants.(center) + 1;
      if pendants.(center) >= 2 then found := true
    end
  done;
  !found

let has_3_double_star g =
  let spokes = Hashtbl.create 16 in
  let found = ref false in
  for u = 0 to Graph.n g - 1 do
    if Graph.degree g u = 2 then begin
      match Graph.neighbors g u with
      | [ a; b ] ->
          let key = (min a b, max a b) in
          let c = (try Hashtbl.find spokes key with Not_found -> 0) + 1 in
          Hashtbl.replace spokes key c;
          if c >= 3 then found := true
      | ns ->
          invalid_arg
            (Printf.sprintf
               "Preprocess.has_3_double_star: vertex %d has degree 2 but \
                %d neighbor entries (self-loop or parallel edge?)"
               u (List.length ns))
    end
  done;
  !found
