(** Maximum cardinality matching by Edmonds' blossom algorithm (O(n^3)).

    This is the leader's exact local solver for the planar MCM application
    (Section 3.2): polynomial, so usable on clusters of any size. *)

(** [max_cardinality_matching g] returns the mate array: [mate.(v)] is [v]'s
    partner or [-1]. *)
val max_cardinality_matching : Sparse_graph.Graph.t -> int array

(** Number of matched edges in a mate array. *)
val size : int array -> int

(** [edges g mate] lists the matched edge ids. *)
val edges : Sparse_graph.Graph.t -> int array -> int list

(** [is_valid_matching g mate] checks symmetry and adjacency. *)
val is_valid_matching : Sparse_graph.Graph.t -> int array -> bool

(** [is_maximum g mate] verifies optimality by checking that no augmenting
    path exists (runs one more search phase). *)
val is_maximum : Sparse_graph.Graph.t -> int array -> bool
