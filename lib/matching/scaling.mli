(** Weight-scaling (1 - epsilon)-MWM in the shape of Duan–Pettie [34], the
    sequential skeleton into which the paper embeds its expander framework
    (Section 1.3, "Weighted Matching").

    Weights are bucketed into scales [(1+delta)^j]; the algorithm walks the
    scales from heaviest to lightest, at each scale restricting attention to
    the eligible ("tight") edges — edges whose scaled weight is maximal
    among those touching still-unmatched vertices — and extending the
    matching by bounded-length augmentations there. The centralized version
    here is the reference implementation; the distributed pipeline
    (lib/core) replaces the per-scale solve with a per-cluster local solve
    after an expander decomposition. *)

type params = {
  delta : float;      (** scale base is 1 + delta; smaller = finer scales *)
  search_len : int;   (** augmentation length per scale *)
  passes : int;       (** local-search passes per scale *)
}

(** delta = 0.2, search_len = 3, passes = 4. *)
val default_params : params

(** [of_epsilon eps] picks parameters targeting a (1 - eps) ratio. *)
val of_epsilon : float -> params

(** [run ?params g w] returns the computed mate array. *)
val run :
  ?params:params -> Sparse_graph.Graph.t -> Sparse_graph.Weights.t ->
  int array

(** [scales ?params w] lists the scale thresholds the run uses, heaviest
    first (exposed for the per-scale distributed pipeline and for tests). *)
val scales : ?params:params -> Sparse_graph.Weights.t -> int list
