(** Exact maximum weight matching by subset dynamic programming.

    The LOCAL/CONGEST model allows unbounded local computation at the
    cluster leader (Section 1.2); this solver is that idealized leader
    computation, practical up to ~22 vertices (O(2^n * n) time, O(2^n)
    space). Used as ground truth in tests and for small clusters. *)

(** [max_weight_matching g w] is the maximum total weight of a matching.
    @raise Invalid_argument if [Graph.n g > 22]. *)
val max_weight_matching :
  Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> int

(** [max_weight_matching_edges g w] also reconstructs an optimal matching
    (edge ids). Same size limit. *)
val max_weight_matching_edges :
  Sparse_graph.Graph.t -> Sparse_graph.Weights.t -> int * int list

(** [max_cardinality g] is the maximum matching size via the same DP with
    unit weights (cross-check for {!Blossom}). Same size limit. *)
val max_cardinality : Sparse_graph.Graph.t -> int
