open Sparse_graph

let weight g w mate =
  let total = ref 0 in
  Array.iteri
    (fun v m -> if m > v then total := !total + Weights.get w (Graph.find_edge g v m))
    mate;
  !total

let greedy g w =
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let order = Array.init (Graph.m g) Fun.id in
  Array.sort
    (fun a b -> compare (- Weights.get w a, a) (- Weights.get w b, b))
    order;
  Array.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if mate.(u) = -1 && mate.(v) = -1 then begin
        mate.(u) <- v;
        mate.(v) <- u
      end)
    order;
  mate

let path_growing g w =
  let n = Graph.n g in
  let alive = Array.make n true in
  let m1 = ref [] and m2 = ref [] in
  let heaviest_neighbor x =
    Graph.fold_neighbors g x
      (fun best y ->
        if not alive.(y) then best
        else begin
          let wy = Weights.get w (Graph.find_edge g x y) in
          match best with
          | None -> Some (y, wy)
          | Some (_, bw) -> if wy > bw then Some (y, wy) else best
        end)
      None
  in
  for start = 0 to n - 1 do
    if alive.(start) then begin
      let x = ref start in
      let side = ref 1 in
      let continue = ref true in
      while !continue do
        match heaviest_neighbor !x with
        | None ->
            alive.(!x) <- false;
            continue := false
        | Some (y, _) ->
            let e = Graph.find_edge g !x y in
            if !side = 1 then m1 := e :: !m1 else m2 := e :: !m2;
            side := 3 - !side;
            alive.(!x) <- false;
            x := y
      done
    end
  done;
  let to_mate edges =
    let mate = Array.make n (-1) in
    List.iter
      (fun e ->
        let u, v = Graph.endpoints g e in
        (* edges on a path alternate, so both endpoints are free here *)
        if mate.(u) = -1 && mate.(v) = -1 then begin
          mate.(u) <- v;
          mate.(v) <- u
        end)
      edges;
    mate
  in
  let c1 = to_mate !m1 and c2 = to_mate !m2 in
  if weight g w c1 >= weight g w c2 then c1 else c2

let augment_short_paths g mate ~k =
  let n = Graph.n g in
  let max_len = (2 * k) - 1 in
  (* alternating DFS from a free vertex; [on_path] guards the current walk,
     [visited] prunes re-exploration within one search *)
  let visited = Array.make n false in
  let on_path = Array.make n false in
  let rec search u depth =
    (* u is at an even position; try to end or extend via a matched edge *)
    if depth > max_len then false
    else begin
      let result = ref false in
      let finish = ref false in
      Graph.iter_neighbors g u (fun v ->
          if (not !finish) && (not on_path.(v)) && not visited.(v) then begin
            if mate.(v) = -1 then begin
              (* augmenting path found: flip (u, v) *)
              mate.(v) <- u;
              mate.(u) <- v;
              result := true;
              finish := true
            end
            else begin
              let w = mate.(v) in
              if (not on_path.(w)) && not visited.(w) then begin
                visited.(v) <- true;
                on_path.(v) <- true;
                on_path.(w) <- true;
                if search w (depth + 2) then begin
                  (* w got re-matched deeper; claim v for u *)
                  mate.(u) <- v;
                  mate.(v) <- u;
                  result := true;
                  finish := true
                end
                else begin
                  on_path.(v) <- false;
                  on_path.(w) <- false
                end
              end
            end
          end);
      !result
    end
  in
  let progress = ref true in
  while !progress do
    progress := false;
    for v = 0 to n - 1 do
      if mate.(v) = -1 then begin
        Array.fill visited 0 n false;
        Array.fill on_path 0 n false;
        on_path.(v) <- true;
        if search v 1 then progress := true
      end
    done
  done

let local_search g w ?init ~len ~passes () =
  let n = Graph.n g in
  let mate =
    match init with Some m -> Array.copy m | None -> Array.make n (-1)
  in
  let wt e = Weights.get w e in
  let try_improve u v =
    (* consider toggling non-matching edge (u, v) with local repairs *)
    if mate.(u) = v then false
    else begin
      let e = Graph.find_edge g u v in
      let mu = mate.(u) and mv = mate.(v) in
      match (mu, mv) with
      | -1, -1 ->
          mate.(u) <- v;
          mate.(v) <- u;
          true
      | m, -1 when len >= 2 ->
          if wt e > wt (Graph.find_edge g u m) then begin
            mate.(m) <- -1;
            mate.(u) <- v;
            mate.(v) <- u;
            true
          end
          else false
      | -1, m when len >= 2 ->
          if wt e > wt (Graph.find_edge g v m) then begin
            mate.(m) <- -1;
            mate.(u) <- v;
            mate.(v) <- u;
            true
          end
          else false
      | mu, mv when len >= 3 && mu >= 0 && mv >= 0 ->
          let old = wt (Graph.find_edge g u mu) + wt (Graph.find_edge g v mv) in
          let cross =
            if mu <> mv && Graph.mem_edge g mu mv then
              Some (Graph.find_edge g mu mv)
            else None
          in
          let fresh = wt e + (match cross with Some c -> wt c | None -> 0) in
          if fresh > old then begin
            mate.(u) <- v;
            mate.(v) <- u;
            (match cross with
            | Some _ ->
                mate.(mu) <- mv;
                mate.(mv) <- mu
            | None ->
                mate.(mu) <- -1;
                mate.(mv) <- -1);
            true
          end
          else false
      | _ -> false
    end
  in
  for _ = 1 to passes do
    Graph.iter_edges g (fun _ u v -> ignore (try_improve u v))
  done;
  mate
