open Sparse_graph

(* Batched serving on top of the witness hierarchy. [serve] is the pure
   in-memory planner: it answers a demand matrix with per-demand path
   lengths (p50/p99/max) and per-edge weighted congestion, reusing one
   path buffer so a million-demand batch allocates nothing per demand
   beyond the stats. [plan] retains the concrete paths; [serve_congest]
   executes them as a CONGEST workload on the sharded simulator via
   Distr.Witness_routing and checks the deliveries against the planner. *)

type demand = { src : int; dst : int; weight : int }

type t = {
  g : Graph.t;
  hier : Hierarchy.t;
  cong : int array;  (* per edge id, weighted load of the last batch *)
  out : Hierarchy.vec;
}

type summary = {
  demands : int;
  delivered : int;   (* demands the planner routed *)
  failed : int;      (* demands with disconnected endpoints *)
  fallbacks : int;   (* legs that left the witness structures *)
  rounds_p50 : int;  (* per-demand path length (edges), percentiles *)
  rounds_p99 : int;
  rounds_max : int;
  congestion_max : int;    (* heaviest weighted per-edge load *)
  congestion_total : int;  (* sum of weight * length over demands *)
}

let preprocess ?reuse ?seed g decomp =
  {
    g;
    hier = Hierarchy.build ?reuse ?seed g decomp;
    cong = Array.make (Graph.m g) 0;
    out = Hierarchy.vec_create ();
  }

let hierarchy t = t.hier
let congestion t = t.cong

(* nearest-rank percentile of the sorted prefix [a.(0 .. len-1)] *)
let percentile a len p =
  if len = 0 then 0
  else begin
    let rank = (len * p + 99) / 100 in
    a.(max 0 (min (len - 1) (rank - 1)))
  end

(* route one demand into [t.out] and charge its congestion; returns the
   path length in edges, or -1 if unroutable *)
let serve_one t d =
  if Hierarchy.route t.hier t.out d.src d.dst then begin
    let out = t.out in
    for i = 1 to out.Hierarchy.len - 1 do
      let e = Graph.find_edge t.g out.Hierarchy.buf.(i - 1) out.Hierarchy.buf.(i) in
      t.cong.(e) <- t.cong.(e) + d.weight
    done;
    out.Hierarchy.len - 1
  end
  else -1

let serve t (ds : demand array) =
  Obs.Span.with_ "route.serve" @@ fun () ->
  Array.fill t.cong 0 (Array.length t.cong) 0;
  let fb0 = Hierarchy.fallbacks t.hier in
  let lengths = Array.make (max 1 (Array.length ds)) 0 in
  let del = ref 0 and failed = ref 0 in
  Array.iter
    (fun d ->
      match serve_one t d with
      | -1 -> incr failed
      | len ->
          lengths.(!del) <- len;
          incr del)
    ds;
  let del = !del in
  let sorted = Array.sub lengths 0 del in
  Array.sort compare sorted;
  let congestion_max = Array.fold_left max 0 t.cong in
  let congestion_total = Array.fold_left ( + ) 0 t.cong in
  let s =
    {
      demands = Array.length ds;
      delivered = del;
      failed = !failed;
      fallbacks = Hierarchy.fallbacks t.hier - fb0;
      rounds_p50 = percentile sorted del 50;
      rounds_p99 = percentile sorted del 99;
      rounds_max = (if del = 0 then 0 else sorted.(del - 1));
      congestion_max;
      congestion_total;
    }
  in
  if Obs.enabled () then begin
    Obs.Metric.count "route.demands" s.demands;
    Obs.Metric.count "route.delivered" s.delivered;
    Obs.Metric.count "route.failed" s.failed;
    Obs.Metric.count "route.rounds_p50" s.rounds_p50;
    Obs.Metric.count "route.rounds_p99" s.rounds_p99;
    Obs.Metric.count "route.congestion_max" s.congestion_max
  end;
  s

(* retained plans, [||] for an unroutable demand *)
let plan t (ds : demand array) =
  Array.map
    (fun d ->
      if Hierarchy.route t.hier t.out d.src d.dst then
        Hierarchy.vec_to_array t.out
      else [||])
    ds

type congest_run = {
  planner : summary;
  routed : Distr.Witness_routing.result;
  match_planner : bool;
      (* simulator delivered exactly the planner's demand multiset *)
}

let serve_congest ?exec ?faults t (ds : demand array) ~max_rounds =
  let planner = serve t ds in
  let plans = plan t ds in
  let routable =
    Array.of_list
      (List.filter
         (fun p -> Array.length p > 0)
         (Array.to_list plans))
  in
  let routed =
    Distr.Witness_routing.run ?exec ?faults t.g ~plans:routable ~max_rounds
  in
  let match_planner =
    Distr.Witness_routing.check ~plans:routable routed
    && routed.Distr.Witness_routing.undelivered = 0
    && Array.length routable = planner.delivered
  in
  { planner; routed; match_planner }
