open Sparse_graph

(* Batched serving on top of the witness hierarchy. [serve] is the
   in-memory planner: it answers a demand matrix with per-demand path
   lengths (p50/p99/max) and per-edge weighted congestion. The batch is
   sharded over the worker pool in fixed-size epochs: each task routes
   one chunk with a private router and a private snapshot of the
   congestion array, and the coordinator folds the congestion deltas and
   cursor advances back in task order after every epoch. Chunk and epoch
   sizes are constants, so the snapshots every demand is routed against
   — and therefore every path, length and summary byte — are identical
   at every [--jobs].

   [plan] retains the concrete paths; [serve_congest] executes the
   single serve pass's plans as a CONGEST workload on the sharded
   simulator via Distr.Witness_routing and checks the deliveries against
   the planner. *)

type demand = { src : int; dst : int; weight : int }

(* Epoch geometry: routing is sharded in chunks of [chunk] demands,
   [tasks_per_epoch] chunks per epoch. All snapshots are taken at epoch
   boundaries, so these constants are part of the output contract —
   changing them changes which congestion state each demand sees. *)
let chunk = 2048
let tasks_per_epoch = 8

type t = {
  g : Graph.t;
  hier : Hierarchy.t;
  pool : Parallel.Pool.t;
  cong : int array;  (* per edge id, weighted load of the last batch *)
  coord : Hierarchy.router;        (* the merged serving stream *)
  trouters : Hierarchy.router array;  (* per task-slot routers *)
  tcong : int array array;            (* per task-slot load snapshots *)
  touts : Hierarchy.vec array;        (* per task-slot path buffers *)
  tspan : unit array;                 (* mapi input, one slot per task *)
}

type summary = {
  demands : int;
  delivered : int;   (* demands the planner routed *)
  failed : int;      (* demands with disconnected endpoints *)
  fallbacks : int;   (* legs that left the witness structures *)
  rounds_p50 : int;  (* per-demand path length (edges), percentiles *)
  rounds_p99 : int;
  rounds_max : int;
  congestion_max : int;    (* heaviest weighted per-edge load *)
  congestion_total : int;  (* sum of weight * length over demands *)
}

let preprocess ?reuse ?seed ?(pool = Parallel.Pool.sequential) g decomp =
  let hier = Hierarchy.build ?reuse ?seed ~pool g decomp in
  let m = Graph.m g in
  {
    g;
    hier;
    pool;
    cong = Array.make m 0;
    coord = Hierarchy.make_router hier;
    trouters = Array.init tasks_per_epoch (fun _ -> Hierarchy.make_router hier);
    tcong = Array.init tasks_per_epoch (fun _ -> Array.make m 0);
    touts = Array.init tasks_per_epoch (fun _ -> Hierarchy.vec_create ());
    tspan = Array.make tasks_per_epoch ();
  }

let hierarchy t = t.hier
let congestion t = t.cong

(* in-place monomorphic quicksort of a.(0 .. len-1): insertion sort below
   a small cutoff, median-of-three pivot (same shape as Graph.sort_row,
   without the payload) *)
let sort_ints (a : int array) len =
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec go lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      if lo < !j then go lo !j;
      if !i < hi then go !i hi
    end
  in
  if len > 1 then go 0 (len - 1)

(* nearest-rank percentile of the sorted prefix [a.(0 .. len-1)] *)
let percentile a len p =
  if len = 0 then 0
  else begin
    let rank = (len * p + 99) / 100 in
    a.(max 0 (min (len - 1) (rank - 1)))
  end

(* charge the path in [out] against [cong] *)
(* lint: hot *)
let charge g cong (out : Hierarchy.vec) w =
  for i = 1 to out.Hierarchy.len - 1 do
    let e = Graph.find_edge g out.Hierarchy.buf.(i - 1) out.Hierarchy.buf.(i) in
    cong.(e) <- cong.(e) + w
  done

(* route demands [lo, hi) with task slot [ti]'s private router and load
   snapshot, recording lengths (and paths) at the demands' own indices *)
let serve_chunk t ~policy ~ti (ds : demand array) lengths paths lo hi =
  let rt = t.trouters.(ti) in
  let tc = t.tcong.(ti) in
  let out = t.touts.(ti) in
  Array.blit t.cong 0 tc 0 (Array.length t.cong);
  Hierarchy.sync_router t.hier ~src:t.coord ~dst:rt;
  let keep = Array.length paths > 0 in
  for i = lo to hi - 1 do
    let d = ds.(i) in
    if Hierarchy.route ~policy ~cong:tc t.hier rt out d.src d.dst then begin
      charge t.g tc out d.weight;
      lengths.(i) <- out.Hierarchy.len - 1;
      if keep then paths.(i) <- Hierarchy.vec_to_array out
    end
    else lengths.(i) <- -1
  done

(* fold the epoch's task snapshots into the global congestion array:
   new = old + sum of per-task deltas, accumulated in task order *)
(* lint: hot *)
let merge_cong t ~active =
  let m = Array.length t.cong in
  for e = 0 to m - 1 do
    let base = t.cong.(e) in
    let s = ref base in
    for ti = 0 to active - 1 do
      s := !s + t.tcong.(ti).(e) - base
    done;
    t.cong.(e) <- !s
  done

(* the single serving pass behind [serve] / [plan] / [serve_congest]:
   routes every demand once; fills and returns the per-demand lengths
   (-1 = unroutable) and, when [keep], the concrete paths *)
let serve_core ~policy ~keep t (ds : demand array) =
  Obs.Span.with_ "route.serve" @@ fun () ->
  Array.fill t.cong 0 (Array.length t.cong) 0;
  Hierarchy.reset_router t.hier t.coord;
  let nd = Array.length ds in
  let lengths = Array.make (max 1 nd) (-1) in
  let paths = if keep then Array.make (max 1 nd) [||] else [||] in
  let epoch = chunk * tasks_per_epoch in
  let nepochs = (nd + epoch - 1) / epoch in
  for ep = 0 to nepochs - 1 do
    let base = ep * epoch in
    let active = min tasks_per_epoch ((nd - base + chunk - 1) / chunk) in
    ignore
      (Parallel.Pool.mapi t.pool
         (fun ti () ->
           let lo = base + (ti * chunk) in
           let hi = min nd (lo + chunk) in
           if lo < hi then serve_chunk t ~policy ~ti ds lengths paths lo hi)
         t.tspan);
    merge_cong t ~active;
    for ti = 0 to active - 1 do
      Hierarchy.merge_router t.hier ~src:t.trouters.(ti) ~dst:t.coord
    done
  done;
  (lengths, paths)

let summarize t (ds : demand array) lengths =
  let nd = Array.length ds in
  let del = ref 0 and failed = ref 0 in
  for i = 0 to nd - 1 do
    if lengths.(i) >= 0 then incr del else incr failed
  done;
  let del = !del in
  let sorted = Array.make (max 1 del) 0 in
  let k = ref 0 in
  for i = 0 to nd - 1 do
    if lengths.(i) >= 0 then begin
      sorted.(!k) <- lengths.(i);
      incr k
    end
  done;
  sort_ints sorted del;
  let congestion_max = Array.fold_left max 0 t.cong in
  let congestion_total = Array.fold_left ( + ) 0 t.cong in
  let s =
    {
      demands = nd;
      delivered = del;
      failed = !failed;
      fallbacks = Hierarchy.router_fallbacks t.coord;
      rounds_p50 = percentile sorted del 50;
      rounds_p99 = percentile sorted del 99;
      rounds_max = (if del = 0 then 0 else sorted.(del - 1));
      congestion_max;
      congestion_total;
    }
  in
  if Obs.enabled () then begin
    Obs.Metric.count "route.demands" s.demands;
    Obs.Metric.count "route.delivered" s.delivered;
    Obs.Metric.count "route.failed" s.failed;
    Obs.Metric.count "route.rounds_p50" s.rounds_p50;
    Obs.Metric.count "route.rounds_p99" s.rounds_p99;
    Obs.Metric.count "route.congestion_max" s.congestion_max
  end;
  s

let serve ?(policy = Hierarchy.Least_loaded) t (ds : demand array) =
  let lengths, _ = serve_core ~policy ~keep:false t ds in
  summarize t ds lengths

(* retained plans, [||] for an unroutable demand *)
let plan ?(policy = Hierarchy.Least_loaded) t (ds : demand array) =
  let _, paths = serve_core ~policy ~keep:true t ds in
  Array.sub paths 0 (Array.length ds)

type congest_run = {
  planner : summary;
  routed : Distr.Witness_routing.result;
  match_planner : bool;
      (* simulator delivered exactly the planner's demand multiset *)
}

let serve_congest ?exec ?faults ?(policy = Hierarchy.Least_loaded) t
    (ds : demand array) ~max_rounds =
  (* one routing pass: the served paths are the shipped plans *)
  let lengths, paths = serve_core ~policy ~keep:true t ds in
  let planner = summarize t ds lengths in
  let routable = Array.make (max 1 planner.delivered) [||] in
  let k = ref 0 in
  for i = 0 to Array.length ds - 1 do
    if lengths.(i) >= 0 then begin
      routable.(!k) <- paths.(i);
      incr k
    end
  done;
  let routable = Array.sub routable 0 planner.delivered in
  let routed =
    Distr.Witness_routing.run ?exec ?faults t.g ~plans:routable ~max_rounds
  in
  let match_planner =
    Distr.Witness_routing.check ~plans:routable routed
    && routed.Distr.Witness_routing.undelivered = 0
    && Array.length routable = planner.delivered
  in
  { planner; routed; match_planner }
