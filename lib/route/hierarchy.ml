open Sparse_graph

(* The reusable witness hierarchy behind expander routing (the shape of a
   hierarchical LeafWitness / InternalWitness route). Preprocessing turns
   one expander decomposition into:

   - a *leaf witness* per cluster: a BFS tree rooted at the cluster's
     leader over the witness graph = intra-cluster edges plus the
     cut-matching game's embedded matchings as shortcut edges (each
     shortcut expands to its retained real-edge path when routed). When
     the decomposition retained no matchings (spectral engine, exact or
     trivial acceptances) and the cluster is large enough, a fresh
     cut-matching game is played here instead — the reuse-vs-rebuild
     axis route-bench measures. Rebuild games run under the adaptive
     cut-matching budgets (plateau early-exit, size-scaled vectors).

   - an *internal witness* per recursion-tree node: the inter-cluster
     edges whose endpoints diverge at that node, bucketed per ordered
     child pair as portal edges, plus the node's child-connectivity
     graph for multi-hop child sequences.

   Serving routes a demand (src, dst) top-down: descend the recursion
   tree along the common prefix of the two clusters' addresses, walk a
   child sequence at the divergence node crossing one portal edge per
   hop, and solve intra-cluster legs in the leaf witness by an LCA walk
   of the BFS tree, expanding shortcuts to their embedded real paths.

   Portal (and, under [Least_loaded], destination-entry) choices are
   per-*router* state: a [router] owns every cursor, scratch buffer and
   counter one serving stream mutates, so a pool can run one router per
   task over a shared hierarchy and merge the cursor advances back
   deterministically. Everything is deterministic: adjacency orders are
   fixed, cursors advance in demand order, rebuild games are seeded via
   Pool.derive_seed. *)

(* ---- growable int vector (the planner's path accumulator) ---- *)

type vec = { mutable buf : int array; mutable len : int }

let vec_create () = { buf = Array.make 64 0; len = 0 }

let vec_clear v = v.len <- 0

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_array v = Array.sub v.buf 0 v.len

(* ---- selection policy ---- *)

type policy = Round_robin | Least_loaded

(* ---- leaf witnesses ---- *)

(* adjacency entry in one cluster's witness graph: neighbor member index,
   the embedded real-edge path ([||] = a direct intra edge), whether that
   path is oriented self -> neighbor, the edge ids along the expansion,
   and a representative (minimum) edge id used for deterministic ties *)
type ledge = {
  nbr : int;
  lpath : int array;
  lfwd : bool;
  eids : int array;
  rep : int;
}

type leaf = {
  members : int array;  (* ascending vertex ids *)
  leader : int;         (* vertex id of the BFS root *)
  parent : int array;   (* member idx -> member idx, -1 for root/unreached *)
  depth : int array;    (* -1 = unreached in the witness graph *)
  up_path : int array array;  (* real path to parent; [||] = direct edge *)
  up_fwd : bool array;        (* is up_path oriented self -> parent? *)
  up_eids : int array array;  (* edge ids along the up bundle *)
  up_rep : int array;         (* representative edge id of the up bundle *)
  wadj : ledge array array;   (* full witness adjacency per member *)
  shortcuts : int;      (* matching shortcut edges in the witness graph *)
  rebuilt : bool;       (* a fresh cut-matching game was played here *)
}

(* ---- internal witnesses (recursion-tree nodes) ---- *)

type bucket = {
  ports : (int * int) array;  (* oriented inter-cluster edges *)
  port_eids : int array;      (* edge id per port *)
  bk_id : int;                (* dense id across the whole hierarchy *)
}

type node = {
  nd_depth : int;
  ranks : int array;        (* sorted child ranks (recursion child ids) *)
  children : node array;    (* aligned with [ranks] *)
  cluster : int;            (* leaf: the cluster label; internal: -1 *)
  tmp_buckets : (int, (int * int) list ref) Hashtbl.t;
      (* build-time accumulator, emptied by [fill_buckets] *)
  mutable nd_id : int;      (* dense id across internal nodes *)
  mutable bkeys : int array;      (* sorted (i * nc + j) bucket keys *)
  mutable bvals : bucket array;   (* aligned with [bkeys] *)
  mutable child_adj : int array array;  (* dense idx -> adjacent dense idxs *)
}

type t = {
  g : Graph.t;
  labels : int array;
  paths : int array array;  (* cluster label -> recursion-tree address *)
  pos_of : int array;       (* vertex -> index among its cluster's members *)
  leaves : leaf array;
  root : node;
  bucket_of : bucket array; (* bk_id -> bucket *)
  wdeg : int array;         (* vertex -> witness degree (>= 1) *)
  seq_stride : int;         (* child-sequence memo key stride *)
}

(* ---- per-stream serving state ---- *)

type router = {
  cursors : int array;  (* bk_id -> portal rotation position *)
  cadv : int array;     (* bk_id -> advances since the last sync *)
  ecur : int array;     (* vertex -> destination-entry probe position *)
  eadv : int array;     (* vertex -> advances since the last sync *)
  chain : vec;          (* scratch: LCA descent on the y side *)
  fb_pred : int array;  (* scratch: global-BFS fallback predecessors *)
  fb_queue : int array;
  seq_memo : (int, int array) Hashtbl.t;  (* memoized child sequences *)
  mutable fallbacks : int;  (* legs that left the witness structures *)
}

let make_router t =
  let n = Graph.n t.g in
  let nb = Array.length t.bucket_of in
  {
    cursors = Array.make (max 1 nb) 0;
    cadv = Array.make (max 1 nb) 0;
    ecur = Array.make n 0;
    eadv = Array.make n 0;
    chain = vec_create ();
    fb_pred = Array.make n (-1);
    fb_queue = Array.make n 0;
    seq_memo = Hashtbl.create 16;
    fallbacks = 0;
  }

let reset_router t rt =
  let n = Graph.n t.g in
  let nb = Array.length t.bucket_of in
  Array.fill rt.cursors 0 nb 0;
  Array.fill rt.cadv 0 nb 0;
  Array.fill rt.ecur 0 n 0;
  Array.fill rt.eadv 0 n 0;
  rt.fallbacks <- 0

(* adopt [src]'s cursor positions and start counting advances from zero
   (the memoized child sequences are pure and stay) *)
let sync_router t ~src ~dst =
  let n = Graph.n t.g in
  let nb = Array.length t.bucket_of in
  Array.blit src.cursors 0 dst.cursors 0 nb;
  Array.fill dst.cadv 0 nb 0;
  Array.blit src.ecur 0 dst.ecur 0 n;
  Array.fill dst.eadv 0 n 0;
  dst.fallbacks <- 0

(* fold [src]'s advances into [dst]'s positions; merging every task of an
   epoch in task order is jobs-invariant because the advance counts only
   depend on the demands the task routed *)
let merge_router t ~src ~dst =
  let nb = Array.length t.bucket_of in
  for b = 0 to nb - 1 do
    let a = src.cadv.(b) in
    if a > 0 then begin
      let len = Array.length t.bucket_of.(b).ports in
      dst.cursors.(b) <- (dst.cursors.(b) + a) mod len
    end
  done;
  let n = Graph.n t.g in
  for v = 0 to n - 1 do
    let a = src.eadv.(v) in
    if a > 0 then dst.ecur.(v) <- (dst.ecur.(v) + a) mod t.wdeg.(v)
  done;
  dst.fallbacks <- dst.fallbacks + src.fallbacks

let router_fallbacks rt = rt.fallbacks

let rebuild_min = 9  (* clusters below this size keep the plain BFS tree *)

(* edge ids along a real-edge path, plus the minimum as representative *)
let path_eids g p =
  let len = Array.length p in
  let eids = Array.make (len - 1) 0 in
  let rep = ref max_int in
  for q = 0 to len - 2 do
    let e = Graph.find_edge g p.(q) p.(q + 1) in
    eids.(q) <- e;
    if e < !rep then rep := e
  done;
  (eids, !rep)

let build_leaf g (view : Distr.Cluster_view.t) ~tau ~reuse ~seed ~label
    (dw : Spectral.Expander_decomposition.cluster_witness) ~members ~pos_of =
  let sz = Array.length members in
  let adj = Array.make sz [] in
  (* intra edges first, via the view's cached CSR rows *)
  for i = 0 to sz - 1 do
    Array.iter
      (fun w ->
        let e = Graph.find_edge g members.(i) w in
        adj.(i) <-
          { nbr = pos_of.(w); lpath = [||]; lfwd = true;
            eids = [| e |]; rep = e }
          :: adj.(i))
      view.Distr.Cluster_view.intra.(members.(i))
  done;
  (* matching shortcuts: reuse the retained witness, or rebuild by
     playing a fresh game (adaptive budgets) on the induced cluster *)
  let matchings, rebuilt =
    if reuse && dw.Spectral.Expander_decomposition.w_matchings <> [] then
      (dw.Spectral.Expander_decomposition.w_matchings, false)
    else if sz >= rebuild_min then begin
      let sub, mapping = Graph_ops.induced_subgraph g (Array.to_list members) in
      if Graph.m sub = 0 then ([], false)
      else begin
        let game_tau = if tau > 0. then tau else 0.1 in
        let verdict, _ =
          Flow.Cut_matching.run ~params:Flow.Cut_matching.adaptive sub
            ~tau:game_tau
            ~seed:(Parallel.Pool.derive_seed seed (label + 1))
        in
        match verdict with
        | Flow.Cut_matching.Expander w ->
            let o v = mapping.Graph_ops.to_orig.(v) in
            ( List.map2
                (fun pairs embeds ->
                  ( Array.map (fun (a, b) -> (o a, o b)) pairs,
                    Array.map (Array.map o) embeds ))
                w.Flow.Cut_matching.matchings w.Flow.Cut_matching.embeddings,
              true )
        | Flow.Cut_matching.Cut _ -> ([], true)
      end
    end
    else ([], false)
  in
  let shortcuts = ref 0 in
  List.iter
    (fun (pairs, embeds) ->
      Array.iteri
        (fun idx (a, b) ->
          let p = embeds.(idx) in
          if Array.length p >= 2 then begin
            incr shortcuts;
            let ia = pos_of.(a) and ib = pos_of.(b) in
            let eids, rep = path_eids g p in
            adj.(ia) <-
              { nbr = ib; lpath = p; lfwd = true; eids; rep } :: adj.(ia);
            adj.(ib) <-
              { nbr = ia; lpath = p; lfwd = false; eids; rep } :: adj.(ib)
          end)
        pairs)
    matchings;
  (* entries were prepended: reverse so BFS scans intra edges (ascending)
     first, then shortcuts in matching order *)
  let wadj = Array.map (fun l -> Array.of_list (List.rev l)) adj in
  (* leader = max intra-degree member, smallest id among ties *)
  let leader = ref members.(0) in
  let best = ref (-1) in
  Array.iter
    (fun v ->
      let d = Array.length view.Distr.Cluster_view.intra.(v) in
      if d > !best then begin
        best := d;
        leader := v
      end)
    members;
  let leader = !leader in
  (* BFS over the witness graph from the leader *)
  let parent = Array.make sz (-1) in
  let depth = Array.make sz (-1) in
  let up_path = Array.make sz [||] in
  let up_fwd = Array.make sz true in
  let up_eids = Array.make sz [||] in
  let up_rep = Array.make sz max_int in
  let queue = Array.make sz 0 in
  let head = ref 0 and tail = ref 0 in
  let rootm = pos_of.(leader) in
  depth.(rootm) <- 0;
  queue.(!tail) <- rootm;
  incr tail;
  while !head < !tail do
    let i = queue.(!head) in
    incr head;
    Array.iter
      (fun e ->
        if depth.(e.nbr) < 0 then begin
          depth.(e.nbr) <- depth.(i) + 1;
          parent.(e.nbr) <- i;
          up_path.(e.nbr) <- e.lpath;
          (* the entry path is oriented i -> nbr iff [e.lfwd]; the
             child's up path runs nbr -> i, so the flag flips *)
          up_fwd.(e.nbr) <- not e.lfwd;
          up_eids.(e.nbr) <- e.eids;
          up_rep.(e.nbr) <- e.rep;
          queue.(!tail) <- e.nbr;
          incr tail
        end)
      wadj.(i)
  done;
  { members; leader; parent; depth; up_path; up_fwd; up_eids; up_rep;
    wadj; shortcuts = !shortcuts; rebuilt }

(* ---- recursion tree ---- *)

let rec build_node paths ~depth (labels : int list) =
  match labels with
  | [ l ] when Array.length paths.(l) = depth ->
      {
        nd_depth = depth;
        ranks = [||];
        children = [||];
        cluster = l;
        tmp_buckets = Hashtbl.create 1;
        nd_id = -1;
        bkeys = [||];
        bvals = [||];
        child_adj = [||];
      }
  | _ ->
      (* group by the rank at [depth]; labels arrive in lex path order,
         so each group is a consecutive run *)
      let groups = ref [] in
      List.iter
        (fun l ->
          let r = paths.(l).(depth) in
          match !groups with
          | (r', ls) :: rest when r' = r -> groups := (r', l :: ls) :: rest
          | _ -> groups := (r, [ l ]) :: !groups)
        labels;
      let groups = List.rev_map (fun (r, ls) -> (r, List.rev ls)) !groups in
      {
        nd_depth = depth;
        ranks = Array.of_list (List.map fst groups);
        children =
          Array.of_list
            (List.map
               (fun (_, ls) -> build_node paths ~depth:(depth + 1) ls)
               groups);
        cluster = -1;
        tmp_buckets = Hashtbl.create 8;
        nd_id = -1;
        bkeys = [||];
        bvals = [||];
        child_adj = [||];
      }

(* dense index of child rank [rank] in [node.ranks], by binary search *)
(* lint: hot *)
let dense_idx node rank =
  let lo = ref 0 and hi = ref (Array.length node.ranks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.ranks.(mid) < rank then lo := mid + 1 else hi := mid
  done;
  !lo

(* the bucket holding portals from dense child [i] to [j], if any *)
(* lint: hot *)
let find_bucket nd key =
  let keys = nd.bkeys in
  let lo = ref 0 and hi = ref (Array.length keys - 1) in
  if !hi < 0 then -1
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) < key then lo := mid + 1 else hi := mid
    done;
    if keys.(!lo) = key then !lo else -1
  end

(* distribute the inter-cluster edges into portal buckets at each
   endpoint pair's divergence node, then freeze bucket port order (edge
   enumeration order), assign dense bucket/node ids, and derive each
   node's child adjacency. Returns the bucket table and the memo stride. *)
let fill_buckets root paths labels g inter_edges =
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      let pu = paths.(labels.(u)) and pv = paths.(labels.(v)) in
      let nd = ref root in
      while pu.((!nd).nd_depth) = pv.((!nd).nd_depth) do
        nd := (!nd).children.(dense_idx !nd pu.((!nd).nd_depth))
      done;
      let nd = !nd in
      let nc = Array.length nd.ranks in
      let i = dense_idx nd pu.(nd.nd_depth)
      and j = dense_idx nd pv.(nd.nd_depth) in
      let add key port =
        match Hashtbl.find_opt nd.tmp_buckets key with
        | Some r -> r := port :: !r
        | None -> Hashtbl.add nd.tmp_buckets key (ref [ port ])
      in
      add ((i * nc) + j) (u, v);
      add ((j * nc) + i) (v, u))
    inter_edges;
  let acc = ref [] in
  let nbk = ref 0 and nnd = ref 0 and stride = ref 1 in
  let rec finalize nd =
    let nc = Array.length nd.ranks in
    if nc > 0 then begin
      nd.nd_id <- !nnd;
      incr nnd;
      if nc * nc > !stride then stride := nc * nc;
      (* key order out of the table is arbitrary: sort before use *)
      let keys =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) nd.tmp_buckets [])
      in
      let adj = Array.make nc [] in
      nd.bkeys <- Array.of_list keys;
      nd.bvals <-
        Array.map
          (fun key ->
            let ports =
              Array.of_list (List.rev !(Hashtbl.find nd.tmp_buckets key))
            in
            let port_eids =
              Array.map (fun (u, v) -> Graph.find_edge g u v) ports
            in
            let b = { ports; port_eids; bk_id = !nbk } in
            incr nbk;
            acc := b :: !acc;
            adj.(key / nc) <- (key mod nc) :: adj.(key / nc);
            b)
          nd.bkeys;
      Hashtbl.reset nd.tmp_buckets;
      (* keys ascending => each row was built ascending, then reversed *)
      nd.child_adj <- Array.map (fun l -> Array.of_list (List.rev l)) adj;
      Array.iter finalize nd.children
    end
  in
  finalize root;
  (Array.of_list (List.rev !acc), !stride)

(* ---- construction ---- *)

type info = {
  clusters : int;
  shortcuts : int;      (* matching shortcut edges across all leaves *)
  rebuilt_leaves : int; (* leaves that played a fresh game *)
  reused_leaves : int;  (* leaves routed from retained matchings *)
  max_leaf_depth : int; (* deepest witness-tree member over all leaves *)
  tree_height : int;    (* recursion-tree height *)
}

let build ?(reuse = true) ?(seed = 0) ?(pool = Parallel.Pool.sequential) g
    (d : Spectral.Expander_decomposition.t) =
  Obs.Span.with_ "route.preprocess" @@ fun () ->
  let n = Graph.n g in
  if n = 0 || d.Spectral.Expander_decomposition.k = 0 then
    invalid_arg "Route.Hierarchy.build: empty graph or decomposition";
  let labels = d.Spectral.Expander_decomposition.labels in
  if Array.length labels <> n then
    invalid_arg "Route.Hierarchy.build: label array length mismatch";
  let k = d.Spectral.Expander_decomposition.k in
  let view = Distr.Cluster_view.of_labels g labels in
  (* members per cluster, ascending; pos_of aligned *)
  let counts = Array.make k 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) labels;
  let members = Array.init k (fun l -> Array.make (max 1 counts.(l)) 0) in
  let pos_of = Array.make n 0 in
  let fill = Array.make k 0 in
  for v = 0 to n - 1 do
    let l = labels.(v) in
    members.(l).(fill.(l)) <- v;
    pos_of.(v) <- fill.(l);
    fill.(l) <- fill.(l) + 1
  done;
  let paths =
    Array.map
      (fun w ->
        Array.of_list w.Spectral.Expander_decomposition.w_path)
      d.Spectral.Expander_decomposition.witnesses
  in
  if Array.length paths <> k then
    invalid_arg "Route.Hierarchy.build: witnesses do not match clusters";
  (* leaves are independent of each other: fan the builds (including any
     rebuild games, each seeded by its own label) out over the pool *)
  let leaves =
    Parallel.Pool.mapi pool
      (fun l () ->
        build_leaf g view ~tau:d.Spectral.Expander_decomposition.tau ~reuse
          ~seed ~label:l
          d.Spectral.Expander_decomposition.witnesses.(l)
          ~members:members.(l) ~pos_of)
      (Array.make k ())
  in
  let root = build_node paths ~depth:0 (List.init k Fun.id) in
  let bucket_of, seq_stride =
    fill_buckets root paths labels g
      d.Spectral.Expander_decomposition.inter_edges
  in
  let wdeg = Array.make n 1 in
  Array.iter
    (fun (lf : leaf) ->
      Array.iteri
        (fun i row -> wdeg.(lf.members.(i)) <- max 1 (Array.length row))
        lf.wadj)
    leaves;
  if Obs.enabled () then begin
    Obs.Metric.count "route.clusters" k;
    Array.iter
      (fun (lf : leaf) ->
        Obs.Metric.count "route.shortcuts" lf.shortcuts;
        if lf.rebuilt then Obs.Metric.incr "route.rebuilt_leaves")
      leaves;
    Obs.Metric.count "route.ports"
      (2 * List.length d.Spectral.Expander_decomposition.inter_edges)
  end;
  { g; labels; paths; pos_of; leaves; root; bucket_of; wdeg; seq_stride }

let info t =
  let shortcuts = ref 0 and rebuilt = ref 0 and reused = ref 0 in
  let max_depth = ref 0 in
  Array.iter
    (fun (lf : leaf) ->
      shortcuts := !shortcuts + lf.shortcuts;
      if lf.rebuilt then incr rebuilt
      else if lf.shortcuts > 0 then incr reused;
      Array.iter (fun d -> if d > !max_depth then max_depth := d) lf.depth)
    t.leaves;
  let rec height nd =
    if Array.length nd.children = 0 then 0
    else 1 + Array.fold_left (fun acc c -> max acc (height c)) 0 nd.children
  in
  {
    clusters = Array.length t.leaves;
    shortcuts = !shortcuts;
    rebuilt_leaves = !rebuilt;
    reused_leaves = !reused;
    max_leaf_depth = !max_depth;
    tree_height = height t.root;
  }

(* ---- serving ---- *)

(* live load of edge [e]; serving without a congestion array sees zero
   everywhere, which degrades least-loaded to its edge-id tie-break *)
(* lint: hot *)
let load cong e = if e < Array.length cong then cong.(e) else 0

(* heaviest edge along a witness bundle (direct edge or expansion path) *)
(* lint: hot *)
let bundle_cost cong eids =
  let c = ref 0 in
  for i = 0 to Array.length eids - 1 do
    let l = load cong eids.(i) in
    if l > !c then c := l
  done;
  !c

(* append member [c]'s hop up to its parent (out currently ends at c) *)
let push_up lf out c =
  let p = lf.up_path.(c) in
  let len = Array.length p in
  if len = 0 then vec_push out lf.members.(lf.parent.(c))
  else if lf.up_fwd.(c) then
    for i = 1 to len - 1 do
      vec_push out p.(i)
    done
  else
    for i = len - 2 downto 0 do
      vec_push out p.(i)
    done

(* append the hop down from [c]'s parent to [c] (out ends at the parent) *)
let push_down lf out c =
  let p = lf.up_path.(c) in
  let len = Array.length p in
  if len = 0 then vec_push out lf.members.(c)
  else if lf.up_fwd.(c) then
    for i = len - 2 downto 0 do
      vec_push out p.(i)
    done
  else
    for i = 1 to len - 1 do
      vec_push out p.(i)
    done

(* append the traversal of witness entry [e] (stored on member [self]'s
   row, so oriented self -> nbr iff [e.lfwd]) in the nbr -> self
   direction; out currently ends at nbr *)
let push_entry_back lf out self e =
  let p = e.lpath in
  let len = Array.length p in
  if len = 0 then vec_push out lf.members.(self)
  else if e.lfwd then
    for i = len - 2 downto 0 do
      vec_push out p.(i)
    done
  else
    for i = 1 to len - 1 do
      vec_push out p.(i)
    done

(* last-resort leg: BFS on the whole graph. Reached when the witness
   structures cannot connect the endpoints (disconnected input, or a
   baseline decomposition whose clusters are not internally connected);
   metered so benches can assert it stays cold. *)
let fallback t rt out x y =
  rt.fallbacks <- rt.fallbacks + 1;
  Obs.Metric.incr "route.fallbacks";
  let n = Graph.n t.g in
  Array.fill rt.fb_pred 0 n (-1);
  rt.fb_pred.(x) <- x;
  let head = ref 0 and tail = ref 0 in
  rt.fb_queue.(!tail) <- x;
  incr tail;
  while !head < !tail && rt.fb_pred.(y) < 0 do
    let v = rt.fb_queue.(!head) in
    incr head;
    Graph.iter_neighbors t.g v (fun w ->
        if rt.fb_pred.(w) < 0 then begin
          rt.fb_pred.(w) <- v;
          rt.fb_queue.(!tail) <- w;
          incr tail
        end)
  done;
  if rt.fb_pred.(y) < 0 then false
  else begin
    let chain = rt.chain in
    chain.len <- 0;
    let c = ref y in
    while !c <> x do
      vec_push chain !c;
      c := rt.fb_pred.(!c)
    done;
    for i = chain.len - 1 downto 0 do
      vec_push out chain.buf.(i)
    done;
    true
  end

(* walk the witness BFS tree from member [px] to member [py] (LCA walk);
   both must be reached. out currently ends at members.(px) *)
let tree_walk rt lf out px py =
  let px = ref px and py = ref py in
  let chain = rt.chain in
  chain.len <- 0;
  while lf.depth.(!px) > lf.depth.(!py) do
    push_up lf out !px;
    px := lf.parent.(!px)
  done;
  while lf.depth.(!py) > lf.depth.(!px) do
    vec_push chain !py;
    py := lf.parent.(!py)
  done;
  while !px <> !py do
    push_up lf out !px;
    px := lf.parent.(!px);
    vec_push chain !py;
    py := lf.parent.(!py)
  done;
  for i = chain.len - 1 downto 0 do
    push_down lf out chain.buf.(i)
  done

(* is member [anc] an ancestor of member [c] (inclusive)? O(depth) *)
let ancestor_of lf anc c =
  let d = lf.depth.(c) - lf.depth.(anc) in
  if d < 0 then false
  else begin
    let cur = ref c in
    for _ = 1 to d do
      cur := lf.parent.(!cur)
    done;
    !cur = anc
  end

(* Least-loaded destination entry: when the tree walk would descend into
   [py] over its (unique) up bundle, probe one rotating alternative
   witness edge (z, y) with depth(z) <= depth(y) — shallower entries keep
   the detour walk x -> z away from y — and divert when its heaviest edge
   beats the natural bundle's (ties to the smaller representative edge
   id). Returns [true] when it emitted the whole leg. *)
let try_divert rt ~cong lf out px py =
  let wadj = lf.wadj.(py) in
  let deg = Array.length wadj in
  let y = lf.members.(py) in
  let rn = lf.up_rep.(py) in
  let cn = bundle_cost cong lf.up_eids.(py) in
  if cn = 0 then false  (* the natural entry is cold: nothing to beat *)
  else begin
    let cur = rt.ecur.(y) in
    rt.ecur.(y) <- (if cur + 1 >= deg then 0 else cur + 1);
    rt.eadv.(y) <- rt.eadv.(y) + 1;
    let cand = ref (-1) in
    let i = ref 0 in
    while !cand < 0 && !i < deg do
      let idx =
        let s = cur + !i in
        if s >= deg then s - deg else s
      in
      let e = wadj.(idx) in
      if
        lf.depth.(e.nbr) >= 0
        && lf.depth.(e.nbr) <= lf.depth.(py)
        && e.nbr <> py && e.rep <> rn
      then cand := idx;
      incr i
    done;
    if !cand < 0 then false
    else begin
      let e = wadj.(!cand) in
      let ca = bundle_cost cong e.eids in
      if ca < cn || (ca = cn && e.rep < rn) then begin
        tree_walk rt lf out px e.nbr;
        push_entry_back lf out py e;
        true
      end
      else false
    end
  end

(* route x -> y inside leaf [lf] *)
let leaf_route t rt ~ll ~cong lf out x y =
  if x = y then true
  else begin
    let px = t.pos_of.(x) and py = t.pos_of.(y) in
    if lf.depth.(px) < 0 || lf.depth.(py) < 0 then fallback t rt out x y
    else begin
      (* diversion applies only when y is not an ancestor of x: then the
         walk's last hop is the descent over y's up bundle, and a detour
         through a not-deeper witness neighbor of y cannot pass through
         y itself *)
      let done_ =
        ll
        && Array.length lf.wadj.(py) > 1
        && lf.depth.(py) > 0
        && (not (ancestor_of lf py px))
        && try_divert rt ~cong lf out px py
      in
      if not done_ then tree_walk rt lf out px py;
      true
    end
  end

(* memoized BFS over a node's child-connectivity graph *)
let child_sequence t rt nd i j =
  let nc = Array.length nd.ranks in
  let key = (nd.nd_id * t.seq_stride) + (i * nc) + j in
  match Hashtbl.find_opt rt.seq_memo key with
  | Some s -> s
  | None ->
      let pred = Array.make nc (-1) in
      pred.(i) <- i;
      let queue = Array.make nc 0 in
      let head = ref 0 and tail = ref 0 in
      queue.(!tail) <- i;
      incr tail;
      while !head < !tail && pred.(j) < 0 do
        let a = queue.(!head) in
        incr head;
        if Array.length nd.child_adj > 0 then
          Array.iter
            (fun b ->
              if pred.(b) < 0 then begin
                pred.(b) <- a;
                queue.(!tail) <- b;
                incr tail
              end)
            nd.child_adj.(a)
      done;
      let s =
        if pred.(j) < 0 then [||]
        else begin
          let rev = ref [] in
          let c = ref j in
          while !c <> i do
            rev := !c :: !rev;
            c := pred.(!c)
          done;
          Array.of_list (i :: !rev)
        end
      in
      Hashtbl.add rt.seq_memo key s;
      s

(* pick a portal in [bk]: round-robin takes the cursor position;
   least-loaded compares it against a second probe half a rotation ahead
   (power-of-two-choices) on live edge load, ties to the smaller edge
   id. The cursor always advances by one, so the probe pair rotates. *)
(* lint: hot *)
let pick_port rt ~ll ~cong bk =
  let len = Array.length bk.ports in
  let cur = rt.cursors.(bk.bk_id) in
  rt.cursors.(bk.bk_id) <- (if cur + 1 >= len then 0 else cur + 1);
  rt.cadv.(bk.bk_id) <- rt.cadv.(bk.bk_id) + 1;
  if (not ll) || len < 2 then cur
  else begin
    let alt =
      let a = cur + 1 + (len / 2) in
      if a >= len then a - len else a
    in
    let alt = if alt = cur then (if cur + 1 >= len then 0 else cur + 1) else alt in
    let ea = bk.port_eids.(cur) and eb = bk.port_eids.(alt) in
    let ca = load cong ea and cb = load cong eb in
    if cb < ca || (cb = ca && eb < ea) then alt else cur
  end

let rec route_under t rt ~ll ~cong nd out x y =
  if x = y then true
  else if nd.cluster >= 0 then
    leaf_route t rt ~ll ~cong t.leaves.(nd.cluster) out x y
  else begin
    let rx = t.paths.(t.labels.(x)).(nd.nd_depth)
    and ry = t.paths.(t.labels.(y)).(nd.nd_depth) in
    if rx = ry then
      route_under t rt ~ll ~cong nd.children.(dense_idx nd rx) out x y
    else
      route_across t rt ~ll ~cong nd out (dense_idx nd rx) (dense_idx nd ry)
        x y
  end

and route_across t rt ~ll ~cong nd out i j x y =
  let seq = child_sequence t rt nd i j in
  if Array.length seq = 0 then fallback t rt out x y
  else begin
    let nc = Array.length nd.ranks in
    let ok = ref true in
    let cur = ref x in
    let s = ref 0 in
    while !ok && !s < Array.length seq - 1 do
      let a = seq.(!s) and b = seq.(!s + 1) in
      (match find_bucket nd ((a * nc) + b) with
      | -1 -> ok := false
      | bi ->
          let bk = nd.bvals.(bi) in
          let u, v = bk.ports.(pick_port rt ~ll ~cong bk) in
          ok := route_under t rt ~ll ~cong nd.children.(a) out !cur u;
          if !ok then begin
            vec_push out v;
            cur := v
          end);
      incr s
    done;
    if !ok then route_under t rt ~ll ~cong nd.children.(j) out !cur y
    else fallback t rt out !cur y
  end

(* plan one demand into [out] (cleared first). Returns [false] iff the
   endpoints are unreachable even by the global fallback; on success the
   vec holds the full vertex path, [src] first, [dst] last, consecutive
   entries real edges. *)
let route ?(policy = Round_robin) ?(cong = [||]) t rt out src dst =
  let n = Graph.n t.g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Route.Hierarchy.route: vertex out of range";
  out.len <- 0;
  vec_push out src;
  let ll = policy = Least_loaded in
  route_under t rt ~ll ~cong t.root out src dst
