open Sparse_graph

(* The reusable witness hierarchy behind expander routing (the shape of a
   hierarchical LeafWitness / InternalWitness route). Preprocessing turns
   one expander decomposition into:

   - a *leaf witness* per cluster: a BFS tree rooted at the cluster's
     leader over the witness graph = intra-cluster edges plus the
     cut-matching game's embedded matchings as shortcut edges (each
     shortcut expands to its retained real-edge path when routed). When
     the decomposition retained no matchings (spectral engine, exact or
     trivial acceptances) and the cluster is large enough, a fresh
     cut-matching game is played here instead — the reuse-vs-rebuild
     axis route-bench measures.

   - an *internal witness* per recursion-tree node: the inter-cluster
     edges whose endpoints diverge at that node, bucketed per ordered
     child pair as portal edges with a round-robin cursor, plus the
     node's child-connectivity graph for multi-hop child sequences.

   Serving routes a demand (src, dst) top-down: descend the recursion
   tree along the common prefix of the two clusters' addresses, walk a
   child sequence at the divergence node crossing one portal edge per
   hop, and solve intra-cluster legs in the leaf witness by an LCA walk
   of the BFS tree, expanding shortcuts to their embedded real paths.
   Everything is deterministic: adjacency orders are fixed, portals
   rotate round-robin in demand order, and rebuild games are seeded via
   Pool.derive_seed. *)

(* ---- growable int vector (the planner's path accumulator) ---- *)

type vec = { mutable buf : int array; mutable len : int }

let vec_create () = { buf = Array.make 64 0; len = 0 }

let vec_clear v = v.len <- 0

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_array v = Array.sub v.buf 0 v.len

(* ---- leaf witnesses ---- *)

(* adjacency entry in one cluster's witness graph: neighbor member index,
   the embedded real-edge path ([||] = a direct intra edge), and whether
   that path is oriented self -> neighbor *)
type ledge = { nbr : int; lpath : int array; lfwd : bool }

type leaf = {
  members : int array;  (* ascending vertex ids *)
  leader : int;         (* vertex id of the BFS root *)
  parent : int array;   (* member idx -> member idx, -1 for root/unreached *)
  depth : int array;    (* -1 = unreached in the witness graph *)
  up_path : int array array;  (* real path to parent; [||] = direct edge *)
  up_fwd : bool array;        (* is up_path oriented self -> parent? *)
  shortcuts : int;      (* matching shortcut edges in the witness graph *)
  rebuilt : bool;       (* a fresh cut-matching game was played here *)
}

(* ---- internal witnesses (recursion-tree nodes) ---- *)

type bucket = {
  mutable ports : (int * int) array;  (* oriented inter-cluster edges *)
  mutable cursor : int;               (* round-robin position *)
  mutable tmp : (int * int) list;     (* build-time accumulator *)
}

type node = {
  nd_depth : int;
  ranks : int array;        (* sorted child ranks (recursion child ids) *)
  children : node array;    (* aligned with [ranks] *)
  cluster : int;            (* leaf: the cluster label; internal: -1 *)
  buckets : (int, bucket) Hashtbl.t;
      (* (dense child i) * nc + (dense child j) -> portals from i to j *)
  mutable child_adj : int array array;  (* dense idx -> adjacent dense idxs *)
  child_seq : (int, int array) Hashtbl.t;  (* memoized BFS sequences *)
}

type t = {
  g : Graph.t;
  labels : int array;
  paths : int array array;  (* cluster label -> recursion-tree address *)
  pos_of : int array;       (* vertex -> index among its cluster's members *)
  leaves : leaf array;
  root : node;
  chain : vec;              (* scratch: LCA descent on the y side *)
  fb_pred : int array;      (* scratch: global-BFS fallback predecessors *)
  fb_queue : int array;
  mutable fallbacks : int;  (* legs that left the witness structures *)
}

let rebuild_min = 9  (* clusters below this size keep the plain BFS tree *)

let build_leaf g (view : Distr.Cluster_view.t) ~tau ~reuse ~seed ~label
    (dw : Spectral.Expander_decomposition.cluster_witness) ~members ~pos_of =
  let sz = Array.length members in
  let adj = Array.make sz [] in
  (* intra edges first, via the view's cached CSR rows *)
  for i = 0 to sz - 1 do
    Array.iter
      (fun w ->
        adj.(i) <- { nbr = pos_of.(w); lpath = [||]; lfwd = true } :: adj.(i))
      view.Distr.Cluster_view.intra.(members.(i))
  done;
  (* matching shortcuts: reuse the retained witness, or rebuild by
     playing a fresh game on the induced cluster *)
  let matchings, rebuilt =
    if reuse && dw.Spectral.Expander_decomposition.w_matchings <> [] then
      (dw.Spectral.Expander_decomposition.w_matchings, false)
    else if sz >= rebuild_min then begin
      let sub, mapping = Graph_ops.induced_subgraph g (Array.to_list members) in
      if Graph.m sub = 0 then ([], false)
      else begin
        let game_tau = if tau > 0. then tau else 0.1 in
        let verdict, _ =
          Flow.Cut_matching.run sub ~tau:game_tau
            ~seed:(Parallel.Pool.derive_seed seed (label + 1))
        in
        match verdict with
        | Flow.Cut_matching.Expander w ->
            let o v = mapping.Graph_ops.to_orig.(v) in
            ( List.map2
                (fun pairs embeds ->
                  ( Array.map (fun (a, b) -> (o a, o b)) pairs,
                    Array.map (Array.map o) embeds ))
                w.Flow.Cut_matching.matchings w.Flow.Cut_matching.embeddings,
              true )
        | Flow.Cut_matching.Cut _ -> ([], true)
      end
    end
    else ([], false)
  in
  let shortcuts = ref 0 in
  List.iter
    (fun (pairs, embeds) ->
      Array.iteri
        (fun idx (a, b) ->
          let p = embeds.(idx) in
          if Array.length p >= 2 then begin
            incr shortcuts;
            let ia = pos_of.(a) and ib = pos_of.(b) in
            adj.(ia) <- { nbr = ib; lpath = p; lfwd = true } :: adj.(ia);
            adj.(ib) <- { nbr = ia; lpath = p; lfwd = false } :: adj.(ib)
          end)
        pairs)
    matchings;
  (* entries were prepended: reverse so BFS scans intra edges (ascending)
     first, then shortcuts in matching order *)
  let adj = Array.map List.rev adj in
  (* leader = max intra-degree member, smallest id among ties *)
  let leader = ref members.(0) in
  let best = ref (-1) in
  Array.iter
    (fun v ->
      let d = Array.length view.Distr.Cluster_view.intra.(v) in
      if d > !best then begin
        best := d;
        leader := v
      end)
    members;
  let leader = !leader in
  (* BFS over the witness graph from the leader *)
  let parent = Array.make sz (-1) in
  let depth = Array.make sz (-1) in
  let up_path = Array.make sz [||] in
  let up_fwd = Array.make sz true in
  let queue = Array.make sz 0 in
  let head = ref 0 and tail = ref 0 in
  let rootm = pos_of.(leader) in
  depth.(rootm) <- 0;
  queue.(!tail) <- rootm;
  incr tail;
  while !head < !tail do
    let i = queue.(!head) in
    incr head;
    List.iter
      (fun e ->
        if depth.(e.nbr) < 0 then begin
          depth.(e.nbr) <- depth.(i) + 1;
          parent.(e.nbr) <- i;
          up_path.(e.nbr) <- e.lpath;
          (* the entry path is oriented i -> nbr iff [e.lfwd]; the
             child's up path runs nbr -> i, so the flag flips *)
          up_fwd.(e.nbr) <- not e.lfwd;
          queue.(!tail) <- e.nbr;
          incr tail
        end)
      adj.(i)
  done;
  { members; leader; parent; depth; up_path; up_fwd;
    shortcuts = !shortcuts; rebuilt }

(* ---- recursion tree ---- *)

let rec build_node paths ~depth (labels : int list) =
  match labels with
  | [ l ] when Array.length paths.(l) = depth ->
      {
        nd_depth = depth;
        ranks = [||];
        children = [||];
        cluster = l;
        buckets = Hashtbl.create 1;
        child_adj = [||];
        child_seq = Hashtbl.create 1;
      }
  | _ ->
      (* group by the rank at [depth]; labels arrive in lex path order,
         so each group is a consecutive run *)
      let groups = ref [] in
      List.iter
        (fun l ->
          let r = paths.(l).(depth) in
          match !groups with
          | (r', ls) :: rest when r' = r -> groups := (r', l :: ls) :: rest
          | _ -> groups := (r, [ l ]) :: !groups)
        labels;
      let groups = List.rev_map (fun (r, ls) -> (r, List.rev ls)) !groups in
      {
        nd_depth = depth;
        ranks = Array.of_list (List.map fst groups);
        children =
          Array.of_list
            (List.map
               (fun (_, ls) -> build_node paths ~depth:(depth + 1) ls)
               groups);
        cluster = -1;
        buckets = Hashtbl.create 8;
        child_adj = [||];
        child_seq = Hashtbl.create 8;
      }

(* dense index of child rank [rank] in [node.ranks], by binary search *)
let dense_idx node rank =
  let lo = ref 0 and hi = ref (Array.length node.ranks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.ranks.(mid) < rank then lo := mid + 1 else hi := mid
  done;
  !lo

(* distribute the inter-cluster edges into portal buckets at each
   endpoint pair's divergence node, then freeze bucket port order (edge
   enumeration order) and derive each node's child adjacency *)
let fill_buckets root paths labels g inter_edges =
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      let pu = paths.(labels.(u)) and pv = paths.(labels.(v)) in
      let nd = ref root in
      while pu.((!nd).nd_depth) = pv.((!nd).nd_depth) do
        nd := (!nd).children.(dense_idx !nd pu.((!nd).nd_depth))
      done;
      let nd = !nd in
      let nc = Array.length nd.ranks in
      let i = dense_idx nd pu.(nd.nd_depth)
      and j = dense_idx nd pv.(nd.nd_depth) in
      let add key port =
        match Hashtbl.find_opt nd.buckets key with
        | Some b -> b.tmp <- port :: b.tmp
        | None ->
            Hashtbl.add nd.buckets key
              { ports = [||]; cursor = 0; tmp = [ port ] }
      in
      add ((i * nc) + j) (u, v);
      add ((j * nc) + i) (v, u))
    inter_edges;
  let rec finalize nd =
    let nc = Array.length nd.ranks in
    if nc > 0 then begin
      (* key order out of the table is arbitrary: sort before use *)
      let keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) nd.buckets [])
      in
      let adj = Array.make nc [] in
      List.iter
        (fun key ->
          let b = Hashtbl.find nd.buckets key in
          b.ports <- Array.of_list (List.rev b.tmp);
          b.tmp <- [];
          adj.(key / nc) <- key mod nc :: adj.(key / nc))
        keys;
      (* keys ascending => each row was built ascending, then reversed *)
      nd.child_adj <- Array.map (fun l -> Array.of_list (List.rev l)) adj;
      Array.iter finalize nd.children
    end
  in
  finalize root

(* ---- construction ---- *)

type info = {
  clusters : int;
  shortcuts : int;      (* matching shortcut edges across all leaves *)
  rebuilt_leaves : int; (* leaves that played a fresh game *)
  reused_leaves : int;  (* leaves routed from retained matchings *)
  max_leaf_depth : int; (* deepest witness-tree member over all leaves *)
  tree_height : int;    (* recursion-tree height *)
}

let build ?(reuse = true) ?(seed = 0) g
    (d : Spectral.Expander_decomposition.t) =
  Obs.Span.with_ "route.preprocess" @@ fun () ->
  let n = Graph.n g in
  if n = 0 || d.Spectral.Expander_decomposition.k = 0 then
    invalid_arg "Route.Hierarchy.build: empty graph or decomposition";
  let labels = d.Spectral.Expander_decomposition.labels in
  if Array.length labels <> n then
    invalid_arg "Route.Hierarchy.build: label array length mismatch";
  let k = d.Spectral.Expander_decomposition.k in
  let view = Distr.Cluster_view.of_labels g labels in
  (* members per cluster, ascending; pos_of aligned *)
  let counts = Array.make k 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) labels;
  let members = Array.init k (fun l -> Array.make (max 1 counts.(l)) 0) in
  let pos_of = Array.make n 0 in
  let fill = Array.make k 0 in
  for v = 0 to n - 1 do
    let l = labels.(v) in
    members.(l).(fill.(l)) <- v;
    pos_of.(v) <- fill.(l);
    fill.(l) <- fill.(l) + 1
  done;
  let paths =
    Array.map
      (fun w ->
        Array.of_list w.Spectral.Expander_decomposition.w_path)
      d.Spectral.Expander_decomposition.witnesses
  in
  if Array.length paths <> k then
    invalid_arg "Route.Hierarchy.build: witnesses do not match clusters";
  let leaves =
    Array.init k (fun l ->
        build_leaf g view ~tau:d.Spectral.Expander_decomposition.tau ~reuse
          ~seed ~label:l
          d.Spectral.Expander_decomposition.witnesses.(l)
          ~members:members.(l) ~pos_of)
  in
  let root = build_node paths ~depth:0 (List.init k Fun.id) in
  fill_buckets root paths labels g
    d.Spectral.Expander_decomposition.inter_edges;
  if Obs.enabled () then begin
    Obs.Metric.count "route.clusters" k;
    Array.iter
      (fun (lf : leaf) ->
        Obs.Metric.count "route.shortcuts" lf.shortcuts;
        if lf.rebuilt then Obs.Metric.incr "route.rebuilt_leaves")
      leaves;
    Obs.Metric.count "route.ports"
      (2 * List.length d.Spectral.Expander_decomposition.inter_edges)
  end;
  {
    g;
    labels;
    paths;
    pos_of;
    leaves;
    root;
    chain = vec_create ();
    fb_pred = Array.make n (-1);
    fb_queue = Array.make n 0;
    fallbacks = 0;
  }

let info t =
  let shortcuts = ref 0 and rebuilt = ref 0 and reused = ref 0 in
  let max_depth = ref 0 in
  Array.iter
    (fun (lf : leaf) ->
      shortcuts := !shortcuts + lf.shortcuts;
      if lf.rebuilt then incr rebuilt
      else if lf.shortcuts > 0 then incr reused;
      Array.iter (fun d -> if d > !max_depth then max_depth := d) lf.depth)
    t.leaves;
  let rec height nd =
    if Array.length nd.children = 0 then 0
    else 1 + Array.fold_left (fun acc c -> max acc (height c)) 0 nd.children
  in
  {
    clusters = Array.length t.leaves;
    shortcuts = !shortcuts;
    rebuilt_leaves = !rebuilt;
    reused_leaves = !reused;
    max_leaf_depth = !max_depth;
    tree_height = height t.root;
  }

(* ---- serving ---- *)

(* append member [c]'s hop up to its parent (out currently ends at c) *)
let push_up lf out c =
  let p = lf.up_path.(c) in
  let len = Array.length p in
  if len = 0 then vec_push out lf.members.(lf.parent.(c))
  else if lf.up_fwd.(c) then
    for i = 1 to len - 1 do
      vec_push out p.(i)
    done
  else
    for i = len - 2 downto 0 do
      vec_push out p.(i)
    done

(* append the hop down from [c]'s parent to [c] (out ends at the parent) *)
let push_down lf out c =
  let p = lf.up_path.(c) in
  let len = Array.length p in
  if len = 0 then vec_push out lf.members.(c)
  else if lf.up_fwd.(c) then
    for i = len - 2 downto 0 do
      vec_push out p.(i)
    done
  else
    for i = 1 to len - 1 do
      vec_push out p.(i)
    done

(* last-resort leg: BFS on the whole graph. Reached when the witness
   structures cannot connect the endpoints (disconnected input, or a
   baseline decomposition whose clusters are not internally connected);
   metered so benches can assert it stays cold. *)
let fallback t out x y =
  t.fallbacks <- t.fallbacks + 1;
  Obs.Metric.incr "route.fallbacks";
  let n = Graph.n t.g in
  Array.fill t.fb_pred 0 n (-1);
  t.fb_pred.(x) <- x;
  let head = ref 0 and tail = ref 0 in
  t.fb_queue.(!tail) <- x;
  incr tail;
  while !head < !tail && t.fb_pred.(y) < 0 do
    let v = t.fb_queue.(!head) in
    incr head;
    Graph.iter_neighbors t.g v (fun w ->
        if t.fb_pred.(w) < 0 then begin
          t.fb_pred.(w) <- v;
          t.fb_queue.(!tail) <- w;
          incr tail
        end)
  done;
  if t.fb_pred.(y) < 0 then false
  else begin
    let chain = t.chain in
    chain.len <- 0;
    let c = ref y in
    while !c <> x do
      vec_push chain !c;
      c := t.fb_pred.(!c)
    done;
    for i = chain.len - 1 downto 0 do
      vec_push out chain.buf.(i)
    done;
    true
  end

(* route x -> y inside leaf [lf]: LCA walk of the witness BFS tree *)
let leaf_route t lf out x y =
  if x = y then true
  else begin
    let px = ref t.pos_of.(x) and py = ref t.pos_of.(y) in
    if lf.depth.(!px) < 0 || lf.depth.(!py) < 0 then fallback t out x y
    else begin
      let chain = t.chain in
      chain.len <- 0;
      while lf.depth.(!px) > lf.depth.(!py) do
        push_up lf out !px;
        px := lf.parent.(!px)
      done;
      while lf.depth.(!py) > lf.depth.(!px) do
        vec_push chain !py;
        py := lf.parent.(!py)
      done;
      while !px <> !py do
        push_up lf out !px;
        px := lf.parent.(!px);
        vec_push chain !py;
        py := lf.parent.(!py)
      done;
      for i = chain.len - 1 downto 0 do
        push_down lf out chain.buf.(i)
      done;
      true
    end
  end

(* memoized BFS over a node's child-connectivity graph *)
let child_sequence nd i j =
  let nc = Array.length nd.ranks in
  let key = (i * nc) + j in
  match Hashtbl.find_opt nd.child_seq key with
  | Some s -> s
  | None ->
      let pred = Array.make nc (-1) in
      pred.(i) <- i;
      let queue = Array.make nc 0 in
      let head = ref 0 and tail = ref 0 in
      queue.(!tail) <- i;
      incr tail;
      while !head < !tail && pred.(j) < 0 do
        let a = queue.(!head) in
        incr head;
        if Array.length nd.child_adj > 0 then
          Array.iter
            (fun b ->
              if pred.(b) < 0 then begin
                pred.(b) <- a;
                queue.(!tail) <- b;
                incr tail
              end)
            nd.child_adj.(a)
      done;
      let s =
        if pred.(j) < 0 then [||]
        else begin
          let rev = ref [] in
          let c = ref j in
          while !c <> i do
            rev := !c :: !rev;
            c := pred.(!c)
          done;
          Array.of_list (i :: !rev)
        end
      in
      Hashtbl.add nd.child_seq key s;
      s

let rec route_under t nd out x y =
  if x = y then true
  else if nd.cluster >= 0 then leaf_route t t.leaves.(nd.cluster) out x y
  else begin
    let rx = t.paths.(t.labels.(x)).(nd.nd_depth)
    and ry = t.paths.(t.labels.(y)).(nd.nd_depth) in
    if rx = ry then route_under t nd.children.(dense_idx nd rx) out x y
    else route_across t nd out (dense_idx nd rx) (dense_idx nd ry) x y
  end

and route_across t nd out i j x y =
  let seq = child_sequence nd i j in
  if Array.length seq = 0 then fallback t out x y
  else begin
    let nc = Array.length nd.ranks in
    let ok = ref true in
    let cur = ref x in
    let s = ref 0 in
    while !ok && !s < Array.length seq - 1 do
      let a = seq.(!s) and b = seq.(!s + 1) in
      (match Hashtbl.find_opt nd.buckets ((a * nc) + b) with
      | None -> ok := false
      | Some bk ->
          let u, v = bk.ports.(bk.cursor) in
          bk.cursor <- (bk.cursor + 1) mod Array.length bk.ports;
          ok := route_under t nd.children.(a) out !cur u;
          if !ok then begin
            vec_push out v;
            cur := v
          end);
      incr s
    done;
    if !ok then route_under t nd.children.(j) out !cur y
    else fallback t out !cur y
  end

(* plan one demand into [out] (cleared first). Returns [false] iff the
   endpoints are unreachable even by the global fallback; on success the
   vec holds the full vertex path, [src] first, [dst] last, consecutive
   entries real edges. *)
let route t out src dst =
  let n = Graph.n t.g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Route.Hierarchy.route: vertex out of range";
  out.len <- 0;
  vec_push out src;
  route_under t t.root out src dst

let fallbacks t = t.fallbacks
