(** Batched demand serving on top of the witness {!Hierarchy}.

    [preprocess] builds the hierarchy once; [serve] then answers demand
    matrices as a pure in-memory planner (reusing one path buffer, so a
    million-demand batch costs no per-demand allocation beyond stats),
    and [serve_congest] additionally executes the planned paths as a
    CONGEST workload on the (optionally sharded) simulator via
    {!Distr.Witness_routing}, checking the simulator's deliveries
    against the planner's. *)

type demand = { src : int; dst : int; weight : int }

type t

(** [preprocess ?reuse ?seed g decomp] — see {!Hierarchy.build}. *)
val preprocess : ?reuse:bool -> ?seed:int -> Sparse_graph.Graph.t ->
  Spectral.Expander_decomposition.t -> t

val hierarchy : t -> Hierarchy.t

(** Per-edge weighted congestion charged by the latest [serve] /
    [serve_congest] batch (indexed by edge id). *)
val congestion : t -> int array

type summary = {
  demands : int;
  delivered : int;   (** demands the planner routed *)
  failed : int;      (** demands with disconnected endpoints *)
  fallbacks : int;   (** legs that left the witness structures *)
  rounds_p50 : int;  (** per-demand path length (edges), nearest-rank *)
  rounds_p99 : int;
  rounds_max : int;
  congestion_max : int;    (** heaviest weighted per-edge load *)
  congestion_total : int;  (** sum of weight × length over demands *)
}

(** Plan every demand, charge congestion (reset per batch), summarize. *)
val serve : t -> demand array -> summary

(** Retained plans (full vertex paths, src first), [[||]] for an
    unroutable demand. *)
val plan : t -> demand array -> int array array

type congest_run = {
  planner : summary;
  routed : Distr.Witness_routing.result;
  match_planner : bool;
      (** the simulator delivered exactly the planner's routable
          demands — every token at its plan's destination, none lost *)
}

(** [serve_congest ?exec ?faults t ds ~max_rounds] plans [ds] and ships
    one token per routable demand on the CONGEST simulator. *)
val serve_congest : ?exec:Congest.Network.exec -> ?faults:Congest.Faults.t ->
  t -> demand array -> max_rounds:int -> congest_run
