(** Batched demand serving on top of the witness {!Hierarchy}.

    [preprocess] builds the hierarchy once; [serve] then answers demand
    matrices as an in-memory planner. The batch is sharded over the
    worker pool in fixed-size epochs (2048-demand chunks, 8 chunks per
    epoch): each task routes its chunk against a private router and a
    private snapshot of the per-edge congestion array, and the
    coordinator merges congestion deltas and cursor advances back in
    task order after every epoch. Because the epoch geometry is
    constant, every demand sees the same congestion snapshot — and the
    summary is byte-identical — at every [--jobs] value.

    [serve_congest] additionally executes the same pass's planned paths
    as a CONGEST workload on the (optionally sharded) simulator via
    {!Distr.Witness_routing}, checking the simulator's deliveries
    against the planner's. *)

type demand = { src : int; dst : int; weight : int }

type t

(** [preprocess ?reuse ?seed ?pool g decomp] — see {!Hierarchy.build}.
    [pool] (default sequential) parallelizes both the leaf builds and
    every subsequent serve. *)
val preprocess : ?reuse:bool -> ?seed:int -> ?pool:Parallel.Pool.t ->
  Sparse_graph.Graph.t -> Spectral.Expander_decomposition.t -> t

val hierarchy : t -> Hierarchy.t

(** Per-edge weighted congestion charged by the latest [serve] / [plan]
    / [serve_congest] batch (indexed by edge id). *)
val congestion : t -> int array

type summary = {
  demands : int;
  delivered : int;   (** demands the planner routed *)
  failed : int;      (** demands with disconnected endpoints *)
  fallbacks : int;   (** legs that left the witness structures *)
  rounds_p50 : int;  (** per-demand path length (edges), nearest-rank *)
  rounds_p99 : int;
  rounds_max : int;
  congestion_max : int;    (** heaviest weighted per-edge load *)
  congestion_total : int;  (** sum of weight × length over demands *)
}

(** Plan every demand under [policy] (default
    {!Hierarchy.Least_loaded}), charge congestion (reset per batch),
    summarize. *)
val serve : ?policy:Hierarchy.policy -> t -> demand array -> summary

(** Retained plans (full vertex paths, src first), [[||]] for an
    unroutable demand. Identical to the paths [serve] charges: [plan]
    runs the same serving pass (and leaves the same congestion array). *)
val plan : ?policy:Hierarchy.policy -> t -> demand array -> int array array

type congest_run = {
  planner : summary;
  routed : Distr.Witness_routing.result;
  match_planner : bool;
      (** the simulator delivered exactly the planner's routable
          demands — every token at its plan's destination, none lost *)
}

(** [serve_congest ?exec ?faults ?policy t ds ~max_rounds] routes [ds]
    once, then ships one token per routable demand along the served
    paths on the CONGEST simulator. *)
val serve_congest : ?exec:Congest.Network.exec -> ?faults:Congest.Faults.t ->
  ?policy:Hierarchy.policy -> t -> demand array -> max_rounds:int ->
  congest_run
