(** The reusable witness hierarchy behind expander routing.

    [build] turns one {!Spectral.Expander_decomposition.t} into a
    two-level routing structure: a {e leaf witness} per cluster (a BFS
    tree over intra-cluster edges plus the cut-matching game's embedded
    matchings as shortcut edges, rooted at the max-intra-degree leader)
    and an {e internal witness} per recursion-tree node (inter-cluster
    edges bucketed as portal edges per ordered child pair, plus the
    child-connectivity graph). Clusters whose decomposition retained no
    matchings rebuild their witness by playing a fresh cut-matching game
    (under {!Flow.Cut_matching.adaptive} budgets) on the induced
    subgraph — the reuse-vs-rebuild axis that route-bench measures.

    [route] then plans one demand as a concrete vertex path: descend the
    recursion tree along the common prefix of the endpoint clusters'
    addresses, cross one portal edge per hop of a child sequence at the
    divergence node, and solve intra-cluster legs by an LCA walk of the
    leaf's BFS tree, expanding shortcuts to their embedded real paths.

    Every piece of state a serving stream mutates — portal cursors,
    destination-entry probes, scratch buffers, the fallback counter —
    lives in a {!router}, not in the hierarchy, so a worker pool can
    route concurrently with one router per task over one shared
    hierarchy and fold the cursor advances back deterministically
    ({!sync_router} / {!merge_router}). Planning is deterministic: fixed
    adjacency orders, cursors advance in demand order, rebuild games
    seeded via [Pool.derive_seed]. *)

(** Growable int vector used as the planner's path accumulator, so a
    serving loop can reuse one buffer across millions of demands. *)
type vec = { mutable buf : int array; mutable len : int }

val vec_create : unit -> vec
val vec_clear : vec -> unit
val vec_push : vec -> int -> unit
val vec_to_array : vec -> int array

(** How serving picks among parallel witness edges. [Round_robin]
    rotates a cursor per portal bucket. [Least_loaded] is
    power-of-two-choices over the live per-edge congestion array: probe
    the cursor position and a second position half a rotation ahead,
    take the lighter (ties to the smaller edge id); intra-cluster legs
    additionally divert their final descent into the destination to a
    lighter witness entry when the natural tree edge is hot. Both are
    deterministic in demand order. *)
type policy = Round_robin | Least_loaded

type t

(** Per-stream mutable serving state (cursors, scratch, memo caches,
    fallback counter). Routers over the same hierarchy are independent:
    one per pool task is the intended use. *)
type router

(** [build ?reuse ?seed ?pool g decomp] preprocesses the decomposition
    into a witness hierarchy. [reuse] (default [true]) retains the
    embedded matchings the decomposition engines recorded;
    [~reuse:false] forces every large-enough cluster to replay the
    cut-matching game. Leaf builds (including rebuild games) fan out
    over [pool] (default sequential); the result is identical for every
    pool size.
    @raise Invalid_argument on an empty graph or mismatched labels. *)
val build : ?reuse:bool -> ?seed:int -> ?pool:Parallel.Pool.t ->
  Sparse_graph.Graph.t -> Spectral.Expander_decomposition.t -> t

val make_router : t -> router

(** Zero every cursor and counter (batch-start state). *)
val reset_router : t -> router -> unit

(** [sync_router t ~src ~dst] makes [dst] resume from [src]'s cursor
    positions with zeroed advance deltas and fallback count. *)
val sync_router : t -> src:router -> dst:router -> unit

(** [merge_router t ~src ~dst] folds [src]'s advance deltas and
    fallbacks into [dst]. Merging every task router of an epoch in task
    order is jobs-invariant: the deltas only depend on the demands each
    task routed. *)
val merge_router : t -> src:router -> dst:router -> unit

(** Legs that had to leave the witness structures and fall back to a
    global BFS, since the router's last reset/sync. *)
val router_fallbacks : router -> int

(** [route ?policy ?cong t rt out src dst] clears [out] and fills it
    with a full vertex path, [src] first, [dst] last, consecutive
    entries real edges of the graph. [cong] is the live per-edge load
    that [Least_loaded] (default [Round_robin]) selection reads; absent
    or short arrays read as zero load. Returns [false] iff the endpoints
    are disconnected (then [out] holds a partial prefix and must be
    discarded). *)
val route : ?policy:policy -> ?cong:int array -> t -> router -> vec ->
  int -> int -> bool

type info = {
  clusters : int;
  shortcuts : int;      (** matching shortcut edges across all leaves *)
  rebuilt_leaves : int; (** leaves that played a fresh game *)
  reused_leaves : int;  (** leaves routed from retained matchings *)
  max_leaf_depth : int; (** deepest witness-tree member over all leaves *)
  tree_height : int;    (** recursion-tree height *)
}

val info : t -> info
