(** The reusable witness hierarchy behind expander routing.

    [build] turns one {!Spectral.Expander_decomposition.t} into a
    two-level routing structure: a {e leaf witness} per cluster (a BFS
    tree over intra-cluster edges plus the cut-matching game's embedded
    matchings as shortcut edges, rooted at the max-intra-degree leader)
    and an {e internal witness} per recursion-tree node (inter-cluster
    edges bucketed as portal edges per ordered child pair, with
    round-robin cursors, plus the child-connectivity graph). Clusters
    whose decomposition retained no matchings rebuild their witness by
    playing a fresh cut-matching game on the induced subgraph — the
    reuse-vs-rebuild axis that route-bench measures.

    [route] then plans one demand as a concrete vertex path: descend the
    recursion tree along the common prefix of the endpoint clusters'
    addresses, cross one portal edge per hop of a child sequence at the
    divergence node, and solve intra-cluster legs by an LCA walk of the
    leaf's BFS tree, expanding shortcuts to their embedded real paths.
    Planning is deterministic (fixed adjacency orders, portals rotate in
    demand order, rebuild games seeded via [Pool.derive_seed]). *)

(** Growable int vector used as the planner's path accumulator, so a
    serving loop can reuse one buffer across millions of demands. *)
type vec = { mutable buf : int array; mutable len : int }

val vec_create : unit -> vec
val vec_clear : vec -> unit
val vec_push : vec -> int -> unit
val vec_to_array : vec -> int array

type t

(** [build ?reuse ?seed g decomp] preprocesses the decomposition into a
    witness hierarchy. [reuse] (default [true]) retains the embedded
    matchings the decomposition engines recorded; [~reuse:false] forces
    every large-enough cluster to replay the cut-matching game.
    @raise Invalid_argument on an empty graph or mismatched labels. *)
val build : ?reuse:bool -> ?seed:int -> Sparse_graph.Graph.t ->
  Spectral.Expander_decomposition.t -> t

(** [route t out src dst] clears [out] and fills it with a full vertex
    path, [src] first, [dst] last, consecutive entries real edges of the
    graph. Returns [false] iff the endpoints are disconnected (then
    [out] holds a partial prefix and must be discarded). *)
val route : t -> vec -> int -> int -> bool

(** Legs that had to leave the witness structures and fall back to a
    global BFS (disconnected clusters of a baseline decomposition);
    cumulative since [build]. *)
val fallbacks : t -> int

type info = {
  clusters : int;
  shortcuts : int;      (** matching shortcut edges across all leaves *)
  rebuilt_leaves : int; (** leaves that played a fresh game *)
  reused_leaves : int;  (** leaves routed from retained matchings *)
  max_leaf_depth : int; (** deepest witness-tree member over all leaves *)
  tree_height : int;    (** recursion-tree height *)
}

val info : t -> info
