(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] makes a union-find structure over elements [0 .. n-1],
    each initially in its own singleton set. *)
val create : int -> t

(** Number of elements the structure was created with. *)
val size : t -> int

(** [find uf x] returns the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union uf x y] merges the sets of [x] and [y]; returns [true] iff the
    two were previously in different sets. *)
val union : t -> int -> int -> bool

(** [same uf x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** Number of distinct sets currently present. *)
val count : t -> int

(** [groups uf] lists the current sets, each as a list of its members.
    Members appear in increasing order within each group. *)
val groups : t -> int list list
