let path n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      edges := (u, a + v) :: !edges
    done
  done;
  Graph.of_edges (a + b) !edges

let star k = Graph.of_edges (k + 1) (List.init k (fun i -> (0, i + 1)))

let double_star k =
  let spokes =
    List.concat_map (fun i -> [ (0, i + 2); (1, i + 2) ]) (List.init k Fun.id)
  in
  Graph.of_edges (k + 2) spokes

let grid r c =
  let idx i j = (i * c) + j in
  let edges = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if j + 1 < c then edges := (idx i j, idx i (j + 1)) :: !edges;
      if i + 1 < r then edges := (idx i j, idx (i + 1) j) :: !edges
    done
  done;
  Graph.of_edges (r * c) !edges

let grid3d a b c =
  let idx i j k = (((i * b) + j) * c) + k in
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      for k = 0 to c - 1 do
        if k + 1 < c then edges := (idx i j k, idx i j (k + 1)) :: !edges;
        if j + 1 < b then edges := (idx i j k, idx i (j + 1) k) :: !edges;
        if i + 1 < a then edges := (idx i j k, idx (i + 1) j k) :: !edges
      done
    done
  done;
  Graph.of_edges (a * b * c) !edges

let torus r c =
  if r < 3 || c < 3 then invalid_arg "Generators.torus: need r, c >= 3";
  let idx i j = (i * c) + j in
  let edges = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      edges := (idx i j, idx i ((j + 1) mod c)) :: !edges;
      edges := (idx i j, idx ((i + 1) mod r) j) :: !edges
    done
  done;
  Graph.of_edges (r * c) !edges

let hypercube d =
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.of_edges n !edges

let complete_binary_tree depth =
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  Graph.of_edges n !edges

let barbell k len =
  if k < 1 then invalid_arg "Generators.barbell: need k >= 1";
  let clique base =
    let edges = ref [] in
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        edges := (base + u, base + v) :: !edges
      done
    done;
    !edges
  in
  let left = clique 0 and right = clique (k + len) in
  let bridge =
    (* path from vertex k-1 through len internal vertices to vertex k+len *)
    List.init (len + 1) (fun i ->
        let a = if i = 0 then k - 1 else k + i - 1 in
        let b = if i = len then k + len else k + i in
        (a, b))
  in
  Graph.of_edges ((2 * k) + len) (left @ right @ bridge)

let random_tree n ~seed =
  if n <= 0 then invalid_arg "Generators.random_tree: need n >= 1";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges 2 [ (0, 1) ]
  else begin
    let st = Random.State.make [| seed; 17 |] in
    let pruefer = Array.init (n - 2) (fun _ -> Random.State.int st n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) pruefer;
    let module IntSet = Set.Make (Int) in
    let leaves = ref IntSet.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := IntSet.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = IntSet.min_elt !leaves in
        leaves := IntSet.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := IntSet.add v !leaves)
      pruefer;
    let a = IntSet.min_elt !leaves in
    let b = IntSet.max_elt !leaves in
    Graph.of_edges n ((a, b) :: !edges)
  end

let erdos_renyi n p ~seed =
  let st = Random.State.make [| seed; 23 |] in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1. < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let random_regular n d ~seed =
  if n * d mod 2 = 1 then
    invalid_arg "Generators.random_regular: n * d must be even";
  if d >= n then invalid_arg "Generators.random_regular: need d < n";
  let st = Random.State.make [| seed; 31 |] in
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    (* Fisher-Yates shuffle, then pair consecutive stubs. *)
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- t
    done;
    let ok = ref true in
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        edges := key :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some !edges else None
  in
  let rec retry k =
    if k = 0 then
      failwith "Generators.random_regular: too many rejected samples"
    else
      match attempt () with
      | Some edges -> Graph.of_edges n edges
      | None -> retry (k - 1)
  in
  retry 10_000

let random_k_tree n k ~seed =
  if n < k + 1 then invalid_arg "Generators.random_k_tree: need n >= k + 1";
  let st = Random.State.make [| seed; 41 |] in
  let edges = ref [] in
  for u = 0 to k do
    for v = u + 1 to k do
      edges := (u, v) :: !edges
    done
  done;
  (* cliques.(i) is a k-subset of vertices forming a clique *)
  let cliques = ref [||] in
  let base_cliques = ref [] in
  (* all k-subsets of the initial (k+1)-clique *)
  for skip = 0 to k do
    let subset = List.filter (fun v -> v <> skip) (List.init (k + 1) Fun.id) in
    base_cliques := Array.of_list subset :: !base_cliques
  done;
  cliques := Array.of_list !base_cliques;
  let clique_list = ref (Array.to_list !cliques) in
  let count = ref (List.length !clique_list) in
  let clique_arr = ref (Array.of_list !clique_list) in
  for v = k + 1 to n - 1 do
    let pick = Random.State.int st !count in
    let clique = !clique_arr.(pick) in
    Array.iter (fun u -> edges := (u, v) :: !edges) clique;
    (* new k-cliques: clique with one member swapped for v *)
    let fresh =
      Array.to_list
        (Array.mapi
           (fun i _ ->
             let c = Array.copy clique in
             c.(i) <- v;
             c)
           clique)
    in
    clique_list := fresh @ !clique_list;
    count := !count + List.length fresh;
    clique_arr := Array.of_list !clique_list
  done;
  Graph.of_edges n !edges

let random_apollonian n ~seed =
  if n < 3 then invalid_arg "Generators.random_apollonian: need n >= 3";
  let st = Random.State.make [| seed; 53 |] in
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  (* faces as triples; replace a random face by three new ones *)
  let faces = ref [| (0, 1, 2) |] in
  let face_count = ref 1 in
  let capacity = ref 1 in
  let push (a, b, c) =
    if !face_count = !capacity then begin
      let bigger = Array.make (2 * !capacity) (0, 0, 0) in
      Array.blit !faces 0 bigger 0 !face_count;
      faces := bigger;
      capacity := 2 * !capacity
    end;
    !faces.(!face_count) <- (a, b, c);
    incr face_count
  in
  for v = 3 to n - 1 do
    let pick = Random.State.int st !face_count in
    let a, b, c = !faces.(pick) in
    edges := (a, v) :: (b, v) :: (c, v) :: !edges;
    (* replace picked face in place by (a,b,v); add (a,c,v), (b,c,v) *)
    !faces.(pick) <- (a, b, v);
    push (a, c, v);
    push (b, c, v)
  done;
  Graph.of_edges n !edges

let random_maximal_outerplanar n ~seed =
  if n < 3 then invalid_arg "Generators.random_maximal_outerplanar: need n >= 3";
  let st = Random.State.make [| seed; 61 |] in
  let edges = ref [] in
  (* triangulate the polygon 0..n-1 by recursive random splitting *)
  let rec triangulate lo hi =
    (* chord (lo, hi) assumed present; triangulate vertices lo..hi *)
    if hi - lo >= 2 then begin
      let mid = lo + 1 + Random.State.int st (hi - lo - 1) in
      if mid - lo >= 2 then edges := (lo, mid) :: !edges;
      if hi - mid >= 2 then edges := (mid, hi) :: !edges;
      triangulate lo mid;
      triangulate mid hi
    end
  in
  for i = 0 to n - 2 do
    edges := (i, i + 1) :: !edges
  done;
  edges := (0, n - 1) :: !edges;
  triangulate 0 (n - 1);
  Graph.of_edges n !edges

let random_planar n p ~seed =
  let g = random_apollonian n ~seed in
  let st = Random.State.make [| seed; 67 |] in
  let outer (u, v) = u < 3 && v < 3 in
  let kept =
    Graph.fold_edges g
      (fun acc _ u v ->
        if outer (u, v) || Random.State.float st 1. < p then (u, v) :: acc
        else acc)
      []
  in
  Graph.of_edges n kept

let blob_chain ~blobs ~blob_size ~seed =
  if blobs < 1 || blob_size < 3 then
    invalid_arg "Generators.blob_chain: need blobs >= 1 and blob_size >= 3";
  let edges = ref [] in
  for b = 0 to blobs - 1 do
    let base = b * blob_size in
    let blob = random_apollonian blob_size ~seed:(seed + (31 * b)) in
    Graph.iter_edges blob (fun _ u v -> edges := (base + u, base + v) :: !edges);
    if b > 0 then
      (* bridge from the previous blob's last vertex to this blob's first *)
      edges := (base - 1, base) :: !edges
  done;
  Graph.of_edges (blobs * blob_size) !edges

let plant_k5s g count ~seed =
  let n = Graph.n g in
  if 5 * count > n then invalid_arg "Generators.plant_k5s: not enough vertices";
  let st = Random.State.make [| seed; 71 |] in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let extra = ref [] in
  for c = 0 to count - 1 do
    let group = Array.sub perm (5 * c) 5 in
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        extra := (group.(i), group.(j)) :: !extra
      done
    done
  done;
  Graph_ops.add_edges g !extra

let add_random_edges g count ~seed =
  let n = Graph.n g in
  let st = Random.State.make [| seed; 73 |] in
  let extra = ref [] in
  let added = Hashtbl.create count in
  let tries = ref 0 in
  let found = ref 0 in
  while !found < count && !tries < 100 * (count + 1) do
    incr tries;
    let u = Random.State.int st n and v = Random.State.int st n in
    let key = (min u v, max u v) in
    if u <> v && (not (Graph.mem_edge g u v)) && not (Hashtbl.mem added key)
    then begin
      Hashtbl.add added key ();
      extra := key :: !extra;
      incr found
    end
  done;
  Graph_ops.add_edges g !extra

let attach_stars g ~stars ~leaves ~seed =
  let n = Graph.n g in
  let st = Random.State.make [| seed; 79 |] in
  let extra = ref [] in
  let next = ref n in
  for _ = 1 to stars do
    let center = Random.State.int st n in
    for _ = 1 to leaves do
      extra := (center, !next) :: !extra;
      incr next
    done
  done;
  let edges = Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc) !extra in
  Graph.of_edges !next edges

let attach_double_stars g ~hubs ~spokes ~seed =
  let m = Graph.m g in
  if m = 0 then invalid_arg "Generators.attach_double_stars: graph has no edges";
  let st = Random.State.make [| seed; 83 |] in
  let extra = ref [] in
  let next = ref (Graph.n g) in
  for _ = 1 to hubs do
    let e = Random.State.int st m in
    let u, v = Graph.endpoints g e in
    for _ = 1 to spokes do
      extra := (u, !next) :: (v, !next) :: !extra;
      incr next
    done
  done;
  let edges = Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc) !extra in
  Graph.of_edges !next edges

let shuffle g ~seed =
  let n = Graph.n g in
  let st = Random.State.make [| seed; 89 |] in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Graph_ops.relabel g perm

let random_sign_labels g ~frac_pos ~seed =
  let st = Random.State.make [| seed; 97 |] in
  Array.init (Graph.m g) (fun _ -> Random.State.float st 1. < frac_pos)

let planted_sign_labels g communities ~noise ~seed =
  let st = Random.State.make [| seed; 101 |] in
  let labels = Array.make (Graph.m g) true in
  Graph.iter_edges g (fun e u v ->
      let same = communities.(u) = communities.(v) in
      let flip = Random.State.float st 1. < noise in
      labels.(e) <- (if flip then not same else same));
  labels
