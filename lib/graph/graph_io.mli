(** Plain-text graph serialization: a simple edge-list format and DOT
    export, so generated workloads can be saved, reloaded, and visualized
    by downstream users. *)

(** Format: first non-comment line ["n m"], then [m] lines ["u v"] (or
    ["u v w"] with weights); ['#'] starts a comment. *)

(** [to_string ?weights g] serializes. *)
val to_string : ?weights:Weights.t -> Graph.t -> string

(** [of_string s] parses; returns the graph and the weights if every edge
    line carried one.
    @raise Failure on malformed input. *)
val of_string : string -> Graph.t * Weights.t option

(** [save ?weights g ~path] / [load ~path] wrap the string codecs with file
    IO. *)
val save : ?weights:Weights.t -> Graph.t -> path:string -> unit

val load : path:string -> Graph.t * Weights.t option

(** [to_dot ?labels ?highlight g] renders GraphViz DOT; [labels] maps a
    vertex to its cluster (colored), [highlight] marks edges (e.g. a
    matching) drawn bold. *)
val to_dot :
  ?labels:int array -> ?highlight:int list -> Graph.t -> string
