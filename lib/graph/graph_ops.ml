type mapping = {
  to_sub : int array;
  to_orig : int array;
  edge_to_orig : int array;
}

let induced_subgraph g vs =
  let n = Graph.n g in
  let to_sub = Array.make n (-1) in
  let uniq = List.sort_uniq compare vs in
  List.iteri (fun i v -> to_sub.(v) <- i) uniq;
  let to_orig = Array.of_list uniq in
  let sub_n = Array.length to_orig in
  let kept = ref [] in
  Graph.iter_edges g (fun e u v ->
      if to_sub.(u) >= 0 && to_sub.(v) >= 0 then
        kept := (e, to_sub.(u), to_sub.(v)) :: !kept);
  let kept = List.rev !kept in
  let sub = Graph.of_edges sub_n (List.map (fun (_, u, v) -> (u, v)) kept) in
  (* Graph.of_edges sorts lexicographically; rebuild edge_to_orig by lookup. *)
  let edge_to_orig = Array.make (Graph.m sub) (-1) in
  List.iter
    (fun (e, u, v) -> edge_to_orig.(Graph.find_edge sub u v) <- e)
    kept;
  (sub, { to_sub; to_orig; edge_to_orig })

let identity_vertex_maps g =
  let n = Graph.n g in
  (Array.init n (fun i -> i), Array.init n (fun i -> i))

let subgraph_of_edges g es =
  let keep = Array.make (Graph.m g) false in
  List.iter (fun e -> keep.(e) <- true) es;
  let kept = ref [] in
  Graph.iter_edges g (fun e u v -> if keep.(e) then kept := (e, u, v) :: !kept);
  let kept = List.rev !kept in
  let sub = Graph.of_edges (Graph.n g) (List.map (fun (_, u, v) -> (u, v)) kept) in
  let edge_to_orig = Array.make (Graph.m sub) (-1) in
  List.iter (fun (e, u, v) -> edge_to_orig.(Graph.find_edge sub u v) <- e) kept;
  let to_sub, to_orig = identity_vertex_maps g in
  (sub, { to_sub; to_orig; edge_to_orig })

let remove_edges g es =
  let drop = Array.make (Graph.m g) false in
  List.iter (fun e -> drop.(e) <- true) es;
  let kept =
    Graph.fold_edges g (fun acc e _ _ -> if drop.(e) then acc else e :: acc) []
  in
  subgraph_of_edges g (List.rev kept)

let remove_vertices g vs =
  let gone = Array.make (Graph.n g) false in
  List.iter (fun v -> gone.(v) <- true) vs;
  let survivors = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not gone.(v) then survivors := v :: !survivors
  done;
  induced_subgraph g !survivors

let disjoint_union a b =
  let na = Graph.n a in
  let edges =
    Graph.fold_edges a (fun acc _ u v -> (u, v) :: acc) []
    |> Graph.fold_edges b (fun acc _ u v -> (u + na, v + na) :: acc)
  in
  Graph.of_edges (na + Graph.n b) edges

let contract g labels k =
  let edges =
    Graph.fold_edges g
      (fun acc _ u v ->
        let lu = labels.(u) and lv = labels.(v) in
        if lu = lv then acc else (lu, lv) :: acc)
      []
  in
  Graph.of_edges k edges

let contract_edges g es =
  let uf = Union_find.create (Graph.n g) in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      ignore (Union_find.union uf u v))
    es;
  let labels = Array.make (Graph.n g) (-1) in
  let next = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let r = Union_find.find uf v in
    if labels.(r) < 0 then begin
      labels.(r) <- !next;
      incr next
    end;
    labels.(v) <- labels.(r)
  done;
  (contract g labels !next, labels)

let subdivide g e k =
  let u, v = Graph.endpoints g e in
  let n = Graph.n g in
  let others =
    Graph.fold_edges g
      (fun acc e' a b -> if e' = e then acc else (a, b) :: acc)
      []
  in
  let path =
    if k = 0 then [ (u, v) ]
    else begin
      let mid = List.init (k - 1) (fun i -> (n + i, n + i + 1)) in
      ((u, n) :: mid) @ [ (n + k - 1, v) ]
    end
  in
  Graph.of_edges (n + k) (path @ others)

let add_edges g extra =
  let edges = Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc) extra in
  Graph.of_edges (Graph.n g) edges

let relabel g perm =
  let edges =
    Graph.fold_edges g (fun acc _ u v -> (perm.(u), perm.(v)) :: acc) []
  in
  Graph.of_edges (Graph.n g) edges

let complement g =
  let n = Graph.n g in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let cluster_partition g labels k =
  let members = Array.make k [] in
  for v = Graph.n g - 1 downto 0 do
    members.(labels.(v)) <- v :: members.(labels.(v))
  done;
  let inter = ref [] in
  Graph.iter_edges g (fun e u v ->
      if labels.(u) <> labels.(v) then inter := e :: !inter);
  let clusters =
    Array.map
      (fun vs ->
        let sub, map = induced_subgraph g vs in
        (vs, sub, map))
      members
  in
  (clusters, List.rev !inter)
