type t = {
  n : int;
  adj_off : int array;
  adj_vtx : int array;
  adj_eid : int array;
  edge_ends : (int * int) array;
}

let normalize (u, v) = if u <= v then (u, v) else (v, u)

(* In-place quicksort of keys.(lo..hi) with pay.(lo..hi) co-moving; insertion
   sort below a small cutoff, median-of-three pivot. Keys within a row are
   distinct, so the result is independent of partitioning details. *)
let sort_row keys pay lo hi =
  let swap i j =
    let k = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- k;
    let p = pay.(i) in
    pay.(i) <- pay.(j);
    pay.(j) <- p
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let k = keys.(i) and p = pay.(i) in
      let j = ref (i - 1) in
      while !j >= lo && keys.(!j) > k do
        keys.(!j + 1) <- keys.(!j);
        pay.(!j + 1) <- pay.(!j);
        decr j
      done;
      keys.(!j + 1) <- k;
      pay.(!j + 1) <- p
    done
  in
  let rec go lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median-of-three: order lo, mid, hi, then pivot from mid *)
      if keys.(mid) < keys.(lo) then swap mid lo;
      if keys.(hi) < keys.(lo) then swap hi lo;
      if keys.(hi) < keys.(mid) then swap hi mid;
      let pivot = keys.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while keys.(!i) < pivot do
          incr i
        done;
        while keys.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      go lo !j;
      go !i hi
    end
  in
  if hi > lo then go lo hi

let of_edge_array n raw =
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: endpoint out of range (%d,%d), n=%d"
             u v n))
    raw;
  let cleaned =
    Array.to_list raw
    |> List.filter_map (fun (u, v) ->
           if u = v then None else Some (normalize (u, v)))
    |> List.sort_uniq compare
  in
  let edge_ends = Array.of_list cleaned in
  let m = Array.length edge_ends in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_ends;
  let adj_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    adj_off.(v + 1) <- adj_off.(v) + deg.(v)
  done;
  let adj_vtx = Array.make (2 * m) 0 in
  let adj_eid = Array.make (2 * m) 0 in
  let cursor = Array.copy adj_off in
  Array.iteri
    (fun e (u, v) ->
      adj_vtx.(cursor.(u)) <- v;
      adj_eid.(cursor.(u)) <- e;
      cursor.(u) <- cursor.(u) + 1;
      adj_vtx.(cursor.(v)) <- u;
      adj_eid.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1)
    edge_ends;
  (* Filling in edge order interleaves low and high endpoints, so rows are not
     sorted yet; sort each row by neighbor to establish the invariant. Rows are
     duplicate-free (edges are sort_uniq'd above), so sorting adj_vtx with
     adj_eid co-moving needs no tie-break and can stay monomorphic in-place. *)
  let g = { n; adj_off; adj_vtx; adj_eid; edge_ends } in
  for v = 0 to n - 1 do
    sort_row adj_vtx adj_eid adj_off.(v) (adj_off.(v + 1) - 1)
  done;
  g

let of_edges n edges = of_edge_array n (Array.of_list edges)

let empty n = of_edge_array n [||]

let n g = g.n
let m g = Array.length g.edge_ends
let degree g v = g.adj_off.(v + 1) - g.adj_off.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let max_degree_vertex g =
  if g.n = 0 then invalid_arg "Graph.max_degree_vertex: empty graph";
  let best = ref 0 in
  for v = 1 to g.n - 1 do
    if degree g v > degree g !best then best := v
  done;
  !best

let endpoints g e = g.edge_ends.(e)

let find_incidence g u v =
  (* binary search for v in u's sorted adjacency row *)
  let lo = ref g.adj_off.(u) and hi = ref (g.adj_off.(u + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj_vtx.(mid) in
    if w = v then found := mid
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_edge g u v = u <> v && find_incidence g u v >= 0

let find_edge g u v =
  let i = find_incidence g u v in
  if i < 0 then raise Not_found else g.adj_eid.(i)

let neighbor_at g v i =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Graph.neighbor_at: vertex %d out of range" v);
  let lo = g.adj_off.(v) in
  if i < 0 || lo + i >= g.adj_off.(v + 1) then
    invalid_arg
      (Printf.sprintf "Graph.neighbor_at: index %d out of range for vertex %d"
         i v);
  g.adj_vtx.(lo + i)

let iter_neighbors g v f =
  for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
    f g.adj_vtx.(i)
  done

let iter_incident g v f =
  for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
    f g.adj_vtx.(i) g.adj_eid.(i)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

let neighbors g v = List.rev (fold_neighbors g v (fun acc w -> w :: acc) [])

let iter_edges g f =
  Array.iteri (fun e (u, v) -> f e u v) g.edge_ends

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun e u v -> acc := f !acc e u v);
  !acc

let edges g = Array.copy g.edge_ends

let volume g vs = List.fold_left (fun acc v -> acc + degree g v) 0 vs

let edge_density g = if g.n = 0 then 0. else float_of_int (m g) /. float_of_int g.n

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n (m g)

let check_invariants g =
  let fail fmt = Printf.ksprintf failwith fmt in
  if Array.length g.adj_off <> g.n + 1 then fail "adj_off length";
  if g.adj_off.(0) <> 0 then fail "adj_off.(0) <> 0";
  if g.adj_off.(g.n) <> 2 * m g then fail "adj_off.(n) <> 2m";
  for v = 0 to g.n - 1 do
    if g.adj_off.(v) > g.adj_off.(v + 1) then fail "adj_off not monotone at %d" v;
    for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
      let w = g.adj_vtx.(i) in
      if w = v then fail "self-loop at %d" v;
      if i > g.adj_off.(v) && g.adj_vtx.(i - 1) >= w then
        fail "row of %d not strictly sorted" v;
      let u', v' = g.edge_ends.(g.adj_eid.(i)) in
      if not ((u' = v && v' = w) || (u' = w && v' = v)) then
        fail "edge id mismatch at incidence (%d,%d)" v w;
      if find_incidence g w v < 0 then fail "asymmetric edge (%d,%d)" v w
    done
  done;
  Array.iteri
    (fun e (u, v) ->
      if u >= v then fail "edge %d not normalized" e;
      if find_edge g u v <> e then fail "edge %d not found via adjacency" e)
    g.edge_ends
