(** Immutable sparse graphs in compressed-sparse-row form.

    Vertices are integers [0 .. n-1]. Edges are undirected, simple (no
    self-loops, no parallel edges) and carry stable integer identifiers
    [0 .. m-1]; edge [e]'s endpoints satisfy [fst (endpoints g e) < snd
    (endpoints g e)]. Adjacency lists are sorted by neighbor id, which makes
    membership tests logarithmic. *)

type t

(** {1 Construction} *)

(** [of_edges n edges] builds a graph on [n] vertices from an edge list.
    Self-loops are dropped and duplicate edges (in either orientation) are
    collapsed. Edge ids are assigned in lexicographic order of the normalized
    (min, max) endpoint pairs.
    @raise Invalid_argument if an endpoint is outside [0 .. n-1]. *)
val of_edges : int -> (int * int) list -> t

(** [of_edge_array n edges] is [of_edges] on an array. *)
val of_edge_array : int -> (int * int) array -> t

(** The empty graph on [n] isolated vertices. *)
val empty : int -> t

(** {1 Basic accessors} *)

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** [degree g v] is the number of neighbors of [v]. *)
val degree : t -> int -> int

(** Maximum degree over all vertices; 0 on the empty graph. *)
val max_degree : t -> int

(** A vertex of maximum degree (smallest id among ties).
    @raise Invalid_argument on a graph with no vertices. *)
val max_degree_vertex : t -> int

(** [endpoints g e] are edge [e]'s endpoints [(u, v)] with [u < v]. *)
val endpoints : t -> int -> int * int

(** [mem_edge g u v] tests adjacency in O(log deg). *)
val mem_edge : t -> int -> int -> bool

(** [find_edge g u v] is the id of edge [{u, v}].
    @raise Not_found if absent. *)
val find_edge : t -> int -> int -> int

(** [neighbor_at g v i] is the [i]-th neighbor of [v] in increasing neighbor
    order, in O(1) by direct CSR row indexing. Indices run over
    [0 .. degree g v - 1].
    @raise Invalid_argument if [v] or [i] is out of range. *)
val neighbor_at : t -> int -> int -> int

(** {1 Iteration} *)

(** [iter_neighbors g v f] applies [f] to each neighbor of [v] in increasing
    order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [iter_incident g v f] applies [f neighbor edge_id] to each incidence of
    [v]. *)
val iter_incident : t -> int -> (int -> int -> unit) -> unit

(** [fold_neighbors g v f init] folds over neighbors of [v]. *)
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** Neighbors of [v] as a sorted list. *)
val neighbors : t -> int -> int list

(** [iter_edges g f] applies [f e u v] to every edge, [u < v], in edge-id
    order. *)
val iter_edges : t -> (int -> int -> int -> unit) -> unit

(** [fold_edges g f init] folds [f acc e u v] over all edges. *)
val fold_edges : t -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

(** All edges as an array of endpoint pairs, indexed by edge id. *)
val edges : t -> (int * int) array

(** {1 Derived quantities} *)

(** Sum of degrees of the given vertex set (each vertex counted once). *)
val volume : t -> int list -> int

(** [edge_density g] is [m / n] as a float; 0 on the empty graph. *)
val edge_density : t -> float

(** {1 Printing} *)

(** Human-readable one-line summary, e.g. ["graph(n=9, m=12)"]. *)
val pp : Format.formatter -> t -> unit

(** Verify internal CSR invariants (symmetry, sortedness, edge-id
    consistency); intended for tests.
    @raise Failure describing the first violated invariant. *)
val check_invariants : t -> unit
