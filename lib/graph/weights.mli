(** Integer edge weights, stored per edge id.

    The paper assumes positive integer weights with maximum value [W]
    (Section 1.1); this module enforces positivity. *)

type t

(** [uniform g w] gives every edge weight [w] (default 1). *)
val uniform : ?w:int -> Graph.t -> t

(** [of_array g a] wraps an explicit weight array ([a.(e)] is edge [e]'s
    weight).
    @raise Invalid_argument on length mismatch or non-positive entry. *)
val of_array : Graph.t -> int array -> t

(** [random g ~max_w ~seed] draws weights uniformly in [1 .. max_w]. *)
val random : Graph.t -> max_w:int -> seed:int -> t

(** Weight of edge [e]. *)
val get : t -> int -> int

(** Maximum edge weight [W]; [0] if there are no edges. *)
val max_weight : t -> int

(** Sum of weights over an edge-id list. *)
val total : t -> int list -> int

(** Sum over all edges. *)
val total_all : t -> int

(** [restrict w mapping] carries weights to a subgraph built with
    {!Graph_ops}: new edge [e] gets the weight of
    [mapping.edge_to_orig.(e)]. *)
val restrict : t -> Graph_ops.mapping -> t

(** Underlying array (not copied; treat as read-only). *)
val raw : t -> int array
