let bfs_multi g sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
  done;
  dist

let bfs g src = bfs_multi g [ src ]

let bfs_tree g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  parent.(src) <- src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- v;
          Queue.add w queue
        end)
  done;
  (dist, parent)

let bfs_layers g src =
  let dist = bfs g src in
  let radius = Array.fold_left max 0 dist in
  let layers = Array.make (radius + 1) [] in
  for v = Graph.n g - 1 downto 0 do
    if dist.(v) >= 0 then layers.(dist.(v)) <- v :: layers.(dist.(v))
  done;
  layers

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) < 0 then begin
      let c = !count in
      incr count;
      let queue = Queue.create () in
      label.(v) <- c;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if label.(w) < 0 then begin
              label.(w) <- c;
              Queue.add w queue
            end)
      done
    end
  done;
  (label, !count)

let component_list g =
  let label, count = components g in
  let buckets = Array.make count [] in
  for v = Graph.n g - 1 downto 0 do
    buckets.(label.(v)) <- v :: buckets.(label.(v))
  done;
  Array.to_list buckets

let is_connected g =
  let _, count = components g in
  count <= 1

let eccentricity g v =
  Array.fold_left max 0 (bfs g v)

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !best then best := e
  done;
  !best

let argmax_dist dist =
  let best = ref 0 in
  Array.iteri (fun v d -> if d > dist.(!best) then best := v) dist;
  !best

let diameter_double_sweep g =
  if Graph.n g = 0 then 0
  else begin
    let d0 = bfs g 0 in
    let far = argmax_dist d0 in
    eccentricity g far
  end

module Heap = struct
  (* binary min-heap of (key, vertex) pairs *)
  type t = {
    mutable data : (int * int) array;
    mutable len : int;
  }

  let create () = { data = Array.make 16 (0, 0); len = 0 }
  let is_empty h = h.len = 0

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h key v =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) (0, 0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- (key, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top
end

let dijkstra g weight src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let heap = Heap.create () in
  dist.(src) <- 0;
  Heap.push heap 0 src;
  while not (Heap.is_empty heap) do
    let d, v = Heap.pop heap in
    if d = dist.(v) then
      Graph.iter_incident g v (fun w e ->
          let we = weight e in
          if we < 0 then invalid_arg "Traversal.dijkstra: negative weight";
          let nd = d + we in
          if nd < dist.(w) then begin
            dist.(w) <- nd;
            Heap.push heap nd w
          end)
  done;
  dist

let dfs_order g src =
  let n = Graph.n g in
  let seen = Array.make n false in
  let order = ref [] in
  let stack = ref [ src ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if not seen.(v) then begin
          seen.(v) <- true;
          order := v :: !order;
          (* push neighbors in reverse so smaller ids are visited first *)
          let nbrs = Graph.fold_neighbors g v (fun acc w -> w :: acc) [] in
          List.iter (fun w -> if not seen.(w) then stack := w :: !stack) nbrs
        end
  done;
  List.rev !order

let is_acyclic g =
  let _, count = components g in
  Graph.m g = Graph.n g - count

let spanning_forest g =
  let uf = Union_find.create (Graph.n g) in
  Graph.fold_edges g
    (fun acc e u v -> if Union_find.union uf u v then e :: acc else acc)
    []
  |> List.rev
