(** Breadth-first / depth-first traversals and shortest paths. *)

(** [bfs g src] returns the array of hop distances from [src]; unreachable
    vertices get [-1]. *)
val bfs : Graph.t -> int -> int array

(** [bfs_multi g sources] returns hop distances from the nearest source;
    unreachable vertices get [-1]. *)
val bfs_multi : Graph.t -> int list -> int array

(** [bfs_tree g src] returns [(dist, parent)] where [parent.(src) = src] and
    [parent.(v) = -1] for unreachable [v]. *)
val bfs_tree : Graph.t -> int -> int array * int array

(** [bfs_layers g src] groups reachable vertices by distance: element [d] of
    the result lists the vertices at distance exactly [d], in increasing
    vertex order. *)
val bfs_layers : Graph.t -> int -> int list array

(** [components g] assigns each vertex a component label in
    [0 .. count-1] (labelled in order of smallest member) and returns
    [(labels, count)]. *)
val components : Graph.t -> int array * int

(** List of components, each a sorted vertex list, ordered by smallest
    member. *)
val component_list : Graph.t -> int list list

(** Whether the graph is connected ([true] for graphs with at most one
    vertex). *)
val is_connected : Graph.t -> bool

(** [eccentricity g v] is the maximum distance from [v] to a reachable
    vertex. *)
val eccentricity : Graph.t -> int -> int

(** Exact diameter of the largest component, by running BFS from every
    vertex; [0] on the empty graph. Linear in [n * m]: intended for
    small-to-medium graphs and tests. *)
val diameter : Graph.t -> int

(** Lower bound on the diameter by a double BFS sweep (exact on trees). *)
val diameter_double_sweep : Graph.t -> int

(** [dijkstra g weight src] computes shortest-path distances with
    non-negative per-edge weights ([weight e] for edge id [e]); unreachable
    vertices get [max_int]. *)
val dijkstra : Graph.t -> (int -> int) -> int -> int array

(** [dfs_order g src] lists vertices reachable from [src] in preorder. *)
val dfs_order : Graph.t -> int -> int list

(** [is_acyclic g] tests whether [g] is a forest. *)
val is_acyclic : Graph.t -> bool

(** [spanning_forest g] returns the edge ids of a BFS spanning forest. *)
val spanning_forest : Graph.t -> int list
