(** Graph generators for the families the paper targets (planar,
    bounded-treewidth, bounded-genus, H-minor-free) and contrast families
    (hypercubes, random regular graphs, 3D grids) that are not minor-free.

    All randomized generators are deterministic given [seed]. *)

(** {1 Deterministic families} *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t

(** [star k] is the k-star of Section 3.2: a center (vertex 0) joined to [k]
    leaves. *)
val star : int -> Graph.t

(** [double_star k] is the k-double-star of Section 3.2: vertices 0 and 1
    are the hubs; vertices [2 .. k+1] are each adjacent to both hubs. *)
val double_star : int -> Graph.t

(** [grid r c] is the r-by-c planar grid; vertex [(i, j)] is [i * c + j]. *)
val grid : int -> int -> Graph.t

(** [grid3d a b c] is the 3-dimensional grid (not H-minor-free for fixed H;
    contrast family). *)
val grid3d : int -> int -> int -> Graph.t

(** [torus r c] is the grid with wraparound (genus 1). *)
val torus : int -> int -> Graph.t

(** [hypercube d] is the d-dimensional hypercube on [2^d] vertices (contrast
    family: conductance Theta(1/d) after decomposition, Section 2). *)
val hypercube : int -> Graph.t

(** [complete_binary_tree depth] has [2^(depth+1) - 1] vertices. *)
val complete_binary_tree : int -> Graph.t

(** [barbell k len] joins two k-cliques by a path with [len] internal
    vertices: the canonical low-conductance graph. *)
val barbell : int -> int -> Graph.t

(** {1 Randomized families} *)

(** Uniform random tree via a random Pruefer sequence. *)
val random_tree : int -> seed:int -> Graph.t

(** [erdos_renyi n p ~seed] includes each pair independently with
    probability [p]. *)
val erdos_renyi : int -> float -> seed:int -> Graph.t

(** [random_regular n d ~seed] samples a d-regular simple graph by the
    configuration model with restarts.
    @raise Invalid_argument if [n * d] is odd or [d >= n]. *)
val random_regular : int -> int -> seed:int -> Graph.t

(** [random_k_tree n k ~seed] grows a random k-tree: start from a
    (k+1)-clique and repeatedly attach a new vertex to a random existing
    k-clique. Treewidth exactly [k] (for n > k). *)
val random_k_tree : int -> int -> seed:int -> Graph.t

(** [random_apollonian n ~seed] grows a random Apollonian network: a maximal
    planar graph (planar 3-tree) built by repeatedly inserting a vertex into
    a random triangular face. Requires [n >= 3]. *)
val random_apollonian : int -> seed:int -> Graph.t

(** [random_maximal_outerplanar n ~seed] triangulates a random n-gon:
    maximal outerplanar, treewidth 2. Requires [n >= 3]. *)
val random_maximal_outerplanar : int -> seed:int -> Graph.t

(** [random_planar n p ~seed] subsamples the edges of a random Apollonian
    network, keeping each inner edge with probability [p] (outer triangle
    kept); planar but not maximal, with pendant and low-degree vertices. *)
val random_planar : int -> float -> seed:int -> Graph.t

(** [blob_chain ~blobs ~blob_size ~seed] chains [blobs] random Apollonian
    networks of [blob_size] vertices each, consecutive blobs joined by a
    single bridge edge: planar, with conductance Theta(1 / blob_size), so
    expander decompositions split it at the bridges. Requires
    [blob_size >= 3] and [blobs >= 1]. *)
val blob_chain : blobs:int -> blob_size:int -> seed:int -> Graph.t

(** {1 Modifiers} *)

(** [plant_k5s g count ~seed] overlays [count] K5s on disjoint random
    5-vertex sets (adding the missing edges), destroying planarity; used to
    make graphs epsilon-far from minor-closed properties.
    @raise Invalid_argument if [5 * count > Graph.n g]. *)
val plant_k5s : Graph.t -> int -> seed:int -> Graph.t

(** [add_random_edges g count ~seed] adds [count] uniformly random missing
    edges. *)
val add_random_edges : Graph.t -> int -> seed:int -> Graph.t

(** [attach_stars g ~stars ~leaves ~seed] picks [stars] random vertices and
    pendants [leaves] new degree-1 vertices onto each; exercises the 2-star
    preprocessing of Section 3.2. *)
val attach_stars : Graph.t -> stars:int -> leaves:int -> seed:int -> Graph.t

(** [attach_double_stars g ~hubs ~spokes ~seed] picks [hubs] random edges
    (u, v) and adds [spokes] new degree-2 vertices adjacent to both u and v;
    exercises the 3-double-star preprocessing. *)
val attach_double_stars :
  Graph.t -> hubs:int -> spokes:int -> seed:int -> Graph.t

(** Randomly permute vertex ids (defeats generator-order artifacts). *)
val shuffle : Graph.t -> seed:int -> Graph.t

(** [random_sign_labels g ~frac_pos ~seed] draws a +/- label per edge
    ([true] = positive) for correlation clustering. *)
val random_sign_labels : Graph.t -> frac_pos:float -> seed:int -> bool array

(** [planted_sign_labels g labels ~noise ~seed] labels intra-community edges
    positive and inter-community edges negative, then flips each label with
    probability [noise]; [labels.(v)] is [v]'s community. *)
val planted_sign_labels :
  Graph.t -> int array -> noise:float -> seed:int -> bool array
