type t = int array

let validate a =
  Array.iter
    (fun w ->
      if w <= 0 then invalid_arg "Weights: weights must be positive integers")
    a

let uniform ?(w = 1) g =
  if w <= 0 then invalid_arg "Weights.uniform: weight must be positive";
  Array.make (Graph.m g) w

let of_array g a =
  if Array.length a <> Graph.m g then
    invalid_arg "Weights.of_array: length mismatch";
  validate a;
  Array.copy a

let random g ~max_w ~seed =
  if max_w <= 0 then invalid_arg "Weights.random: max_w must be positive";
  let st = Random.State.make [| seed |] in
  Array.init (Graph.m g) (fun _ -> 1 + Random.State.int st max_w)

let get w e = w.(e)

let max_weight w = Array.fold_left max 0 w

let total w es = List.fold_left (fun acc e -> acc + w.(e)) 0 es

let total_all w = Array.fold_left ( + ) 0 w

let restrict w (mapping : Graph_ops.mapping) =
  Array.map (fun orig -> w.(orig)) mapping.edge_to_orig

let raw w = w
