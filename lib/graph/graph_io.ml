let to_string ?weights g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# expander-congest edge list\n";
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun e u v ->
      match weights with
      | None -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)
      | Some w ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %d\n" u v (Weights.get w e)));
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Graph_io.of_string: empty input"
  | header :: rest -> (
      let ints line =
        String.split_on_char ' ' line
        |> List.filter (fun x -> x <> "")
        |> List.map (fun x ->
               try int_of_string x
               with _ ->
                 failwith
                   (Printf.sprintf "Graph_io.of_string: bad token %S" x))
      in
      match ints header with
      | [ n; m ] ->
          if List.length rest <> m then
            failwith
              (Printf.sprintf
                 "Graph_io.of_string: expected %d edge lines, got %d" m
                 (List.length rest));
          let parsed = List.map ints rest in
          let edges =
            List.map
              (function
                | [ u; v ] | [ u; v; _ ] -> (u, v)
                | _ -> failwith "Graph_io.of_string: bad edge line")
              parsed
          in
          let g = Graph.of_edges n edges in
          let all_weighted =
            parsed <> [] && List.for_all (fun l -> List.length l = 3) parsed
          in
          let weights =
            if not all_weighted then None
            else begin
              let arr = Array.make (Graph.m g) 1 in
              List.iter
                (function
                  | [ u; v; w ] ->
                      if u <> v then
                        arr.(Graph.find_edge g u v) <- w
                  | _ -> ())
                parsed;
              Some (Weights.of_array g arr)
            end
          in
          (g, weights)
      | _ -> failwith "Graph_io.of_string: header must be \"n m\"")

let save ?weights g ~path =
  let oc = open_out path in
  output_string oc (to_string ?weights g);
  close_out oc

let load ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

let palette =
  [| "#4477aa"; "#ee6677"; "#228833"; "#ccbb44"; "#66ccee"; "#aa3377";
     "#bbbbbb"; "#999933"; "#882255"; "#44aa99" |]

let to_dot ?labels ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle, style=filled];\n";
  for v = 0 to Graph.n g - 1 do
    let color =
      match labels with
      | None -> "#dddddd"
      | Some l -> palette.(l.(v) mod Array.length palette)
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d [fillcolor=\"%s\"];\n" v color)
  done;
  let bold = Hashtbl.create 16 in
  Option.iter (List.iter (fun e -> Hashtbl.replace bold e ())) highlight;
  Graph.iter_edges g (fun e u v ->
      if Hashtbl.mem bold e then
        Buffer.add_string buf
          (Printf.sprintf "  %d -- %d [penwidth=3, color=\"#cc3311\"];\n" u v)
      else Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
