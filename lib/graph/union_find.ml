type t = {
  parent : int array;
  rank : int array;
  mutable count : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let size uf = Array.length uf.parent

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

let union uf x y =
  let rx = find uf x and ry = find uf y in
  if rx = ry then false
  else begin
    let rx, ry =
      if uf.rank.(rx) < uf.rank.(ry) then ry, rx else rx, ry
    in
    uf.parent.(ry) <- rx;
    if uf.rank.(rx) = uf.rank.(ry) then uf.rank.(rx) <- uf.rank.(rx) + 1;
    uf.count <- uf.count - 1;
    true
  end

let same uf x y = find uf x = find uf y

let count uf = uf.count

let groups uf =
  let n = size uf in
  let tbl = Hashtbl.create 16 in
  for x = n - 1 downto 0 do
    let r = find uf x in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (x :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare
