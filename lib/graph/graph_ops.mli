(** Graph surgery: subgraphs, unions, contractions, subdivisions.

    Operations that renumber vertices return a {!mapping} so callers can
    translate results back to the original graph. *)

type mapping = {
  to_sub : int array;    (** original vertex -> new vertex, or [-1] if dropped *)
  to_orig : int array;   (** new vertex -> original vertex *)
  edge_to_orig : int array;  (** new edge id -> original edge id, or [-1] *)
}

(** [induced_subgraph g vs] restricts [g] to the vertex set [vs] (duplicates
    ignored). *)
val induced_subgraph : Graph.t -> int list -> Graph.t * mapping

(** [subgraph_of_edges g es] keeps all [n] vertices but only the edges whose
    id is in [es]. The resulting mapping has identity vertex maps. *)
val subgraph_of_edges : Graph.t -> int list -> Graph.t * mapping

(** [remove_edges g es] deletes the edges with ids in [es], keeping all
    vertices. *)
val remove_edges : Graph.t -> int list -> Graph.t * mapping

(** [remove_vertices g vs] deletes the vertices in [vs] and their incident
    edges. *)
val remove_vertices : Graph.t -> int list -> Graph.t * mapping

(** [disjoint_union a b] places [b] after [a]; vertex [v] of [b] becomes
    [Graph.n a + v]. *)
val disjoint_union : Graph.t -> Graph.t -> Graph.t

(** [contract g classes] contracts each vertex class to a single new vertex
    (classes are given by a label array: vertices with equal labels merge;
    labels must cover [0 .. k-1]). Parallel edges collapse and self-loops
    vanish. Returns the contracted graph. *)
val contract : Graph.t -> int array -> int -> Graph.t

(** [contract_edges g es] contracts the listed edges (by id) and returns the
    resulting minor together with the vertex label array used (original
    vertex -> contracted vertex). *)
val contract_edges : Graph.t -> int list -> Graph.t * int array

(** [subdivide g e k] replaces edge [e] by a path with [k] new internal
    vertices (so [k = 0] returns an isomorphic copy). New vertices are
    numbered [Graph.n g ..]. *)
val subdivide : Graph.t -> int -> int -> Graph.t

(** [add_edges g edges] returns [g] plus the listed endpoint pairs. *)
val add_edges : Graph.t -> (int * int) list -> Graph.t

(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)
val relabel : Graph.t -> int array -> Graph.t

(** [complement g] is the complement graph (intended for small graphs). *)
val complement : Graph.t -> Graph.t

(** [cluster_partition g labels k] splits the edges of [g] by the vertex
    labelling: returns the list of (cluster vertex list, induced subgraph,
    mapping) per label, plus the list of inter-cluster edge ids. *)
val cluster_partition :
  Graph.t -> int array -> int ->
  (int list * Graph.t * mapping) array * int list
