open Sparse_graph
open Congest

type result = {
  delivered : (int * Walk_routing.token list) list;
  undelivered : int;
  stats : Network.stats;
}

type msg =
  | BDepth of int
  | Tok of Walk_routing.token

type state = {
  parent : int;
  depth : int;
  announced : bool;
  queue : Walk_routing.token list;
  absorbed : Walk_routing.token list;
}

let run ?exec (view : Cluster_view.t) ~leader_of ~tokens_of ~max_rounds =
  Obs.Span.with_ "distr.tree_routing" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let budget =
    match Network.congest_bandwidth n with
    | Network.Congest b -> b
    | Network.Local -> max_int
  in
  let token_bits = Bits.words n 2 in
  (* leave room for one BFS announcement sharing the edge in early rounds *)
  let capacity = max 1 ((budget - Bits.id_bits n) / token_bits) in
  let init (ctx : Network.ctx) =
    let v = ctx.id in
    let own =
      List.init (tokens_of v) (fun seq -> { Walk_routing.origin = v; seq })
    in
    if leader_of.(v) = v then
      { parent = v; depth = 0; announced = false; queue = []; absorbed = own }
    else
      { parent = -1; depth = -1; announced = false; queue = own; absorbed = [] }
  in
  let round _r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    (* absorb *)
    let st =
      List.fold_left
        (fun st (s, m) ->
          match m with
          | BDepth d ->
              if st.parent < 0 then { st with parent = s; depth = d + 1 }
              else st
          | Tok t ->
              if leader_of.(v) = v then { st with absorbed = t :: st.absorbed }
              else { st with queue = t :: st.queue })
        st inbox
    in
    let send = ref [] in
    let st =
      if st.parent >= 0 && not st.announced then begin
        List.iter (fun w -> send := (w, BDepth st.depth) :: !send) intra.(v);
        { st with announced = true }
      end
      else st
    in
    let st =
      if st.parent >= 0 && st.parent <> v && st.queue <> [] then begin
        let rec take k acc rest =
          match rest with
          | [] -> (List.rev acc, [])
          | _ when k = 0 -> (List.rev acc, rest)
          | t :: tl -> take (k - 1) (t :: acc) tl
        in
        let now, later = take capacity [] st.queue in
        List.iter (fun t -> send := (st.parent, Tok t) :: !send) now;
        { st with queue = later }
      end
      else st
    in
    (* event-driven: an attached vertex drains its queue toward the parent
       every round; otherwise adoption and token receipt are message-driven *)
    Network.step st ~send:!send
      ?wake_after:
        (if st.parent >= 0 && st.parent <> v && st.queue <> [] then Some 1
         else None)
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(function BDepth _ -> Bits.id_bits n | Tok _ -> token_bits)
      ~init ~round ~max_rounds
  in
  let delivered = ref [] in
  let undelivered = ref 0 in
  Array.iteri
    (fun v st ->
      if leader_of.(v) = v && st.absorbed <> [] then
        delivered := (v, st.absorbed) :: !delivered;
      undelivered := !undelivered + List.length st.queue)
    states;
  { delivered = List.rev !delivered; undelivered = !undelivered; stats }

let delivery_rate (view : Cluster_view.t) ~tokens_of result =
  let total = ref 0 in
  for v = 0 to Graph.n view.graph - 1 do
    total := !total + tokens_of v
  done;
  if !total = 0 then 1.
  else begin
    let got =
      List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0
        result.delivered
    in
    float_of_int got /. float_of_int !total
  end
