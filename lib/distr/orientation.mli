(** Low-out-degree edge orientation by iterated peeling (Barenboim–Elkin
    [11], as used in Section 2.2).

    Given an upper bound [density] on the edge density m/n of every
    subgraph (constant for H-minor-free graphs), repeatedly peel the
    vertices whose remaining intra-cluster degree is at most
    [ceil(2 * (1 + delta) * density)]; a peeled vertex orients all its
    remaining edges outward. At least a constant fraction of the remaining
    vertices peels each phase, so [O(log n)] phases suffice, each phase
    costing one communication round. *)

type result = {
  owner : int array;   (** edge id -> endpoint that owns (out-directs) it;
                           [-1] for inter-cluster edges, which are not
                           oriented *)
  out_degree : int array; (** resulting out-degree per vertex *)
  phases : int;        (** peeling phases used *)
  stats : Congest.Network.stats;
}

(** [run view ~density ?delta ()] orients all intra-cluster edges. [delta]
    defaults to [0.5], giving out-degree at most [ceil(3 * density)]. *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> density:float -> ?delta:float -> unit -> result

(** The out-degree bound the orientation guarantees. *)
val bound : density:float -> delta:float -> int

(** Verify that every intra-cluster edge is owned by one of its endpoints
    and all out-degrees respect {!bound}. *)
val check : Cluster_view.t -> result -> density:float -> delta:float -> bool
