(** Topology gathering: the leader of each cluster learns the entire induced
    subgraph [G[V_i]] (Section 2.2, "Information Gathering").

    Pipeline: (1) orient the intra-cluster edges with constant out-degree
    ({!Orientation}); (2) every vertex packs each of its outgoing edges into
    one [O(log n)]-bit token and routes all tokens to the leader with lazy
    random walks ({!Walk_routing}). The leader then holds every edge of its
    cluster exactly once. *)

type result = {
  edges_at_leader : (int * (int * int) list) list;
      (** per leader: the cluster edges it learned, as endpoint pairs *)
  delivery : float;   (** fraction of edge-tokens delivered *)
  orientation_stats : Congest.Network.stats;
  routing_stats : Congest.Network.stats;
}

(** [run view ~leader_of ~density ~walk_len ~seed ~max_rounds] gathers every
    cluster's topology at its leader. [density] bounds the edge density (for
    the orientation); [walk_len] is the per-token walk budget. *)
val run :
  Cluster_view.t ->
  leader_of:int array ->
  density:float ->
  walk_len:int ->
  seed:int ->
  max_rounds:int ->
  result

(** [complete view ~leader_of result] holds when every leader learned
    exactly the edge set of its cluster. *)
val complete : Cluster_view.t -> leader_of:int array -> result -> bool
