open Sparse_graph
open Congest

type t = {
  labels : int array;
  k : int;
  inter_edges : int list;
  epsilon : float;
  tau : float;
  levels : int;
  total_rounds : int;
  total_messages : int;
  max_edge_bits : int;
}

type params = {
  power_iters : int;
  candidates : int;
  depth_budget : int;
  max_levels : int;
  seed : int;
}

let default_params =
  (* power_iters = 0 means adaptive: 40 + 2 * (largest cluster size),
     capped at 500 — low-spectral-gap clusters (paths, trees) need more
     iterations than expanders *)
  { power_iters = 0; candidates = 16; depth_budget = 0; max_levels = 40;
    seed = 0 }

(* ------------------------------------------------------------------ *)
(* One level: every cluster runs the phased spectral-cut protocol in    *)
(* parallel, in a single CONGEST execution                              *)
(* ------------------------------------------------------------------ *)

type msg =
  | BDepth of int                (* BFS flooding *)
  | Deg of int                   (* intra-degree exchange *)
  | Agg of int * float array     (* convergecast partial (block id, sums) *)
  | Res of int * float array     (* broadcast result *)
  | Xval of float                (* eigenvector neighbor exchange *)
  | Yval of float * int          (* embedding value + BFS depth *)

type vstate = {
  depth : int;                   (* -1 until reached *)
  parent : int;
  announced : bool;
  nbr_deg : (int * int) list;    (* neighbor -> intra-degree *)
  x : float;
  sqd : float;                   (* sqrt of own intra-degree *)
  vol : float;                   (* cluster volume, after init block *)
  nbr_x : (int * float) list;
  nbr_y : (int * (float * int)) list;
  y : float;
  acc : float array;             (* current block accumulator *)
  acc_block : int;
  results : (int * float array) list;  (* delivered block results *)
  forwarded : int list;          (* block ids already re-broadcast *)
  side : bool;
  split : bool;
}

(* element-wise merge; block [minmax_bid] uses min/max lanes *)
let merge ~minmax_bid bid a b =
  Array.mapi
    (fun i x ->
      if bid = minmax_bid then
        if i mod 2 = 0 then min x b.(i) else max x b.(i)
      else x +. b.(i))
    a

let run_level ?exec (view : Cluster_view.t) ~leader_of ~b ~t ~c ~tau ~seed =
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let agg_len = (2 * b) + 2 in
  let init_start = b + 2 in
  let power_start k = init_start + agg_len + ((k - 1) * (agg_len + 1)) in
  let minmax_start = power_start (t + 1) in
  let yexch_round = minmax_start + agg_len in
  let cand_start j = yexch_round + 1 + (j * agg_len) in
  let decision_start = cand_start (2 * c) in
  let total_rounds = decision_start + b + 2 in
  let init_bid = 0 in
  let power_bid k = k in
  let minmax_bid = t + 1 in
  let cand_bid j = t + 2 + j in
  let decision_bid = t + 2 + (2 * c) in
  let fresh_acc bid =
    if bid = minmax_bid then [| infinity; neg_infinity; infinity; neg_infinity |]
    else if bid = init_bid then [| 0.; 0.; 0. |]
    else [| 0.; 0. |]
  in
  let init (ctx : Network.ctx) =
    let v = ctx.id in
    let st = Random.State.make [| seed; v; 52361 |] in
    let d = List.length intra.(v) in
    {
      depth = (if leader_of.(v) = v then 0 else -1);
      parent = (if leader_of.(v) = v then v else -1);
      announced = false;
      nbr_deg = [];
      x = Random.State.float st 2. -. 1.;
      sqd = sqrt (float_of_int d);
      vol = 0.;
      nbr_x = [];
      nbr_y = [];
      y = 0.;
      acc = [| 0. |];
      acc_block = -1;
      results = [];
      forwarded = [];
      side = false;
      split = false;
    }
  in
  (* contribution of a vertex to a given aggregation block *)
  let contribution st v bid =
    let d = float_of_int (List.length intra.(v)) in
    if bid = init_bid then [| d; st.x *. st.sqd; st.x *. st.x |]
    else if bid >= 1 && bid <= t then [| st.x *. st.sqd; st.x *. st.x |]
    else if bid = minmax_bid then
      [| st.y; st.y; float_of_int st.depth; float_of_int st.depth |]
    else begin
      (* candidate block: which threshold? *)
      let j = bid - (t + 2) in
      let threshold st j =
        match List.assoc_opt minmax_bid st.results with
        | None -> nan
        | Some mm ->
            if j < c then
              mm.(0)
              +. (float_of_int (j + 1) *. (mm.(1) -. mm.(0))
                  /. float_of_int (c + 1))
            else
              mm.(2)
              +. (float_of_int (j - c + 1) *. (mm.(3) -. mm.(2))
                  /. float_of_int (c + 1))
      in
      let th = threshold st j in
      let my_emb = if j < c then st.y else float_of_int st.depth in
      let inside = my_emb <= th in
      let cut2 = ref 0 in
      List.iter
        (fun (w, (wy, wdepth)) ->
          ignore w;
          let w_emb = if j < c then wy else float_of_int wdepth in
          if (w_emb <= th) <> inside then incr cut2)
        st.nbr_y;
      [| float_of_int !cut2; (if inside then d else 0.) |]
    end
  in
  (* apply the post-block update when a result arrives *)
  let absorb_result st result_bid res =
    if result_bid = init_bid || (result_bid >= 1 && result_bid <= t) then begin
      (* deflate + normalize: res = [(vol;) S1; S2] *)
      let vol, s1, s2 =
        if result_bid = init_bid then (res.(0), res.(1), res.(2))
        else (st.vol, res.(0), res.(1))
      in
      if vol <= 0. then st
      else begin
        let coeff = s1 /. vol in
        let x = st.x -. (coeff *. st.sqd) in
        let norm2 = s2 -. (s1 *. s1 /. vol) in
        let x = if norm2 > 1e-30 then x /. sqrt norm2 else x in
        { st with x; vol }
      end
    end
    else st
  in
  (* Stays Every_round: the BFS / power-iteration / sweep phases run on a
     dense absolute-round schedule in which almost every vertex originates
     traffic each round, so event-driven scheduling has nothing to skip. *)
  let round r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    if intra.(v) = [] then
      (* no intra edges: nothing to do this level *)
      Network.step st ~halt:true
    else begin
      let send = ref [] in
      let st = ref st in
      (* 1. absorb inbox *)
      List.iter
        (fun (s, m) ->
          match m with
          | BDepth d ->
              if !st.depth < 0 then
                st := { !st with depth = d + 1; parent = s }
          | Deg d -> st := { !st with nbr_deg = (s, d) :: !st.nbr_deg }
          | Xval x -> st := { !st with nbr_x = (s, x) :: !st.nbr_x }
          | Yval (y, d) -> st := { !st with nbr_y = (s, (y, d)) :: !st.nbr_y }
          | Agg (bid, arr) ->
              let acc =
                if !st.acc_block = bid then !st.acc else fresh_acc bid
              in
              st :=
                { !st with acc = merge ~minmax_bid bid acc arr;
                  acc_block = bid }
          | Res (bid, arr) ->
              if not (List.mem_assoc bid !st.results) then begin
                st := { !st with results = (bid, arr) :: !st.results };
                st := absorb_result !st bid arr;
                (* flood onward *)
                if not (List.mem bid !st.forwarded) then begin
                  st := { !st with forwarded = bid :: !st.forwarded };
                  List.iter
                    (fun w -> send := (w, Res (bid, arr)) :: !send)
                    intra.(v)
                end
              end)
        inbox;
      let st0 = !st in
      (* unreached vertices idle (the orchestrator separates them) *)
      if st0.depth < 0 && r > b then
        Network.step st0 ~halt:(r > total_rounds)
      else begin
        (* 2. act according to the schedule *)
        (* BFS announcements *)
        if r <= b && st0.depth >= 0 && not st0.announced then begin
          st := { st0 with announced = true };
          List.iter
            (fun w -> send := (w, BDepth !st.depth) :: !send)
            intra.(v)
        end;
        let st1 = !st in
        (* degree exchange *)
        if r = b + 1 then
          List.iter
            (fun w -> send := (w, Deg (List.length intra.(v))) :: !send)
            intra.(v);
        (* power-iteration neighbor exchange / local W application: round
           r is an exchange round iff r = power_start k for some k *)
        let power_k_of_round r =
          let off = r - power_start 1 in
          if off >= 0 && off mod (agg_len + 1) = 0 then begin
            let k = (off / (agg_len + 1)) + 1 in
            if k >= 1 && k <= t then Some k else None
          end
          else None
        in
        (match power_k_of_round r with
        | Some _ ->
            List.iter (fun w -> send := (w, Xval st1.x) :: !send) intra.(v)
        | None -> ());
        (match power_k_of_round (r - 1) with
        | Some _ ->
            let d = float_of_int (List.length intra.(v)) in
            if d > 0. then begin
              let sum = ref 0. in
              List.iter
                (fun (w, xw) ->
                  match List.assoc_opt w st1.nbr_deg with
                  | Some dw when dw > 0 ->
                      sum := !sum +. (xw /. sqrt (float_of_int dw))
                  | _ -> ())
                st1.nbr_x;
              let x' = (st1.x /. 2.) +. (!sum /. (2. *. st1.sqd)) in
              st := { !st with x = x'; nbr_x = [] }
            end
        | None -> ());
        (* y computation just before the minmax block *)
        if r = minmax_start then begin
          let stc = !st in
          let y = if stc.sqd > 0. then stc.x /. stc.sqd else stc.x in
          st := { stc with y }
        end;
        (* y / depth exchange for the candidate evaluations *)
        if r = yexch_round then begin
          let stc = !st in
          List.iter
            (fun w -> send := (w, Yval (stc.y, stc.depth)) :: !send)
            intra.(v)
        end;
        (* convergecast turn: derive the block (if any) whose schedule puts
           this vertex's send at round r -- O(1) arithmetic, not a scan *)
        let bid_of_start s =
          if s = init_start then Some init_bid
          else if s = minmax_start then Some minmax_bid
          else if s > init_start && s < minmax_start then begin
            let off = s - (init_start + agg_len + 1) in
            if off >= 0 && off mod (agg_len + 1) = 0 then begin
              let k = (off / (agg_len + 1)) + 1 in
              if k >= 1 && k <= t then Some (power_bid k) else None
            end
            else None
          end
          else if s >= yexch_round + 1 then begin
            let off = s - (yexch_round + 1) in
            if off >= 0 && off mod agg_len = 0 && off / agg_len < 2 * c then
              Some (cand_bid (off / agg_len))
            else None
          end
          else None
        in
        (let stc = !st in
         if stc.depth >= 0 then begin
           match bid_of_start (r - (b - stc.depth)) with
           | Some bid ->
               let own = contribution stc v bid in
               let acc =
                 if stc.acc_block = bid then merge ~minmax_bid bid own stc.acc
                 else own
               in
               if stc.depth = 0 then begin
                 (* root: finalize and broadcast *)
                 st :=
                   { stc with results = (bid, acc) :: stc.results;
                     forwarded = bid :: stc.forwarded };
                 st := absorb_result !st bid acc;
                 List.iter
                   (fun w -> send := (w, Res (bid, acc)) :: !send)
                   intra.(v)
               end
               else send := (stc.parent, Agg (bid, acc)) :: !send
           | None -> ()
         end);
        (* decision: root evaluates the candidates *)
        if r = decision_start && !st.depth = 0 then begin
          let stc = !st in
          let vol = stc.vol in
          let best = ref (infinity, 0., false) in
          for j = 0 to (2 * c) - 1 do
            match List.assoc_opt (cand_bid j) stc.results with
            | Some res ->
                let cut = res.(0) /. 2. in
                let vin = res.(1) in
                let denom = min vin (vol -. vin) in
                if denom > 0. then begin
                  let phi = cut /. denom in
                  let fst3 (a, _, _) = a in
                  if phi < fst3 !best then
                    best := (phi, float_of_int j, true)
                end
            | None -> ()
          done;
          let phi, j, _ = !best in
          let decision =
            if phi < tau then [| 1.; j |] else [| 0.; 0. |]
          in
          st :=
            { stc with results = (decision_bid, decision) :: stc.results;
              forwarded = decision_bid :: stc.forwarded };
          List.iter
            (fun w -> send := (w, Res (decision_bid, decision)) :: !send)
            intra.(v)
        end;
        (* everyone applies the decision when it arrives (or at the end) *)
        if r >= decision_start then begin
          let stc = !st in
          match List.assoc_opt decision_bid stc.results with
          | Some d when d.(0) = 1. && not stc.split ->
              let j = int_of_float d.(1) in
              (match List.assoc_opt minmax_bid stc.results with
              | Some mm ->
                  let th =
                    if j < c then
                      mm.(0)
                      +. (float_of_int (j + 1) *. (mm.(1) -. mm.(0))
                          /. float_of_int (c + 1))
                    else
                      mm.(2)
                      +. (float_of_int (j - c + 1) *. (mm.(3) -. mm.(2))
                          /. float_of_int (c + 1))
                  in
                  let emb = if j < c then stc.y else float_of_int stc.depth in
                  st := { stc with split = true; side = emb <= th }
              | None -> ())
          | _ -> ()
        end;
        Network.step !st ~send:!send ~halt:(r > total_rounds)
      end
    end
  in
  let idb = Bits.id_bits n in
  let states, stats =
    Network.run ?exec g
      ~bandwidth:(Network.Congest (12 * idb))
      ~msg_bits:(function
        | BDepth _ | Deg _ -> idb
        | Xval _ -> 2 * idb
        | Yval _ -> 3 * idb
        | Agg (_, a) | Res (_, a) -> (1 + (2 * Array.length a)) * idb)
      ~init ~round ~max_rounds:(total_rounds + 2)
  in
  (states, stats)

(* ------------------------------------------------------------------ *)
(* Level orchestration (centralized glue: relabeling only)              *)
(* ------------------------------------------------------------------ *)

let decompose ?(params = default_params) ?exec g ~epsilon =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Distributed_decomposition.decompose: need 0 < epsilon < 1";
  Obs.Span.with_ "distr.decompose" @@ fun () ->
  let n = Graph.n g in
  let m = Graph.m g in
  let tau =
    if m = 0 then epsilon
    else epsilon /. (2. *. (log (float_of_int (2 * m)) /. log 2.))
  in
  (* start: connected components as clusters (a real system computes these
     with one BFS; we charge no rounds for it) *)
  let labels = ref (fst (Traversal.components g)) in
  let total_rounds = ref 0 in
  let total_messages = ref 0 in
  let max_edge_bits = ref 0 in
  let levels = ref 0 in
  let continue = ref true in
  while !continue && !levels < params.max_levels do
    incr levels;
    (* one span per level: Network.run meters inside attribute this level's
       rounds/messages to it *)
    Obs.Span.with_ (Printf.sprintf "level-%d" !levels) @@ fun () ->
    let view = Cluster_view.of_labels g !labels in
    (* leaders and depth budget for this level *)
    let leaders = Leader_election.run view ~rounds:n in
    total_rounds := !total_rounds + leaders.stats.Network.rounds;
    total_messages := !total_messages + leaders.stats.Network.messages;
    if leaders.stats.Network.max_edge_bits > !max_edge_bits then
      max_edge_bits := leaders.stats.Network.max_edge_bits;
    let b =
      if params.depth_budget > 0 then params.depth_budget
      else begin
        (* measured max cluster diameter (stand-in for O(phi^-1 log n)) *)
        let members = Hashtbl.create 16 in
        Array.iteri
          (fun v l ->
            Hashtbl.replace members l
              (v :: (try Hashtbl.find members l with Not_found -> [])))
          !labels;
        Hashtbl.fold
          (fun _ vs acc ->
            let sub, _ = Graph_ops.induced_subgraph g vs in
            max acc (Traversal.diameter sub))
          members 1
      end
    in
    let t_level =
      if params.power_iters > 0 then params.power_iters
      else begin
        let sizes = Hashtbl.create 16 in
        Array.iter
          (fun l ->
            Hashtbl.replace sizes l
              (1 + (try Hashtbl.find sizes l with Not_found -> 0)))
          !labels;
        let biggest = Hashtbl.fold (fun _ s acc -> max s acc) sizes 1 in
        min 500 (40 + (2 * biggest))
      end
    in
    let states, stats =
      run_level ?exec view ~leader_of:leaders.leader_of ~b ~t:t_level
        ~c:params.candidates ~tau ~seed:(params.seed + (77 * !levels))
    in
    total_rounds := !total_rounds + stats.Network.rounds;
    total_messages := !total_messages + stats.Network.messages;
    if stats.Network.max_edge_bits > !max_edge_bits then
      max_edge_bits := stats.Network.max_edge_bits;
    (* relabel: split sides; separate unreached vertices by component *)
    let changed = ref false in
    let next = ref 0 in
    let fresh = Hashtbl.create 16 in
    let key_of v =
      let st = states.(v) in
      let reached = st.depth >= 0 || Cluster_view.intra_degree view v = 0 in
      ( !labels.(v),
        (if st.split && st.side then 1 else 0),
        (if reached then 0 else 1) )
    in
    let new_labels =
      Array.init n (fun v ->
          let key = key_of v in
          let _, side, unreached = key in
          if side = 1 || unreached = 1 then changed := true;
          match Hashtbl.find_opt fresh key with
          | Some l -> l
          | None ->
              let l = !next in
              incr next;
              Hashtbl.add fresh key l;
              l)
    in
    (* unreached groups may be disconnected: split them by components *)
    let part = Decomp_glue.split_disconnected g new_labels !next in
    labels := fst part;
    let k' = snd part in
    ignore k';
    if not !changed then continue := false
  done;
  let final = Decomp_glue.split_disconnected g !labels (Array.fold_left max 0 !labels + 1) in
  let labels = fst final in
  let k = snd final in
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  {
    labels;
    k;
    inter_edges;
    epsilon;
    tau;
    levels = !levels;
    total_rounds = !total_rounds;
    total_messages = !total_messages;
    max_edge_bits = !max_edge_bits;
  }

let verify g t =
  let m = Graph.m g in
  let inter_ok =
    float_of_int (List.length t.inter_edges)
    <= (t.epsilon *. float_of_int m) +. 1e-9
  in
  let members = Hashtbl.create 16 in
  Array.iteri
    (fun v l ->
      Hashtbl.replace members l
        (v :: (try Hashtbl.find members l with Not_found -> [])))
    t.labels;
  let worst = ref infinity in
  Hashtbl.iter
    (fun _ vs ->
      let sub, _ = Graph_ops.induced_subgraph g vs in
      if Graph.n sub >= 2 && Graph.m sub > 0 then begin
        let phi =
          if Graph.n sub <= 14 then Spectral.Conductance.exact sub
          else
            (Spectral.Sweep_cut.combined_cut sub ~iters:200 ~seed:1)
              .conductance
        in
        if phi < !worst then worst := phi
      end)
    members;
  (inter_ok, !worst)
