(** Luby's randomized maximal independent set in CONGEST — the baseline the
    paper's Section 1.1 compares against: a maximal independent set is only
    a (1/Delta)-approximation of MAXIS, whereas the framework achieves
    (1 - epsilon).

    Each phase, every live vertex draws a random word; local minima join the
    MIS and their neighborhoods die. O(log n) phases w.h.p., two rounds per
    phase. *)

type result = {
  in_mis : bool array;
  phases : int;
  stats : Congest.Network.stats;
}

val run : ?exec:Congest.Network.exec -> Cluster_view.t -> seed:int -> result

(** The result is independent and maximal with respect to intra-cluster
    edges. *)
val check : Cluster_view.t -> result -> bool
