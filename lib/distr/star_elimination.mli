(** The distributed 2-star / 3-double-star elimination of Section 3.2, as a
    CONGEST token protocol.

    Each round-triple: (1) every live degree-1 vertex sends a pendant token
    to its neighbor, and every live degree-2 vertex sends a spoke token
    carrying its hub pair to both hubs; (2) a vertex keeps the pendant token
    with the smallest originator id and bounces the rest, and for each hub
    pair keeps the two smallest spoke originators and bounces the rest
    (both hubs agree because the rule is deterministic); (3) bounced
    originators announce their removal so neighbors update their degrees.
    Triples repeat until a quiet cycle. Matches the centralized
    {!Matching.Preprocess.eliminate_fixpoint} exactly (tested). *)

type result = {
  removed : bool array;   (** vertex was eliminated *)
  iterations : int;       (** elimination cycles executed (incl. the final
                              quiet one) *)
  stats : Congest.Network.stats;
}

(** [run view ~max_iterations] executes the protocol over intra-cluster
    edges. [max_iterations] caps the cycles (n is always enough). *)
val run :
  ?exec:Congest.Network.exec -> Cluster_view.t -> max_iterations:int -> result

(** The surviving subgraph contains no 2-star and no 3-double-star. *)
val check : Cluster_view.t -> result -> bool
