(** A distributed expander decomposition running on the CONGEST simulator —
    the constructive counterpart of Theorem 2.1 at this repository's scale.

    The full Chang–Saranurak construction is out of scope (DESIGN.md,
    substitution 1); this module implements a genuinely distributed
    recursive spectral partitioning whose every communication step runs on
    the simulator within the O(log n)-bit budget:

    Each level processes all current clusters in parallel in one phased
    CONGEST execution, with the schedule derived from the round number:
    + BFS from each cluster leader (B rounds, B = depth budget);
    + T distributed power iterations for the cluster's Fiedler vector —
      one neighbor exchange each, then a convergecast/broadcast over the
      BFS tree (2B + 2 rounds) for the deflation and normalization sums;
    + a threshold search over C candidate sweep levels of the spectral
      embedding and C of the BFS-depth embedding (each candidate costs one
      aggregation block), the distributed stand-ins for the centralized
      sweep and BFS cuts;
    + the leader broadcasts the best cut; the cluster splits if its
      conductance is below tau = eps / (2 log2(2m)).

    Levels repeat until no cluster splits. The only centralized glue is
    the relabeling between levels and the separation of vertices the BFS
    could not reach (documented; it exchanges no information the vertices
    lack). Total simulated rounds are reported — experiment E12 compares
    them against the Theorem 2.1 charge and the decomposition quality
    against the centralized oracle. *)

type t = {
  labels : int array;
  k : int;
  inter_edges : int list;
  epsilon : float;
  tau : float;
  levels : int;                 (** levels executed *)
  total_rounds : int;           (** simulated CONGEST rounds, all levels *)
  total_messages : int;
  max_edge_bits : int;          (** peak per-edge bits in any round *)
}

type params = {
  power_iters : int;        (** T, default 60 *)
  candidates : int;         (** C per embedding, default 12 *)
  depth_budget : int;       (** B; 0 means "use the measured diameter" *)
  max_levels : int;         (** default 40 *)
  seed : int;
}

val default_params : params

(** [decompose ?params g ~epsilon].
    @raise Invalid_argument unless [0 < epsilon < 1]. *)
val decompose :
  ?params:params ->
  ?exec:Congest.Network.exec ->
  Sparse_graph.Graph.t -> epsilon:float -> t

(** [verify g t] — inter-cluster budget and measured minimum cluster
    conductance, like {!Spectral.Expander_decomposition.verify}. *)
val verify : Sparse_graph.Graph.t -> t -> bool * float
