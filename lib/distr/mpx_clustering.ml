open Sparse_graph
open Congest

type result = {
  partition : Decomp.Partition.t;
  stats : Network.stats;
}

type state = {
  owner : int;      (* -1 until claimed *)
  fresh : bool;
  start : int;      (* round at which this vertex's own flood starts *)
}

let run ?exec (view : Cluster_view.t) ~beta ~seed =
  if beta <= 0. then invalid_arg "Mpx_clustering.run: beta must be > 0";
  Obs.Span.with_ "distr.mpx_clustering" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let st = Random.State.make [| seed; 15331 |] in
  let delta =
    Array.init n (fun _ ->
        let u = max 1e-12 (Random.State.float st 1.) in
        -.log u /. beta)
  in
  let delta_max = Array.fold_left max 0. delta in
  let start =
    Array.map (fun d -> 1 + int_of_float (ceil (delta_max -. d))) delta
  in
  let horizon = 2 + Array.fold_left max 1 start + n in
  let init (ctx : Network.ctx) =
    { owner = -1; fresh = false; start = start.(ctx.id) }
  in
  let round r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    (* adopt the smallest origin among this round's arrivals *)
    let arrivals = List.map snd inbox in
    let st =
      if st.owner >= 0 then st
      else begin
        let candidates =
          if r >= st.start then v :: arrivals else arrivals
        in
        match List.sort compare candidates with
        | [] -> st
        | o :: _ -> { st with owner = o; fresh = true }
      end
    in
    if st.fresh then
      Network.step
        { st with fresh = false }
        ~send:(List.map (fun w -> (w, st.owner)) intra.(v))
    else if (st.owner >= 0 && r > horizon) || intra.(v) = [] then
      Network.step st ~halt:true
    else if st.owner < 0 && st.start > r then
      (* event-driven: an unclaimed vertex sleeps until a flood reaches it
         or its own delayed start round arrives *)
      Network.step st ~wake_after:(st.start - r)
    else Network.step st
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 1)
      ~init ~round ~max_rounds:horizon
  in
  let labels =
    Array.mapi
      (fun v st -> if st.owner >= 0 then st.owner else v)
      states
  in
  { partition = Decomp.Partition.of_labels g labels; stats }
