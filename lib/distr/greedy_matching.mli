(** Distributed greedy maximal matching in CONGEST (a 1/2-approximation of
    MCM; with weights a baseline for MWM). Randomized proposal rounds: each
    live vertex proposes to one live neighbor (its heaviest incident edge,
    ties by id); mutual or accepted proposals match. *)

type result = {
  mate : int array;   (** matched partner, or -1 *)
  rounds_used : int;
  stats : Congest.Network.stats;
}

(** [run view ?weights ~seed ()] computes a maximal matching over
    intra-cluster edges. With [weights] the greedy prefers locally heavier
    edges (locally-heaviest-edge greedy, a 1/2-approximation for MWM). *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> ?weights:Sparse_graph.Weights.t -> seed:int -> unit ->
  result

(** The matching is valid (symmetric, along intra-cluster edges) and
    maximal. *)
val check : Cluster_view.t -> result -> bool
