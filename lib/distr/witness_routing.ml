open Sparse_graph
open Congest

(* Source-routed store-and-forward execution of pre-planned demand paths
   on the CONGEST simulator: the [route_via_witness] counterpart to
   {!Walk_routing} (lazy random walks) and {!Tree_routing} (BFS-tree
   convergecast). The expander-routing planner (lib/route) turns a demand
   into a concrete vertex path along the witness hierarchy; this module
   only ships the tokens, throttled to the per-edge CONGEST budget, so
   planner and simulator deliver exactly the same multiset of demands.

   Tokens are single ints ([did * stride + pos]); a vertex holding a
   token at position [pos] of its plan forwards it to position [pos + 1],
   parking it in a per-neighbor-slot queue (same reused-scratch shape as
   the fixed walk router) while the edge is saturated. Each edge sends
   one *flight* per round: an int-array batching as many parked tokens
   as the bandwidth budget admits, costing one framing word plus two
   words (demand id, position) per token — cheaper per token than the
   old one-token-per-message wave, so batches drain in fewer rounds.
   Single-token flights still bit-pack into the sharded loop's arena
   payload word via the codec; wider flights ride the boxed spill.
   Deterministic: no RNG, inbox order is the simulator's
   sender-ascending contract, tokens within a flight stay in queue
   order. *)

type result = {
  delivered : (int * int list) list;
      (* per destination vertex: demand ids absorbed, arrival order *)
  undelivered : int;  (* total demands minus deliveries (lost or cut off) *)
  held : int;         (* tokens still parked somewhere when the run ended *)
  last_round : int;   (* round of the final delivery (0 = only self-demands) *)
  rounds_of : int array;  (* per demand: arrival round, or -1 *)
  stats : Network.stats;
}

type state = {
  outq : int Queue.t array;  (* per neighbor slot: parked tokens *)
  mutable absorbed_rev : (int * int) list;
      (* (demand id, arrival round), newest first; shard-private *)
  mutable holding : int;
}

let token_words = 2 (* demand id, path position *)
let flight_hdr_words = 1 (* token count / framing *)

(* flights: ordered token batches, one message per edge per round. A
   one-token flight packs immediate (tokens are non-negative); anything
   wider escapes to the boxed spill. *)
let flight_codec : int array Network.codec =
  {
    pack = (fun fl -> if Array.length fl = 1 then fl.(0) else -1);
    unpack = (fun x -> [| x |]);
  }

(* index of [w] in the sorted CSR row [row], by binary search *)
(* lint: hot *)
let slot_of row w =
  let lo = ref 0 and hi = ref (Array.length row - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if row.(mid) < w then lo := mid + 1 else hi := mid
  done;
  if !hi >= 0 && !lo < Array.length row && row.(!lo) = w then !lo
  else invalid_arg "Witness_routing: plan step is not a graph edge"

let run ?exec ?faults g ~(plans : int array array) ~max_rounds =
  Obs.Span.with_ "distr.witness_routing" @@ fun () ->
  let n = Graph.n g in
  let demands = Array.length plans in
  let stride =
    1 + Array.fold_left (fun acc p -> max acc (Array.length p)) 1 plans
  in
  let adj = Array.init n (fun v -> Array.of_list (Graph.neighbors g v)) in
  (* demands starting at each vertex, ascending demand id *)
  let starts = Array.make n [] in
  for d = demands - 1 downto 0 do
    let p = plans.(d) in
    if Array.length p = 0 then invalid_arg "Witness_routing: empty plan";
    starts.(p.(0)) <- d :: starts.(p.(0))
  done;
  let budget =
    match Network.congest_bandwidth n with
    | Network.Congest b -> b
    | Network.Local -> max_int
  in
  let idb = Bits.id_bits (max n demands) in
  (* tokens per flight: (hdr + token_words * cap) * idb <= budget *)
  let flight_cap =
    max 1 (((budget / idb) - flight_hdr_words) / token_words)
  in
  let flight_bits fl =
    Bits.words (max n demands)
      (flight_hdr_words + (token_words * Array.length fl))
  in
  (* accept a token that reached plan position [pos] at this vertex:
     absorb it at the path's end, otherwise park it toward the next hop *)
  let accept st v tok r =
    let did = tok / stride and pos = tok mod stride in
    let p = plans.(did) in
    if pos = Array.length p - 1 then begin
      st.absorbed_rev <- (did, r) :: st.absorbed_rev;
      st.holding <- st.holding - 1
    end
    else Queue.add tok st.outq.(slot_of adj.(v) p.(pos + 1))
  in
  let init (ctx : Network.ctx) =
    let st =
      {
        outq = Array.init (Array.length adj.(ctx.id)) (fun _ -> Queue.create ());
        absorbed_rev = [];
        holding = 0;
      }
    in
    List.iter
      (fun did ->
        st.holding <- st.holding + 1;
        accept st ctx.id (did * stride) 0)
      starts.(ctx.id);
    st
  in
  let round r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    List.iter
      (fun (_, flight) ->
        Array.iter
          (fun tok ->
            st.holding <- st.holding + 1;
            accept st v tok r)
          flight)
      inbox;
    (* drain each neighbor slot into one flight of up to [flight_cap]
       tokens; ascending slot order (built descending so the send list
       comes out ascending) *)
    let send = ref [] in
    for j = Array.length adj.(v) - 1 downto 0 do
      let q = st.outq.(j) in
      let k = min flight_cap (Queue.length q) in
      if k > 0 then begin
        let fl = Array.make k 0 in
        for idx = 0 to k - 1 do
          fl.(idx) <- Queue.pop q + 1
        done;
        send := (adj.(v).(j), fl) :: !send;
        st.holding <- st.holding - k
      end
    done;
    Network.step st ~send:!send
      ?wake_after:(if st.holding > 0 then Some 1 else None)
  in
  let states, stats =
    Network.run ?exec ?faults g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:flight_bits
      ~codec:flight_codec ~init ~round ~max_rounds
  in
  let rounds_of = Array.make demands (-1) in
  let delivered = ref [] in
  let got = ref 0 in
  let held = ref 0 in
  let last_round = ref 0 in
  Array.iteri
    (fun v st ->
      if st.absorbed_rev <> [] then begin
        let ds =
          List.rev_map
            (fun (did, r) ->
              if rounds_of.(did) < 0 then rounds_of.(did) <- r;
              if r > !last_round then last_round := r;
              did)
            st.absorbed_rev
        in
        got := !got + List.length ds;
        delivered := (v, ds) :: !delivered
      end;
      held := !held + st.holding)
    states;
  {
    delivered = List.rev !delivered;
    undelivered = demands - !got;
    held = !held;
    last_round = !last_round;
    rounds_of;
    stats;
  }

(* every demand delivered exactly once, at its plan's destination *)
let check ~(plans : int array array) result =
  let demands = Array.length plans in
  let seen = Array.make demands false in
  let ok = ref true in
  List.iter
    (fun (v, ds) ->
      List.iter
        (fun d ->
          if d < 0 || d >= demands || seen.(d) then ok := false
          else begin
            seen.(d) <- true;
            let p = plans.(d) in
            if p.(Array.length p - 1) <> v then ok := false
          end)
        ds)
    result.delivered;
  let got = ref 0 in
  Array.iter (fun b -> if b then incr got) seen;
  !ok && !got + result.undelivered = demands
