open Sparse_graph

let split_disconnected g labels hint =
  let n = Graph.n g in
  ignore hint;
  (* union-find over same-label edges: classes = label-restricted components *)
  let uf = Union_find.create n in
  Graph.iter_edges g (fun _ u v ->
      if labels.(u) = labels.(v) then ignore (Union_find.union uf u v));
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let out =
    Array.init n (fun v ->
        let root = Union_find.find uf v in
        match Hashtbl.find_opt remap root with
        | Some l -> l
        | None ->
            let l = !next in
            incr next;
            Hashtbl.add remap root l;
            l)
  in
  (out, !next)
