(** Per-cluster leader election by maximum intra-cluster degree — the
    procedure in the proof of Theorem 2.6.

    Every vertex floods the best [(deg_Gi(u), ID(u))] pair it has seen over
    intra-cluster edges. After [t] rounds, where [t] bounds the cluster
    diameter, all vertices of a cluster agree on the maximum-degree vertex
    (ties broken by larger id), which becomes the leader [v_i*]. Messages
    are two ids wide. *)

type result = {
  leader_of : int array;    (** vertex -> elected leader of its cluster *)
  leader_deg : int array;   (** vertex -> intra-cluster degree of the leader *)
  stats : Congest.Network.stats;
}

(** [run view ~rounds] executes the election for [rounds] rounds in CONGEST
    mode. Use [rounds >= diameter(G[V_i])] for correctness (Theorem 2.6 uses
    [O(phi^-1 log n)]). *)
val run : ?exec:Congest.Network.exec -> Cluster_view.t -> rounds:int -> result

(** Retry-hardened variant for the fault model of {!Congest.Faults}:
    candidate gossip goes through the {!Reliable} ack/retry/backoff
    transport (a dropped announcement retransmits until acked), and the
    self-believed leader floods a per-round heartbeat that doubles as
    gossip. A vertex that stops hearing its current leader's heartbeat
    for [patience] rounds (default 12; use a bound comfortably above the
    cluster diameter) declares it dead, never re-adopts it, and
    re-elects — gossip re-converges on the best live candidate. Runs in
    CONGEST with a [16 log n]-bit budget (heartbeat + retry framing). *)
val run_reliable :
  ?faults:Congest.Faults.t ->
  ?exec:Congest.Network.exec ->
  ?patience:int ->
  Cluster_view.t -> rounds:int -> result

(** [check view result] verifies that within every cluster all vertices
    agree on a leader, the leader is a member, and it attains the maximum
    intra-cluster degree. Returns [true] on success. *)
val check : Cluster_view.t -> result -> bool
