open Sparse_graph
open Congest

type result = {
  parent : int array;
  depth : int array;
  stats : Network.stats;
}

type state = {
  parent : int;
  depth : int;
  announced : bool;
}

let run ?exec (view : Cluster_view.t) ~roots ~rounds =
  Obs.Span.with_ "distr.bfs_tree" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    if roots.(ctx.id) then { parent = ctx.id; depth = 0; announced = false }
    else { parent = -1; depth = -1; announced = false }
  in
  let round r (ctx : Network.ctx) st inbox =
    (* adopt the smallest-id sender as parent if not yet reached *)
    let st =
      if st.parent >= 0 then st
      else
        match inbox with
        | [] -> st
        | (sender, d) :: _ -> { parent = sender; depth = d + 1; announced = false }
    in
    (* event-driven: unreached vertices sleep on their inbox; everyone
       keeps a timer for round [rounds + 1], where the run halts *)
    if r > rounds then Network.step st ~halt:true
    else if st.parent >= 0 && not st.announced then
      Network.step
        { st with announced = true }
        ~send:(List.map (fun w -> (w, st.depth)) intra.(ctx.id))
        ~wake_after:(rounds + 1 - r)
    else Network.step st ~wake_after:(rounds + 1 - r)
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 1)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  {
    parent = Array.map (fun st -> st.parent) states;
    depth = Array.map (fun st -> st.depth) states;
    stats;
  }

(* ------------------------------------------------------------------ *)
(* Retry-hardened variant: instead of a one-shot announcement, every     *)
(* attached vertex heartbeats its current depth to all intra neighbors   *)
(* each round. The per-round refresh is the retransmission (a dropped    *)
(* heartbeat is re-sent next round), re-parenting to any strictly        *)
(* better neighbor converges depths to true BFS distances, and a parent  *)
(* whose heartbeat goes silent for [patience] rounds is presumed         *)
(* crashed: the subtree orphans itself and re-roots onto the live tree.  *)
(* ------------------------------------------------------------------ *)

type hstate = {
  hparent : int;
  hdepth : int;
  last_heard : int;  (* round the parent's heartbeat was last received *)
}

let run_reliable ?faults ?exec ?(patience = 6) (view : Cluster_view.t) ~roots
    ~rounds =
  Obs.Span.with_ "distr.bfs_tree_reliable" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    if roots.(ctx.id) then { hparent = ctx.id; hdepth = 0; last_heard = 0 }
    else { hparent = -1; hdepth = -1; last_heard = 0 }
  in
  let round r (ctx : Network.ctx) st inbox =
    let self = ctx.id in
    let is_root = roots.(self) in
    (* follow the parent's announced depth; note when it was heard *)
    let st =
      if is_root then st
      else
        List.fold_left
          (fun st (sender, d) ->
            if sender = st.hparent then
              { st with hdepth = d + 1; last_heard = r }
            else st)
          st inbox
    in
    (* re-parent to the strictly best offer (min depth, then min id) *)
    let st =
      if is_root then st
      else
        List.fold_left
          (fun st (sender, d) ->
            if d >= 0 && (st.hdepth < 0 || d + 1 < st.hdepth) then
              { hparent = sender; hdepth = d + 1; last_heard = r }
            else st)
          st inbox
    in
    (* crash detection: a silent parent orphans the vertex *)
    let st =
      if
        (not is_root) && st.hparent >= 0
        && r - st.last_heard > patience
      then { st with hparent = -1; hdepth = -1 }
      else st
    in
    let send =
      if st.hdepth >= 0 then List.map (fun w -> (w, st.hdepth)) intra.(self)
      else []
    in
    (* stays Every_round: the heartbeat refresh each round IS the
       retransmission mechanism, so no round is a no-op *)
    Network.step st ~send ~halt:(r > rounds)
  in
  let states, stats =
    Network.run ?faults ?exec g
      ~bandwidth:(Network.congest_bandwidth ~c:16 n)
      ~msg_bits:(fun _ -> Bits.words n 1)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  {
    parent = Array.map (fun st -> st.hparent) states;
    depth = Array.map (fun st -> st.hdepth) states;
    stats;
  }

let check (view : Cluster_view.t) (result : result) ~roots =
  let g = view.graph in
  let n = Graph.n g in
  (* centralized multi-source BFS restricted to intra-cluster edges *)
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if roots.(v) then begin
      dist.(v) <- 0;
      Queue.add v queue
    end
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Cluster_view.intra_neighbors view v)
  done;
  let ok = ref true in
  for v = 0 to n - 1 do
    if result.depth.(v) <> dist.(v) then ok := false;
    if result.parent.(v) >= 0 && result.parent.(v) <> v then begin
      (* parent must be an intra-cluster neighbor one level up *)
      if view.labels.(result.parent.(v)) <> view.labels.(v) then ok := false;
      if not (Graph.mem_edge g v result.parent.(v)) then ok := false;
      if result.depth.(result.parent.(v)) <> result.depth.(v) - 1 then
        ok := false
    end
  done;
  !ok
