open Sparse_graph
open Congest

type result = {
  mate : int array;
  rounds_used : int;
  stats : Network.stats;
}

type msg = Point | Taken

type state = {
  mate : int;
  live_neighbors : (int * (int * int)) list;
      (* neighbor -> (edge weight, edge id): the symmetric preference key *)
  pointed_to : int;
}

(* Locally-heaviest-edge matching (Preis-style): every unmatched vertex
   points along its best live edge by the symmetric key (weight, edge id);
   an edge joins the matching when both endpoints point at each other. The
   globally best live edge is mutual, so every phase makes progress and the
   matching is maximal when no live edge remains. Two rounds per phase. *)
let run ?exec (view : Cluster_view.t) ?weights ~seed () =
  Obs.Span.with_ "distr.greedy_matching" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  ignore seed;
  let key v w =
    let e = Graph.find_edge g v w in
    let wt = match weights with None -> 1 | Some ws -> Weights.get ws e in
    (wt, e)
  in
  let intra =
    Array.init n (fun v ->
        List.map (fun w -> (w, key v w)) (Cluster_view.intra_neighbors view v))
  in
  let best live =
    List.fold_left
      (fun acc (w, k) ->
        match acc with
        | None -> Some (w, k)
        | Some (_, bk) -> if k > bk then Some (w, k) else acc)
      None live
  in
  let init (ctx : Network.ctx) =
    { mate = -1; live_neighbors = intra.(ctx.id); pointed_to = -1 }
  in
  (* Stays Every_round: an unmatched vertex re-points at its best live
     neighbor on every odd round whether or not anything arrived, so no
     round is a no-op and event-driven scheduling has nothing to skip. *)
  let round r (_ctx : Network.ctx) st inbox =
    if st.mate >= 0 then Network.step st ~halt:true
    else begin
      let taken =
        List.filter_map (function s, Taken -> Some s | _ -> None) inbox
      in
      let live =
        List.filter (fun (w, _) -> not (List.mem w taken)) st.live_neighbors
      in
      let st = { st with live_neighbors = live } in
      if r mod 2 = 1 then begin
        match best live with
        | None -> Network.step st ~halt:true
        | Some (w, _) ->
            let st = { st with pointed_to = w } in
            Network.step st ~send:[ (w, Point) ]
      end
      else begin
        let pointers =
          List.filter_map (function s, Point -> Some s | _ -> None) inbox
        in
        if st.pointed_to >= 0 && List.mem st.pointed_to pointers then begin
          let st = { st with mate = st.pointed_to } in
          let send =
            List.filter_map
              (fun (w, _) -> if w <> st.mate then Some (w, Taken) else None)
              st.live_neighbors
          in
          Network.step st ~send
        end
        else Network.step st
      end
    end
  in
  let max_rounds = (4 * n) + 8 in
  let states, stats =
    Network.run ?exec g
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> 2)
      ~init ~round ~max_rounds
  in
  {
    mate = Array.map (fun st -> st.mate) states;
    rounds_used = stats.Network.last_traffic_round;
    stats;
  }

let check (view : Cluster_view.t) (result : result) =
  let g = view.graph in
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    let m = result.mate.(v) in
    if m >= 0 then begin
      if result.mate.(m) <> v then ok := false;
      if not (Graph.mem_edge g v m) then ok := false;
      if view.labels.(v) <> view.labels.(m) then ok := false
    end
  done;
  (* maximality over intra-cluster edges *)
  Graph.iter_edges g (fun _ u v ->
      if
        view.labels.(u) = view.labels.(v)
        && result.mate.(u) < 0 && result.mate.(v) < 0
      then ok := false);
  !ok
