(** Centralized relabeling glue shared by the distributed decomposition: a
    label class whose induced subgraph is disconnected is split into one
    label per connected component (no information a vertex could not
    compute with one intra-cluster BFS). *)

(** [split_disconnected g labels hint] returns the refined labels
    (renumbered to [0 .. k-1]) and [k]. [hint] is ignored except as a
    capacity hint. *)
val split_disconnected :
  Sparse_graph.Graph.t -> int array -> int -> int array * int
