(** Deterministic token routing to the cluster leader — the working
    counterpart of Lemma 2.5 at this repository's scale.

    The paper's deterministic routing goes through the almost-maximal-flow
    machinery of Chang–Saranurak [20, Lemma D.10]; here tokens are instead
    pipelined up a BFS tree rooted at the leader, each edge forwarding at
    most [capacity = bandwidth / token-size] tokens per round. Fully
    deterministic and bandwidth-bounded; rounds are O(depth + max tokens
    through an edge / capacity). The leader's high degree (Lemma 2.3) is
    what keeps the root bottleneck small: the tokens split over
    deg(leader) incoming tree edges. Experiment E9's deterministic column
    compares this against the randomized walks of Lemma 2.4. *)

type result = {
  delivered : (int * Walk_routing.token list) list;
      (** per leader: tokens it received (same token type as
          {!Walk_routing} so the two routers are interchangeable) *)
  undelivered : int;
  stats : Congest.Network.stats;
}

(** [run view ~leader_of ~tokens_of ~max_rounds] deterministically routes
    [tokens_of v] tokens from every vertex to its cluster leader. Vertices
    whose cluster is disconnected from its leader keep their tokens
    (counted in [undelivered]). *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t ->
  leader_of:int array ->
  tokens_of:(int -> int) ->
  max_rounds:int ->
  result

(** Fraction of tokens delivered. *)
val delivery_rate : Cluster_view.t -> tokens_of:(int -> int) -> result -> float
