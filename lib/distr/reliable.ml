type 'msg packet =
  | Payload of { seq : int; body : 'msg }
  | Ack of { seq : int }

type 'msg entry = {
  dst : int;
  seq : int;
  body : 'msg;
  next_retry : int;  (* round at which the next transmission is due;
                        0 = never transmitted, due at the next flush *)
  backoff : int;
}

type 'msg t = {
  next_seq : int;
  queue : 'msg entry list;  (* send order, oldest first *)
  seen : (int * int, unit) Hashtbl.t;  (* (sender, seq) already delivered *)
}

let create () = { next_seq = 0; queue = []; seen = Hashtbl.create 16 }

let packet_bits ~word ~body = function
  | Payload p -> 1 + word + body p.body
  | Ack _ -> 1 + word

let send st ~dst body =
  {
    st with
    next_seq = st.next_seq + 1;
    queue =
      st.queue
      @ [ { dst; seq = st.next_seq; body; next_retry = 0; backoff = 2 } ];
  }

let cancel st ~dst = { st with queue = List.filter (fun e -> e.dst <> dst) st.queue }

let deliver st inbox =
  let fresh = ref [] in
  let acks = ref [] in
  let queue = ref st.queue in
  List.iter
    (fun (src, packet) ->
      match packet with
      | Payload { seq; body } ->
          (* ack every receipt: the previous ack may have been dropped *)
          acks := (src, Ack { seq }) :: !acks;
          if not (Hashtbl.mem st.seen (src, seq)) then begin
            Hashtbl.add st.seen (src, seq) ();
            fresh := (src, body) :: !fresh
          end
      | Ack { seq } ->
          queue := List.filter (fun e -> not (e.dst = src && e.seq = seq)) !queue)
    inbox;
  ({ st with queue = !queue }, List.rev !fresh, List.rev !acks)

let backoff_cap = 8

let flush ?max_per_dst st ~now =
  let sent_to : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let under_cap dst =
    match max_per_dst with
    | None -> true
    | Some cap ->
        (match Hashtbl.find_opt sent_to dst with
        | Some k -> k < cap
        | None -> true)
  in
  let out = ref [] in
  let queue =
    List.map
      (fun e ->
        if e.next_retry <= now && under_cap e.dst then begin
          Hashtbl.replace sent_to e.dst
            (1 + Option.value ~default:0 (Hashtbl.find_opt sent_to e.dst));
          out := (e.dst, Payload { seq = e.seq; body = e.body }) :: !out;
          {
            e with
            next_retry = now + e.backoff;
            backoff = min (2 * e.backoff) backoff_cap;
          }
        end
        else e)
      st.queue
  in
  ({ st with queue }, List.rev !out)

let idle st = st.queue = []

let pending st = List.length st.queue
