open Sparse_graph
open Congest

type token = {
  origin : int;
  seq : int;
}

type result = {
  delivered : (int * token list) list;
  undelivered : int;
  stats : Network.stats;
}

(* a token in flight, held by some vertex *)
type flight = {
  tok : token;
  steps : int;                (* lazy steps taken so far *)
  pending : int option;       (* sampled move not yet transmitted *)
}

type state = {
  rng : Random.State.t;
  queue : flight list;
  absorbed : token list;      (* tokens delivered to this vertex (leader) *)
  dropped : int;
}

let token_words = 3 (* origin, seq, step counter *)

let run ?exec (view : Cluster_view.t) ~leader_of ~tokens_of ~walk_len ~seed
    ~max_rounds =
  Obs.Span.with_ "distr.walk_routing" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra =
    Array.init n (fun v -> Array.of_list (Cluster_view.intra_neighbors view v))
  in
  let budget =
    match Network.congest_bandwidth n with
    | Network.Congest b -> b
    | Network.Local -> max_int
  in
  let token_bits = Bits.words n token_words in
  let capacity = max 1 (budget / token_bits) in
  let init (ctx : Network.ctx) =
    let rng = Random.State.make [| seed; ctx.id; 7919 |] in
    let own =
      List.init (tokens_of ctx.id) (fun seq ->
          { tok = { origin = ctx.id; seq }; steps = 0; pending = None })
    in
    if leader_of.(ctx.id) = ctx.id then
      (* the leader's own tokens are already delivered *)
      { rng; queue = []; absorbed = List.map (fun f -> f.tok) own; dropped = 0 }
    else { rng; queue = own; absorbed = []; dropped = 0 }
  in
  let round _r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    (* receive tokens; leader absorbs *)
    let incoming = List.map snd inbox in
    let st =
      if leader_of.(v) = v then
        { st with absorbed = List.map (fun f -> f.tok) incoming @ st.absorbed }
      else { st with queue = st.queue @ incoming }
    in
    (* advance each queued token by sampling a lazy step if none pending *)
    let advance (fl : flight) (keep, drop) =
      match fl.pending with
      | Some _ -> (fl :: keep, drop)
      | None ->
          if fl.steps >= walk_len then (keep, drop + 1)
          else begin
            let deg = Array.length intra.(v) in
            let stay = deg = 0 || Random.State.bool st.rng in
            if stay then
              (* lazy self-loop: a step with no transmission *)
              ({ fl with steps = fl.steps + 1 } :: keep, drop)
            else begin
              let w = intra.(v).(Random.State.int st.rng deg) in
              ({ fl with steps = fl.steps + 1; pending = Some w } :: keep, drop)
            end
          end
    in
    let queue, newly_dropped = List.fold_right advance st.queue ([], 0) in
    (* transmit pending tokens, at most [capacity] per neighbor per round *)
    let sent_count = Hashtbl.create 4 in
    let send = ref [] in
    let still = ref [] in
    List.iter
      (fun fl ->
        match fl.pending with
        | Some w ->
            let c = try Hashtbl.find sent_count w with Not_found -> 0 in
            if c < capacity then begin
              Hashtbl.replace sent_count w (c + 1);
              send := (w, { fl with pending = None }) :: !send
            end
            else still := fl :: !still
        | None ->
            (* stayed this round; keep walking next round *)
            still := fl :: !still)
      queue;
    let st =
      { st with queue = List.rev !still; dropped = st.dropped + newly_dropped }
    in
    (* event-driven: a vertex holding tokens keeps walking (and drawing
       from its RNG) every round; an empty queue sleeps until a token
       arrives *)
    Network.step st ~send:!send
      ?wake_after:(if st.queue <> [] then Some 1 else None)
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> token_bits)
      ~init ~round ~max_rounds
  in
  let delivered = ref [] in
  let undelivered = ref 0 in
  Array.iteri
    (fun v st ->
      if st.absorbed <> [] then delivered := (v, st.absorbed) :: !delivered;
      undelivered := !undelivered + st.dropped + List.length st.queue)
    states;
  { delivered = List.rev !delivered; undelivered = !undelivered; stats }

let total_tokens (view : Cluster_view.t) ~tokens_of =
  let total = ref 0 in
  for v = 0 to Graph.n view.graph - 1 do
    total := !total + tokens_of v
  done;
  !total

let delivery_rate view ~tokens_of result =
  let total = total_tokens view ~tokens_of in
  if total = 0 then 1.
  else begin
    let got =
      List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0
        result.delivered
    in
    float_of_int got /. float_of_int total
  end

let check (view : Cluster_view.t) ~leader_of ~tokens_of result =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun (leader, toks) ->
      List.iter
        (fun t ->
          if Hashtbl.mem seen t then ok := false;
          Hashtbl.add seen t ();
          if leader_of.(t.origin) <> leader then ok := false;
          if t.seq < 0 || t.seq >= tokens_of t.origin then ok := false)
        toks)
    result.delivered;
  let got = Hashtbl.length seen in
  !ok && got + result.undelivered = total_tokens view ~tokens_of
