open Sparse_graph
open Congest

type token = {
  origin : int;
  seq : int;
}

type result = {
  delivered : (int * token list) list;
  undelivered : int;
  expired : int;
  held : int;
  stats : Network.stats;
}

(* a token in flight, held by some vertex; steps is mutated in place so
   the hot advance loop allocates nothing *)
type flight = {
  tok : token;
  mutable steps : int;  (* lazy steps taken so far *)
}

(* Per-vertex state. [active] holds tokens that walk this round, oldest
   first; receiving is Queue.add per incoming token, O(|incoming|) — the
   old list-append merge re-walked the whole queue every round, O(q^2)
   total on a hot-spot vertex. [waiting.(j)] parks tokens that sampled a
   move to neighbor slot j (index into the cached intra row) until edge
   capacity lets them transmit; the array replaces the per-round
   [Hashtbl.create 4] send counter and is allocated once at init. *)
type state = {
  rng : Random.State.t;
  active : flight Queue.t;
  waiting : flight Queue.t array;
  mutable absorbed_rev : token list;  (* newest first; reversed on extract *)
  mutable expired : int;              (* walk budget exhausted here *)
  mutable holding : int;              (* tokens in [active] + [waiting] *)
}

let token_words = 3 (* origin, seq, step counter *)

(* one walk step for every token currently active: pop, expire or sample
   (stay -> back of [active], move -> the sampled neighbor's waiting
   queue). Processes exactly [Queue.length active] tokens, so re-queued
   stays are not double-stepped. Returns the number expired. *)
(* lint: hot *)
let advance_active st row walk_len =
  let deg = Array.length row in
  let expired = ref 0 in
  let remaining = ref (Queue.length st.active) in
  while !remaining > 0 do
    decr remaining;
    let fl = Queue.pop st.active in
    if fl.steps >= walk_len then incr expired
    else begin
      fl.steps <- fl.steps + 1;
      let stay = deg = 0 || Random.State.bool st.rng in
      if stay then Queue.add fl st.active
      else Queue.add fl st.waiting.(Random.State.int st.rng deg)
    end
  done;
  !expired

let run ?exec ?faults (view : Cluster_view.t) ~leader_of ~tokens_of ~walk_len ~seed
    ~max_rounds =
  Obs.Span.with_ "distr.walk_routing" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = view.Cluster_view.intra in
  let budget =
    match Network.congest_bandwidth n with
    | Network.Congest b -> b
    | Network.Local -> max_int
  in
  let token_bits = Bits.words n token_words in
  let capacity = max 1 (budget / token_bits) in
  let total = ref 0 in
  for v = 0 to n - 1 do
    total := !total + tokens_of v
  done;
  let total = !total in
  let init (ctx : Network.ctx) =
    let rng = Random.State.make [| seed; ctx.id; 7919 |] in
    let deg = Array.length intra.(ctx.id) in
    let st =
      {
        rng;
        active = Queue.create ();
        waiting = Array.init deg (fun _ -> Queue.create ());
        absorbed_rev = [];
        expired = 0;
        holding = 0;
      }
    in
    let k = tokens_of ctx.id in
    if leader_of.(ctx.id) = ctx.id then
      (* the leader's own tokens are already delivered; prepended in
         ascending seq so the final reversal lists them in seq order *)
      for seq = 0 to k - 1 do
        st.absorbed_rev <- { origin = ctx.id; seq } :: st.absorbed_rev
      done
    else
      for seq = 0 to k - 1 do
        Queue.add { tok = { origin = ctx.id; seq }; steps = 0 } st.active;
        st.holding <- st.holding + 1
      done;
    st
  in
  let round _r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    (* receive tokens in inbox (sender-ascending) order; leader absorbs *)
    if leader_of.(v) = v then
      List.iter
        (fun (_, fl) -> st.absorbed_rev <- fl.tok :: st.absorbed_rev)
        inbox
    else
      List.iter
        (fun (_, fl) ->
          Queue.add fl st.active;
          st.holding <- st.holding + 1)
        inbox;
    (* advance each active token by one sampled lazy step *)
    let expired = advance_active st intra.(v) walk_len in
    st.expired <- st.expired + expired;
    st.holding <- st.holding - expired;
    (* transmit waiting tokens, at most [capacity] per neighbor per round;
       the send list itself is the simulator's API boundary and the only
       per-round allocation left. Built by descending slot so the list
       comes out ascending. *)
    let send = ref [] in
    for j = Array.length intra.(v) - 1 downto 0 do
      let q = st.waiting.(j) in
      let k = min capacity (Queue.length q) in
      for _ = 1 to k do
        send := (intra.(v).(j), Queue.pop q) :: !send
      done;
      st.holding <- st.holding - k
    done;
    (* event-driven: a vertex holding tokens keeps walking (and drawing
       from its RNG) every round; an empty vertex sleeps until a token
       arrives *)
    Network.step st ~send:!send
      ?wake_after:(if st.holding > 0 then Some 1 else None)
  in
  let states, stats =
    Network.run ?exec ?faults g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> token_bits)
      ~init ~round ~max_rounds
  in
  let delivered = ref [] in
  let got = ref 0 in
  let expired = ref 0 in
  let held = ref 0 in
  Array.iteri
    (fun v st ->
      if st.absorbed_rev <> [] then begin
        let toks = List.rev st.absorbed_rev in
        got := !got + List.length toks;
        delivered := (v, toks) :: !delivered
      end;
      expired := !expired + st.expired;
      held := !held + st.holding)
    states;
  {
    delivered = List.rev !delivered;
    (* counted against the originated total, so tokens lost to faults or
       in flight at the halting round are still accounted for *)
    undelivered = total - !got;
    expired = !expired;
    held = !held;
    stats;
  }

let total_tokens (view : Cluster_view.t) ~tokens_of =
  let total = ref 0 in
  for v = 0 to Graph.n view.graph - 1 do
    total := !total + tokens_of v
  done;
  !total

let delivery_rate view ~tokens_of result =
  let total = total_tokens view ~tokens_of in
  if total = 0 then 1.
  else begin
    let got =
      List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0
        result.delivered
    in
    float_of_int got /. float_of_int total
  end

let check (view : Cluster_view.t) ~leader_of ~tokens_of result =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun (leader, toks) ->
      List.iter
        (fun t ->
          if Hashtbl.mem seen t then ok := false;
          Hashtbl.add seen t ();
          if leader_of.(t.origin) <> leader then ok := false;
          if t.seq < 0 || t.seq >= tokens_of t.origin then ok := false)
        toks)
    result.delivered;
  let got = Hashtbl.length seen in
  !ok && got + result.undelivered = total_tokens view ~tokens_of
