(** Shared input for per-cluster CONGEST algorithms.

    After the clustering step (Theorem 2.6), every vertex knows its own
    cluster id, and — after one round of exchange — the cluster ids of its
    neighbors. All algorithms in this library communicate only along
    intra-cluster edges of the cluster view. *)

type t = {
  graph : Sparse_graph.Graph.t;
  labels : int array;  (** vertex -> cluster id *)
  intra : int array array;
      (** cached CSR-aligned intra-cluster adjacency: [intra.(v)] lists
          [v]'s same-cluster neighbors in ascending order. Built once by
          {!whole} / {!of_labels}; treat as read-only. *)
}

(** View where the whole graph is one cluster. *)
val whole : Sparse_graph.Graph.t -> t

(** View induced by an explicit labelling. *)
val of_labels : Sparse_graph.Graph.t -> int array -> t

(** Neighbors of [v] inside its own cluster (sorted). Allocates a fresh
    list per call — hot paths should index [t.intra] directly. *)
val intra_neighbors : t -> int -> int list

(** Degree of [v] counting only intra-cluster edges: [deg_Gi(v)]. *)
val intra_degree : t -> int -> int

(** Vertices of the cluster containing [v]. *)
val members : t -> int -> int list

(** Number of intra-cluster edges of [v]'s cluster: [|E_i|]. *)
val cluster_edges : t -> int -> int
