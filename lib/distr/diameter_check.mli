(** Failed-execution detection for the clustering step (Section 2.3).

    Given a bound [b] on the cluster diameter of a successful execution,
    every vertex computes the maximum id within distance [b] inside its
    cluster, compares with its intra-cluster neighbors, marks itself [*] on
    disagreement, and finally propagates marks for [2b + 1] rounds. The
    paper shows that afterwards either all vertices of a cluster are marked
    (diameter > 2b, certainly failed) or none is (diameter <= b passes
    unmarked; in between, the outcome is uniform per cluster either way). *)

type result = {
  marked : bool array;  (** vertex is marked [*]: its cluster failed *)
  stats : Congest.Network.stats;
}

(** [run view ~b] executes the three phases ([b] + 1 + [2b+1] rounds). *)
val run : ?exec:Congest.Network.exec -> Cluster_view.t -> b:int -> result

(** All members of each cluster agree on the mark, clusters of diameter
    at most [b] are unmarked, and clusters of diameter at least [2b + 1]
    are marked. *)
val check : Cluster_view.t -> result -> b:int -> bool
