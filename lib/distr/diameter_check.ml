open Sparse_graph
open Congest

type result = {
  marked : bool array;
  stats : Network.stats;
}

type msg = Max of int | Mark

type state = {
  ball_max : int;
  neighbor_disagrees : bool;
  marked : bool;
  mark_fresh : bool;
}

let run ?exec (view : Cluster_view.t) ~b =
  Obs.Span.with_ "distr.diameter_check" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  (* rounds 1..b: flood max id; round b+1: exchange final ball max; round
     b+2: evaluate disagreement and start mark flood; rounds up to
     b+2+(2b+1): propagate marks *)
  let total_rounds = b + 2 + ((2 * b) + 1) in
  let init (ctx : Network.ctx) =
    {
      ball_max = ctx.id;
      neighbor_disagrees = false;
      marked = false;
      mark_fresh = false;
    }
  in
  let round r (ctx : Network.ctx) st inbox =
    let maxima =
      List.filter_map (function _, Max x -> Some x | _, Mark -> None) inbox
    in
    let heard_mark = List.exists (function _, Mark -> true | _ -> false) inbox in
    if r <= b then begin
      (* still growing the ball: fold in maxima, re-flood current max *)
      let bm = List.fold_left max st.ball_max maxima in
      let st = { st with ball_max = bm } in
      (* the ball-growing phase re-floods every round: tick via wake_after *)
      Network.step st
        ~send:(List.map (fun w -> (w, Max bm)) intra.(ctx.id))
        ~wake_after:1
    end
    else if r = b + 1 then begin
      (* maxima from round b complete the ball; exchange the final value *)
      let bm = List.fold_left max st.ball_max maxima in
      let st = { st with ball_max = bm } in
      Network.step st
        ~send:(List.map (fun w -> (w, Max bm)) intra.(ctx.id))
        ~wake_after:1
    end
    else if r = b + 2 then begin
      (* inbox now holds neighbors' final ball maxima *)
      let disagree = List.exists (fun x -> x <> st.ball_max) maxima in
      let marked = disagree in
      let st = { st with neighbor_disagrees = disagree; marked;
                 mark_fresh = marked } in
      let send =
        if marked then List.map (fun w -> (w, Mark)) intra.(ctx.id) else []
      in
      Network.step st ~send ~wake_after:(total_rounds + 1 - r)
    end
    else if r <= total_rounds then begin
      let newly = heard_mark && not st.marked in
      let st = { st with marked = st.marked || heard_mark;
                 mark_fresh = newly } in
      let send =
        if newly then List.map (fun w -> (w, Mark)) intra.(ctx.id) else []
      in
      (* mark propagation is message-driven; keep the halt-round timer *)
      Network.step st ~send ~wake_after:(total_rounds + 1 - r)
    end
    else
      Network.step { st with marked = st.marked || heard_mark } ~halt:true
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(function Max _ -> Bits.words n 1 | Mark -> 1)
      ~init ~round ~max_rounds:(total_rounds + 1)
  in
  { marked = Array.map (fun st -> st.marked) states; stats }

let check (view : Cluster_view.t) (result : result) ~b =
  let g = view.graph in
  let n = Graph.n g in
  (* cluster diameters via centralized BFS over intra-cluster edges *)
  let clusters = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let l = view.labels.(v) in
    let cur = try Hashtbl.find clusters l with Not_found -> [] in
    Hashtbl.replace clusters l (v :: cur)
  done;
  let intra_bfs src =
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
        (Cluster_view.intra_neighbors view v)
    done;
    dist
  in
  let ok = ref true in
  Hashtbl.iter
    (fun _ vs ->
      let diam =
        List.fold_left
          (fun acc v ->
            let d = intra_bfs v in
            List.fold_left
              (fun acc u -> if d.(u) > acc then d.(u) else acc)
              acc vs)
          0 vs
      in
      if diam <= b then
        List.iter (fun v -> if result.marked.(v) then ok := false) vs
      else if diam >= (2 * b) + 1 then
        List.iter (fun v -> if not result.marked.(v) then ok := false) vs)
    clusters;
  !ok
