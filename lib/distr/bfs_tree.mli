(** Distributed BFS tree construction inside each cluster, rooted at a
    designated vertex per cluster (typically the elected leader). Standard
    flooding: one id per message. *)

type result = {
  parent : int array;  (** parent in the BFS tree; root's parent is itself;
                           unreached vertices (no root in their cluster)
                           keep [-1] *)
  depth : int array;   (** hop distance to the root, [-1] if unreached *)
  stats : Congest.Network.stats;
}

(** [run view ~roots ~rounds] floods from every vertex [v] with
    [roots.(v) = true], along intra-cluster edges, for [rounds] rounds. *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> roots:bool array -> rounds:int -> result

(** Retry-hardened variant for the fault model of {!Congest.Faults}.
    Attached vertices heartbeat their depth to all intra-cluster
    neighbors every round (the per-round refresh is the retransmission),
    vertices re-parent to any strictly better offer — converging depths
    to true BFS distances of the live subgraph — and a vertex whose
    parent stays silent for [patience] consecutive rounds (default 6)
    presumes it crashed, orphans itself, and re-roots onto the live
    tree. Needs [rounds] slack over the diameter proportional to the
    drop rate and to [patience] after a crash. *)
val run_reliable :
  ?faults:Congest.Faults.t ->
  ?exec:Congest.Network.exec ->
  ?patience:int ->
  Cluster_view.t -> roots:bool array -> rounds:int -> result

(** [check view result ~roots] verifies parent pointers form shortest-path
    trees: depths match a centralized BFS from the roots inside each
    cluster. *)
val check : Cluster_view.t -> result -> roots:bool array -> bool
