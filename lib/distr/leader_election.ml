open Sparse_graph
open Congest

type result = {
  leader_of : int array;
  leader_deg : int array;
  stats : Network.stats;
}

(* state: best (deg, id) pair seen; changed flag controls re-broadcast *)
type state = {
  best_deg : int;
  best_id : int;
  changed : bool;
}

let better (d1, i1) (d2, i2) = d1 > d2 || (d1 = d2 && i1 > i2)

let run (view : Cluster_view.t) ~rounds =
  Obs.Span.with_ "distr.leader_election" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    { best_deg = List.length intra.(ctx.id); best_id = ctx.id; changed = true }
  in
  let round r (ctx : Network.ctx) st inbox =
    let best =
      List.fold_left
        (fun (d, i) (_, (d', i')) -> if better (d', i') (d, i) then (d', i') else (d, i))
        (st.best_deg, st.best_id) inbox
    in
    let bd, bi = best in
    let changed = bd <> st.best_deg || bi <> st.best_id || r = 1 in
    let st' = { best_deg = bd; best_id = bi; changed } in
    if r > rounds then { Network.state = st'; send = []; halt = true }
    else begin
      let send =
        if changed then List.map (fun w -> (w, (bd, bi))) intra.(ctx.id)
        else []
      in
      { Network.state = st'; send; halt = false }
    end
  in
  let states, stats =
    Network.run g
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 2)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  {
    leader_of = Array.map (fun st -> st.best_id) states;
    leader_deg = Array.map (fun st -> st.best_deg) states;
    stats;
  }

let check (view : Cluster_view.t) result =
  let g = view.graph in
  let n = Graph.n g in
  let ok = ref true in
  (* group vertices by cluster *)
  let tbl = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let l = view.labels.(v) in
    let cur = try Hashtbl.find tbl l with Not_found -> [] in
    Hashtbl.replace tbl l (v :: cur)
  done;
  Hashtbl.iter
    (fun _ vs ->
      match vs with
      | [] -> ()
      | v0 :: _ ->
          let leader = result.leader_of.(v0) in
          (* agreement *)
          List.iter
            (fun v -> if result.leader_of.(v) <> leader then ok := false)
            vs;
          (* membership *)
          if not (List.mem leader vs) then ok := false;
          (* maximality, ties to larger id *)
          let ld = Cluster_view.intra_degree view leader in
          List.iter
            (fun v ->
              let d = Cluster_view.intra_degree view v in
              if d > ld || (d = ld && v > leader) then ok := false)
            vs)
    tbl;
  !ok
