open Sparse_graph
open Congest

type result = {
  leader_of : int array;
  leader_deg : int array;
  stats : Network.stats;
}

(* state: best (deg, id) pair seen; changed flag controls re-broadcast *)
type state = {
  best_deg : int;
  best_id : int;
  changed : bool;
}

let better (d1, i1) (d2, i2) = d1 > d2 || (d1 = d2 && i1 > i2)

let run ?exec (view : Cluster_view.t) ~rounds =
  Obs.Span.with_ "distr.leader_election" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    { best_deg = List.length intra.(ctx.id); best_id = ctx.id; changed = true }
  in
  let round r (ctx : Network.ctx) st inbox =
    let best =
      List.fold_left
        (fun (d, i) (_, (d', i')) -> if better (d', i') (d, i) then (d', i') else (d, i))
        (st.best_deg, st.best_id) inbox
    in
    let bd, bi = best in
    let changed = bd <> st.best_deg || bi <> st.best_id || r = 1 in
    let st' = { best_deg = bd; best_id = bi; changed } in
    (* event-driven: a vertex whose belief is stable sleeps on its inbox;
       everyone keeps a timer for round [rounds + 1], where the run halts *)
    if r > rounds then Network.step st' ~halt:true
    else begin
      let send =
        if changed then List.map (fun w -> (w, (bd, bi))) intra.(ctx.id)
        else []
      in
      Network.step st' ~send ~wake_after:(rounds + 1 - r)
    end
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 2)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  {
    leader_of = Array.map (fun st -> st.best_id) states;
    leader_deg = Array.map (fun st -> st.best_deg) states;
    stats;
  }

(* ------------------------------------------------------------------ *)
(* Retry-hardened variant: candidate gossip goes through the Reliable    *)
(* ack/retry transport (a dropped announcement retransmits until         *)
(* acked), and the current leader floods a per-round heartbeat that      *)
(* doubles as gossip. A vertex that stops hearing its leader's           *)
(* heartbeat for [patience] rounds declares it dead, never re-adopts     *)
(* it, and re-elects: gossip re-converges on the best live candidate.    *)
(* ------------------------------------------------------------------ *)

type rmsg =
  | Hb of int * int * int  (* candidate deg, id, heartbeat round *)
  | Pkt of (int * int) Reliable.packet

type estate = {
  ebest_deg : int;
  ebest_id : int;
  dead : int list;  (* evicted candidates, never re-adopted *)
  erel : (int * int) Reliable.t;
  eheard : int;  (* round the current best's heartbeat was last heard *)
  forwarded : int;  (* newest heartbeat round already forwarded *)
}

let run_reliable ?faults ?exec ?(patience = 12) (view : Cluster_view.t) ~rounds =
  Obs.Span.with_ "distr.leader_election_reliable" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    {
      ebest_deg = List.length intra.(ctx.id);
      ebest_id = ctx.id;
      dead = [];
      erel = Reliable.create ();
      eheard = 0;
      forwarded = 0;
    }
  in
  let gossip_all st self (deg, id) =
    List.fold_left
      (fun rel dst -> Reliable.send (Reliable.cancel rel ~dst) ~dst (deg, id))
      st.erel intra.(self)
  in
  let round r (ctx : Network.ctx) st inbox =
    let self = ctx.id in
    let hbs = List.filter_map (function s, Hb (d, i, h) -> Some (s, (d, i, h)) | _ -> None) inbox in
    let pkts = List.filter_map (function s, Pkt p -> Some (s, p) | _ -> None) inbox in
    let erel, fresh, acks = Reliable.deliver st.erel pkts in
    let st = { st with erel } in
    (* every candidate sighting this round: reliable gossip + heartbeats *)
    let candidates =
      List.map snd fresh @ List.map (fun (_, (d, i, _)) -> (d, i)) hbs
    in
    let best =
      List.fold_left
        (fun (d, i) (d', i') ->
          if (not (List.mem i' st.dead)) && better (d', i') (d, i) then
            (d', i')
          else (d, i))
        (st.ebest_deg, st.ebest_id)
        candidates
    in
    let bd, bi = best in
    let changed = bd <> st.ebest_deg || bi <> st.ebest_id in
    (* heartbeat bookkeeping for the (possibly new) best *)
    let heard_hb =
      List.fold_left
        (fun acc (_, (_, i, h)) -> if i = bi then max acc h else acc)
        (-1) hbs
    in
    let st =
      {
        st with
        ebest_deg = bd;
        ebest_id = bi;
        eheard = (if changed || heard_hb >= 0 then r else st.eheard);
      }
    in
    (* eviction: the believed leader went silent — declare it dead,
       fall back to self and re-gossip; gossip re-elects the best
       survivor *)
    let st =
      if st.ebest_id <> self && r - st.eheard > patience then
        let my = (List.length intra.(self), self) in
        {
          st with
          ebest_deg = fst my;
          ebest_id = snd my;
          dead = st.ebest_id :: st.dead;
          eheard = r;
          forwarded = 0;
        }
      else st
    in
    (* announce a changed belief through the reliable transport *)
    let st =
      if changed || r = 1 then
        { st with erel = gossip_all st self (st.ebest_deg, st.ebest_id) }
      else st
    in
    (* heartbeats: the self-believed leader originates one every round;
       followers forward each newly seen heartbeat once (flood) *)
    let hb_out, st =
      if st.ebest_id = self then
        (List.map (fun w -> (w, Hb (st.ebest_deg, self, r))) intra.(self), st)
      else begin
        let newest =
          List.fold_left
            (fun acc (_, (_, i, h)) -> if i = st.ebest_id then max acc h else acc)
            (-1) hbs
        in
        if newest > st.forwarded then
          ( List.map
              (fun w -> (w, Hb (st.ebest_deg, st.ebest_id, newest)))
              intra.(self),
            { st with forwarded = newest } )
        else ([], st)
      end
    in
    let erel, out = Reliable.flush ~max_per_dst:1 st.erel ~now:r in
    (* stays Every_round: leader heartbeats originate on the wall clock and
       the retry transport retransmits from its own timers *)
    Network.step { st with erel }
      ~send:
        (List.map (fun (w, a) -> (w, Pkt a)) acks
        @ hb_out
        @ List.map (fun (w, p) -> (w, Pkt p)) out)
      ~halt:(r > rounds)
  in
  let states, stats =
    Network.run ?faults ?exec g
      ~bandwidth:(Network.congest_bandwidth ~c:16 n)
      ~msg_bits:(fun m ->
        match m with
        | Hb _ -> Bits.words n 3
        | Pkt p -> Reliable.packet_bits ~word:(Bits.id_bits n) ~body:(fun _ -> Bits.words n 2) p)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  {
    leader_of = Array.map (fun st -> st.ebest_id) states;
    leader_deg = Array.map (fun st -> st.ebest_deg) states;
    stats;
  }

let check (view : Cluster_view.t) result =
  let g = view.graph in
  let n = Graph.n g in
  let ok = ref true in
  (* group vertices by cluster *)
  let tbl = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let l = view.labels.(v) in
    let cur = try Hashtbl.find tbl l with Not_found -> [] in
    Hashtbl.replace tbl l (v :: cur)
  done;
  Hashtbl.iter
    (fun _ vs ->
      match vs with
      | [] -> ()
      | v0 :: _ ->
          let leader = result.leader_of.(v0) in
          (* agreement *)
          List.iter
            (fun v -> if result.leader_of.(v) <> leader then ok := false)
            vs;
          (* membership *)
          if not (List.mem leader vs) then ok := false;
          (* maximality, ties to larger id *)
          let ld = Cluster_view.intra_degree view leader in
          List.iter
            (fun v ->
              let d = Cluster_view.intra_degree view v in
              if d > ld || (d = ld && v > leader) then ok := false)
            vs)
    tbl;
  !ok
