open Sparse_graph
open Congest

type result = {
  owner : int array;
  out_degree : int array;
  phases : int;
  stats : Network.stats;
}

let bound ~density ~delta =
  int_of_float (ceil (2. *. (1. +. delta) *. density))

type state = {
  active_neighbors : int list;  (* intra-cluster neighbors not yet peeled *)
  peel_phase : int;             (* -1 while active *)
  notified : bool;
}

let run ?exec (view : Cluster_view.t) ~density ?(delta = 0.5) () =
  Obs.Span.with_ "distr.orientation" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let threshold = bound ~density ~delta in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    { active_neighbors = intra.(ctx.id); peel_phase = -1; notified = false }
  in
  (* Each phase is one round: a vertex whose active degree is at most the
     threshold peels, announcing its phase; announcements received this
     round shrink the active set for the next decision. *)
  let round r (_ctx : Network.ctx) st inbox =
    let peeled_now = List.map fst inbox in
    let active =
      List.filter (fun w -> not (List.mem w peeled_now)) st.active_neighbors
    in
    let st = { st with active_neighbors = active } in
    if st.peel_phase >= 0 then
      (* already peeled and notified: absorb remaining notifications, halt
         once nothing more can arrive (one extra round is enough since every
         neighbor notifies exactly once) *)
      Network.step st ~halt:st.notified
    else if List.length active <= threshold then begin
      let st = { st with peel_phase = r; notified = true } in
      (* wake once more to halt after the notifications settle *)
      Network.step st
        ~send:(List.map (fun w -> (w, r)) intra.(_ctx.id))
        ~wake_after:1
    end
    else
      (* event-driven: the active degree only shrinks when a peel
         announcement arrives, so sleep on the inbox *)
      Network.step st
  in
  let max_rounds = (2 * n) + 4 in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 1)
      ~init ~round ~max_rounds
  in
  let phase = Array.map (fun st -> st.peel_phase) states in
  let owner = Array.make (Graph.m g) (-1) in
  let out_degree = Array.make n 0 in
  Graph.iter_edges g (fun e u v ->
      if view.labels.(u) = view.labels.(v) then begin
        let o =
          if phase.(u) < phase.(v) then u
          else if phase.(v) < phase.(u) then v
          else min u v
        in
        owner.(e) <- o;
        out_degree.(o) <- out_degree.(o) + 1
      end);
  let phases = Array.fold_left max 0 phase in
  { owner; out_degree; phases; stats }

let check (view : Cluster_view.t) result ~density ~delta =
  let g = view.graph in
  let b = bound ~density ~delta in
  let ok = ref true in
  Graph.iter_edges g (fun e u v ->
      if view.labels.(u) = view.labels.(v) then begin
        if result.owner.(e) <> u && result.owner.(e) <> v then ok := false
      end
      else if result.owner.(e) <> -1 then ok := false);
  Array.iter (fun d -> if d > b then ok := false) result.out_degree;
  !ok
