open Sparse_graph
open Congest

type result = {
  in_mis : bool array;
  phases : int;
  stats : Network.stats;
}

type status = Live | In_mis | Out

type state = {
  rng : Random.State.t;
  status : status;
  draw : int;
  live_neighbors : int list;
  phase : int;
}

type msg = Draw of int | Joined | Died

let run ?exec (view : Cluster_view.t) ~seed =
  Obs.Span.with_ "distr.luby_mis" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    {
      rng = Random.State.make [| seed; ctx.id; 104729 |];
      status = Live;
      draw = 0;
      live_neighbors = intra.(ctx.id);
      phase = 0;
    }
  in
  (* Each phase spans two rounds: odd rounds broadcast a fresh draw; even
     rounds compare draws, winners join and announce Joined, neighbors of
     winners announce Died in the next odd round before going silent.

     Stays Every_round: live vertices originate a draw on every odd round
     whether or not anything arrived, so no round is a no-op and
     event-driven scheduling has nothing to skip. *)
  let round r (ctx : Network.ctx) st inbox =
    match st.status with
    | In_mis | Out -> Network.step st ~halt:true
    | Live ->
        let joined_neighbor =
          List.exists (function _, Joined -> true | _ -> false) inbox
        in
        let died =
          List.filter_map (function s, Died -> Some s | _ -> None) inbox
        in
        let live =
          List.filter (fun w -> not (List.mem w died)) st.live_neighbors
        in
        let st = { st with live_neighbors = live } in
        if joined_neighbor then begin
          (* a neighbor joined: die, tell remaining live neighbors *)
          let st = { st with status = Out } in
          Network.step st ~send:(List.map (fun w -> (w, Died)) st.live_neighbors)
        end
        else if r mod 2 = 1 then begin
          let draw = Random.State.bits st.rng in
          let st = { st with draw; phase = st.phase + 1 } in
          Network.step st
            ~send:(List.map (fun w -> (w, Draw draw)) st.live_neighbors)
        end
        else begin
          let draws =
            List.filter_map (function s, Draw d -> Some (s, d) | _ -> None)
              inbox
          in
          (* winner: strictly smallest (draw, id) among live neighborhood *)
          let mine = (st.draw, ctx.id) in
          let wins =
            List.for_all (fun (s, d) -> mine < (d, s)) draws
          in
          if wins then begin
            let st = { st with status = In_mis } in
            Network.step st
              ~send:(List.map (fun w -> (w, Joined)) st.live_neighbors)
          end
          else Network.step st
        end
  in
  let max_rounds = 8 * (int_of_float (log (float_of_int (max 2 n)) /. log 2.) + 4) in
  let states, stats =
    Network.run ?exec g
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(function Draw _ -> 2 * Bits.id_bits n | Joined | Died -> 2)
      ~init ~round ~max_rounds
  in
  {
    in_mis = Array.map (fun st -> st.status = In_mis) states;
    phases = Array.fold_left (fun acc st -> max acc st.phase) 0 states;
    stats;
  }

let check (view : Cluster_view.t) (result : result) =
  let g = view.graph in
  let ok = ref true in
  (* independence *)
  Graph.iter_edges g (fun _ u v ->
      if
        view.labels.(u) = view.labels.(v)
        && result.in_mis.(u) && result.in_mis.(v)
      then ok := false);
  (* maximality: every non-member has a member among intra neighbors *)
  for v = 0 to Graph.n g - 1 do
    if not result.in_mis.(v) then begin
      let dominated =
        List.exists
          (fun w -> result.in_mis.(w))
          (Cluster_view.intra_neighbors view v)
      in
      if not dominated then ok := false
    end
  done;
  !ok
