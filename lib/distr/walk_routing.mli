(** Random-walk routing to the cluster leader (Lemma 2.4).

    Every vertex originates a fixed number of tokens (each one [O(log n)]
    bits). Tokens perform independent uniform lazy random walks along
    intra-cluster edges; a token is absorbed — delivered — the first time it
    reaches the cluster's leader. The lemma proves that with walk length
    [O(phi^-2 log n) * O(phi^-2 log n)] every token reaches a
    maximum-degree leader w.h.p., and that per walk step only [O(log n)]
    tokens cross each edge w.h.p., so each step costs [O(log n)] CONGEST
    rounds.

    The simulator enforces the CONGEST budget directly: a vertex forwards at
    most [capacity] tokens per edge per round (capacity = bandwidth /
    token size); excess tokens retry on later rounds (their sampled step is
    kept, so the walk distribution is unchanged, only delayed). *)

type token = {
  origin : int;  (** vertex that created the token *)
  seq : int;     (** sequence number among the origin's tokens *)
}

type result = {
  delivered : (int * token list) list;
      (** per leader: tokens it absorbed, own tokens first then arrival
          order (pinned by a regression test) *)
  undelivered : int;
      (** tokens not delivered, counted against the originated total so
          that [delivered + undelivered = total] holds even when tokens
          are lost to faults or cut off in flight at [max_rounds]:
          [undelivered = expired + held + lost-in-transit] *)
  expired : int;  (** tokens whose [walk_len] budget ran out *)
  held : int;     (** tokens still queued at some vertex when the run ended *)
  stats : Congest.Network.stats;
}

(** [run view ~leader_of ~tokens_of ~walk_len ~seed ~max_rounds] routes
    [tokens_of v] tokens from every vertex [v] to its cluster leader
    ([leader_of.(v)], e.g. from {!Leader_election}). A token is dropped once
    it has taken [walk_len] lazy steps without reaching the leader
    (experiment E9 sweeps this budget); the run ends when no token is in
    flight or at [max_rounds]. *)
val run :
  ?exec:Congest.Network.exec ->
  ?faults:Congest.Faults.t ->
  Cluster_view.t ->
  leader_of:int array ->
  tokens_of:(int -> int) ->
  walk_len:int ->
  seed:int ->
  max_rounds:int ->
  result

(** Fraction of tokens delivered. *)
val delivery_rate : Cluster_view.t -> tokens_of:(int -> int) -> result -> float

(** Every expected token is delivered exactly once, to the right leader. *)
val check : Cluster_view.t -> leader_of:int array -> tokens_of:(int -> int) ->
  result -> bool
