open Sparse_graph
open Congest

type result = {
  edges_at_leader : (int * (int * int) list) list;
  rounds : int;
  max_message_bits : int;
  stats : Network.stats;
}

type msg =
  | Depth of int
  | Child
  | Payload of (int * int) list

type state = {
  parent : int;          (* -1 until adopted; leader's parent is itself *)
  adopt_round : int;
  children : int list;
  received : (int * int) list list;  (* payloads from children *)
  reported : int list;               (* children that reported *)
  sent_up : bool;
  collected : (int * int) list;      (* leader only *)
}

let run ?exec (view : Cluster_view.t) ~leader_of ~rounds_budget =
  Obs.Span.with_ "distr.local_gather" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  (* each vertex contributes its intra-cluster edges to larger neighbors *)
  let own_edges =
    Array.init n (fun v ->
        List.filter_map (fun w -> if w > v then Some (v, w) else None)
          intra.(v))
  in
  let init (ctx : Network.ctx) =
    let v = ctx.id in
    if leader_of.(v) = v then
      { parent = v; adopt_round = 0; children = []; received = [];
        reported = []; sent_up = false; collected = own_edges.(v) }
    else
      { parent = -1; adopt_round = -1; children = []; received = [];
        reported = []; sent_up = false; collected = [] }
  in
  let round r (ctx : Network.ctx) st inbox =
    let v = ctx.id in
    (* absorb structural messages *)
    let new_children =
      List.filter_map (function s, Child -> Some s | _ -> None) inbox
    in
    let payloads =
      List.filter_map
        (function s, Payload l -> Some (s, l) | _ -> None)
        inbox
    in
    let st =
      { st with
        children = new_children @ st.children;
        received = List.map snd payloads @ st.received;
        reported = List.map fst payloads @ st.reported }
    in
    let st =
      if leader_of.(v) = v then
        { st with
          collected = List.concat (List.map snd payloads) @ st.collected }
      else st
    in
    (* adoption *)
    let adopting =
      if st.parent >= 0 then None
      else
        match
          List.filter_map (function s, Depth d -> Some (s, d) | _ -> None)
            inbox
        with
        | [] -> None
        | (s, d) :: _ -> Some (s, d)
    in
    let st, announce =
      match adopting with
      | Some (s, d) ->
          ({ st with parent = s; adopt_round = r }, Some (d + 1))
      | None ->
          if leader_of.(v) = v && r = 1 then (st, Some 0) else (st, None)
    in
    if r > rounds_budget then Network.step st ~halt:true
    else begin
      let send = ref [] in
      (match announce with
      | Some depth ->
          List.iter (fun w -> send := (w, Depth depth) :: !send) intra.(v);
          if st.parent >= 0 && st.parent <> v then
            send := (st.parent, Child) :: !send
      | None -> ());
      (* event-driven wake: the convergecast trigger below first becomes
         evaluable at adopt_round + 2 (a childless vertex sees no message
         then), so keep a timer until that round; afterwards every relevant
         re-evaluation is caused by an arriving payload *)
      let wake st =
        if
          st.parent >= 0 && st.parent <> v && (not st.sent_up)
          && r < st.adopt_round + 2
        then Some (st.adopt_round + 2 - r)
        else None
      in
      (* convergecast: children final two rounds after our announcement *)
      let children_final =
        st.adopt_round >= 0 && r >= st.adopt_round + 2
      in
      if
        (not st.sent_up) && st.parent >= 0 && st.parent <> v && children_final
        && List.length st.reported >= List.length st.children
      then begin
        let payload = own_edges.(v) @ List.concat st.received in
        send := (st.parent, Payload payload) :: !send;
        let st = { st with sent_up = true } in
        Network.step st ~send:!send ?wake_after:(wake st)
      end
      else Network.step st ~send:!send ?wake_after:(wake st)
    end
  in
  let idb = Bits.id_bits n in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven ~bandwidth:Network.Local
      ~msg_bits:(function
        | Depth _ -> idb
        | Child -> 1
        | Payload l -> max 1 (2 * idb * List.length l))
      ~init ~round ~max_rounds:rounds_budget
  in
  let edges_at_leader = ref [] in
  Array.iteri
    (fun v st ->
      if leader_of.(v) = v then
        edges_at_leader :=
          (v, List.sort_uniq compare st.collected) :: !edges_at_leader)
    states;
  {
    edges_at_leader = List.rev !edges_at_leader;
    rounds = stats.Network.last_traffic_round;
    max_message_bits = stats.Network.max_edge_bits;
    stats;
  }

let complete (view : Cluster_view.t) ~leader_of result =
  let g = view.graph in
  let expected = Hashtbl.create 16 in
  Graph.iter_edges g (fun _ u v ->
      if view.labels.(u) = view.labels.(v) then begin
        let leader = leader_of.(u) in
        let cur = try Hashtbl.find expected leader with Not_found -> [] in
        Hashtbl.replace expected leader ((u, v) :: cur)
      end);
  let ok = ref true in
  Hashtbl.iter
    (fun leader edges ->
      let want = List.sort_uniq compare edges in
      let got =
        match List.assoc_opt leader result.edges_at_leader with
        | Some es -> es
        | None -> []
      in
      if got <> want then ok := false)
    expected;
  !ok
