open Sparse_graph
open Congest

type result = {
  edges_at_leader : (int * (int * int) list) list;
  delivery : float;
  orientation_stats : Network.stats;
  routing_stats : Network.stats;
}

let run (view : Cluster_view.t) ~leader_of ~density ~walk_len ~seed ~max_rounds =
  Obs.Span.with_ "distr.gather" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let orientation = Orientation.run view ~density () in
  (* out-edges per vertex, in a stable order so that token seq identifies
     the edge: seq k of vertex v = v's k-th owned edge by edge id *)
  let out_edges = Array.make n [] in
  Graph.iter_edges g (fun e u v ->
      let o = orientation.owner.(e) in
      if o >= 0 then begin
        let other = if o = u then v else u in
        out_edges.(o) <- (e, other) :: out_edges.(o)
      end);
  let out_edges = Array.map List.rev out_edges in
  let tokens_of v = List.length out_edges.(v) in
  let routing =
    Walk_routing.run view ~leader_of ~tokens_of ~walk_len ~seed ~max_rounds
  in
  let edges_at_leader =
    List.map
      (fun (leader, toks) ->
        let edges =
          List.map
            (fun (t : Walk_routing.token) ->
              let _, other = List.nth out_edges.(t.origin) t.seq in
              (min t.origin other, max t.origin other))
            toks
        in
        (leader, List.sort_uniq compare edges))
      routing.delivered
  in
  {
    edges_at_leader;
    delivery = Walk_routing.delivery_rate view ~tokens_of routing;
    orientation_stats = orientation.stats;
    routing_stats = routing.stats;
  }

let complete (view : Cluster_view.t) ~leader_of result =
  let g = view.graph in
  (* expected edges per leader *)
  let expected = Hashtbl.create 16 in
  Graph.iter_edges g (fun _ u v ->
      if view.labels.(u) = view.labels.(v) then begin
        let leader = leader_of.(u) in
        let cur = try Hashtbl.find expected leader with Not_found -> [] in
        Hashtbl.replace expected leader ((u, v) :: cur)
      end);
  let ok = ref true in
  Hashtbl.iter
    (fun leader edges ->
      let want = List.sort_uniq compare edges in
      let got =
        match List.assoc_opt leader result.edges_at_leader with
        | Some es -> es
        | None -> []
      in
      if got <> want then ok := false)
    expected;
  (* no leader may report edges outside its cluster *)
  List.iter
    (fun (leader, es) ->
      List.iter
        (fun (u, v) ->
          if
            view.labels.(u) <> view.labels.(v)
            || leader_of.(u) <> leader
            || not (Graph.mem_edge g u v)
          then ok := false)
        es)
    result.edges_at_leader;
  !ok
