(** Distributed Miller–Peng–Xu low-diameter clustering in CONGEST.

    Every vertex draws a shift [delta_u ~ Exp(beta)] and starts flooding its
    id at round [ceil(delta_max) - delta_u] (earlier for larger shifts);
    each vertex joins the first flood to reach it (ties broken by smaller
    origin id). Clusters have radius O(log n / beta) w.h.p. and each edge is
    cut with probability O(beta) — the random-shift decomposition that
    distributed LDD constructions (and the paper's Section 3.5 baseline
    discussion) build on. One id per message. *)

type result = {
  partition : Decomp.Partition.t;
  stats : Congest.Network.stats;
}

(** [run view ~beta ~seed]. Operates within clusters of [view] (pass
    {!Cluster_view.whole} for the full graph).
    @raise Invalid_argument unless [beta > 0]. *)
val run :
  ?exec:Congest.Network.exec -> Cluster_view.t -> beta:float -> seed:int -> result
