(** Ack / retry / backoff combinator for point-to-point sends over a lossy
    {!Congest.Network}.

    The transport wraps application messages in sequence-numbered
    [Payload] packets. Every received payload is acknowledged (including
    duplicates — the earlier ack may itself have been lost); unacked
    payloads are retransmitted with exponential backoff; receivers
    deduplicate by [(sender, seq)], so the application sees each message
    {e at most once} and — as long as both endpoints stay up and the drop
    rate is below 1 — {e at least once} given enough rounds.

    The state is threaded functionally through the round callback:

    {[
      let st, fresh, acks = Reliable.deliver st inbox in
      (* ... application handles [fresh], enqueues new sends ... *)
      let st = Reliable.send st ~dst x in
      let st, out = Reliable.flush st ~now:r in
      { state = ...; send = acks @ out; halt = ... }
    ]}

    All processing is deterministic: the fresh list preserves inbox order
    (sorted by sender under {!Congest.Network.run}) and retransmissions
    fire in send order. *)

type 'msg packet =
  | Payload of { seq : int; body : 'msg }
  | Ack of { seq : int }

type 'msg t

val create : unit -> 'msg t

(** Declared wire size of a packet given the body's size in bits and the
    per-word bit count: a payload costs [tag + seq word + body], an ack
    [tag + seq word]. *)
val packet_bits : word:int -> body:('msg -> int) -> 'msg packet -> int

(** [send st ~dst m] enqueues [m] for reliable delivery to [dst]. The
    first transmission happens at the next {!flush}. *)
val send : 'msg t -> dst:int -> 'msg -> 'msg t

(** [cancel st ~dst] drops every pending (unacked) payload addressed to
    [dst] — used when a newer value supersedes the queued one. *)
val cancel : 'msg t -> dst:int -> 'msg t

(** [deliver st inbox] processes one round's received packets: returns the
    updated state, the fresh (first-time, deduplicated) application
    messages as [(sender, body)] in inbox order, and the acks to emit this
    round. Acked payloads leave the pending queue. *)
val deliver :
  'msg t -> (int * 'msg packet) list ->
  'msg t * (int * 'msg) list * (int * 'msg packet) list

(** [flush st ~now] emits every due (re)transmission as [(dst, packet)]
    pairs. A payload first transmits at the flush after its {!send}, then
    backs off exponentially (2, 4, 8, capped at 8 rounds — an ack takes
    two rounds to arrive, so retrying sooner is pure congestion).
    [?max_per_dst] caps payloads per destination per flush (earliest
    first, deterministic), for protocols that must respect a tight
    per-edge budget. *)
val flush : ?max_per_dst:int -> 'msg t -> now:int -> 'msg t * (int * 'msg packet) list

(** No pending unacked payloads. *)
val idle : 'msg t -> bool

(** Number of pending unacked payloads. *)
val pending : 'msg t -> int
