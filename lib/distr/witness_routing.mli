(** Source-routed execution of pre-planned demand paths: the
    [route_via_witness] counterpart to {!Walk_routing} (lazy random
    walks, Lemma 2.4) and {!Tree_routing} (BFS-tree convergecast).

    The expander-routing planner ([lib/route]) turns each demand into a
    concrete vertex path along the witness hierarchy; this module ships
    one token per demand along its path on the CONGEST simulator. Each
    edge sends one {e flight} per round: a batch of parked tokens
    costing one framing word plus two id-words (demand, position) per
    token, sized to the bandwidth budget — so under the default budget
    an edge moves [((budget / id_bits) - 1) / 2] tokens per round
    instead of the single-token wave of the original shipper, and
    batches drain in proportionally fewer rounds. The excess parks in
    per-neighbor queues. It draws no randomness, so at any shards × jobs
    point (and under a fixed fault seed) the outcome is a pure function
    of the plans — planner and simulator deliver the same multiset of
    demands. *)

type result = {
  delivered : (int * int list) list;
      (** per destination vertex: demand ids absorbed, arrival order *)
  undelivered : int;
      (** demands not delivered, counted against the total so that
          [delivered + undelivered = demands] holds even when tokens are
          lost to faults or cut off in flight at [max_rounds] *)
  held : int;  (** tokens still parked at some vertex when the run ended *)
  last_round : int;
      (** round of the final delivery; the event-driven simulator
          fast-forwards idle rounds, so [stats.rounds] reports the halting
          bound, not completion *)
  rounds_of : int array;
      (** per demand: the round its token reached the destination, 0 for
          a self-demand absorbed at init, or -1 if undelivered *)
  stats : Congest.Network.stats;
}

(** [run ?exec ?faults g ~plans ~max_rounds] routes one token per plan.
    [plans.(d)] is demand [d]'s vertex path — source first, destination
    last; consecutive entries must be edges of [g] (a length-1 plan is a
    self-demand, delivered at init).
    @raise Invalid_argument on an empty plan or a non-edge step. *)
val run :
  ?exec:Congest.Network.exec ->
  ?faults:Congest.Faults.t ->
  Sparse_graph.Graph.t ->
  plans:int array array ->
  max_rounds:int ->
  result

(** Every demand is delivered at most once, at its plan's destination,
    and [delivered + undelivered = demands]. (Duplication faults break
    the at-most-once premise; drive this with drops/crashes only.) *)
val check : plans:int array array -> result -> bool
