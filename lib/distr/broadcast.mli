(** Cluster-wide broadcast from each cluster's leader.

    The leader's value (one word) is flooded over intra-cluster edges; after
    [rounds >= diameter(G[V_i])] every member has received it. This is the
    "broadcast the result over the cluster" step of the framework
    (Section 1.2). *)

type result = {
  received : int array;  (** value received, or [-1] if none arrived *)
  stats : Congest.Network.stats;
}

(** [run view ~sources ~rounds]: [sources.(v) = Some x] makes [v] originate
    value [x >= 0]. *)
val run : Cluster_view.t -> sources:int option array -> rounds:int -> result

(** Every vertex in a cluster with a (unique) source must receive the
    source's value. *)
val check : Cluster_view.t -> result -> sources:int option array -> bool
