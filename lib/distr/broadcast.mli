(** Cluster-wide broadcast from each cluster's leader.

    The leader's value (one word) is flooded over intra-cluster edges; after
    [rounds >= diameter(G[V_i])] every member has received it. This is the
    "broadcast the result over the cluster" step of the framework
    (Section 1.2). *)

type result = {
  received : int array;  (** value received, or [-1] if none arrived *)
  stats : Congest.Network.stats;
}

(** [run view ~sources ~rounds]: [sources.(v) = Some x] makes [v] originate
    value [x >= 0]. *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> sources:int option array -> rounds:int -> result

(** Retry-hardened broadcast: informed vertices offer their value to each
    intra-cluster neighbor through the {!Reliable} ack/retry/backoff
    transport, so the flood completes under the fault model of
    {!Congest.Faults} (message drops and duplication; crashed vertices
    stay uninformed). Needs a [rounds] budget with slack over the
    diameter: each lost hop costs one backoff interval. Runs in CONGEST
    with a [16 log n]-bit budget (the retry framing costs a constant
    factor over the plain flood's word). *)
val run_reliable :
  ?faults:Congest.Faults.t ->
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> sources:int option array -> rounds:int -> result

(** Every vertex in a cluster with a (unique) source must receive the
    source's value. *)
val check : Cluster_view.t -> result -> sources:int option array -> bool
