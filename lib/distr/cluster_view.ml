open Sparse_graph

type t = {
  graph : Graph.t;
  labels : int array;
}

let whole graph = { graph; labels = Array.make (Graph.n graph) 0 }

let of_labels graph labels =
  if Array.length labels <> Graph.n graph then
    invalid_arg "Cluster_view.of_labels: label array length mismatch";
  { graph; labels }

let intra_neighbors t v =
  Graph.fold_neighbors t.graph v
    (fun acc w -> if t.labels.(w) = t.labels.(v) then w :: acc else acc)
    []
  |> List.rev

let intra_degree t v = List.length (intra_neighbors t v)

let members t v =
  let l = t.labels.(v) in
  let out = ref [] in
  for u = Graph.n t.graph - 1 downto 0 do
    if t.labels.(u) = l then out := u :: !out
  done;
  !out

let cluster_edges t v =
  let l = t.labels.(v) in
  Graph.fold_edges t.graph
    (fun acc _ a b ->
      if t.labels.(a) = l && t.labels.(b) = l then acc + 1 else acc)
    0
