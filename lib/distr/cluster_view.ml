open Sparse_graph

type t = {
  graph : Graph.t;
  labels : int array;
  intra : int array array;
}

(* CSR-aligned intra-cluster adjacency, built once per view: row v lists
   v's same-cluster neighbors in the graph's (ascending) neighbor order.
   Routing batches against one decomposition used to rebuild this O(n+m)
   structure on every call; now they all share the view's copy. *)
let build_intra graph labels =
  let n = Graph.n graph in
  let counts = Array.make n 0 in
  for v = 0 to n - 1 do
    counts.(v) <-
      Graph.fold_neighbors graph v
        (fun acc w -> if labels.(w) = labels.(v) then acc + 1 else acc)
        0
  done;
  Array.init n (fun v ->
      let row = Array.make counts.(v) 0 in
      let i = ref 0 in
      Graph.fold_neighbors graph v
        (fun () w ->
          if labels.(w) = labels.(v) then begin
            row.(!i) <- w;
            incr i
          end)
        ();
      row)

let whole graph =
  let labels = Array.make (Graph.n graph) 0 in
  { graph; labels; intra = build_intra graph labels }

let of_labels graph labels =
  if Array.length labels <> Graph.n graph then
    invalid_arg "Cluster_view.of_labels: label array length mismatch";
  { graph; labels; intra = build_intra graph labels }

let intra_neighbors t v = Array.to_list t.intra.(v)

let intra_degree t v = Array.length t.intra.(v)

let members t v =
  let l = t.labels.(v) in
  let out = ref [] in
  for u = Graph.n t.graph - 1 downto 0 do
    if t.labels.(u) = l then out := u :: !out
  done;
  !out

let cluster_edges t v =
  let l = t.labels.(v) in
  Graph.fold_edges t.graph
    (fun acc _ a b ->
      if t.labels.(a) = l && t.labels.(b) = l then acc + 1 else acc)
    0
