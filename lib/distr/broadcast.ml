open Sparse_graph
open Congest

type result = {
  received : int array;
  stats : Network.stats;
}

type state = {
  value : int;
  fresh : bool;
}

let run ?exec (view : Cluster_view.t) ~sources ~rounds =
  Obs.Span.with_ "distr.broadcast" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    match sources.(ctx.id) with
    | Some x -> { value = x; fresh = true }
    | None -> { value = -1; fresh = false }
  in
  let round r (ctx : Network.ctx) st inbox =
    let st =
      if st.value >= 0 then st
      else
        match inbox with
        | [] -> st
        | (_, x) :: _ -> { value = x; fresh = true }
    in
    (* event-driven: idle vertices sleep on their inbox and set a timer
       for round [rounds + 1], where everyone halts *)
    if r > rounds then Network.step st ~halt:true
    else if st.fresh then
      Network.step
        { st with fresh = false }
        ~send:(List.map (fun w -> (w, st.value)) intra.(ctx.id))
        ~wake_after:(rounds + 1 - r)
    else Network.step st ~wake_after:(rounds + 1 - r)
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(fun _ -> Bits.words n 1)
      ~init ~round ~max_rounds:(rounds + 1)
  in
  { received = Array.map (fun st -> st.value) states; stats }

(* ------------------------------------------------------------------ *)
(* Retry-hardened variant: every informed vertex offers its value to     *)
(* each intra neighbor through the Reliable ack/retry transport, so the  *)
(* flood survives message drops and duplication. One payload per         *)
(* neighbor ever enters the queue, so the per-edge load stays within     *)
(* the CONGEST budget (payload + acks).                                  *)
(* ------------------------------------------------------------------ *)

type rstate = {
  rvalue : int;
  rel : int Reliable.t;
  offered : bool;
}

let run_reliable ?faults ?exec (view : Cluster_view.t) ~sources ~rounds =
  Obs.Span.with_ "distr.broadcast_reliable" @@ fun () ->
  let g = view.graph in
  let n = Graph.n g in
  let w = Bits.id_bits n in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    {
      rvalue = (match sources.(ctx.id) with Some x -> x | None -> -1);
      rel = Reliable.create ();
      offered = false;
    }
  in
  let round r (ctx : Network.ctx) st inbox =
    let rel, fresh, acks = Reliable.deliver st.rel inbox in
    let rvalue =
      if st.rvalue >= 0 then st.rvalue
      else match fresh with [] -> -1 | (_, x) :: _ -> x
    in
    let rel, offered =
      if rvalue >= 0 && not st.offered then
        ( List.fold_left
            (fun rel dst -> Reliable.send rel ~dst rvalue)
            rel intra.(ctx.id),
          true )
      else (rel, st.offered)
    in
    let rel, out = Reliable.flush rel ~now:r in
    (* stays Every_round: the retry transport re-offers from its queue on a
       clock of its own, so a silent round is not a no-op here *)
    Network.step { rvalue; rel; offered } ~send:(acks @ out)
      ~halt:(r > rounds)
  in
  let states, stats =
    Network.run ?faults ?exec g
      ~bandwidth:(Network.congest_bandwidth ~c:16 n)
      ~msg_bits:(Reliable.packet_bits ~word:w ~body:(fun _ -> w))
      ~init ~round ~max_rounds:(rounds + 1)
  in
  { received = Array.map (fun st -> st.rvalue) states; stats }

let check (view : Cluster_view.t) result ~sources =
  let n = Graph.n view.graph in
  (* expected value per vertex: flood sources along intra-cluster edges *)
  let expected = Array.make n (-1) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    match sources.(v) with
    | Some x ->
        expected.(v) <- x;
        Queue.add v queue
    | None -> ()
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if expected.(w) < 0 then begin
          expected.(w) <- expected.(v);
          Queue.add w queue
        end)
      (Cluster_view.intra_neighbors view v)
  done;
  let ok = ref true in
  for v = 0 to n - 1 do
    if result.received.(v) <> expected.(v) then ok := false
  done;
  !ok
