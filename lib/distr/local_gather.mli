(** LOCAL-model topology gathering: the baseline the paper's framework
    replaces.

    In the LOCAL model (Section 1), messages are unbounded, so each cluster
    leader can learn its cluster's topology by a BFS-tree convergecast in
    O(diameter) rounds: leaves send their incident edges, internal vertices
    forward the union. This is exactly the "brute-force information
    gathering" of the low-diameter-decomposition approach
    [Czygrinow et al., Ghaffari-Kuhn-Maus] that confines those algorithms to
    LOCAL — the convergecast root message carries Theta(|E_i| log n) bits.
    Experiment E11 contrasts its measured round count and peak message size
    with the CONGEST random-walk gathering of Lemma 2.4. *)

type result = {
  edges_at_leader : (int * (int * int) list) list;
  rounds : int;           (** rounds used *)
  max_message_bits : int; (** peak bits on one edge in one round — the
                              LOCAL-model cost the paper eliminates *)
  stats : Congest.Network.stats;
}

(** [run view ~leader_of ~rounds_budget] gathers every cluster's topology at
    its leader with unbounded messages. [rounds_budget] must be at least
    2 * cluster diameter + 3. *)
val run :
  ?exec:Congest.Network.exec ->
  Cluster_view.t -> leader_of:int array -> rounds_budget:int -> result

(** Every leader learned exactly its cluster's edge set. *)
val complete : Cluster_view.t -> leader_of:int array -> result -> bool
