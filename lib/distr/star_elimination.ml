open Congest

type result = {
  removed : bool array;
  iterations : int;
  stats : Network.stats;
}

type msg =
  | Pendant
  | Spoke of int * int
  | Bounce
  | Gone

type state = {
  live : int list;        (* live intra-cluster neighbors *)
  removed : bool;
  announced : bool;
}

let run ?exec (view : Cluster_view.t) ~max_iterations =
  Obs.Span.with_ "distr.star_elimination" @@ fun () ->
  let g = view.graph in
  let n = Sparse_graph.Graph.n g in
  let intra = Array.init n (fun v -> Cluster_view.intra_neighbors view v) in
  let init (ctx : Network.ctx) =
    { live = intra.(ctx.id); removed = false; announced = false }
  in
  let total_rounds = 3 * max_iterations in
  let round r (_ctx : Network.ctx) st inbox =
    if st.removed then begin
      (* announce once, then halt *)
      if st.announced then Network.step st ~halt:true
      else
        Network.step
          { st with announced = true }
          ~send:(List.map (fun w -> (w, Gone)) st.live)
          ~wake_after:1
    end
    else begin
      let gone =
        List.filter_map (function s, Gone -> Some s | _ -> None) inbox
      in
      let live = List.filter (fun w -> not (List.mem w gone)) st.live in
      let st = { st with live } in
      if r > total_rounds then Network.step st ~halt:true
      else begin
        (* event-driven wake: the next round where this vertex originates
           traffic on its own — the next token round for pendant / spoke
           candidates, otherwise the halt round (which is 1 mod 3, itself a
           token round); bounce and removal participation is message-driven *)
        let wake =
          match st.live with
          | [ _ ] | [ _; _ ] ->
              let d = (1 - r) mod 3 in
              if d <= 0 then d + 3 else d
          | _ -> total_rounds + 1 - r
        in
        match r mod 3 with
        | 1 ->
            (* token round: pendants and spokes announce themselves *)
            let send =
              match live with
              | [ c ] -> [ (c, Pendant) ]
              | [ a; b ] ->
                  let key = (min a b, max a b) in
                  [ (a, Spoke (fst key, snd key)); (b, Spoke (fst key, snd key)) ]
              | _ -> []
            in
            Network.step st ~send ~wake_after:wake
        | 2 ->
            (* bounce round: keep one pendant, two spokes per hub pair *)
            let pendants =
              List.filter_map
                (function s, Pendant -> Some s | _ -> None)
                inbox
            in
            let bounced_pendants =
              match List.sort compare pendants with
              | [] | [ _ ] -> []
              | _keep :: rest -> rest
            in
            let spokes = Hashtbl.create 4 in
            List.iter
              (function
                | s, Spoke (a, b) ->
                    let cur =
                      try Hashtbl.find spokes (a, b) with Not_found -> []
                    in
                    Hashtbl.replace spokes (a, b) (s :: cur)
                | _ -> ())
              inbox;
            (* sorted so the bounce list does not leak hash order into the
               message sequence *)
            let bounced_spokes =
              Hashtbl.fold
                (fun _ senders acc ->
                  match List.sort compare senders with
                  | _ :: _ :: rest -> rest @ acc
                  | _ -> acc)
                spokes []
              |> List.sort compare
            in
            let send =
              List.map (fun s -> (s, Bounce)) (bounced_pendants @ bounced_spokes)
            in
            Network.step st ~send ~wake_after:wake
        | _ ->
            (* removal round: a bounce means elimination *)
            let bounced =
              List.exists (function _, Bounce -> true | _ -> false) inbox
            in
            if bounced then
              Network.step
                { st with removed = true; announced = true }
                ~send:(List.map (fun w -> (w, Gone)) st.live)
                ~wake_after:1
            else Network.step st ~wake_after:wake
      end
    end
  in
  let states, stats =
    Network.run ?exec g ~schedule:Network.Event_driven
      ~bandwidth:(Network.congest_bandwidth n)
      ~msg_bits:(function
        | Pendant | Bounce | Gone -> 2
        | Spoke _ -> Bits.words n 2)
      ~init ~round ~max_rounds:(total_rounds + 1)
  in
  {
    removed = Array.map (fun st -> st.removed) states;
    iterations = max_iterations;
    stats;
  }

let check (view : Cluster_view.t) (result : result) =
  let g = view.graph in
  let n = Sparse_graph.Graph.n g in
  (* surviving intra-cluster degrees *)
  let live_neighbors v =
    List.filter
      (fun w -> not result.removed.(w))
      (Cluster_view.intra_neighbors view v)
  in
  let ok = ref true in
  (* no 2-star: no survivor has two surviving pendant neighbors *)
  let pendant_count = Array.make n 0 in
  for v = 0 to n - 1 do
    if not result.removed.(v) then
      match live_neighbors v with
      | [ c ] -> pendant_count.(c) <- pendant_count.(c) + 1
      | _ -> ()
  done;
  Array.iter (fun c -> if c >= 2 then ok := false) pendant_count;
  (* no 3-double-star *)
  let spokes = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    if not result.removed.(v) then
      match live_neighbors v with
      | [ a; b ] ->
          let key = (min a b, max a b) in
          let c = (try Hashtbl.find spokes key with Not_found -> 0) + 1 in
          Hashtbl.replace spokes key c;
          if c >= 3 then ok := false
      | _ -> ()
  done;
  !ok
