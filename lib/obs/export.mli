(** Profile assembly: the deterministic / volatile split, the flat
    metrics dump and the ASCII summary. *)

val schema_name : string
val schema_version : int

val deterministic_section : Agg.node -> Json.t
(** The parity-compared section: span tree + whole-run totals/peaks. *)

val deterministic_string : Agg.node -> string
(** Canonical compact serialization of {!deterministic_section}; equal
    strings mean equal deterministic profiles. *)

val profile_json : ?meta:(string * Json.t) list -> Agg.node -> Json.t
(** Full BENCH_profile.json document; [meta] lands in the volatile
    section (jobs, wall seconds, workload name...). *)

val metrics_json : Agg.node -> Json.t
(** Flat ["path" -> {count, metrics, max}] dump. *)

val to_ascii : Agg.node -> string

val write_file : string -> string -> unit
