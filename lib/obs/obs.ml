(* Public face of the observability subsystem (see DESIGN.md section 9).

   Obs is dependency-free (unix only, for the one sanctioned clock read
   in Clock) and sits below every other library in the build graph, so
   congest, parallel, spectral, decomp, distr, core and the bench all
   link it without cycles. Disabled — the default — every instrumented
   site costs one atomic load and a branch. *)

module Clock = Clock
module Json = Json
module Agg = Agg
module Span = Span
module Metric = Metric
module Meter = Meter
module Trace = Trace
module Export = Export

let enable = Rt.enable

let disable = Rt.disable

let enabled = Rt.is_enabled

(* Drop all recorded data and detach every per-domain buffer (they
   re-register lazily on next use). Call between independent measured
   sections; never call from inside an open span. *)
let reset = Rt.reset

(* merged aggregate + raw trace slices; take after parallel sections join *)
let snapshot = Rt.snapshot

let snapshot_tree () = fst (Rt.snapshot ())
