(** Deterministic span/metric aggregate. All merges are commutative and
    associative and all traversals visit sorted keys, so the aggregate is
    independent of buffer registration and drain order — the foundation
    of the byte-identical-across-[--jobs] profile contract. *)

module SMap : Map.S with type key = string

type node = {
  count : int;              (** span completions at this path *)
  sums : int SMap.t;        (** deterministic additive counters *)
  maxes : int SMap.t;       (** deterministic max-merged metrics *)
  volatile : int SMap.t;    (** timing-class values (ns, GC words) —
                                excluded from deterministic exports *)
  children : node SMap.t;
}

val empty : node

val merge : node -> node -> node

val add_at : node -> string list -> node -> node
(** [add_at tree path row] merges the leaf-shaped [row] into the node at
    [path], creating intermediate nodes as needed. *)

val find_path : node -> string list -> node option

val totals : node -> int SMap.t * int SMap.t
(** Whole-tree metric totals: (summed counters, maxed metrics). *)

val int_map_json : int SMap.t -> Json.t
(** Sorted-key object of integer values. *)

val to_json : node -> Json.t
(** Deterministic form: count/metrics/max/children, sorted keys, no
    volatile values. *)

val volatile_json : node -> Json.t
(** Timing mirror of the tree: the volatile metrics only. *)

val flat_json : node -> Json.t
(** Flat metrics dump: ["a/b/c" -> {count, metrics, max}], sorted. *)

val to_ascii : node -> string
(** Indented span-tree summary for terminals. *)
