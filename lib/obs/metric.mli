(** Integer counters, gauges and histograms attributed to the calling
    domain's current span. Integer-only by design: every deterministic
    value must merge commutatively. *)

val count : string -> int -> unit
(** Add [v] to the additive counter [name] under the current span. *)

val incr : string -> unit
(** [count name 1]. *)

val set_max : string -> int -> unit
(** Max-merge [v] into the gauge [name] (peak edge bits, max depth...). *)

val hist : string -> int -> unit
(** Record [v] in a power-of-two bucket histogram: increments the
    counter [name.p2_<b>] where [2^b] is the smallest power >= [v]. *)

val volatile : string -> int -> unit
(** Add to a timing-class metric (exported only in the volatile
    section; never part of parity comparisons). *)
