(* The repo's only sanctioned wall-clock sink (linter rule D003 exempts
   exactly this file). Every timing read — bench harness wall times, span
   durations, trace timestamps — flows through here, so clock values can
   never leak into result paths unnoticed: any other call site of
   Unix.gettimeofday / Sys.time fails the @lint build. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let wall_s () = Unix.gettimeofday ()
