(* Recording runtime. Design constraints, in order:

   1. Disabled mode (the default) must cost one atomic load and a branch
      per instrumented site — hot paths stay hot.
   2. Recording must be domain-safe without locks: every mutable buffer
      is domain-local (Domain.DLS); the only shared cells are Atomics
      (the enabled flag, the reset epoch, and the buffer registry, which
      grows by CAS). Pooled tasks therefore record freely — there is no
      toplevel ref/Hashtbl for the P001 linter rule to reach, because
      there is none at all.
   3. The merged aggregate must be deterministic: per-domain rows are
      keyed by span path and merged with commutative/associative
      operations (Agg), so buffer registration order — which does depend
      on the scheduler — cannot leak into exported values.

   Snapshots are taken after parallel sections join (bench end, tests),
   so draining the registry races with nothing. *)

type args = (string * string) list

(* a completed-span slice, kept for the Chrome trace exporter *)
type event = {
  ev_name : string;
  ev_ts_ns : int;
  ev_dur_ns : int;
  ev_tid : int;
  ev_args : args;
}

(* per-path accumulation row; touched only by its owning domain *)
type row = {
  mutable r_count : int;
  r_sums : (string, int) Hashtbl.t;
  r_maxes : (string, int) Hashtbl.t;
  r_volatile : (string, int) Hashtbl.t;
}

type frame = {
  f_name : string;
  f_path : string list;  (* full path, outermost first *)
  f_key : string;  (* path_key f_path, precomputed at span push *)
  f_start_ns : int;
  f_start_words : float;
  f_args : args;
}

type dstate = {
  d_epoch : int;
  d_tid : int;
  mutable d_stack : frame list;
  mutable d_ambient : string list;
  mutable d_ambient_key : string;
  d_rows : (string, row) Hashtbl.t;
  mutable d_events : event list;
}

let enabled = Atomic.make false

let epoch = Atomic.make 0

let registry : dstate list Atomic.t = Atomic.make []

let rec register st =
  let cur = Atomic.get registry in
  (* lint: allow A001 one cons per domain registration, not per event *)
  if not (Atomic.compare_and_set registry cur (st :: cur)) then register st

let key : dstate option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let fresh_state ep =
  {
    d_epoch = ep;
    d_tid = (Domain.self () :> int);
    d_stack = [];
    d_ambient = [];
    d_ambient_key = "";
    (* lint: allow A001 built once per domain per epoch *)
    d_rows = Hashtbl.create 64;
    d_events = [];
  }

let state () =
  let ep = Atomic.get epoch in
  match Domain.DLS.get key with
  | Some st when st.d_epoch = ep -> st
  | _ ->
      let st = fresh_state ep in
      (* lint: allow A001 boxed once per domain per epoch *)
      Domain.DLS.set key (Some st);
      register st;
      st

(* lint: hot *)
let is_enabled () = Atomic.get enabled

let enable () = Atomic.set enabled true

let disable () = Atomic.set enabled false

let reset () =
  Atomic.incr epoch;
  Atomic.set registry []

(* ------------------------------------------------------------------ *)
(* recording primitives                                                 *)
(* ------------------------------------------------------------------ *)

let path_key path = String.concat "\x1f" path

(* [k] is a precomputed [path_key]: frames and the ambient path carry
   their key, so per-event recording does no string work *)
let row_of st k =
  match Hashtbl.find_opt st.d_rows k with
  | Some r -> r
  | None ->
      (* a row is built once per (domain, span path); every later hit for
         the same path takes the find_opt fast path above, so these
         allocations are amortized registration, not per-event cost *)
      let r =
        (* lint: allow A001 once per span path *)
        {
          r_count = 0;
          (* lint: allow A001 once per span path *)
          r_sums = Hashtbl.create 8;
          (* lint: allow A001 once per span path *)
          r_maxes = Hashtbl.create 4;
          (* lint: allow A001 once per span path *)
          r_volatile = Hashtbl.create 4;
        }
      in
      Hashtbl.replace st.d_rows k r;
      r

let bump tbl k v combine =
  match Hashtbl.find_opt tbl k with
  | Some cur -> Hashtbl.replace tbl k (combine cur v)
  | None -> Hashtbl.replace tbl k v

let current_path st =
  match st.d_stack with [] -> st.d_ambient | f :: _ -> f.f_path

let current_key st =
  match st.d_stack with [] -> st.d_ambient_key | f :: _ -> f.f_key

let set_ambient st path =
  st.d_ambient <- path;
  st.d_ambient_key <- path_key path

let add_sum name v =
  if is_enabled () then begin
    let st = state () in
    bump (row_of st (current_key st)).r_sums name v ( + )
  end

let add_max name v =
  if is_enabled () then begin
    let st = state () in
    bump (row_of st (current_key st)).r_maxes name v max
  end

let add_volatile name v =
  if is_enabled () then begin
    let st = state () in
    bump (row_of st (current_key st)).r_volatile name v ( + )
  end

let span_begin st name args =
  let path = current_path st @ [ name ] in
  st.d_stack <-
    {
      f_name = name;
      f_path = path;
      f_key = path_key path;
      f_start_ns = Clock.now_ns ();
      f_start_words = Gc.minor_words ();
      f_args = args;
    }
    :: st.d_stack

let span_end st =
  match st.d_stack with
  | [] -> ()
  | f :: rest ->
      st.d_stack <- rest;
      let now = Clock.now_ns () in
      let dur = max 0 (now - f.f_start_ns) in
      let words = int_of_float (Gc.minor_words () -. f.f_start_words) in
      let r = row_of st f.f_key in
      r.r_count <- r.r_count + 1;
      bump r.r_volatile "ns" dur ( + );
      bump r.r_volatile "minor_w" (max 0 words) ( + );
      st.d_events <-
        {
          ev_name = f.f_name;
          ev_ts_ns = f.f_start_ns;
          ev_dur_ns = dur;
          ev_tid = st.d_tid;
          ev_args = f.f_args;
        }
        :: st.d_events

(* ------------------------------------------------------------------ *)
(* snapshot                                                             *)
(* ------------------------------------------------------------------ *)

let hashtbl_to_sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let split_key k = if k = "" then [] else String.split_on_char '\x1f' k

let row_node row =
  let map_of tbl =
    List.fold_left
      (fun acc (k, v) -> Agg.SMap.add k v acc)
      Agg.SMap.empty (hashtbl_to_sorted tbl)
  in
  {
    Agg.count = row.r_count;
    sums = map_of row.r_sums;
    maxes = map_of row.r_maxes;
    volatile = map_of row.r_volatile;
    children = Agg.SMap.empty;
  }

(* the merged deterministic aggregate plus every recorded trace slice *)
let snapshot () =
  let states = Atomic.get registry in
  let tree =
    List.fold_left
      (fun tree st ->
        List.fold_left
          (fun tree (k, row) -> Agg.add_at tree (split_key k) (row_node row))
          tree
          (hashtbl_to_sorted st.d_rows))
      Agg.empty states
  in
  let events =
    List.concat_map (fun st -> st.d_events) states
    |> List.sort (fun a b -> compare (a.ev_ts_ns, a.ev_tid) (b.ev_ts_ns, b.ev_tid))
  in
  (tree, events)
