(* CONGEST cost meter. Congest.Network.run reports every simulation's
   final accounting here, which attributes rounds / messages / bits to
   the enclosing span — so a leader election inside a pipeline inside a
   bench experiment shows up as congest.* counters on exactly that path,
   and E1-E12 get measured round/message tables instead of bare
   outcomes. The names below are the meter's stable vocabulary; the
   schema checker and the tests both pin them. *)

let k_runs = "congest.runs"
let k_rounds = "congest.rounds"
let k_messages = "congest.messages"
let k_bits = "congest.bits"
let k_max_edge_bits = "congest.max_edge_bits"

(* fault counters, reported by Congest.Network.run only for runs with an
   active fault spec — a fault-free run records nothing here, keeping
   fault-free profiles byte-identical to builds without the fault layer *)
let k_dropped = "net.dropped"
let k_duplicated = "net.duplicated"
let k_crashed_rounds = "net.crashed_rounds"

(* schedule sparsity, reported by Congest.Network.run only for event-driven
   runs — every-round (and reference) runs record nothing here, keeping
   pre-scheduler profiles byte-identical *)
let k_active_vertices = "net.active_vertices"

(* flat-inbox footprint, reported by Congest.Network.run (the reference
   loop keeps list inboxes and records nothing here): the high-watermark
   of machine words retained by the per-vertex / per-shard flat inbox
   buffers, and the residual footprint once the run ends — the pair the
   burst-then-quiescent shrink test pins *)
let k_inbox_peak_words = "net.inbox_peak_words"
let k_inbox_final_words = "net.inbox_final_words"

let net ~rounds ~messages ~total_bits ~max_edge_bits =
  if Rt.is_enabled () then begin
    Metric.incr k_runs;
    Metric.count k_rounds rounds;
    Metric.count k_messages messages;
    Metric.count k_bits total_bits;
    Metric.set_max k_max_edge_bits max_edge_bits
  end

let active ~vertices =
  if Rt.is_enabled () then Metric.count k_active_vertices vertices

let inbox ~peak_words ~final_words =
  if Rt.is_enabled () then begin
    Metric.set_max k_inbox_peak_words peak_words;
    Metric.set_max k_inbox_final_words final_words
  end

let faults ~dropped ~duplicated ~crashed_rounds =
  if Rt.is_enabled () then begin
    Metric.count k_dropped dropped;
    Metric.count k_duplicated duplicated;
    Metric.count k_crashed_rounds crashed_rounds
  end
