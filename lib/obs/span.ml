(* Hierarchical spans. [with_] is the only way code opens one, so every
   span is balanced and exception-safe; when observability is disabled it
   reduces to one atomic load, a branch and the call to [f]. *)

let with_ ?(args = []) name f =
  if not (Rt.is_enabled ()) then f ()
  else begin
    let st = Rt.state () in
    Rt.span_begin st name args;
    Fun.protect ~finally:(fun () -> Rt.span_end st) f
  end

(* per-pool-task span: the task index doubles as the seed salt the pool
   derives per-task seeds from, so the trace identifies the task *)
let task i f = with_ ~args:[ ("task", string_of_int i) ] "pool.task" f

let current_path () =
  if not (Rt.is_enabled ()) then []
  else
    let st = Rt.state () in
    Rt.current_path st

(* Installed by pool workers before they start draining tasks: the
   caller's span path at fan-out time becomes the worker's base path, so
   a task records under the same path whether it runs inline (jobs 1) or
   on a worker domain (jobs N) — required for cross-jobs parity. *)
let set_ambient path =
  if Rt.is_enabled () then begin
    let st = Rt.state () in
    Rt.set_ambient st path
  end
