(* Chrome trace_event exporter: complete events ("ph":"X"), one lane per
   domain, microsecond timestamps rebased to the earliest slice. The
   output loads directly in chrome://tracing and in Perfetto
   (ui.perfetto.dev, "Open trace file"). Timestamps are wall-clock
   derived and therefore intentionally outside the determinism
   contract. *)

let event_json ~t0 (e : Rt.event) =
  let fields =
    [
      ("name", Json.Str e.Rt.ev_name);
      ("cat", Json.Str "span");
      ("ph", Json.Str "X");
      ("ts", Json.Int ((e.Rt.ev_ts_ns - t0) / 1_000));
      ("dur", Json.Int (max 1 (e.Rt.ev_dur_ns / 1_000)));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Rt.ev_tid);
    ]
  in
  let fields =
    match e.Rt.ev_args with
    | [] -> fields
    | args ->
        fields
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ]
  in
  Json.Obj fields

let to_json events =
  let t0 =
    List.fold_left
      (fun acc (e : Rt.event) -> min acc e.Rt.ev_ts_ns)
      max_int events
  in
  let t0 = if t0 = max_int then 0 else t0 in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (event_json ~t0) events));
      ("displayTimeUnit", Json.Str "ms");
    ]
