(** Minimal JSON values: deterministic printing (keys in construction
    order) and a strict parser, shared by the exporters and the
    [bin/check_profile.exe] schema checker. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line form. *)

val to_string_pretty : t -> string
(** Two-space-indented form, trailing newline. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parse; raises {!Parse_error} on malformed input or trailing
    bytes. *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up a field; [None] on other constructors. *)
