(** CONGEST cost meter: attributes simulator accounting to the enclosing
    span. Hooked by [Congest.Network.run]; the metric names are stable
    schema vocabulary. *)

val k_runs : string
val k_rounds : string
val k_messages : string
val k_bits : string
val k_max_edge_bits : string

val k_dropped : string
val k_duplicated : string
val k_crashed_rounds : string
val k_active_vertices : string
val k_inbox_peak_words : string
val k_inbox_final_words : string

val net :
  rounds:int -> messages:int -> total_bits:int -> max_edge_bits:int -> unit
(** Record one network run: [rounds]/[messages]/[total_bits] add to the
    current span's counters; [max_edge_bits] max-merges. No-op while
    observability is disabled. *)

val active : vertices:int -> unit
(** Record one event-driven network run's total scheduled vertex-rounds
    ([net.active_vertices]). Called by the simulator only for
    [Event_driven] runs, so every-round profiles keep their pre-scheduler
    vocabulary. No-op while observability is disabled. *)

val inbox : peak_words:int -> final_words:int -> unit
(** Record one run's flat-inbox footprint: the high-watermark of machine
    words retained by the flat inbox buffers ([net.inbox_peak_words],
    max-merged) and the residual footprint at run end
    ([net.inbox_final_words], max-merged). Called by [Congest.Network.run]
    only — the reference loop has no flat buffers. No-op while
    observability is disabled. *)

val faults : dropped:int -> duplicated:int -> crashed_rounds:int -> unit
(** Record one faulty network run's fault counters ([net.dropped],
    [net.duplicated], [net.crashed_rounds]). Called by the simulator only
    when the fault spec is active, so fault-free profiles carry no fault
    vocabulary. No-op while observability is disabled. *)
