(* The deterministic aggregate: a span tree keyed by span name, each node
   carrying a completion count and integer metrics. Every merge operation
   is commutative and associative (sums, maxima), and every traversal is
   over sorted keys, so the result is independent of the order per-domain
   buffers were registered or drained in — the property behind the
   byte-identical-across---jobs profile contract.

   Metrics live in three maps:
   - [sums]    deterministic integer counters (rounds, messages, bits, ...)
   - [maxes]   deterministic max-merged values (peak edge bits, depth, ...)
   - [volatile] timing-class values (span ns, GC words): excluded from the
     deterministic exports and from parity comparisons. *)

module SMap = Map.Make (String)

type node = {
  count : int;
  sums : int SMap.t;
  maxes : int SMap.t;
  volatile : int SMap.t;
  children : node SMap.t;
}

let empty =
  {
    count = 0;
    sums = SMap.empty;
    maxes = SMap.empty;
    volatile = SMap.empty;
    children = SMap.empty;
  }

let merge_int_map f a b = SMap.union (fun _ x y -> Some (f x y)) a b

let rec merge a b =
  {
    count = a.count + b.count;
    sums = merge_int_map ( + ) a.sums b.sums;
    maxes = merge_int_map max a.maxes b.maxes;
    volatile = merge_int_map ( + ) a.volatile b.volatile;
    children = SMap.union (fun _ x y -> Some (merge x y)) a.children b.children;
  }

(* graft [row] (a leaf-shaped node) onto the tree at [path] *)
let rec add_at tree path row =
  match path with
  | [] -> merge tree row
  | name :: rest ->
      let child =
        Option.value (SMap.find_opt name tree.children) ~default:empty
      in
      {
        tree with
        children = SMap.add name (add_at child rest row) tree.children;
      }

let find_path tree path =
  let rec go node = function
    | [] -> Some node
    | name :: rest -> (
        match SMap.find_opt name node.children with
        | Some c -> go c rest
        | None -> None)
  in
  go tree path

(* global metric totals: sums summed, maxes maxed, over the whole tree *)
let totals tree =
  let rec go (sums, maxes) node =
    let sums = merge_int_map ( + ) sums node.sums in
    let maxes = merge_int_map max maxes node.maxes in
    SMap.fold (fun _ c acc -> go acc c) node.children (sums, maxes)
  in
  go (SMap.empty, SMap.empty) tree

(* ------------------------------------------------------------------ *)
(* JSON forms                                                           *)
(* ------------------------------------------------------------------ *)

let int_map_json m =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (SMap.bindings m))

(* deterministic form: no volatile metrics, children sorted by name *)
let rec to_json node =
  let fields = [ ("count", Json.Int node.count) ] in
  let fields =
    if SMap.is_empty node.sums then fields
    else fields @ [ ("metrics", int_map_json node.sums) ]
  in
  let fields =
    if SMap.is_empty node.maxes then fields
    else fields @ [ ("max", int_map_json node.maxes) ]
  in
  let fields =
    if SMap.is_empty node.children then fields
    else
      fields
      @ [
          ( "children",
            Json.Obj
              (List.map
                 (fun (name, c) -> (name, to_json c))
                 (SMap.bindings node.children)) );
        ]
  in
  Json.Obj fields

(* volatile mirror: the timing-class metrics, same tree shape *)
let rec volatile_json node =
  let fields =
    List.map (fun (k, v) -> (k, Json.Int v)) (SMap.bindings node.volatile)
  in
  let fields =
    if SMap.is_empty node.children then fields
    else
      fields
      @ [
          ( "children",
            Json.Obj
              (List.map
                 (fun (name, c) -> (name, volatile_json c))
                 (SMap.bindings node.children)) );
        ]
  in
  Json.Obj fields

(* flat dump: "a/b/c" -> metrics, sorted by path *)
let flat_json tree =
  let rows = ref [] in
  let rec go prefix node =
    let path = String.concat "/" (List.rev prefix) in
    if node.count > 0 || not (SMap.is_empty node.sums) then
      rows :=
        ( path,
          Json.Obj
            ([ ("count", Json.Int node.count) ]
            @ (if SMap.is_empty node.sums then []
               else [ ("metrics", int_map_json node.sums) ])
            @
            if SMap.is_empty node.maxes then []
            else [ ("max", int_map_json node.maxes) ]) )
        :: !rows;
    SMap.iter (fun name c -> go (name :: prefix) c) node.children
  in
  go [] tree;
  Json.Obj (List.sort (fun (a, _) (b, _) -> compare a b) !rows)

(* ------------------------------------------------------------------ *)
(* ASCII rendering                                                      *)
(* ------------------------------------------------------------------ *)

let span_tree_lines tree =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let metrics_suffix node =
    let cells =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        (SMap.bindings node.sums)
      @ List.map
          (fun (k, v) -> Printf.sprintf "%s<=%d" k v)
          (SMap.bindings node.maxes)
    in
    let ns =
      match SMap.find_opt "ns" node.volatile with
      | Some ns -> [ Printf.sprintf "%.2fms" (float_of_int ns /. 1e6) ]
      | None -> []
    in
    match ns @ cells with
    | [] -> ""
    | cs -> "  [" ^ String.concat " " cs ^ "]"
  in
  let rec go indent name node =
    add "%s%s x%d%s" (String.make indent ' ') name node.count
      (metrics_suffix node);
    SMap.iter (fun n c -> go (indent + 2) n c) node.children
  in
  SMap.iter (fun n c -> go 0 n c) tree.children;
  List.rev !lines

let to_ascii tree = String.concat "\n" (span_tree_lines tree) ^ "\n"
