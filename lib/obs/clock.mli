(** The single sanctioned clock module (the D003 linter sink). All
    wall-clock reads in the repo must go through these two functions. *)

val now_ns : unit -> int
(** Wall clock in integer nanoseconds since the Unix epoch. Used for span
    durations and trace timestamps; never fold the value into results. *)

val wall_s : unit -> float
(** Wall clock in seconds, for harness-level elapsed-time reporting. *)
