(** Hierarchical, monotonic-clock-timed, domain-tagged spans. *)

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span called [name], nested under the
    current span of the calling domain. Exception-safe. When
    observability is disabled this is one atomic load and a branch. The
    optional [args] are attached to the Chrome-trace slice only — they
    never enter the deterministic aggregate. *)

val task : int -> (unit -> 'a) -> 'a
(** A [pool.task] span carrying the task index as a trace arg; used by
    [Parallel.Pool] around every fanned-out task. *)

val current_path : unit -> string list
(** The calling domain's current span path (outermost first); [[]] when
    disabled or outside any span. *)

val set_ambient : string list -> unit
(** Install a base path for this domain: spans and metrics recorded with
    an empty stack attach under it. Pool workers install the fan-out
    caller's path so jobs-1 and jobs-N runs aggregate identically. *)
