(* Profile assembly. A profile has exactly two top-level sections:

   - "deterministic": the aggregated span tree (counts, integer counters,
     max-merged gauges) plus whole-run totals. Byte-identical across runs
     and across --jobs settings; parity tests and bin/check_profile.exe
     --compare operate on this section's canonical string.
   - "volatile": everything wall-clock or allocator derived (span ns, GC
     words, jobs, harness metadata). Excluded from comparisons.

   The split is structural rather than a naming convention so that a new
   metric cannot silently end up on the wrong side: deterministic values
   flow through Metric.count/set_max/hist, volatile ones through span
   timing and Metric.volatile. *)

let schema_name = "expander-obs-profile"

let schema_version = 1

let deterministic_section tree =
  let sums, maxes = Agg.totals tree in
  Json.Obj
    [
      ("spans", Agg.to_json tree);
      ("totals", Agg.int_map_json sums);
      ("peaks", Agg.int_map_json maxes);
    ]

let deterministic_string tree = Json.to_string (deterministic_section tree)

let profile_json ?(meta = []) tree =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Int schema_version);
      ("deterministic", deterministic_section tree);
      ( "volatile",
        Json.Obj (meta @ [ ("spans", Agg.volatile_json tree) ]) );
    ]

let metrics_json tree = Agg.flat_json tree

let to_ascii tree = Agg.to_ascii tree

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc
