(** Chrome [trace_event] exporter (complete events, one lane per domain);
    the output loads in chrome://tracing and Perfetto. *)

val to_json : Rt.event list -> Json.t
