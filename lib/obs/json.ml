(* Minimal JSON value type, printer and recursive-descent parser. The
   exporters emit through this module so key order is exactly the order
   the caller constructed (deterministic sections stay byte-stable), and
   bin/check_profile.exe parses with the same code, so the schema checker
   and the emitter can never drift on syntax. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* finite floats only; the exporters never emit nan/inf *)
      Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b v;
  Buffer.contents b

(* pretty printer: two-space indent, keys in construction order *)
let rec emit_pretty b indent = function
  | List ([] : t list) -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          emit_pretty b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
  | Obj kvs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit_pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'
  | v -> emit b v

let to_string_pretty v =
  let b = Buffer.create 4096 in
  emit_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> error c "bad \\u escape"
            | Some code ->
                c.pos <- c.pos + 4;
                (* ASCII range only; the exporters never emit more *)
                if code < 128 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?');
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string_raw c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> error c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> error c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* accessors for the checker                                            *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
