(* Integer metrics, attributed to the calling domain's current span.
   Only integers: float sums would make merged values depend on merge
   order and break the cross-jobs parity contract. *)

(* lint: hot *)
let count name v = Rt.add_sum name v

(* lint: hot *)
let incr name = Rt.add_sum name 1

(* lint: hot *)
let set_max name v = Rt.add_max name v

(* power-of-two histogram: one deterministic counter per bucket, so the
   distribution of e.g. cluster sizes survives aggregation *)
let bucket_of v =
  let rec go b acc = if acc >= v then b else go (b + 1) (acc * 2) in
  if v <= 0 then 0 else go 0 1

let hist name v = Rt.add_sum (Printf.sprintf "%s.p2_%02d" name (bucket_of v)) 1

(* timing-class values (ns, GC words): summed, but kept out of the
   deterministic exports *)
let volatile name v = Rt.add_volatile name v
