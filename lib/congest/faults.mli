(** Seeded, deterministic fault injection for {!Network.run}.

    The fault model covers the failure classes the expander-routing
    literature cares about (Chang–Saranurak deterministic expander routing
    is exactly a robustness statement about communication schedules):

    - {b message drops}: each sent message is lost independently with
      probability [drop_rate] (Bernoulli per message);
    - {b message duplication}: each delivered message is delivered a second
      time in the same round with probability [duplicate_rate] (a flaky
      link re-transmitting);
    - {b vertex crashes}: a schedule of [crash] events removes vertices at
      the start of a round — a crashed vertex executes no round function,
      sends nothing, and every message addressed to it is dropped; a
      crash-recover entry brings it back with its pre-crash state (its
      inbox is lost);
    - {b link outages}: an undirected link is down for a closed round
      interval; messages crossing it in either direction are dropped.

    All randomness is drawn from a [Random.State] derived from the
    explicit [seed] (never the global PRNG, D001), and fault decisions are
    consumed in the simulator's deterministic traversal order — so a run
    with the same graph, algorithm and fault spec is byte-identical across
    reruns and worker-pool sizes. *)

type crash = {
  vertex : int;
  at_round : int;  (** crashes at the start of this round (1-based) *)
  recover_round : int option;
      (** rejoins at the start of this round with its pre-crash state;
          [None] = crashed forever *)
}

type outage = {
  u : int;
  v : int;  (** undirected link; both directions are affected *)
  from_round : int;
  until_round : int;  (** inclusive *)
}

type t = private {
  seed : int;
  drop_rate : float;
  duplicate_rate : float;
  crashes : crash list;
  outages : outage list;
}

(** The no-fault spec: {!Network.run} with [none] behaves exactly like a
    run without the [?faults] argument. *)
val none : t

(** [make ~seed ()] builds a validated spec. Rates must lie in [[0, 1]];
    crash/outage rounds must be >= 1 with [recover_round > at_round] and
    [from_round <= until_round]; outage endpoints must differ.
    @raise Invalid_argument on a malformed spec. *)
val make :
  ?drop_rate:float ->
  ?duplicate_rate:float ->
  ?crashes:crash list ->
  ?outages:outage list ->
  seed:int ->
  unit ->
  t

(** Whether any fault dimension is switched on. [is_active none = false];
    the simulator skips all fault bookkeeping (and the meter stays silent)
    when inactive. *)
val is_active : t -> bool

(** The spec's PRNG: a fresh [Random.State] deterministically derived from
    [seed]. Two calls return independent states with identical streams. *)
val rng : t -> Random.State.t

(** [shard_rng t ~shard] is a per-shard stream, decorrelated from {!rng}
    and from every other shard via {!Parallel.Pool.derive_seed}. The
    sharded simulator deliberately does {e not} draw its drop/duplicate
    fates from these: those draws happen on the single {!rng} stream in
    the sequential cross-shard exchange, in exactly the reference loop's
    sender-ascending order, so fixed-seed fault outcomes are identical at
    every shard and jobs count. Use this for shard-local randomness that
    has no sequential oracle to match.
    @raise Invalid_argument if [shard < 0]. *)
val shard_rng : t -> shard:int -> Random.State.t

(** Round-indexed fault bookkeeping shared by the simulator loops.
    [crash_at] / [recover_at] list the vertices crashing / recovering at
    the start of a given round; [link_down r u v] tells whether the
    {e undirected} link [u -- v] is out in round [r]; [event_rounds] is
    the sorted distinct rounds at which a crash or recovery fires — the
    events an event-driven fast-forward must not jump over. *)
type tables = {
  crash_at : (int, int) Hashtbl.t;
  recover_at : (int, int) Hashtbl.t;
  link_down : int -> int -> int -> bool;
  event_rounds : int array;
}

(** [tables t ~n] builds the bookkeeping for an [n]-vertex network.
    Crash entries for vertices [>= n] are ignored; with [is_active t =
    false] every table is empty. *)
val tables : t -> n:int -> tables

val pp : Format.formatter -> t -> unit
