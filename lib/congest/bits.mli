(** Declared bit sizes for messages, in the paper's O(log n)-bits-per-word
    accounting. *)

(** [ceil_log2 n] is [ceil(log2 (max n 2))], computed with integer
    arithmetic so it is exact at powers of two (the floating-point
    [ceil (log n /. log 2.)] is off by one at e.g. [n = 2^29]). *)
val ceil_log2 : int -> int

(** Bits needed for a vertex id in an n-vertex network:
    [ceil(log2 (max n 2))]. *)
val id_bits : int -> int

(** [words n k] is the size of a message carrying [k] ids: [k * id_bits n]. *)
val words : int -> int -> int
