(** Declared bit sizes for messages, in the paper's O(log n)-bits-per-word
    accounting. *)

(** Bits needed for a vertex id in an n-vertex network:
    [ceil(log2 (max n 2))]. *)
val id_bits : int -> int

(** [words n k] is the size of a message carrying [k] ids: [k * id_bits n]. *)
val words : int -> int -> int
