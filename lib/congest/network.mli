(** Synchronous message-passing simulator for the LOCAL and CONGEST models.

    Vertices host processors and operate in synchronized rounds (Section 1
    of the paper). Each round, every non-halted vertex receives the messages
    sent to it in the previous round, updates its state, and sends messages
    to neighbors. In CONGEST mode the simulator {e enforces} the bandwidth
    restriction: the total declared bit-size of the messages crossing a
    directed edge in one round must not exceed the per-edge budget, or the
    run aborts with {!Congestion_violation}.

    The simulator uses the KT1 variant: a vertex knows its own id and the
    ids of its neighbors (the paper's algorithms, e.g. leader election in
    Theorem 2.6, exchange ids freely). *)

(** Per-edge per-round bandwidth. [Congest bits] enforces the budget;
    [Local] is the LOCAL model (unlimited). The paper's CONGEST budget is
    [O(log n)]: use {!congest_bandwidth}. *)
type bandwidth = Congest of int | Local

(** [congest_bandwidth ?c n] is [c * ceil(log2 (max n 2))] bits (default
    [c = 8], a conventional constant), computed with integer bit counting
    ({!Bits.ceil_log2}) so the budget is exact at powers of two. *)
val congest_bandwidth : ?c:int -> int -> bandwidth

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

(** What the processor at a vertex can see locally. *)
type ctx = {
  id : int;               (** this vertex's id *)
  n_hint : int;           (** number of network nodes (standard assumption) *)
  neighbors : int array;  (** ids of adjacent vertices, sorted *)
}

(** One vertex's round outcome: new state, outgoing messages as
    [(neighbor, message)] pairs, whether the vertex halts, and an optional
    wake-up request. The messages a vertex sends in its halting round are
    still delivered (they were sent before it stopped); from the next round
    on it sends nothing and its state no longer changes. Messages arriving
    at an already-halted vertex are dropped.

    [wake_after] only matters under {!Event_driven} scheduling (it is
    ignored otherwise): [Some d] (with [d >= 1]) asks to be stepped again
    in round [r + d] even if no message arrives; [None] sleeps until the
    next incoming message. Each step replaces the previous request, and
    halting cancels it. *)
type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
  wake_after : int option;
}

(** [step ?wake_after ?send ?halt state] builds a {!step}; [send] defaults
    to no messages, [halt] to [false] and [wake_after] to [None]. *)
val step :
  ?wake_after:int ->
  ?send:(int * 'msg) list ->
  ?halt:bool ->
  'state ->
  ('state, 'msg) step

(** How {!run} decides which vertices to step each round.

    [Every_round] (the default) steps every non-halted, non-crashed vertex
    every round — the classic synchronous sweep, call-for-call identical
    to {!run_reference}.

    [Event_driven] steps a vertex in round [r] only if it received a
    message in round [r - 1], just recovered from a crash, or requested a
    wake-up via [wake_after] (round 1 steps everyone). An algorithm is
    eligible for this mode only if it honors the {e wake-up contract}: a
    round call with an empty inbox outside the vertex's own wake-up
    requests must be a no-op — it sends nothing, does not halt, and any
    state change is observationally irrelevant. Under that contract the
    skipped calls are exactly no-ops, so stats and final outputs are
    identical to [Every_round]; rounds in which no vertex is scheduled are
    fast-forwarded without iterating anything. *)
type schedule = Every_round | Event_driven

(** Bit-packed message encoding for the sharded loop. [pack m] either
    returns a {e non-negative} int — the message rides in the arena's
    payload word, no allocation — or any negative int as an escape, in
    which case the message is boxed in a per-shard wide-message spill
    array and the payload word stores the spill index. [unpack] must be a
    left inverse of [pack] on the non-negative range ([unpack (pack m) =
    m] whenever [pack m >= 0]); it is never called for escaped messages.
    Both functions run on worker domains and must be pure. *)
type 'msg codec = { pack : 'msg -> int; unpack : int -> 'msg }

(** The identity codec for [int] messages: every non-negative message is
    packed immediate; negative ints fall back to the boxed spill. *)
val int_codec : int codec

(** [boxed_codec ()] never packs: every message goes through the boxed
    spill. Correct for any message type; the default when {!run} is given
    no codec. *)
val boxed_codec : unit -> 'msg codec

(** How {!run} executes the simulation.

    [Single] (the default) runs the sequential loop on the calling domain.

    [Sharded { shards; pool }] partitions the vertices into [shards]
    contiguous CSR-aligned ranges (vertex [v] lives in shard [v / chunk]
    with [chunk = ceil (n / shards)]) and steps the shards in parallel on
    [pool]'s domains, one barrier per round, while all cross-shard
    delivery — bandwidth accounting, congestion checks, fault draws —
    happens sequentially on the calling domain between barriers, in the
    exact sender-ascending order of the sequential loops. Results (final
    states and {!stats}) are identical to [Single] at every shard and
    jobs count, including fixed-seed fault outcomes. [shards] is clamped
    to at least 1; [shards = 1] still exercises the sharded loop.

    Under [Sharded], the user's [init], [round], [msg_bits] and codec
    functions execute on worker domains: they must be domain-safe pure
    functions of their arguments (the wake-up contract already demands
    this of [round]). *)
type exec = Single | Sharded of { shards : int; pool : Parallel.Pool.t }

(** Cumulative execution statistics. The accounting invariant is
    [delivered stats + stats.dropped = stats.messages]: every sent message
    is either delivered into an inbox or counted as dropped (injected
    fault, destination crashed, or destination already halted). *)
type stats = {
  rounds : int;                (** rounds executed *)
  messages : int;              (** total messages sent (bandwidth spent) *)
  dropped : int;               (** sent but never delivered: faults plus
                                   messages to crashed/halted vertices *)
  duplicated : int;            (** extra deliveries injected by the fault
                                   layer (not counted in [messages]) *)
  crashed_rounds : int;        (** vertex-rounds spent crashed *)
  total_bits : int;            (** total declared bits sent *)
  max_edge_bits : int;         (** max bits on one directed edge in one round *)
  completed : bool;            (** every vertex halted (or crashed) before
                                   the round cap *)
  last_traffic_round : int;    (** last round in which any message was sent;
                                   0 if the run was silent *)
}

(** [messages - dropped]: messages that actually reached an inbox (each
    duplicated message is delivered once more on top of this). *)
val delivered : stats -> int

val pp_stats : Format.formatter -> stats -> unit

(** [run g ~bandwidth ~msg_bits ~init ~round ~max_rounds] executes the
    algorithm synchronously on the topology [g] and returns the final
    states with statistics. [init ctx] builds the starting state; [round r
    ctx state inbox] computes round [r >= 1] ([inbox] lists [(sender,
    message)] pairs received this round, sorted by sender). Execution stops
    when every vertex has halted, or after [max_rounds] rounds.

    [?faults] injects deterministic faults (see {!Faults}): dropped and
    duplicated messages, vertex crash / crash-recover schedules, and link
    outages. Crashed vertices execute no round function and send nothing;
    a permanently crashed vertex counts toward completion (the network
    cannot wait for it). Senders are charged bandwidth for dropped
    messages — the loss happens on the wire, after the send. With
    [Faults.none] (the default) the run is byte-identical to one without
    the argument, and no fault counters reach the cost meter.

    [?schedule] selects the scheduling discipline (default {!Every_round});
    see {!schedule}. Fault injection composes with both modes: the fault
    RNG's draw order (vertices ascending, each vertex's sends in list
    order, one optional draw per sent then per delivered message) is a
    property of the delivery sweep and does not depend on which sleeping
    vertices were skipped, so fixed-seed fault outcomes are identical
    across schedules for contract-honoring algorithms.

    [?exec] selects sequential or sharded execution (default {!Single});
    see {!exec}. [?codec] supplies the bit-packed message encoding used by
    the sharded loop's arenas (default [boxed_codec ()]); it is ignored
    under [Single].

    @raise Congestion_violation when a CONGEST budget is exceeded.
    @raise Invalid_argument if a vertex sends to a non-neighbor, or
    requests [wake_after] < 1. *)
val run :
  ?faults:Faults.t ->
  ?schedule:schedule ->
  ?exec:exec ->
  ?codec:'msg codec ->
  Sparse_graph.Graph.t ->
  bandwidth:bandwidth ->
  msg_bits:('msg -> int) ->
  init:(ctx -> 'state) ->
  round:(int -> ctx -> 'state -> (int * 'msg) list -> ('state, 'msg) step) ->
  max_rounds:int ->
  'state array * stats

(** The pre-scheduler simulator loop, kept verbatim as the behavioral
    baseline: it steps every non-halted, non-crashed vertex every round,
    re-sorts each inbox, and ignores [wake_after]. [run] must be
    stats-identical to it (the equivalence suite in [test/] pins this); it
    is also the slow side of the [congest-bench] comparison. Not for
    production use. *)
val run_reference :
  ?faults:Faults.t ->
  Sparse_graph.Graph.t ->
  bandwidth:bandwidth ->
  msg_bits:('msg -> int) ->
  init:(ctx -> 'state) ->
  round:(int -> ctx -> 'state -> (int * 'msg) list -> ('state, 'msg) step) ->
  max_rounds:int ->
  'state array * stats
