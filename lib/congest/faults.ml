type crash = {
  vertex : int;
  at_round : int;
  recover_round : int option;
}

type outage = {
  u : int;
  v : int;
  from_round : int;
  until_round : int;
}

type t = {
  seed : int;
  drop_rate : float;
  duplicate_rate : float;
  crashes : crash list;
  outages : outage list;
}

let none =
  { seed = 0; drop_rate = 0.; duplicate_rate = 0.; crashes = []; outages = [] }

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Faults.make: %s %g outside [0, 1]" name r)

let check_crash c =
  if c.vertex < 0 then
    invalid_arg (Printf.sprintf "Faults.make: crash vertex %d < 0" c.vertex);
  if c.at_round < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: crash round %d < 1 (rounds are 1-based)"
         c.at_round);
  match c.recover_round with
  | Some r when r <= c.at_round ->
      invalid_arg
        (Printf.sprintf
           "Faults.make: vertex %d recovers at round %d <= crash round %d"
           c.vertex r c.at_round)
  | _ -> ()

let check_outage o =
  if o.u < 0 || o.v < 0 then
    invalid_arg "Faults.make: outage endpoint < 0";
  if o.u = o.v then
    invalid_arg (Printf.sprintf "Faults.make: outage self-loop at %d" o.u);
  if o.from_round < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: outage round %d < 1 (rounds are 1-based)"
         o.from_round);
  if o.until_round < o.from_round then
    invalid_arg
      (Printf.sprintf "Faults.make: outage interval [%d, %d] is empty"
         o.from_round o.until_round)

let make ?(drop_rate = 0.) ?(duplicate_rate = 0.) ?(crashes = [])
    ?(outages = []) ~seed () =
  check_rate "drop_rate" drop_rate;
  check_rate "duplicate_rate" duplicate_rate;
  List.iter check_crash crashes;
  List.iter check_outage outages;
  { seed; drop_rate; duplicate_rate; crashes; outages }

let is_active t =
  t.drop_rate > 0. || t.duplicate_rate > 0. || t.crashes <> []
  || t.outages <> []

(* mixing constants so that spec seed s and, say, an algorithm seed s used
   elsewhere in the same run cannot collide into the same stream *)
let rng t = Random.State.make [| t.seed; 0x6A09; 0xE667; 0xF3BC |]

(* Decorrelated per-shard stream: the shard id goes through the pool's
   splitmix finalizer so shard 0's stream is not the global {!rng} and
   adjacent shards do not share prefixes. The sharded simulator keeps its
   drop/duplicate draws on the single {!rng} stream (drawn in the
   sequential exchange, so draw order — and every fixed-seed equivalence
   pin against run_reference — is preserved at every shard count); this
   derived stream is for shard-local randomness that never has to match
   a sequential oracle. *)
let shard_rng t ~shard =
  if shard < 0 then
    invalid_arg (Printf.sprintf "Faults.shard_rng: shard %d < 0" shard);
  Random.State.make
    [| Parallel.Pool.derive_seed t.seed shard; 0x6A09; 0xE667; 0xF3BC |]

(* Round-indexed fault bookkeeping shared by every simulator loop: crash /
   recovery schedules keyed by round, the link-outage predicate, and the
   sorted distinct rounds at which a crash or recovery fires (the events
   an event-driven fast-forward must not jump over). All of it dormant
   when the spec is inactive. *)
type tables = {
  crash_at : (int, int) Hashtbl.t;
  recover_at : (int, int) Hashtbl.t;
  link_down : int -> int -> int -> bool;
  event_rounds : int array;
}

let tables t ~n =
  let crash_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let recover_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  if is_active t then
    List.iter
      (fun (c : crash) ->
        if c.vertex < n then begin
          Hashtbl.add crash_at c.at_round c.vertex;
          match c.recover_round with
          | Some r -> Hashtbl.add recover_at r c.vertex
          | None -> ()
        end)
      t.crashes;
  let link_down =
    if t.outages = [] then fun _ _ _ -> false
    else begin
      let tbl : (int * int, int * int) Hashtbl.t = Hashtbl.create 7 in
      List.iter
        (fun (o : outage) ->
          let key = (min o.u o.v, max o.u o.v) in
          Hashtbl.add tbl key (o.from_round, o.until_round))
        t.outages;
      fun r a b ->
        List.exists
          (fun (lo, hi) -> lo <= r && r <= hi)
          (Hashtbl.find_all tbl (min a b, max a b))
    end
  in
  let event_rounds =
    Array.of_list
      (List.sort_uniq Int.compare
         (Hashtbl.fold
            (fun k _ acc -> k :: acc)
            crash_at
            (Hashtbl.fold (fun k _ acc -> k :: acc) recover_at [])))
  in
  { crash_at; recover_at; link_down; event_rounds }

let pp ppf t =
  Format.fprintf ppf
    "seed=%d drop=%g dup=%g crashes=%d outages=%d" t.seed t.drop_rate
    t.duplicate_rate (List.length t.crashes) (List.length t.outages)
