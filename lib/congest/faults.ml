type crash = {
  vertex : int;
  at_round : int;
  recover_round : int option;
}

type outage = {
  u : int;
  v : int;
  from_round : int;
  until_round : int;
}

type t = {
  seed : int;
  drop_rate : float;
  duplicate_rate : float;
  crashes : crash list;
  outages : outage list;
}

let none =
  { seed = 0; drop_rate = 0.; duplicate_rate = 0.; crashes = []; outages = [] }

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Faults.make: %s %g outside [0, 1]" name r)

let check_crash c =
  if c.vertex < 0 then
    invalid_arg (Printf.sprintf "Faults.make: crash vertex %d < 0" c.vertex);
  if c.at_round < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: crash round %d < 1 (rounds are 1-based)"
         c.at_round);
  match c.recover_round with
  | Some r when r <= c.at_round ->
      invalid_arg
        (Printf.sprintf
           "Faults.make: vertex %d recovers at round %d <= crash round %d"
           c.vertex r c.at_round)
  | _ -> ()

let check_outage o =
  if o.u < 0 || o.v < 0 then
    invalid_arg "Faults.make: outage endpoint < 0";
  if o.u = o.v then
    invalid_arg (Printf.sprintf "Faults.make: outage self-loop at %d" o.u);
  if o.from_round < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: outage round %d < 1 (rounds are 1-based)"
         o.from_round);
  if o.until_round < o.from_round then
    invalid_arg
      (Printf.sprintf "Faults.make: outage interval [%d, %d] is empty"
         o.from_round o.until_round)

let make ?(drop_rate = 0.) ?(duplicate_rate = 0.) ?(crashes = [])
    ?(outages = []) ~seed () =
  check_rate "drop_rate" drop_rate;
  check_rate "duplicate_rate" duplicate_rate;
  List.iter check_crash crashes;
  List.iter check_outage outages;
  { seed; drop_rate; duplicate_rate; crashes; outages }

let is_active t =
  t.drop_rate > 0. || t.duplicate_rate > 0. || t.crashes <> []
  || t.outages <> []

(* mixing constants so that spec seed s and, say, an algorithm seed s used
   elsewhere in the same run cannot collide into the same stream *)
let rng t = Random.State.make [| t.seed; 0x6A09; 0xE667; 0xF3BC |]

let pp ppf t =
  Format.fprintf ppf
    "seed=%d drop=%g dup=%g crashes=%d outages=%d" t.seed t.drop_rate
    t.duplicate_rate (List.length t.crashes) (List.length t.outages)
