let id_bits n =
  max 1 (int_of_float (ceil (log (float_of_int (max n 2)) /. log 2.)))

let words n k = k * id_bits n
