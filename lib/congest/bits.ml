(* ceil(log2 n) by integer halving. The floating-point formula
   ceil (log n /. log 2.) rounds up at some exact powers of two (the first
   is n = 2^29, where the quotient lands just above the integer), which
   would inflate every bandwidth budget derived from it by one word. *)
let ceil_log2 n =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) ((x + 1) / 2) in
  go 0 (max n 2)

let id_bits n = ceil_log2 n

let words n k = k * id_bits n
