open Sparse_graph

type bandwidth = Congest of int | Local

let congest_bandwidth ?(c = 8) n = Congest (c * Bits.id_bits n)

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

type ctx = {
  id : int;
  n_hint : int;
  neighbors : int array;
}

type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
  wake_after : int option;
}

let step ?wake_after ?(send = []) ?(halt = false) state =
  { state; send; halt; wake_after }

type schedule = Every_round | Event_driven

(* Bit-packed message transport for the sharded loop: a message whose
   [pack] is non-negative travels as one immediate int in the arena's
   payload column; a negative [pack] is the escape hatch — the message is
   spilled boxed into the shard's wide-message side array and the payload
   column stores the (negated, 1-based) spill index. *)
type 'msg codec = { pack : 'msg -> int; unpack : int -> 'msg }

(* lint: hot *)
let int_codec = { pack = (fun (m : int) -> m); unpack = (fun w -> w) }

(* lint: hot *)
let boxed_codec () =
  {
    pack = (fun _ -> -1);
    unpack =
      (fun _ ->
        invalid_arg "Congest.Network: boxed codec carries no packed payloads");
  }

type exec = Single | Sharded of { shards : int; pool : Parallel.Pool.t }

type stats = {
  rounds : int;
  messages : int;
  dropped : int;
  duplicated : int;
  crashed_rounds : int;
  total_bits : int;
  max_edge_bits : int;
  completed : bool;
  last_traffic_round : int;
}

let delivered s = s.messages - s.dropped

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d dropped=%d duplicated=%d crashed_rounds=%d \
     total_bits=%d max_edge_bits=%d completed=%b last_traffic=%d"
    s.rounds s.messages s.dropped s.duplicated s.crashed_rounds s.total_bits
    s.max_edge_bits s.completed s.last_traffic_round

(* Shared fault bookkeeping lives in Faults.tables (crash / recovery
   schedules keyed by round, the link-outage predicate, the sorted event
   rounds); the loops below only unpack it. *)

(* ------------------------------------------------------------------ *)
(* Reference loop                                                      *)
(* ------------------------------------------------------------------ *)

(* The pre-scheduler implementation, kept byte-for-byte in behavior as the
   equivalence baseline for [run] and as the slow side of the congest-bench
   comparison. It ignores [wake_after] and steps every non-halted,
   non-crashed vertex every round. *)
let run_reference ?(faults = Faults.none) g ~bandwidth ~msg_bits ~init ~round
    ~max_rounds =
  let n = Graph.n g in
  let ctxs =
    Array.init n (fun v ->
        { id = v; n_hint = n; neighbors = Array.of_list (Graph.neighbors g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  (* A crashed vertex leaves [live] (a permanently crashed vertex must not
     block completion) and re-enters on recovery. Fault randomness is
     drawn from the spec's own seeded state in the simulator's
     deterministic traversal order, so runs are byte-identical across
     reruns and worker-pool sizes. *)
  let faulty = Faults.is_active faults in
  let crashed = Array.make n false in
  let frng = Faults.rng faults in
  let { Faults.crash_at; recover_at; link_down; _ } = Faults.tables faults ~n in
  (* scratch for the per-directed-edge bandwidth accounting, reused across
     vertices and rounds; [touched] lists the destinations to reset *)
  let edge_bits = Array.make n 0 in
  let touched = ref [] in
  let is_neighbor v w =
    (* binary search in the vertex's sorted neighbor row; avoids the
       per-message incidence lookup in the graph *)
    let row = ctxs.(v).neighbors in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = w then found := true
      else if x < w then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* crash / recovery events take effect at the start of the round: a
       vertex crashing in round r does not execute round r; a vertex
       recovering in round r executes round r with its pre-crash state
       and an empty inbox *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            inboxes.(v) <- [];
            decr live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    (* collect this round's traffic; per directed edge bit accounting *)
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if halted.(v) then inboxes.(v) <- []
      else if crashed.(v) then begin
        inboxes.(v) <- [];
        incr crashed_rounds
      end
      else begin
        let inbox =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
        in
        inboxes.(v) <- [];
        let st = round r ctxs.(v) states.(v) inbox in
        states.(v) <- st.state;
        (* a halting vertex's final sends still go out this round *)
        outgoing.(v) <- st.send;
        if st.halt then begin
          halted.(v) <- true;
          decr live
        end
      end
    done;
    for v = 0 to n - 1 do
      (* enforce bandwidth per directed edge (v -> w) *)
      List.iter
        (fun (w, msg) ->
          if not (is_neighbor v w) then
            invalid_arg
              (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d"
                 v w);
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then touched := w :: !touched;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          (* fate of the message: the sender has spent the bandwidth
             either way; every non-delivery is counted in [dropped] so
             that delivered + dropped = messages always holds *)
          if faulty && link_down r v w then incr dropped
          else if crashed.(w) then incr dropped
          else if halted.(w) then incr dropped
          else if
            faults.drop_rate > 0.
            && Random.State.float frng 1. < faults.drop_rate
          then incr dropped
          else begin
            inboxes.(w) <- (v, msg) :: inboxes.(w);
            if
              faults.duplicate_rate > 0.
              && Random.State.float frng 1. < faults.duplicate_rate
            then begin
              inboxes.(w) <- (v, msg) :: inboxes.(w);
              incr duplicated
            end
          end)
        outgoing.(v);
      List.iter (fun w -> edge_bits.(w) <- 0) !touched;
      touched := []
    done
  done;
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )

(* ------------------------------------------------------------------ *)
(* Active-vertex scheduler                                             *)
(* ------------------------------------------------------------------ *)

(* in-place ascending quicksort of a.(0 .. len-1); entries are distinct
   vertex ids, so partitioning details cannot affect the result *)
(* lint: hot *)
let sort_prefix a len =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec go lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      go lo !j;
      go !i hi
    end
  in
  if len > 1 then go 0 (len - 1)

(* sends are normally listed in ascending neighbor order, so a moving
   cursor over the sorted row validates them in O(1) amortized; an
   out-of-order send falls back to binary search *)
(* lint: hot *)
let check_neighbor row cursor v w =
  let len = Array.length row in
  let c = !cursor in
  if c < len && row.(c) = w then cursor := c + 1
  else begin
    let lo = ref 0 and hi = ref (len - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = w then found := mid
      else if x < w then lo := mid + 1
      else hi := mid - 1
    done;
    if !found < 0 then
      invalid_arg
        (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d" v w);
    cursor := !found + 1
  end

(* The event-driven loop. The determinism contract it preserves, relied on
   by the fault layer's RNG: per round, vertices execute in ascending id
   order and each vertex's sends are processed in list order, so the k-th
   [Random.State] draw of a run lands on the same message as in
   [run_reference]. Under [Every_round] scheduling the sequence of round
   calls is identical to the reference; under [Event_driven] it is a
   subsequence that omits only steps the wake-up contract declares no-ops
   (see network.mli), which send nothing and therefore draw nothing. *)
let run_single ~faults ~schedule g ~bandwidth ~msg_bits ~init ~round
    ~max_rounds =
  let n = Graph.n g in
  let event = match schedule with Event_driven -> true | Every_round -> false in
  let ctxs =
    Array.init n (fun v ->
        let d = Graph.degree g v in
        { id = v; n_hint = n; neighbors = Array.init d (Graph.neighbor_at g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  (* Flat per-vertex inbox buffers, reused across rounds. Deliveries happen
     sender-ascending within a round and sends are processed in list order,
     which is exactly the order the reference loop's stable_sort + rev
     reconstructs — so filling in arrival order needs no per-round sort. *)
  let in_src : int array array = Array.make n [||] in
  let in_msg : 'msg array array = Array.make n [||] in
  let in_len = Array.make n 0 in
  (* footprint accounting for the flat buffers: 2 machine words per slot
     (one src int, one msg pointer/immediate), tracked so the meter can
     report the high-watermark and the residual footprint at run end *)
  let inbox_words = ref 0 in
  let inbox_peak = ref 0 in
  (* lint: hot *)
  let push_inbox w src msg =
    let len = in_len.(w) in
    let cap = Array.length in_src.(w) in
    if len = cap then begin
      let cap' = if cap = 0 then 4 else 2 * cap in
      (* lint: allow A001 amortized doubling growth *)
      let src' = Array.make cap' 0 in
      Array.blit in_src.(w) 0 src' 0 len;
      in_src.(w) <- src';
      (* the arriving message doubles as the fill element, so growing never
         needs a dummy 'msg value *)
      (* lint: allow A001 amortized doubling growth *)
      let msg' = Array.make cap' msg in
      Array.blit in_msg.(w) 0 msg' 0 len;
      in_msg.(w) <- msg';
      inbox_words := !inbox_words + (2 * (cap' - cap));
      if !inbox_words > !inbox_peak then inbox_peak := !inbox_words
    end;
    in_src.(w).(len) <- src;
    in_msg.(w).(len) <- msg;
    in_len.(w) <- len + 1
  in
  let inbox_list v =
    let src = in_src.(v) and msg = in_msg.(v) in
    let len = in_len.(v) in
    let acc = ref [] in
    for i = len - 1 downto 0 do
      acc := (src.(i), msg.(i)) :: !acc
    done;
    in_len.(v) <- 0;
    (* high-watermark shrink: a vertex whose buffer grew for one burst must
       not retain peak capacity forever (the capacity also pins every stale
       'msg pointer in it). Dropping to empty instead of copying down keeps
       this allocation-free; re-growth doubles from 4, so a steady consumer
       re-amortizes immediately. *)
    let cap = Array.length src in
    if cap > 64 && 4 * len < cap then begin
      in_src.(v) <- [||];
      in_msg.(v) <- [||];
      inbox_words := !inbox_words - (2 * cap)
    end;
    !acc
  in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  let faulty = Faults.is_active faults in
  let crashed = Array.make n false in
  let crashed_live = ref 0 in
  let frng = Faults.rng faults in
  let { Faults.crash_at; recover_at; link_down; event_rounds = fault_rounds } =
    Faults.tables faults ~n
  in
  let fr_idx = ref 0 in
  let next_fault_round r =
    while
      !fr_idx < Array.length fault_rounds && fault_rounds.(!fr_idx) <= r
    do
      incr fr_idx
    done;
    if !fr_idx < Array.length fault_rounds then fault_rounds.(!fr_idx)
    else max_int
  in
  (* worklists: [cur] is this round's schedule, [nxt] collects next round's;
     [sched.(v)] is the latest round v is queued for (dedup stamp) *)
  let cur = ref (Array.make n 0) and nxt = ref (Array.make n 0) in
  let cur_len = ref 0 and nxt_len = ref 0 in
  let sched = Array.make n (-1) in
  let exec = Array.make n 0 in
  let exec_len = ref 0 in
  let active_total = ref 0 in
  (* wake-up requests: [wake_at.(v)] is v's pending wake round (0 = none);
     buckets collect the vertices per round, and a min-heap over bucket
     rounds answers "when is the next wake?" for fast-forwarding. Stale
     bucket entries (superseded or cancelled wakes) are filtered against
     [wake_at] when the bucket is consumed. *)
  let wake_at = Array.make n 0 in
  let wake_buckets : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let heap = ref (Array.make 16 0) in
  let heap_len = ref 0 in
  (* lint: hot *)
  let heap_push x =
    if !heap_len = Array.length !heap then begin
      (* lint: allow A001 amortized doubling growth *)
      let h = Array.make (2 * !heap_len) 0 in
      Array.blit !heap 0 h 0 !heap_len;
      heap := h
    end;
    let a = !heap in
    let i = ref !heap_len in
    incr heap_len;
    a.(!i) <- x;
    while !i > 0 && a.((!i - 1) / 2) > a.(!i) do
      let p = (!i - 1) / 2 in
      let t = a.(p) in
      a.(p) <- a.(!i);
      a.(!i) <- t;
      i := p
    done
  in
  (* lint: hot *)
  let heap_min () = if !heap_len = 0 then max_int else (!heap).(0) in
  (* lint: hot *)
  let heap_pop () =
    let a = !heap in
    decr heap_len;
    a.(0) <- a.(!heap_len);
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !heap_len && a.(l) < a.(!s) then s := l;
      if r < !heap_len && a.(r) < a.(!s) then s := r;
      if !s = !i then moving := false
      else begin
        let t = a.(!s) in
        a.(!s) <- a.(!i);
        a.(!i) <- t;
        i := !s
      end
    done
  in
  let set_wake v t =
    wake_at.(v) <- t;
    match Hashtbl.find_opt wake_buckets t with
    | Some entries -> entries := v :: !entries
    | None ->
        Hashtbl.add wake_buckets t (ref [ v ]);
        heap_push t
  in
  (* lint: hot *)
  let push_cur r v =
    if sched.(v) <> r then begin
      sched.(v) <- r;
      (!cur).(!cur_len) <- v;
      incr cur_len
    end
  in
  (* lint: hot *)
  let push_nxt r1 v =
    if sched.(v) <> r1 then begin
      sched.(v) <- r1;
      (!nxt).(!nxt_len) <- v;
      incr nxt_len
    end
  in
  (* reused outgoing scratch: only slots of vertices stepped this round are
     written, and each is reset right after its messages are delivered *)
  let outgoing : (int * 'msg) list array = Array.make n [] in
  (* bandwidth scratch, reused across vertices and rounds *)
  let edge_bits = Array.make n 0 in
  let touched = Array.make n 0 in
  let touched_len = ref 0 in
  (* round 1 schedules everyone *)
  if event then
    for v = 0 to n - 1 do
      push_cur 1 v
    done;
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* crash / recovery events take effect at the start of the round, in
       the same order as the reference: recoveries first, then crashes. A
       recovering vertex executes its recovery round with an empty inbox. *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live;
            decr crashed_live;
            if event then push_cur r v
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            in_len.(v) <- 0;
            (* crashing cancels a pending wake, mirroring the documented
               halt-cancels-wake rule: only the recovery event re-arms the
               vertex (the stale bucket entry is filtered on consumption,
               so a wake firing during the outage cannot resurrect it) *)
            if wake_at.(v) > 0 then wake_at.(v) <- 0;
            decr live;
            incr crashed_live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    (* every crashed vertex burns this round, exactly as the reference
       counts it during its full sweep *)
    crashed_rounds := !crashed_rounds + !crashed_live;
    if event then begin
      (* fire this round's wake-ups *)
      (match Hashtbl.find_opt wake_buckets r with
      | Some entries ->
          List.iter
            (fun v ->
              if wake_at.(v) = r then begin
                wake_at.(v) <- 0;
                (* a wake firing while crashed is lost: the recovery event
                   itself reschedules the vertex *)
                if (not halted.(v)) && not crashed.(v) then push_cur r v
              end)
            !entries;
          Hashtbl.remove wake_buckets r
      | None -> ());
      if heap_min () = r then heap_pop ();
      sort_prefix !cur !cur_len
    end;
    (* execute the round on this round's schedule, ascending by vertex id *)
    exec_len := 0;
    let step_vertex v =
      let st = round r ctxs.(v) states.(v) (inbox_list v) in
      states.(v) <- st.state;
      (* a halting vertex's final sends still go out this round *)
      outgoing.(v) <- st.send;
      exec.(!exec_len) <- v;
      incr exec_len;
      if st.halt then begin
        halted.(v) <- true;
        decr live;
        if wake_at.(v) > 0 then wake_at.(v) <- 0
      end
      else if event then
        match st.wake_after with
        | Some d ->
            if d < 1 then
              invalid_arg
                (Printf.sprintf
                   "Network.run: vertex %d requested wake_after %d (must be \
                    >= 1)"
                   v d);
            if d <= max_rounds - r then set_wake v (r + d)
            else if wake_at.(v) > 0 then wake_at.(v) <- 0
        | None -> if wake_at.(v) > 0 then wake_at.(v) <- 0
    in
    if event then
      for i = 0 to !cur_len - 1 do
        let v = (!cur).(i) in
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done
    else
      for v = 0 to n - 1 do
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done;
    active_total := !active_total + !exec_len;
    (* deliver, senders ascending (exec is ascending in both modes), each
       sender's messages in list order — the draw order the fault RNG pins *)
    cur_len := 0;
    for i = 0 to !exec_len - 1 do
      let v = exec.(i) in
      let row = ctxs.(v).neighbors in
      let cursor = ref 0 in
      List.iter
        (fun (w, msg) ->
          check_neighbor row cursor v w;
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then begin
            touched.(!touched_len) <- w;
            incr touched_len
          end;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          (* fate of the message: the sender has spent the bandwidth
             either way; every non-delivery is counted in [dropped] so
             that delivered + dropped = messages always holds *)
          if faulty && link_down r v w then incr dropped
          else if crashed.(w) then incr dropped
          else if halted.(w) then incr dropped
          else if
            faults.drop_rate > 0.
            && Random.State.float frng 1. < faults.drop_rate
          then incr dropped
          else begin
            push_inbox w v msg;
            if event then push_nxt (r + 1) w;
            if
              faults.duplicate_rate > 0.
              && Random.State.float frng 1. < faults.duplicate_rate
            then begin
              push_inbox w v msg;
              incr duplicated
            end
          end)
        outgoing.(v);
      outgoing.(v) <- [];
      for t = 0 to !touched_len - 1 do
        edge_bits.(touched.(t)) <- 0
      done;
      touched_len := 0
    done;
    if event then begin
      (* swap worklists; [nxt] becomes round r+1's schedule *)
      let t = !cur in
      cur := !nxt;
      nxt := t;
      cur_len := !nxt_len;
      nxt_len := 0;
      (* fast-forward over silent rounds: nobody is scheduled, so jump to
         the next wake-up or fault event (or the horizon). The reference
         loop spends those rounds stepping vertices whose wake-up contract
         makes them no-ops, so skipping them changes nothing observable;
         crashed vertices still accrue crashed_rounds for each round
         skipped. *)
      if !live > 0 && !cur_len = 0 then begin
        let cand = min (heap_min ()) (next_fault_round r) in
        let target =
          if cand = max_int || cand > max_rounds then max_rounds + 1 else cand
        in
        let skipped = target - 1 - r in
        if skipped > 0 then begin
          crashed_rounds := !crashed_rounds + (!crashed_live * skipped);
          rounds := target - 1
        end
      end
    end
  done;
  (* cost-meter hook: attribute this run's accounting to the enclosing
     observability span (no-op unless Obs is enabled). Fault counters are
     only reported for runs with an active fault spec, and the schedule
     sparsity counter only for event-driven runs, so existing fault-free
     profiles stay byte-identical. *)
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  if event then Obs.Meter.active ~vertices:!active_total;
  Obs.Meter.inbox ~peak_words:!inbox_peak ~final_words:!inbox_words;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )

(* ------------------------------------------------------------------ *)
(* Sharded loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-shard state. Each shard owns the contiguous vertex range
   [sh_lo, sh_hi) (CSR-aligned: vertex v lives in shard v / chunk, so
   walking the shards in index order walks the vertices in id order).
   The shard steps its own worklist inside the Team barrier; everything
   cross-shard — delivery, fault draws, bandwidth accounting — happens in
   the coordinator's sequential exchange between barriers. *)
type 'msg shard = {
  sh_lo : int;
  sh_hi : int;
  (* worklists over the shard's own vertices (dedup via the global sched
     stamps; capacity = shard size) *)
  mutable sh_cur : int array;
  mutable sh_cur_len : int;
  mutable sh_nxt : int array;
  mutable sh_nxt_len : int;
  (* inbound arena: (src, dst, payload) columns appended sender-ascending
     by the coordinator's exchange, consumed at the shard's next step.
     payload >= 0 is a packed immediate; payload < 0 is -(i+1) for slot i
     of the boxed wide-message spill *)
  mutable sh_ib_src : int array;
  mutable sh_ib_dst : int array;
  mutable sh_ib_pay : int array;
  mutable sh_ib_len : int;
  mutable sh_ib_wide : 'msg array;
  mutable sh_ib_wide_len : int;
  (* outbound packed messages, filled ascending-by-sender during the step
     phase, drained by the exchange *)
  mutable sh_ob_src : int array;
  mutable sh_ob_dst : int array;
  mutable sh_ob_pay : int array;
  mutable sh_ob_bits : int array;
  mutable sh_ob_len : int;
  mutable sh_ob_wide : 'msg array;
  mutable sh_ob_wide_len : int;
  (* shard-local wake machinery (the pending-wake rounds themselves live
     in the global wake_at array so the coordinator can cancel on crash) *)
  sh_wake_buckets : (int, int list ref) Hashtbl.t;
  mutable sh_heap : int array;
  mutable sh_heap_len : int;
  (* per-round outputs, read by the coordinator after the barrier *)
  mutable sh_stepped : int;
  mutable sh_halts : int;
  (* arena footprint accounting (machine words), for the inbox meter *)
  mutable sh_words : int;
  mutable sh_peak_words : int;
}

(* lint: hot *)
let sh_heap_push sh x =
  if sh.sh_heap_len = Array.length sh.sh_heap then begin
    (* lint: allow A001 amortized doubling growth *)
    let h = Array.make (2 * sh.sh_heap_len) 0 in
    Array.blit sh.sh_heap 0 h 0 sh.sh_heap_len;
    sh.sh_heap <- h
  end;
  let a = sh.sh_heap in
  let i = ref sh.sh_heap_len in
  sh.sh_heap_len <- sh.sh_heap_len + 1;
  a.(!i) <- x;
  while !i > 0 && a.((!i - 1) / 2) > a.(!i) do
    let p = (!i - 1) / 2 in
    let t = a.(p) in
    a.(p) <- a.(!i);
    a.(!i) <- t;
    i := p
  done

(* lint: hot *)
let sh_heap_min sh = if sh.sh_heap_len = 0 then max_int else sh.sh_heap.(0)

(* lint: hot *)
let sh_heap_pop sh =
  let a = sh.sh_heap in
  sh.sh_heap_len <- sh.sh_heap_len - 1;
  a.(0) <- a.(sh.sh_heap_len);
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < sh.sh_heap_len && a.(l) < a.(!s) then s := l;
    if r < sh.sh_heap_len && a.(r) < a.(!s) then s := r;
    if !s = !i then moving := false
    else begin
      let t = a.(!s) in
      a.(!s) <- a.(!i);
      a.(!i) <- t;
      i := !s
    end
  done

(* The sharded loop. Equivalence argument: the step phase runs exactly the
   round calls the single event loop would run (same worklists, same wake
   machinery, partitioned by vertex range), and the exchange walks the
   shard outboxes in shard order — which is global sender-ascending order
   because shards own contiguous ascending ranges and each shard steps its
   worklist sorted. So delivery order, bandwidth accounting, congestion
   raise order and the fault RNG draw order are all identical to
   run_single, which is pinned identical to run_reference. Parallelism
   never touches the draws: the single Faults.rng stream is consumed only
   here, in the sequential exchange.

   The user's init / round / msg_bits / codec functions execute on worker
   domains; they must be domain-safe pure functions of their arguments
   (the wake-up contract already demands this for round). *)
let run_sharded ~faults ~schedule ~shards ~pool ~(codec : 'msg codec) g
    ~bandwidth ~msg_bits ~init ~round ~max_rounds =
  let n = Graph.n g in
  let event = match schedule with Event_driven -> true | Every_round -> false in
  let chunk = max 1 ((n + max 1 shards - 1) / max 1 shards) in
  let nshards = (n + chunk - 1) / chunk in
  let ctxs =
    Array.init n (fun v ->
        let d = Graph.degree g v in
        { id = v; n_hint = n; neighbors = Array.init d (Graph.neighbor_at g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let crashed = Array.make n false in
  let inlists : (int * 'msg) list array = Array.make n [] in
  let wake_at = Array.make n 0 in
  let sched = Array.make n (-1) in
  let shard_tbl =
    Array.init nshards (fun s ->
        let lo = s * chunk in
        let hi = min n (lo + chunk) in
        let size = max 1 (hi - lo) in
        {
          sh_lo = lo;
          sh_hi = hi;
          sh_cur = Array.make size 0;
          sh_cur_len = 0;
          sh_nxt = Array.make size 0;
          sh_nxt_len = 0;
          sh_ib_src = [||];
          sh_ib_dst = [||];
          sh_ib_pay = [||];
          sh_ib_len = 0;
          sh_ib_wide = [||];
          sh_ib_wide_len = 0;
          sh_ob_src = [||];
          sh_ob_dst = [||];
          sh_ob_pay = [||];
          sh_ob_bits = [||];
          sh_ob_len = 0;
          sh_ob_wide = [||];
          sh_ob_wide_len = 0;
          sh_wake_buckets = Hashtbl.create 32;
          sh_heap = Array.make 16 0;
          sh_heap_len = 0;
          sh_stepped = 0;
          sh_halts = 0;
          sh_words = 0;
          sh_peak_words = 0;
        })
  in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  let active_total = ref 0 in
  let faulty = Faults.is_active faults in
  let crashed_live = ref 0 in
  let frng = Faults.rng faults in
  let { Faults.crash_at; recover_at; link_down; event_rounds = fault_rounds } =
    Faults.tables faults ~n
  in
  let fr_idx = ref 0 in
  let next_fault_round r =
    while
      !fr_idx < Array.length fault_rounds && fault_rounds.(!fr_idx) <= r
    do
      incr fr_idx
    done;
    if !fr_idx < Array.length fault_rounds then fault_rounds.(!fr_idx)
    else max_int
  in
  let edge_bits = Array.make n 0 in
  let touched = Array.make n 0 in
  let touched_len = ref 0 in
  (* lint: hot *)
  let push_cur sh r v =
    if sched.(v) <> r then begin
      sched.(v) <- r;
      sh.sh_cur.(sh.sh_cur_len) <- v;
      sh.sh_cur_len <- sh.sh_cur_len + 1
    end
  in
  (* lint: hot *)
  let push_nxt sh r1 v =
    if sched.(v) <> r1 then begin
      sched.(v) <- r1;
      sh.sh_nxt.(sh.sh_nxt_len) <- v;
      sh.sh_nxt_len <- sh.sh_nxt_len + 1
    end
  in
  let set_wake sh v t =
    wake_at.(v) <- t;
    match Hashtbl.find_opt sh.sh_wake_buckets t with
    | Some entries -> entries := v :: !entries
    | None ->
        Hashtbl.add sh.sh_wake_buckets t (ref [ v ]);
        sh_heap_push sh t
  in
  (* coordinator side: append one delivery to the destination shard's arena *)
  (* lint: hot *)
  let push_ib sh src dst pay =
    let k = sh.sh_ib_len in
    if k = Array.length sh.sh_ib_src then begin
      let cap = Array.length sh.sh_ib_src in
      let cap' = if cap = 0 then 64 else 2 * cap in
      let grow a =
        (* lint: allow A001 amortized doubling growth *)
        let a' = Array.make cap' 0 in
        Array.blit a 0 a' 0 k;
        a'
      in
      sh.sh_ib_src <- grow sh.sh_ib_src;
      sh.sh_ib_dst <- grow sh.sh_ib_dst;
      sh.sh_ib_pay <- grow sh.sh_ib_pay;
      sh.sh_words <- sh.sh_words + (3 * (cap' - cap));
      if sh.sh_words > sh.sh_peak_words then sh.sh_peak_words <- sh.sh_words
    end;
    sh.sh_ib_src.(k) <- src;
    sh.sh_ib_dst.(k) <- dst;
    sh.sh_ib_pay.(k) <- pay;
    sh.sh_ib_len <- k + 1
  in
  (* lint: hot *)
  let spill_wide sh msg =
    let k = sh.sh_ib_wide_len in
    if k = Array.length sh.sh_ib_wide then begin
      let cap = Array.length sh.sh_ib_wide in
      let cap' = if cap = 0 then 16 else 2 * cap in
      (* the arriving message doubles as the fill element *)
      (* lint: allow A001 amortized doubling growth *)
      let a' = Array.make cap' msg in
      Array.blit sh.sh_ib_wide 0 a' 0 k;
      sh.sh_ib_wide <- a';
      sh.sh_words <- sh.sh_words + (cap' - cap);
      if sh.sh_words > sh.sh_peak_words then sh.sh_peak_words <- sh.sh_words
    end;
    sh.sh_ib_wide.(k) <- msg;
    sh.sh_ib_wide_len <- k + 1;
    -(k + 1)
  in
  (* shard side: pack one outgoing message *)
  (* lint: hot *)
  let push_out sh v w msg =
    let k = sh.sh_ob_len in
    if k = Array.length sh.sh_ob_src then begin
      let cap = Array.length sh.sh_ob_src in
      let cap' = if cap = 0 then 64 else 2 * cap in
      let grow a =
        (* lint: allow A001 amortized doubling growth *)
        let a' = Array.make cap' 0 in
        Array.blit a 0 a' 0 k;
        a'
      in
      sh.sh_ob_src <- grow sh.sh_ob_src;
      sh.sh_ob_dst <- grow sh.sh_ob_dst;
      sh.sh_ob_pay <- grow sh.sh_ob_pay;
      sh.sh_ob_bits <- grow sh.sh_ob_bits
    end;
    sh.sh_ob_src.(k) <- v;
    sh.sh_ob_dst.(k) <- w;
    sh.sh_ob_bits.(k) <- msg_bits msg;
    sh.sh_ob_pay.(k) <-
      (let p = codec.pack msg in
       if p >= 0 then p
       else begin
         let wi = sh.sh_ob_wide_len in
         if wi = Array.length sh.sh_ob_wide then begin
           let cap = Array.length sh.sh_ob_wide in
           let cap' = if cap = 0 then 16 else 2 * cap in
           (* lint: allow A001 amortized doubling growth *)
           let a' = Array.make cap' msg in
           Array.blit sh.sh_ob_wide 0 a' 0 wi;
           sh.sh_ob_wide <- a'
         end;
         sh.sh_ob_wide.(wi) <- msg;
         sh.sh_ob_wide_len <- wi + 1;
         -(wi + 1)
       end);
    sh.sh_ob_len <- k + 1
  in
  (* one shard's slice of a round, executed inside the Team barrier *)
  let step_shard r sh =
    if event then begin
      (match Hashtbl.find_opt sh.sh_wake_buckets r with
      | Some entries ->
          List.iter
            (fun v ->
              if wake_at.(v) = r then begin
                wake_at.(v) <- 0;
                if (not halted.(v)) && not crashed.(v) then push_cur sh r v
              end)
            !entries;
          Hashtbl.remove sh.sh_wake_buckets r
      | None -> ());
      if sh_heap_min sh = r then sh_heap_pop sh;
      sort_prefix sh.sh_cur sh.sh_cur_len
    end;
    (* rebuild per-vertex inboxes from the arena: walking backward while
       consing restores arrival (sender-ascending) order; a vertex that
       crashed this round loses its pending inbox, exactly like the single
       loop clearing in_len at the crash event *)
    let consumed = sh.sh_ib_len in
    for i = consumed - 1 downto 0 do
      let dst = sh.sh_ib_dst.(i) in
      if not crashed.(dst) then begin
        let pay = sh.sh_ib_pay.(i) in
        let msg =
          if pay >= 0 then codec.unpack pay else sh.sh_ib_wide.(-pay - 1)
        in
        inlists.(dst) <- (sh.sh_ib_src.(i), msg) :: inlists.(dst)
      end
    done;
    sh.sh_ib_len <- 0;
    sh.sh_ib_wide_len <- 0;
    (* high-watermark shrink, mirroring the single loop's flat buffers *)
    let cap = Array.length sh.sh_ib_src in
    if cap > 64 && 4 * consumed < cap then begin
      sh.sh_words <- sh.sh_words - (3 * cap) - Array.length sh.sh_ib_wide;
      sh.sh_ib_src <- [||];
      sh.sh_ib_dst <- [||];
      sh.sh_ib_pay <- [||];
      sh.sh_ib_wide <- [||]
    end;
    sh.sh_stepped <- 0;
    sh.sh_halts <- 0;
    sh.sh_ob_len <- 0;
    sh.sh_ob_wide_len <- 0;
    let step_vertex v =
      let ib = inlists.(v) in
      inlists.(v) <- [];
      let st = round r ctxs.(v) states.(v) ib in
      states.(v) <- st.state;
      sh.sh_stepped <- sh.sh_stepped + 1;
      (match st.send with
      | [] -> ()
      | sends ->
          let row = ctxs.(v).neighbors in
          let cursor = ref 0 in
          List.iter
            (fun (w, msg) ->
              check_neighbor row cursor v w;
              push_out sh v w msg)
            sends);
      if st.halt then begin
        halted.(v) <- true;
        sh.sh_halts <- sh.sh_halts + 1;
        if wake_at.(v) > 0 then wake_at.(v) <- 0
      end
      else if event then
        match st.wake_after with
        | Some d ->
            if d < 1 then
              invalid_arg
                (Printf.sprintf
                   "Network.run: vertex %d requested wake_after %d (must be \
                    >= 1)"
                   v d);
            if d <= max_rounds - r then set_wake sh v (r + d)
            else if wake_at.(v) > 0 then wake_at.(v) <- 0
        | None -> if wake_at.(v) > 0 then wake_at.(v) <- 0
    in
    if event then begin
      for i = 0 to sh.sh_cur_len - 1 do
        let v = sh.sh_cur.(i) in
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done;
      sh.sh_cur_len <- 0
    end
    else
      for v = sh.sh_lo to sh.sh_hi - 1 do
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done
  in
  (* the sequential cross-shard exchange: shard order x in-shard step order
     is global sender-ascending order, each sender's sends in list order —
     the draw order the fault RNG pins *)
  (* lint: hot *)
  let exchange r =
    let prev_sender = ref (-1) in
    for s = 0 to nshards - 1 do
      let sh = shard_tbl.(s) in
      for k = 0 to sh.sh_ob_len - 1 do
        let v = sh.sh_ob_src.(k) in
        if v <> !prev_sender then begin
          (* per-directed-edge budgets reset at each sender boundary *)
          for t = 0 to !touched_len - 1 do
            edge_bits.(touched.(t)) <- 0
          done;
          touched_len := 0;
          prev_sender := v
        end;
        let w = sh.sh_ob_dst.(k) in
        let bits = sh.sh_ob_bits.(k) in
        if edge_bits.(w) = 0 then begin
          touched.(!touched_len) <- w;
          incr touched_len
        end;
        let now = edge_bits.(w) + bits in
        edge_bits.(w) <- now;
        (match bandwidth with
        | Local -> ()
        | Congest budget ->
            if now > budget then
              raise
                (Congestion_violation
                   { round = r; src = v; dst = w; bits = now; budget }));
        total_bits := !total_bits + bits;
        if now > !max_edge_bits then max_edge_bits := now;
        incr messages;
        last_traffic := r;
        (* fate of the message, same chain and same single RNG stream as
           the sequential loops *)
        if faulty && link_down r v w then incr dropped
        else if crashed.(w) then incr dropped
        else if halted.(w) then incr dropped
        else if
          faults.Faults.drop_rate > 0.
          && Random.State.float frng 1. < faults.Faults.drop_rate
        then incr dropped
        else begin
          let dsh = shard_tbl.(w / chunk) in
          let pay = sh.sh_ob_pay.(k) in
          let pay =
            if pay >= 0 then pay
            else spill_wide dsh sh.sh_ob_wide.(-pay - 1)
          in
          push_ib dsh v w pay;
          if event then push_nxt dsh (r + 1) w;
          if
            faults.Faults.duplicate_rate > 0.
            && Random.State.float frng 1. < faults.Faults.duplicate_rate
          then begin
            (* the duplicate aliases the same wide slot *)
            push_ib dsh v w pay;
            incr duplicated
          end
        end
      done;
      sh.sh_ob_len <- 0;
      sh.sh_ob_wide_len <- 0
    done;
    for t = 0 to !touched_len - 1 do
      edge_bits.(touched.(t)) <- 0
    done;
    touched_len := 0
  in
  (* round 1 schedules everyone *)
  if event then
    Array.iter
      (fun sh ->
        for v = sh.sh_lo to sh.sh_hi - 1 do
          push_cur sh 1 v
        done)
      shard_tbl;
  let team = Parallel.Pool.Team.create pool ~tasks:nshards in
  Fun.protect ~finally:(fun () -> Parallel.Pool.Team.shutdown team)
  @@ fun () ->
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* fault events at round start, coordinator-side: recoveries first,
       then crashes, as in the sequential loops. Crashing cancels the
       pending wake; recovery is the only re-arm. *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live;
            decr crashed_live;
            if event then push_cur shard_tbl.(v / chunk) r v
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            if wake_at.(v) > 0 then wake_at.(v) <- 0;
            decr live;
            incr crashed_live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    crashed_rounds := !crashed_rounds + !crashed_live;
    (* parallel step phase: one barrier per round. The task closure
       captures mutable per-vertex arrays (states, halted, inlists,
       wake_at, sched) without atomics; that is safe by construction —
       each shard steps only vertices in its own contiguous [lo, hi)
       range, and all cross-shard writes happen in [exchange], which the
       coordinator runs sequentially between barriers. *)
    (* lint: allow P002 shard-owned vertex ranges; cross-shard writes are sequential in exchange *)
    Parallel.Pool.Team.run team (fun s -> step_shard r shard_tbl.(s));
    for s = 0 to nshards - 1 do
      let sh = shard_tbl.(s) in
      active_total := !active_total + sh.sh_stepped;
      live := !live - sh.sh_halts
    done;
    exchange r;
    if event then begin
      for s = 0 to nshards - 1 do
        let sh = shard_tbl.(s) in
        let t = sh.sh_cur in
        sh.sh_cur <- sh.sh_nxt;
        sh.sh_nxt <- t;
        sh.sh_cur_len <- sh.sh_nxt_len;
        sh.sh_nxt_len <- 0
      done;
      (* fast-forward over silent rounds, as in run_single: the next event
         is the earliest pending wake over all shards or the next fault *)
      if !live > 0 then begin
        let busy = ref false in
        for s = 0 to nshards - 1 do
          if shard_tbl.(s).sh_cur_len > 0 then busy := true
        done;
        if not !busy then begin
          let wake_min = ref max_int in
          for s = 0 to nshards - 1 do
            let m = sh_heap_min shard_tbl.(s) in
            if m < !wake_min then wake_min := m
          done;
          let cand = min !wake_min (next_fault_round r) in
          let target =
            if cand = max_int || cand > max_rounds then max_rounds + 1
            else cand
          in
          let skipped = target - 1 - r in
          if skipped > 0 then begin
            crashed_rounds := !crashed_rounds + (!crashed_live * skipped);
            rounds := target - 1
          end
        end
      end
    end
  done;
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  if event then Obs.Meter.active ~vertices:!active_total;
  let peak_words =
    Array.fold_left (fun a sh -> a + sh.sh_peak_words) 0 shard_tbl
  in
  let final_words = Array.fold_left (fun a sh -> a + sh.sh_words) 0 shard_tbl in
  Obs.Meter.inbox ~peak_words ~final_words;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )

let run ?(faults = Faults.none) ?(schedule = Every_round) ?(exec = Single)
    ?codec g ~bandwidth ~msg_bits ~init ~round ~max_rounds =
  match exec with
  | Single ->
      run_single ~faults ~schedule g ~bandwidth ~msg_bits ~init ~round
        ~max_rounds
  | Sharded { shards; pool } ->
      let codec = match codec with Some c -> c | None -> boxed_codec () in
      run_sharded ~faults ~schedule ~shards ~pool ~codec g ~bandwidth
        ~msg_bits ~init ~round ~max_rounds
