open Sparse_graph

type bandwidth = Congest of int | Local

let congest_bandwidth ?(c = 8) n =
  let bits = int_of_float (ceil (log (float_of_int (max n 2)) /. log 2.)) in
  Congest (c * max 1 bits)

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

type ctx = {
  id : int;
  n_hint : int;
  neighbors : int array;
}

type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_edge_bits : int;
  completed : bool;
  last_traffic_round : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d total_bits=%d max_edge_bits=%d completed=%b \
     last_traffic=%d"
    s.rounds s.messages s.total_bits s.max_edge_bits s.completed
    s.last_traffic_round

let run g ~bandwidth ~msg_bits ~init ~round ~max_rounds =
  let n = Graph.n g in
  let ctxs =
    Array.init n (fun v ->
        { id = v; n_hint = n; neighbors = Array.of_list (Graph.neighbors g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* collect this round's traffic; per directed edge bit accounting *)
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        let inbox =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
        in
        inboxes.(v) <- [];
        let step = round r ctxs.(v) states.(v) inbox in
        states.(v) <- step.state;
        if step.halt then begin
          halted.(v) <- true;
          decr live
        end
        else outgoing.(v) <- step.send
      end
      else inboxes.(v) <- []
    done;
    for v = 0 to n - 1 do
      (* enforce bandwidth per directed edge (v -> w) *)
      let per_dst = Hashtbl.create 4 in
      List.iter
        (fun (w, msg) ->
          if not (Graph.mem_edge g v w) then
            invalid_arg
              (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d"
                 v w);
          let bits = msg_bits msg in
          let sofar = try Hashtbl.find per_dst w with Not_found -> 0 in
          let now = sofar + bits in
          Hashtbl.replace per_dst w now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          if not halted.(w) then inboxes.(w) <- (v, msg) :: inboxes.(w))
        outgoing.(v)
    done
  done;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )
