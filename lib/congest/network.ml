open Sparse_graph

type bandwidth = Congest of int | Local

let congest_bandwidth ?(c = 8) n = Congest (c * Bits.id_bits n)

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

type ctx = {
  id : int;
  n_hint : int;
  neighbors : int array;
}

type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
}

type stats = {
  rounds : int;
  messages : int;
  dropped : int;
  duplicated : int;
  crashed_rounds : int;
  total_bits : int;
  max_edge_bits : int;
  completed : bool;
  last_traffic_round : int;
}

let delivered s = s.messages - s.dropped

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d dropped=%d duplicated=%d crashed_rounds=%d \
     total_bits=%d max_edge_bits=%d completed=%b last_traffic=%d"
    s.rounds s.messages s.dropped s.duplicated s.crashed_rounds s.total_bits
    s.max_edge_bits s.completed s.last_traffic_round

let run ?(faults = Faults.none) g ~bandwidth ~msg_bits ~init ~round ~max_rounds
    =
  let n = Graph.n g in
  let ctxs =
    Array.init n (fun v ->
        { id = v; n_hint = n; neighbors = Array.of_list (Graph.neighbors g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  (* fault bookkeeping: all of it dormant when the spec is inactive. A
     crashed vertex leaves [live] (a permanently crashed vertex must not
     block completion) and re-enters on recovery. Fault randomness is
     drawn from the spec's own seeded state in the simulator's
     deterministic traversal order, so runs are byte-identical across
     reruns and worker-pool sizes. *)
  let faulty = Faults.is_active faults in
  let crashed = Array.make n false in
  let frng = Faults.rng faults in
  let crash_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let recover_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  if faulty then
    List.iter
      (fun (c : Faults.crash) ->
        if c.vertex < n then begin
          Hashtbl.add crash_at c.at_round c.vertex;
          match c.recover_round with
          | Some r -> Hashtbl.add recover_at r c.vertex
          | None -> ()
        end)
      faults.crashes;
  let link_down =
    if faults.outages = [] then fun _ _ _ -> false
    else begin
      let tbl : (int * int, int * int) Hashtbl.t = Hashtbl.create 7 in
      List.iter
        (fun (o : Faults.outage) ->
          let key = (min o.u o.v, max o.u o.v) in
          Hashtbl.add tbl key (o.from_round, o.until_round))
        faults.outages;
      fun r a b ->
        List.exists
          (fun (lo, hi) -> lo <= r && r <= hi)
          (Hashtbl.find_all tbl (min a b, max a b))
    end
  in
  (* scratch for the per-directed-edge bandwidth accounting, reused across
     vertices and rounds; [touched] lists the destinations to reset *)
  let edge_bits = Array.make n 0 in
  let touched = ref [] in
  let is_neighbor v w =
    (* binary search in the vertex's sorted neighbor row; avoids the
       per-message incidence lookup in the graph *)
    let row = ctxs.(v).neighbors in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = w then found := true
      else if x < w then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* crash / recovery events take effect at the start of the round: a
       vertex crashing in round r does not execute round r; a vertex
       recovering in round r executes round r with its pre-crash state
       and an empty inbox *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            inboxes.(v) <- [];
            decr live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    (* collect this round's traffic; per directed edge bit accounting *)
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if halted.(v) then inboxes.(v) <- []
      else if crashed.(v) then begin
        inboxes.(v) <- [];
        incr crashed_rounds
      end
      else begin
        let inbox =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
        in
        inboxes.(v) <- [];
        let step = round r ctxs.(v) states.(v) inbox in
        states.(v) <- step.state;
        (* a halting vertex's final sends still go out this round *)
        outgoing.(v) <- step.send;
        if step.halt then begin
          halted.(v) <- true;
          decr live
        end
      end
    done;
    for v = 0 to n - 1 do
      (* enforce bandwidth per directed edge (v -> w) *)
      List.iter
        (fun (w, msg) ->
          if not (is_neighbor v w) then
            invalid_arg
              (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d"
                 v w);
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then touched := w :: !touched;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          (* fate of the message: the sender has spent the bandwidth
             either way; every non-delivery is counted in [dropped] so
             that delivered + dropped = messages always holds *)
          if faulty && link_down r v w then incr dropped
          else if crashed.(w) then incr dropped
          else if halted.(w) then incr dropped
          else if
            faults.drop_rate > 0.
            && Random.State.float frng 1. < faults.drop_rate
          then incr dropped
          else begin
            inboxes.(w) <- (v, msg) :: inboxes.(w);
            if
              faults.duplicate_rate > 0.
              && Random.State.float frng 1. < faults.duplicate_rate
            then begin
              inboxes.(w) <- (v, msg) :: inboxes.(w);
              incr duplicated
            end
          end)
        outgoing.(v);
      List.iter (fun w -> edge_bits.(w) <- 0) !touched;
      touched := []
    done
  done;
  (* cost-meter hook: attribute this run's accounting to the enclosing
     observability span (no-op unless Obs is enabled). Fault counters are
     only reported for runs with an active fault spec, so fault-free
     profiles stay byte-identical to a build without the fault layer. *)
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )
