open Sparse_graph

type bandwidth = Congest of int | Local

let congest_bandwidth ?(c = 8) n = Congest (c * Bits.id_bits n)

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

type ctx = {
  id : int;
  n_hint : int;
  neighbors : int array;
}

type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
  wake_after : int option;
}

let step ?wake_after ?(send = []) ?(halt = false) state =
  { state; send; halt; wake_after }

type schedule = Every_round | Event_driven

type stats = {
  rounds : int;
  messages : int;
  dropped : int;
  duplicated : int;
  crashed_rounds : int;
  total_bits : int;
  max_edge_bits : int;
  completed : bool;
  last_traffic_round : int;
}

let delivered s = s.messages - s.dropped

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d dropped=%d duplicated=%d crashed_rounds=%d \
     total_bits=%d max_edge_bits=%d completed=%b last_traffic=%d"
    s.rounds s.messages s.dropped s.duplicated s.crashed_rounds s.total_bits
    s.max_edge_bits s.completed s.last_traffic_round

(* Shared fault bookkeeping: crash / recovery schedules keyed by round and
   the link-outage predicate. All of it dormant when the spec is inactive. *)
let fault_tables (faults : Faults.t) n =
  let crash_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let recover_at : (int, int) Hashtbl.t = Hashtbl.create 7 in
  if Faults.is_active faults then
    List.iter
      (fun (c : Faults.crash) ->
        if c.vertex < n then begin
          Hashtbl.add crash_at c.at_round c.vertex;
          match c.recover_round with
          | Some r -> Hashtbl.add recover_at r c.vertex
          | None -> ()
        end)
      faults.crashes;
  let link_down =
    if faults.outages = [] then fun _ _ _ -> false
    else begin
      let tbl : (int * int, int * int) Hashtbl.t = Hashtbl.create 7 in
      List.iter
        (fun (o : Faults.outage) ->
          let key = (min o.u o.v, max o.u o.v) in
          Hashtbl.add tbl key (o.from_round, o.until_round))
        faults.outages;
      fun r a b ->
        List.exists
          (fun (lo, hi) -> lo <= r && r <= hi)
          (Hashtbl.find_all tbl (min a b, max a b))
    end
  in
  (crash_at, recover_at, link_down)

(* ------------------------------------------------------------------ *)
(* Reference loop                                                      *)
(* ------------------------------------------------------------------ *)

(* The pre-scheduler implementation, kept byte-for-byte in behavior as the
   equivalence baseline for [run] and as the slow side of the congest-bench
   comparison. It ignores [wake_after] and steps every non-halted,
   non-crashed vertex every round. *)
let run_reference ?(faults = Faults.none) g ~bandwidth ~msg_bits ~init ~round
    ~max_rounds =
  let n = Graph.n g in
  let ctxs =
    Array.init n (fun v ->
        { id = v; n_hint = n; neighbors = Array.of_list (Graph.neighbors g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  (* A crashed vertex leaves [live] (a permanently crashed vertex must not
     block completion) and re-enters on recovery. Fault randomness is
     drawn from the spec's own seeded state in the simulator's
     deterministic traversal order, so runs are byte-identical across
     reruns and worker-pool sizes. *)
  let faulty = Faults.is_active faults in
  let crashed = Array.make n false in
  let frng = Faults.rng faults in
  let crash_at, recover_at, link_down = fault_tables faults n in
  (* scratch for the per-directed-edge bandwidth accounting, reused across
     vertices and rounds; [touched] lists the destinations to reset *)
  let edge_bits = Array.make n 0 in
  let touched = ref [] in
  let is_neighbor v w =
    (* binary search in the vertex's sorted neighbor row; avoids the
       per-message incidence lookup in the graph *)
    let row = ctxs.(v).neighbors in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = w then found := true
      else if x < w then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* crash / recovery events take effect at the start of the round: a
       vertex crashing in round r does not execute round r; a vertex
       recovering in round r executes round r with its pre-crash state
       and an empty inbox *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            inboxes.(v) <- [];
            decr live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    (* collect this round's traffic; per directed edge bit accounting *)
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if halted.(v) then inboxes.(v) <- []
      else if crashed.(v) then begin
        inboxes.(v) <- [];
        incr crashed_rounds
      end
      else begin
        let inbox =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
        in
        inboxes.(v) <- [];
        let st = round r ctxs.(v) states.(v) inbox in
        states.(v) <- st.state;
        (* a halting vertex's final sends still go out this round *)
        outgoing.(v) <- st.send;
        if st.halt then begin
          halted.(v) <- true;
          decr live
        end
      end
    done;
    for v = 0 to n - 1 do
      (* enforce bandwidth per directed edge (v -> w) *)
      List.iter
        (fun (w, msg) ->
          if not (is_neighbor v w) then
            invalid_arg
              (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d"
                 v w);
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then touched := w :: !touched;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          (* fate of the message: the sender has spent the bandwidth
             either way; every non-delivery is counted in [dropped] so
             that delivered + dropped = messages always holds *)
          if faulty && link_down r v w then incr dropped
          else if crashed.(w) then incr dropped
          else if halted.(w) then incr dropped
          else if
            faults.drop_rate > 0.
            && Random.State.float frng 1. < faults.drop_rate
          then incr dropped
          else begin
            inboxes.(w) <- (v, msg) :: inboxes.(w);
            if
              faults.duplicate_rate > 0.
              && Random.State.float frng 1. < faults.duplicate_rate
            then begin
              inboxes.(w) <- (v, msg) :: inboxes.(w);
              incr duplicated
            end
          end)
        outgoing.(v);
      List.iter (fun w -> edge_bits.(w) <- 0) !touched;
      touched := []
    done
  done;
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )

(* ------------------------------------------------------------------ *)
(* Active-vertex scheduler                                             *)
(* ------------------------------------------------------------------ *)

(* in-place ascending quicksort of a.(0 .. len-1); entries are distinct
   vertex ids, so partitioning details cannot affect the result *)
let sort_prefix a len =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec go lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      go lo !j;
      go !i hi
    end
  in
  if len > 1 then go 0 (len - 1)

(* The event-driven loop. The determinism contract it preserves, relied on
   by the fault layer's RNG: per round, vertices execute in ascending id
   order and each vertex's sends are processed in list order, so the k-th
   [Random.State] draw of a run lands on the same message as in
   [run_reference]. Under [Every_round] scheduling the sequence of round
   calls is identical to the reference; under [Event_driven] it is a
   subsequence that omits only steps the wake-up contract declares no-ops
   (see network.mli), which send nothing and therefore draw nothing. *)
let run ?(faults = Faults.none) ?(schedule = Every_round) g ~bandwidth
    ~msg_bits ~init ~round ~max_rounds =
  let n = Graph.n g in
  let event = match schedule with Event_driven -> true | Every_round -> false in
  let ctxs =
    Array.init n (fun v ->
        let d = Graph.degree g v in
        { id = v; n_hint = n; neighbors = Array.init d (Graph.neighbor_at g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  (* Flat per-vertex inbox buffers, reused across rounds. Deliveries happen
     sender-ascending within a round and sends are processed in list order,
     which is exactly the order the reference loop's stable_sort + rev
     reconstructs — so filling in arrival order needs no per-round sort. *)
  let in_src : int array array = Array.make n [||] in
  let in_msg : 'msg array array = Array.make n [||] in
  let in_len = Array.make n 0 in
  let push_inbox w src msg =
    let len = in_len.(w) in
    let cap = Array.length in_src.(w) in
    if len = cap then begin
      let cap' = if cap = 0 then 4 else 2 * cap in
      let src' = Array.make cap' 0 in
      Array.blit in_src.(w) 0 src' 0 len;
      in_src.(w) <- src';
      (* the arriving message doubles as the fill element, so growing never
         needs a dummy 'msg value *)
      let msg' = Array.make cap' msg in
      Array.blit in_msg.(w) 0 msg' 0 len;
      in_msg.(w) <- msg'
    end;
    in_src.(w).(len) <- src;
    in_msg.(w).(len) <- msg;
    in_len.(w) <- len + 1
  in
  let inbox_list v =
    let src = in_src.(v) and msg = in_msg.(v) in
    let acc = ref [] in
    for i = in_len.(v) - 1 downto 0 do
      acc := (src.(i), msg.(i)) :: !acc
    done;
    in_len.(v) <- 0;
    !acc
  in
  let messages = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashed_rounds = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  let faulty = Faults.is_active faults in
  let crashed = Array.make n false in
  let crashed_live = ref 0 in
  let frng = Faults.rng faults in
  let crash_at, recover_at, link_down = fault_tables faults n in
  (* sorted distinct rounds at which a crash or recovery fires: the fault
     events the fast-forward path must not jump over *)
  let fault_rounds =
    if not faulty then [||]
    else
      Array.of_list
        (List.sort_uniq Int.compare
           (Hashtbl.fold
              (fun k _ acc -> k :: acc)
              crash_at
              (Hashtbl.fold (fun k _ acc -> k :: acc) recover_at [])))
  in
  let fr_idx = ref 0 in
  let next_fault_round r =
    while
      !fr_idx < Array.length fault_rounds && fault_rounds.(!fr_idx) <= r
    do
      incr fr_idx
    done;
    if !fr_idx < Array.length fault_rounds then fault_rounds.(!fr_idx)
    else max_int
  in
  (* worklists: [cur] is this round's schedule, [nxt] collects next round's;
     [sched.(v)] is the latest round v is queued for (dedup stamp) *)
  let cur = ref (Array.make n 0) and nxt = ref (Array.make n 0) in
  let cur_len = ref 0 and nxt_len = ref 0 in
  let sched = Array.make n (-1) in
  let exec = Array.make n 0 in
  let exec_len = ref 0 in
  let active_total = ref 0 in
  (* wake-up requests: [wake_at.(v)] is v's pending wake round (0 = none);
     buckets collect the vertices per round, and a min-heap over bucket
     rounds answers "when is the next wake?" for fast-forwarding. Stale
     bucket entries (superseded or cancelled wakes) are filtered against
     [wake_at] when the bucket is consumed. *)
  let wake_at = Array.make n 0 in
  let wake_buckets : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let heap = ref (Array.make 16 0) in
  let heap_len = ref 0 in
  let heap_push x =
    if !heap_len = Array.length !heap then begin
      let h = Array.make (2 * !heap_len) 0 in
      Array.blit !heap 0 h 0 !heap_len;
      heap := h
    end;
    let a = !heap in
    let i = ref !heap_len in
    incr heap_len;
    a.(!i) <- x;
    while !i > 0 && a.((!i - 1) / 2) > a.(!i) do
      let p = (!i - 1) / 2 in
      let t = a.(p) in
      a.(p) <- a.(!i);
      a.(!i) <- t;
      i := p
    done
  in
  let heap_min () = if !heap_len = 0 then max_int else (!heap).(0) in
  let heap_pop () =
    let a = !heap in
    decr heap_len;
    a.(0) <- a.(!heap_len);
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !heap_len && a.(l) < a.(!s) then s := l;
      if r < !heap_len && a.(r) < a.(!s) then s := r;
      if !s = !i then moving := false
      else begin
        let t = a.(!s) in
        a.(!s) <- a.(!i);
        a.(!i) <- t;
        i := !s
      end
    done
  in
  let set_wake v t =
    wake_at.(v) <- t;
    match Hashtbl.find_opt wake_buckets t with
    | Some entries -> entries := v :: !entries
    | None ->
        Hashtbl.add wake_buckets t (ref [ v ]);
        heap_push t
  in
  let push_cur r v =
    if sched.(v) <> r then begin
      sched.(v) <- r;
      (!cur).(!cur_len) <- v;
      incr cur_len
    end
  in
  let push_nxt r1 v =
    if sched.(v) <> r1 then begin
      sched.(v) <- r1;
      (!nxt).(!nxt_len) <- v;
      incr nxt_len
    end
  in
  (* reused outgoing scratch: only slots of vertices stepped this round are
     written, and each is reset right after its messages are delivered *)
  let outgoing : (int * 'msg) list array = Array.make n [] in
  (* bandwidth scratch, reused across vertices and rounds *)
  let edge_bits = Array.make n 0 in
  let touched = Array.make n 0 in
  let touched_len = ref 0 in
  let check_neighbor row cursor v w =
    (* sends are normally listed in ascending neighbor order, so a moving
       cursor over the sorted row validates them in O(1) amortized; an
       out-of-order send falls back to binary search *)
    let len = Array.length row in
    let c = !cursor in
    if c < len && row.(c) = w then cursor := c + 1
    else begin
      let lo = ref 0 and hi = ref (len - 1) in
      let found = ref (-1) in
      while !found < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = row.(mid) in
        if x = w then found := mid
        else if x < w then lo := mid + 1
        else hi := mid - 1
      done;
      if !found < 0 then
        invalid_arg
          (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d" v w);
      cursor := !found + 1
    end
  in
  (* round 1 schedules everyone *)
  if event then
    for v = 0 to n - 1 do
      push_cur 1 v
    done;
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* crash / recovery events take effect at the start of the round, in
       the same order as the reference: recoveries first, then crashes. A
       recovering vertex executes its recovery round with an empty inbox. *)
    if faulty then begin
      List.iter
        (fun v ->
          if crashed.(v) && not halted.(v) then begin
            crashed.(v) <- false;
            incr live;
            decr crashed_live;
            if event then push_cur r v
          end)
        (Hashtbl.find_all recover_at r);
      List.iter
        (fun v ->
          if (not crashed.(v)) && not halted.(v) then begin
            crashed.(v) <- true;
            in_len.(v) <- 0;
            decr live;
            incr crashed_live
          end)
        (Hashtbl.find_all crash_at r)
    end;
    (* every crashed vertex burns this round, exactly as the reference
       counts it during its full sweep *)
    crashed_rounds := !crashed_rounds + !crashed_live;
    if event then begin
      (* fire this round's wake-ups *)
      (match Hashtbl.find_opt wake_buckets r with
      | Some entries ->
          List.iter
            (fun v ->
              if wake_at.(v) = r then begin
                wake_at.(v) <- 0;
                (* a wake firing while crashed is lost: the recovery event
                   itself reschedules the vertex *)
                if (not halted.(v)) && not crashed.(v) then push_cur r v
              end)
            !entries;
          Hashtbl.remove wake_buckets r
      | None -> ());
      if heap_min () = r then heap_pop ();
      sort_prefix !cur !cur_len
    end;
    (* execute the round on this round's schedule, ascending by vertex id *)
    exec_len := 0;
    let step_vertex v =
      let st = round r ctxs.(v) states.(v) (inbox_list v) in
      states.(v) <- st.state;
      (* a halting vertex's final sends still go out this round *)
      outgoing.(v) <- st.send;
      exec.(!exec_len) <- v;
      incr exec_len;
      if st.halt then begin
        halted.(v) <- true;
        decr live;
        if wake_at.(v) > 0 then wake_at.(v) <- 0
      end
      else if event then
        match st.wake_after with
        | Some d ->
            if d < 1 then
              invalid_arg
                (Printf.sprintf
                   "Network.run: vertex %d requested wake_after %d (must be \
                    >= 1)"
                   v d);
            if d <= max_rounds - r then set_wake v (r + d)
            else if wake_at.(v) > 0 then wake_at.(v) <- 0
        | None -> if wake_at.(v) > 0 then wake_at.(v) <- 0
    in
    if event then
      for i = 0 to !cur_len - 1 do
        let v = (!cur).(i) in
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done
    else
      for v = 0 to n - 1 do
        if (not halted.(v)) && not crashed.(v) then step_vertex v
      done;
    active_total := !active_total + !exec_len;
    (* deliver, senders ascending (exec is ascending in both modes), each
       sender's messages in list order — the draw order the fault RNG pins *)
    cur_len := 0;
    for i = 0 to !exec_len - 1 do
      let v = exec.(i) in
      let row = ctxs.(v).neighbors in
      let cursor = ref 0 in
      List.iter
        (fun (w, msg) ->
          check_neighbor row cursor v w;
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then begin
            touched.(!touched_len) <- w;
            incr touched_len
          end;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          (* fate of the message: the sender has spent the bandwidth
             either way; every non-delivery is counted in [dropped] so
             that delivered + dropped = messages always holds *)
          if faulty && link_down r v w then incr dropped
          else if crashed.(w) then incr dropped
          else if halted.(w) then incr dropped
          else if
            faults.drop_rate > 0.
            && Random.State.float frng 1. < faults.drop_rate
          then incr dropped
          else begin
            push_inbox w v msg;
            if event then push_nxt (r + 1) w;
            if
              faults.duplicate_rate > 0.
              && Random.State.float frng 1. < faults.duplicate_rate
            then begin
              push_inbox w v msg;
              incr duplicated
            end
          end)
        outgoing.(v);
      outgoing.(v) <- [];
      for t = 0 to !touched_len - 1 do
        edge_bits.(touched.(t)) <- 0
      done;
      touched_len := 0
    done;
    if event then begin
      (* swap worklists; [nxt] becomes round r+1's schedule *)
      let t = !cur in
      cur := !nxt;
      nxt := t;
      cur_len := !nxt_len;
      nxt_len := 0;
      (* fast-forward over silent rounds: nobody is scheduled, so jump to
         the next wake-up or fault event (or the horizon). The reference
         loop spends those rounds stepping vertices whose wake-up contract
         makes them no-ops, so skipping them changes nothing observable;
         crashed vertices still accrue crashed_rounds for each round
         skipped. *)
      if !live > 0 && !cur_len = 0 then begin
        let cand = min (heap_min ()) (next_fault_round r) in
        let target =
          if cand = max_int || cand > max_rounds then max_rounds + 1 else cand
        in
        let skipped = target - 1 - r in
        if skipped > 0 then begin
          crashed_rounds := !crashed_rounds + (!crashed_live * skipped);
          rounds := target - 1
        end
      end
    end
  done;
  (* cost-meter hook: attribute this run's accounting to the enclosing
     observability span (no-op unless Obs is enabled). Fault counters are
     only reported for runs with an active fault spec, and the schedule
     sparsity counter only for event-driven runs, so existing fault-free
     profiles stay byte-identical. *)
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  if faulty then
    Obs.Meter.faults ~dropped:!dropped ~duplicated:!duplicated
      ~crashed_rounds:!crashed_rounds;
  if event then Obs.Meter.active ~vertices:!active_total;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      crashed_rounds = !crashed_rounds;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )
