open Sparse_graph

type bandwidth = Congest of int | Local

let congest_bandwidth ?(c = 8) n = Congest (c * Bits.id_bits n)

exception Congestion_violation of {
  round : int;
  src : int;
  dst : int;
  bits : int;
  budget : int;
}

type ctx = {
  id : int;
  n_hint : int;
  neighbors : int array;
}

type ('state, 'msg) step = {
  state : 'state;
  send : (int * 'msg) list;
  halt : bool;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_edge_bits : int;
  completed : bool;
  last_traffic_round : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d total_bits=%d max_edge_bits=%d completed=%b \
     last_traffic=%d"
    s.rounds s.messages s.total_bits s.max_edge_bits s.completed
    s.last_traffic_round

let run g ~bandwidth ~msg_bits ~init ~round ~max_rounds =
  let n = Graph.n g in
  let ctxs =
    Array.init n (fun v ->
        { id = v; n_hint = n; neighbors = Array.of_list (Graph.neighbors g v) })
  in
  let states = Array.map init ctxs in
  let halted = Array.make n false in
  let inboxes : (int * 'msg) list array = Array.make n [] in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_bits = ref 0 in
  let last_traffic = ref 0 in
  let rounds = ref 0 in
  let live = ref n in
  (* scratch for the per-directed-edge bandwidth accounting, reused across
     vertices and rounds; [touched] lists the destinations to reset *)
  let edge_bits = Array.make n 0 in
  let touched = ref [] in
  let is_neighbor v w =
    (* binary search in the vertex's sorted neighbor row; avoids the
       per-message incidence lookup in the graph *)
    let row = ctxs.(v).neighbors in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = w then found := true
      else if x < w then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  while !live > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    (* collect this round's traffic; per directed edge bit accounting *)
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        let inbox =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
        in
        inboxes.(v) <- [];
        let step = round r ctxs.(v) states.(v) inbox in
        states.(v) <- step.state;
        (* a halting vertex's final sends still go out this round *)
        outgoing.(v) <- step.send;
        if step.halt then begin
          halted.(v) <- true;
          decr live
        end
      end
      else inboxes.(v) <- []
    done;
    for v = 0 to n - 1 do
      (* enforce bandwidth per directed edge (v -> w) *)
      List.iter
        (fun (w, msg) ->
          if not (is_neighbor v w) then
            invalid_arg
              (Printf.sprintf "Network.run: vertex %d sent to non-neighbor %d"
                 v w);
          let bits = msg_bits msg in
          if edge_bits.(w) = 0 then touched := w :: !touched;
          let now = edge_bits.(w) + bits in
          edge_bits.(w) <- now;
          (match bandwidth with
          | Local -> ()
          | Congest budget ->
              if now > budget then
                raise
                  (Congestion_violation
                     { round = r; src = v; dst = w; bits = now; budget }));
          total_bits := !total_bits + bits;
          if now > !max_edge_bits then max_edge_bits := now;
          incr messages;
          last_traffic := r;
          if not halted.(w) then inboxes.(w) <- (v, msg) :: inboxes.(w))
        outgoing.(v);
      List.iter (fun w -> edge_bits.(w) <- 0) !touched;
      touched := []
    done
  done;
  (* cost-meter hook: attribute this run's accounting to the enclosing
     observability span (no-op unless Obs is enabled) *)
  Obs.Meter.net ~rounds:!rounds ~messages:!messages ~total_bits:!total_bits
    ~max_edge_bits:!max_edge_bits;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_bits = !max_edge_bits;
      completed = !live = 0;
      last_traffic_round = !last_traffic;
    } )
