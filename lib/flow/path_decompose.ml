(* Decompose the flow held in a residual network into source -> sink paths.

   Vertices with positive divergence originate that many units; the walk
   follows arcs carrying positive flow until it reaches a vertex with
   negative remaining divergence (a net absorber), then subtracts the
   path's bottleneck. Cycles in the flow (push-relabel preflows can leave
   them) are cancelled in place when the walk revisits an on-path vertex,
   so the walk always terminates; pure circulations disjoint from every
   source are left untouched — they connect no source-sink pair. Per-vertex
   cursor pointers make the total work linear in the flow's support plus
   the emitted path lengths. *)

type path = {
  src : int;
  dst : int;
  amount : int;
  length : int;  (* arcs on the emitted path *)
  vertices : int array;  (* the walked vertices, src first, dst last *)
}

type t = {
  paths : path list;  (* ascending source order; walk order within a source *)
  total : int;        (* total units decomposed *)
  max_length : int;
}

type walker = {
  net : Net.t;
  flow : int array;      (* remaining positive flow per arc *)
  div_rem : int array;   (* remaining divergence budget per vertex *)
  cursor : int array;    (* per-vertex scan position over out-arcs *)
  path_arc : int array;
  path_vtx : int array;
  path_pos : int array;  (* vertex -> position on the current path, or -1 *)
  mutable top : int;     (* arcs currently on the path *)
}

(* advance v's cursor to its next positive-flow out-arc, or return -1 *)
(* lint: hot *)
let next_arc w v =
  let row_end = w.net.Net.first.(v + 1) in
  while w.cursor.(v) < row_end && w.flow.(w.net.Net.arcs.(w.cursor.(v))) = 0 do
    w.cursor.(v) <- w.cursor.(v) + 1
  done;
  if w.cursor.(v) >= row_end then -1 else w.net.Net.arcs.(w.cursor.(v))

(* the walk stepped back onto on-path vertex [t]: remove the cycle's
   bottleneck (including the closing arc [a]) and truncate the path *)
(* lint: hot *)
let cancel_cycle w t a =
  let start = w.path_pos.(t) in
  let bottleneck = ref w.flow.(a) in
  for i = start to w.top - 1 do
    if w.flow.(w.path_arc.(i)) < !bottleneck then
      bottleneck := w.flow.(w.path_arc.(i))
  done;
  let b = !bottleneck in
  w.flow.(a) <- w.flow.(a) - b;
  for i = start to w.top - 1 do
    w.flow.(w.path_arc.(i)) <- w.flow.(w.path_arc.(i)) - b
  done;
  for i = start + 1 to w.top do
    w.path_pos.(w.path_vtx.(i)) <- -1
  done;
  w.top <- start

(* walk one path from source [s]; returns the sink reached *)
(* lint: hot *)
let walk_path w s =
  w.top <- 0;
  w.path_vtx.(0) <- s;
  w.path_pos.(s) <- 0;
  let dst = ref (-1) in
  let cur = ref s in
  while !dst < 0 do
    let v = !cur in
    if v <> s && w.div_rem.(v) < 0 then dst := v
    else begin
      let a = next_arc w v in
      if a < 0 then
        invalid_arg
          "Flow.Path_decompose.decompose: stuck walk (not a routed flow)"
      else begin
        let h = w.net.Net.arc_head.(a) in
        if w.path_pos.(h) >= 0 then begin
          cancel_cycle w h a;
          cur := h
        end
        else begin
          w.path_arc.(w.top) <- a;
          w.top <- w.top + 1;
          w.path_vtx.(w.top) <- h;
          w.path_pos.(h) <- w.top;
          cur := h
        end
      end
    end
  done;
  !dst

let decompose net =
  let n = net.Net.n in
  let arcs = Array.length net.Net.arc_head in
  let w =
    {
      net;
      flow = Array.init arcs (Net.arc_flow net);
      div_rem = Array.init n (Net.divergence net);
      cursor = Array.copy net.Net.first;
      path_arc = Array.make (n + 1) 0;
      path_vtx = Array.make (n + 2) 0;
      path_pos = Array.make n (-1);
      top = 0;
    }
  in
  let paths = ref [] in
  let total = ref 0 in
  let max_len = ref 0 in
  for s = n - 1 downto 0 do
    while w.div_rem.(s) > 0 do
      let t = walk_path w s in
      let amount = ref (min w.div_rem.(s) (-w.div_rem.(t))) in
      for i = 0 to w.top - 1 do
        if w.flow.(w.path_arc.(i)) < !amount then
          amount := w.flow.(w.path_arc.(i))
      done;
      let amt = !amount in
      (* a completed walk always carries at least one unit: the path's
         arcs each had positive flow and both endpoint budgets are open *)
      for i = 0 to w.top - 1 do
        w.flow.(w.path_arc.(i)) <- w.flow.(w.path_arc.(i)) - amt
      done;
      w.div_rem.(s) <- w.div_rem.(s) - amt;
      w.div_rem.(t) <- w.div_rem.(t) + amt;
      total := !total + amt;
      if w.top > !max_len then max_len := w.top;
      paths :=
        {
          src = s;
          dst = t;
          amount = amt;
          length = w.top;
          vertices = Array.sub w.path_vtx 0 (w.top + 1);
        }
        :: !paths;
      for i = 0 to w.top do
        w.path_pos.(w.path_vtx.(i)) <- -1
      done
    done
  done;
  Obs.Metric.count "flow.paths" (List.length !paths);
  Obs.Metric.set_max "flow.max_path_len" !max_len;
  { paths = !paths; total = !total; max_length = !max_len }
