(** Flow-based (epsilon, phi) expander decomposition.

    The same frontier-wave recursion, task seeding, thresholds
    ([tau = epsilon / (2 log2(2m))], [phi = tau^2 / 4]), and DFS pre-order
    labels as {!Spectral.Expander_decomposition} — the result reuses that
    record, so verification and everything downstream is shared — but each
    cluster is judged by cheap cut heuristics ({!Cut_heuristics}) and then
    the cut-matching game ({!Cut_matching}) instead of Fiedler sweeps.
    Deterministic for every pool size. *)

type params = {
  game : Cut_matching.params;
  exact_limit : int;
      (** clusters up to this size are judged by exhaustive conductance
          (default 14, matching the spectral engine) *)
  seed : int;
}

val default_params : params

type stats = {
  games : int;           (** cut-matching games played *)
  game_rounds : int;     (** rounds across all games *)
  flow_calls : int;      (** bounded push-relabel runs *)
  heuristic_cuts : int;  (** clusters split by a cheap heuristic, no game *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

(** [decompose ?params ?pool g ~epsilon] computes the decomposition and
    the work statistics.
    @raise Invalid_argument unless [0 < epsilon < 1]. *)
val decompose :
  ?params:params -> ?pool:Parallel.Pool.t -> Sparse_graph.Graph.t ->
  epsilon:float -> Spectral.Expander_decomposition.t * stats
