open Sparse_graph

(* Weighted push-relabel with bounded-height early termination, in the
   multi-source / multi-sink supply form used by the cut-matching game:
   every vertex may carry integer supply (excess to route) and integer
   sink capacity (units it can absorb). Heights are capped at [limit];
   a vertex lifted to the cap retires with its remaining excess, and the
   level structure of the retired run yields a cut certificate
   ({!level_cut}). With [limit >= n + 1] the routed value is exactly the
   maximum flow: unsaturated sinks never activate, so they stay at height
   0 and any vertex with excess and a residual path to one keeps height
   below [n]. *)

type outcome = {
  routed : int;          (* units absorbed at sinks (incl. self-absorption) *)
  supply_total : int;
  height : int array;
  excess : int array;    (* unrouted excess left at each vertex *)
  absorbed : int array;  (* units absorbed at each sink *)
  pushes : int;
  relabels : int;
  gap_jumps : int;
  global_relabels : int;
}

let fully_routed o = o.routed = o.supply_total

type state = {
  net : Net.t;
  limit : int;
  height : int array;
  excess : int array;
  sink_left : int array;
  absorbed : int array;
  current : int array;   (* current-arc pointer per vertex *)
  queue : int array;     (* FIFO ring buffer of active vertices *)
  mutable qhead : int;
  mutable qtail : int;
  in_queue : bool array;
  hcount : int array;    (* vertices per height in [0, limit) *)
  mutable routed : int;
  mutable pushes : int;
  mutable relabels : int;
  mutable gap_jumps : int;
  mutable global_relabels : int;
  mutable work : int;    (* arc scans since the last global relabel *)
}

(* lint: hot *)
let enqueue st v =
  if (not st.in_queue.(v)) && st.excess.(v) > 0 && st.height.(v) < st.limit
  then begin
    st.in_queue.(v) <- true;
    st.queue.(st.qtail) <- v;
    st.qtail <- (st.qtail + 1) mod Array.length st.queue
  end

(* lint: hot *)
let dequeue st =
  let v = st.queue.(st.qhead) in
  st.qhead <- (st.qhead + 1) mod Array.length st.queue;
  st.in_queue.(v) <- false;
  v

(* absorb as much of v's excess as its remaining sink capacity allows *)
(* lint: hot *)
let absorb st v =
  if st.sink_left.(v) > 0 && st.excess.(v) > 0 then begin
    let d = min st.sink_left.(v) st.excess.(v) in
    st.sink_left.(v) <- st.sink_left.(v) - d;
    st.absorbed.(v) <- st.absorbed.(v) + d;
    st.excess.(v) <- st.excess.(v) - d;
    st.routed <- st.routed + d
  end

(* the gap heuristic: height level [h] just emptied, so no residual path
   from any vertex above [h] can reach a sink below it — retire them all.
   The O(n) scan runs only when a level actually empties. *)
(* lint: hot *)
let gap st h =
  for v = 0 to st.net.Net.n - 1 do
    if st.height.(v) > h && st.height.(v) < st.limit then begin
      st.hcount.(st.height.(v)) <- st.hcount.(st.height.(v)) - 1;
      st.height.(v) <- st.limit;
      st.gap_jumps <- st.gap_jumps + 1
    end
  done

(* backward BFS from unsaturated sinks along reverse residual arcs:
   exact distance labels, retiring unreachable vertices. The queue array
   doubles as BFS scratch (the active queue is rebuilt afterwards). *)
(* lint: hot *)
let global_relabel st =
  let n = st.net.Net.n in
  let net = st.net in
  st.global_relabels <- st.global_relabels + 1;
  Array.fill st.hcount 0 (Array.length st.hcount) 0;
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if st.sink_left.(v) > 0 then begin
      st.height.(v) <- 0;
      st.queue.(!tail) <- v;
      incr tail
    end
    else st.height.(v) <- st.limit
  done;
  while !head < !tail do
    let u = st.queue.(!head) in
    incr head;
    let hu = st.height.(u) in
    for i = net.Net.first.(u) to net.Net.first.(u + 1) - 1 do
      let a = net.Net.arcs.(i) in
      let w = net.Net.arc_head.(a) in
      (* the twin of the out-arc u -> w is w -> u: residual capacity there
         means w can push toward u *)
      if net.Net.cap.(Net.twin a) > 0 && st.height.(w) = st.limit
         && hu + 1 < st.limit
      then begin
        st.height.(w) <- hu + 1;
        st.queue.(!tail) <- w;
        incr tail
      end
    done
  done;
  for v = 0 to n - 1 do
    if st.height.(v) < st.limit then
      st.hcount.(st.height.(v)) <- st.hcount.(st.height.(v)) + 1
  done;
  (* rebuild the active queue from scratch *)
  st.qhead <- 0;
  st.qtail <- 0;
  Array.fill st.in_queue 0 n false;
  for v = 0 to n - 1 do
    st.current.(v) <- st.net.Net.first.(v);
    enqueue st v
  done

(* one discharge: push v's excess over admissible arcs, relabeling when
   the row is exhausted, until the excess is gone or v retires at the
   height cap. *)
(* lint: hot *)
let discharge st v =
  let net = st.net in
  let continue = ref (st.excess.(v) > 0 && st.height.(v) < st.limit) in
  while !continue do
    let row_end = net.Net.first.(v + 1) in
    let i = ref st.current.(v) in
    let hv = st.height.(v) in
    while st.excess.(v) > 0 && !i < row_end do
      let a = net.Net.arcs.(!i) in
      let w = net.Net.arc_head.(a) in
      if net.Net.cap.(a) > 0 && hv = st.height.(w) + 1 then begin
        let d = min st.excess.(v) net.Net.cap.(a) in
        net.Net.cap.(a) <- net.Net.cap.(a) - d;
        let t = Net.twin a in
        net.Net.cap.(t) <- net.Net.cap.(t) + d;
        st.excess.(v) <- st.excess.(v) - d;
        st.excess.(w) <- st.excess.(w) + d;
        st.pushes <- st.pushes + 1;
        absorb st w;
        enqueue st w
      end
      else incr i;
      st.work <- st.work + 1
    done;
    st.current.(v) <- !i;
    if st.excess.(v) = 0 then continue := false
    else begin
      (* relabel: lift v to one above its lowest residual neighbor *)
      let best = ref st.limit in
      for j = net.Net.first.(v) to row_end - 1 do
        let a = net.Net.arcs.(j) in
        if net.Net.cap.(a) > 0 then begin
          let hw = st.height.(net.Net.arc_head.(a)) in
          if hw < !best then best := hw
        end;
        st.work <- st.work + 1
      done;
      let old = st.height.(v) in
      let nh = if !best >= st.limit then st.limit else !best + 1 in
      st.hcount.(old) <- st.hcount.(old) - 1;
      st.height.(v) <- nh;
      st.relabels <- st.relabels + 1;
      if nh < st.limit then st.hcount.(nh) <- st.hcount.(nh) + 1;
      st.current.(v) <- net.Net.first.(v);
      if st.hcount.(old) = 0 && old < st.limit then gap st old;
      if st.height.(v) >= st.limit then continue := false
    end
  done

let run ?(global_relabel_period = 8) net ~supply ~sink_cap ~limit =
  let n = net.Net.n in
  if Array.length supply <> n || Array.length sink_cap <> n then
    invalid_arg "Flow.Push_relabel.run: supply/sink_cap length mismatch";
  if limit < 1 then invalid_arg "Flow.Push_relabel.run: limit < 1";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Flow.Push_relabel.run: negative supply")
    supply;
  Array.iter
    (fun s ->
      if s < 0 then invalid_arg "Flow.Push_relabel.run: negative sink capacity")
    sink_cap;
  let st =
    {
      net;
      limit;
      height = Array.make n 0;
      excess = Array.copy supply;
      sink_left = Array.copy sink_cap;
      absorbed = Array.make n 0;
      current = Array.copy net.Net.first;
      queue = Array.make (n + 1) 0;
      qhead = 0;
      qtail = 0;
      in_queue = Array.make n false;
      hcount = Array.make (limit + 1) 0;
      routed = 0;
      pushes = 0;
      relabels = 0;
      gap_jumps = 0;
      global_relabels = 0;
      work = 0;
    }
  in
  st.hcount.(0) <- n;
  let supply_total = Array.fold_left ( + ) 0 supply in
  (* self-absorption first: a vertex that is both source and sink routes
     through itself at zero cost *)
  for v = 0 to n - 1 do
    absorb st v;
    enqueue st v
  done;
  let work_budget =
    global_relabel_period * (n + (2 * Array.length net.Net.arc_head))
  in
  while st.qhead <> st.qtail do
    let v = dequeue st in
    discharge st v;
    if st.work >= work_budget then begin
      st.work <- 0;
      global_relabel st
    end
  done;
  Obs.Metric.count "flow.pushes" st.pushes;
  Obs.Metric.count "flow.relabels" st.relabels;
  Obs.Metric.count "flow.gap_jumps" st.gap_jumps;
  Obs.Metric.count "flow.global_relabels" st.global_relabels;
  {
    routed = st.routed;
    supply_total;
    height = st.height;
    excess = st.excess;
    absorbed = st.absorbed;
    pushes = st.pushes;
    relabels = st.relabels;
    gap_jumps = st.gap_jumps;
    global_relabels = st.global_relabels;
  }

let max_flow_st ?capacity g ~s ~t =
  let n = Graph.n g in
  if s = t || s < 0 || t < 0 || s >= n || t >= n then
    invalid_arg "Flow.Push_relabel.max_flow_st: bad endpoints";
  let net = Net.of_graph ?capacity g in
  let supply = Array.make n 0 in
  let sink_cap = Array.make n 0 in
  let out_cap = ref 0 in
  for i = net.Net.first.(s) to net.Net.first.(s + 1) - 1 do
    out_cap := !out_cap + net.Net.cap0.(net.Net.arcs.(i))
  done;
  supply.(s) <- !out_cap;
  sink_cap.(t) <- max 1 (!out_cap);
  let o = run net ~supply ~sink_cap ~limit:(n + 1) in
  (* phase 2: excess parked at interior vertices provably cannot reach
     [t]; drain it back to [s] along residual arcs (reversing its own
     inflow paths, which always exist), leaving a clean s-t flow whose
     divergence is zero everywhere but the endpoints *)
  let leftover = Array.copy o.excess in
  leftover.(s) <- 0;
  if Array.exists (fun e -> e > 0) leftover then begin
    let back_cap = Array.make n 0 in
    back_cap.(s) <- o.supply_total;
    let drain = run net ~supply:leftover ~sink_cap:back_cap ~limit:(n + 1) in
    assert (fully_routed drain)
  end;
  (o.absorbed.(t), net, o)

(* Level-cut sweep over the heights of a terminated bounded run: for each
   threshold level l, the side {v | height v >= l} is separated from the
   sinks; pick the threshold of minimum conductance. Crossing counts and
   volumes accumulate once over the edges via difference arrays, so the
   whole sweep is O(n + m + limit). *)
let level_cut g ~height ~limit =
  let n = Graph.n g in
  let max_h = Array.fold_left (fun acc h -> max acc (min h limit)) 0 height in
  if max_h = 0 then None
  else begin
    let vol_at = Array.make (max_h + 2) 0 in
    let cross = Array.make (max_h + 2) 0 in
    for v = 0 to n - 1 do
      let h = min height.(v) max_h in
      vol_at.(h) <- vol_at.(h) + Graph.degree g v
    done;
    Graph.iter_edges g (fun _ u v ->
        let hu = min height.(u) max_h and hv = min height.(v) max_h in
        let lo = min hu hv and hi = max hu hv in
        (* the edge crosses the cut for thresholds in (lo, hi] *)
        if lo < hi then begin
          cross.(lo + 1) <- cross.(lo + 1) + 1;
          cross.(hi + 1) <- cross.(hi + 1) - 1
        end);
    let total_vol = 2 * Graph.m g in
    (* suffix.(l) = volume of {v | height >= l} *)
    let vol_ge = ref 0 in
    let suffix = Array.make (max_h + 2) 0 in
    for h = max_h downto 0 do
      vol_ge := !vol_ge + vol_at.(h);
      suffix.(h) <- !vol_ge
    done;
    let best = ref infinity and best_l = ref (-1) in
    let crossing = ref 0 in
    for l = 1 to max_h do
      crossing := !crossing + cross.(l);
      let vol_s = suffix.(l) in
      let denom = min vol_s (total_vol - vol_s) in
      if denom > 0 then begin
        let phi = float_of_int !crossing /. float_of_int denom in
        if phi < !best then begin
          best := phi;
          best_l := l
        end
      end
    done;
    if !best_l < 0 then None
    else begin
      let side = Array.map (fun h -> min h max_h >= !best_l) height in
      Some (side, !best)
    end
  end
