open Sparse_graph

(* Flow-based expander decomposition: the same frontier-wave recursion as
   Spectral.Expander_decomposition (same task identity, same seeding, same
   DFS pre-order labels — so the two engines are drop-in interchangeable
   and both are deterministic across pool sizes), but each cluster is
   judged by cheap cut heuristics and then the cut-matching game instead
   of Fiedler sweeps. The result reuses the spectral result record, so
   everything downstream (verify, conductance reports, the pipeline) is
   shared. *)

type params = {
  game : Cut_matching.params;
  exact_limit : int;  (* clusters up to this size use exhaustive conductance *)
  seed : int;
}

let default_params = { game = Cut_matching.default; exact_limit = 14; seed = 0 }

type stats = {
  games : int;           (* cut-matching games played *)
  game_rounds : int;     (* rounds across all games *)
  flow_calls : int;      (* bounded push-relabel runs *)
  heuristic_cuts : int;  (* clusters split by a cheap heuristic, no game *)
}

let zero_stats =
  { games = 0; game_rounds = 0; flow_calls = 0; heuristic_cuts = 0 }

let add_stats a b =
  {
    games = a.games + b.games;
    game_rounds = a.game_rounds + b.game_rounds;
    flow_calls = a.flow_calls + b.flow_calls;
    heuristic_cuts = a.heuristic_cuts + b.heuristic_cuts;
  }

(* Acceptance evidence carried back from [try_split] (original vertex
   ids): the routed matchings with their embedded paths, the embedding's
   congestion/dilation bounds, and which judge accepted the cluster. *)
type accept_evidence = {
  ev_matchings : ((int * int) array * int array array) list;
  ev_congestion : int;
  ev_dilation : int;
  ev_source : string;
}

let plain_evidence source =
  { ev_matchings = []; ev_congestion = 0; ev_dilation = 0; ev_source = source }

(* map a game witness played on the induced subgraph back to original ids *)
let evidence_of_witness (mapping : Graph_ops.mapping)
    (w : Cut_matching.witness) =
  let o v = mapping.to_orig.(v) in
  let ev_matchings =
    List.map2
      (fun pairs embeds ->
        ( Array.map (fun (a, b) -> (o a, o b)) pairs,
          Array.map (Array.map o) embeds ))
      w.Cut_matching.matchings w.Cut_matching.embeddings
  in
  {
    ev_matchings;
    ev_congestion = w.Cut_matching.congestion;
    ev_dilation = w.Cut_matching.max_path_length;
    ev_source = (if ev_matchings = [] then "trivial" else "cutmatching");
  }

(* Judge one cluster (induced subgraph): [None] accepts it (with the
   acceptance evidence), [Some (l, r)] splits it (original-vertex ids).
   Mirrors the spectral splitter's structure; the seed must be a pure
   function of the cluster identity. *)
let try_split params sub (mapping : Graph_ops.mapping) tau ~seed =
  let n = Graph.n sub in
  if n < 2 then (None, plain_evidence "trivial", zero_stats)
  else if Graph.m sub = 0 then
    (* split isolated vertices off one at a time *)
    ( Some
        ( [ mapping.to_orig.(0) ],
          List.init (n - 1) (fun i -> mapping.to_orig.(i + 1)) ),
      plain_evidence "trivial",
      zero_stats )
  else begin
    let split_along side =
      let left = ref [] and right = ref [] in
      for v = n - 1 downto 0 do
        if side.(v) then left := mapping.to_orig.(v) :: !left
        else right := mapping.to_orig.(v) :: !right
      done;
      Some (!left, !right)
    in
    if n <= params.exact_limit then begin
      let phi_exact, side = Spectral.Conductance.exact_cut sub in
      if phi_exact >= tau then (None, plain_evidence "exact", zero_stats)
      else (split_along side, plain_evidence "exact", zero_stats)
    end
    else
      match Cut_heuristics.cheapest sub ~tau with
      | Some hit ->
          ( split_along hit.Cut_heuristics.side,
            plain_evidence "heuristic",
            { zero_stats with heuristic_cuts = 1 } )
      | None -> (
          let verdict, g_stats =
            Cut_matching.run ~params:params.game sub ~tau ~seed
          in
          let stats =
            {
              games = 1;
              game_rounds = g_stats.Cut_matching.rounds_played;
              flow_calls = g_stats.Cut_matching.flow_calls;
              heuristic_cuts = 0;
            }
          in
          match verdict with
          | Cut_matching.Expander w ->
              (None, evidence_of_witness mapping w, stats)
          | Cut_matching.Cut c ->
              (split_along c.Cut_matching.side, plain_evidence "cut", stats))
  end

type task = { rev_path : int list; depth : int; vs : int list }

type outcome = Accept of accept_evidence | Drop | Split of int list list

let decompose ?(params = default_params) ?(pool = Parallel.Pool.sequential) g
    ~epsilon =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Decomp_engine.decompose: need 0 < epsilon < 1";
  Obs.Span.with_ "cm-decompose" @@ fun () ->
  let n = Graph.n g in
  let m = Graph.m g in
  (* same thresholds as the spectral engine: the two must be comparable *)
  let tau =
    if m = 0 then epsilon
    else epsilon /. (2. *. (log (float_of_int (2 * m)) /. log 2.))
  in
  let task_seed ~depth ~anchor ~sub_n =
    Parallel.Pool.derive_seed params.seed
      ((depth * 1_000_003) lxor (anchor * 8191) lxor sub_n)
  in
  let step t =
    match t.vs with
    | [] -> (Drop, zero_stats)
    | [ _ ] -> (Accept (plain_evidence "trivial"), zero_stats)
    | vs -> (
        let sub, mapping = Graph_ops.induced_subgraph g vs in
        (* a cut may disconnect the subgraph; re-split by components *)
        match Traversal.component_list sub with
        | [] -> (Drop, zero_stats)
        | [ _ ] -> (
            let seed =
              task_seed ~depth:t.depth ~anchor:(List.hd vs)
                ~sub_n:(Graph.n sub)
            in
            match try_split params sub mapping tau ~seed with
            | None, ev, st -> (Accept ev, st)
            | Some (left, right), _, st -> (Split [ left; right ], st))
        | many ->
            ( Split
                (List.map
                   (fun comp -> List.map (fun v -> mapping.to_orig.(v)) comp)
                   many),
              zero_stats ))
  in
  let accepted = ref [] in
  let stats = ref zero_stats in
  let frontier =
    ref
      (List.mapi
         (fun i vs -> { rev_path = [ i ]; depth = 0; vs })
         (Traversal.component_list g))
  in
  let wave = ref 0 in
  while !frontier <> [] do
    Obs.Span.with_ (Printf.sprintf "level-%d" !wave) (fun () ->
        let tasks = Array.of_list !frontier in
        Obs.Metric.count "tasks" (Array.length tasks);
        let outcomes = Parallel.Pool.map pool step tasks in
        let next = ref [] in
        Array.iteri
          (fun i (outcome, st) ->
            stats := add_stats !stats st;
            let t = tasks.(i) in
            match outcome with
            | Accept ev ->
                Obs.Metric.incr "accepted";
                accepted := (List.rev t.rev_path, t.vs, ev) :: !accepted
            | Drop -> ()
            | Split children ->
                Obs.Metric.incr "split";
                List.iteri
                  (fun j vs ->
                    next :=
                      { rev_path = j :: t.rev_path; depth = t.depth + 1; vs }
                      :: !next)
                  children)
          outcomes;
        frontier := List.rev !next);
    incr wave
  done;
  let accepted =
    List.sort (fun (p1, _, _) (p2, _, _) -> compare (p1 : int list) p2)
      !accepted
  in
  let labels = Array.make n (-1) in
  let next_label = ref 0 in
  List.iter
    (fun (_, vs, _) ->
      let l = !next_label in
      incr next_label;
      List.iter (fun v -> labels.(v) <- l) vs)
    accepted;
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  if Obs.enabled () then begin
    Obs.Metric.count "clusters" !next_label;
    Obs.Metric.count "inter_edges" (List.length inter_edges);
    Obs.Metric.set_max "levels" !wave;
    Obs.Metric.count "cm.games" !stats.games;
    Obs.Metric.count "cm.heuristic_cuts" !stats.heuristic_cuts;
    List.iter
      (fun (_, vs, _) -> Obs.Metric.hist "cluster_size" (List.length vs))
      accepted
  end;
  let witnesses =
    Array.of_list
      (List.map
         (fun (path, _, ev) ->
           {
             Spectral.Expander_decomposition.w_path = path;
             w_matchings = ev.ev_matchings;
             w_congestion = ev.ev_congestion;
             w_dilation = ev.ev_dilation;
             w_source = ev.ev_source;
           })
         accepted)
  in
  ( {
      Spectral.Expander_decomposition.labels;
      k = !next_label;
      inter_edges;
      epsilon;
      phi = tau *. tau /. 4.;
      tau;
      witnesses;
    },
    !stats )
