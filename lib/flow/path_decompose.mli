(** Decompose a routed flow into source -> sink paths.

    Every vertex with positive {!Net.divergence} originates that many
    units; each walk follows positive-flow arcs to a vertex with negative
    remaining divergence and subtracts the path's bottleneck. Flow cycles
    are cancelled in place during the walk; circulations that touch no
    source survive undisturbed (they connect no source-sink pair). The
    walk order is deterministic, so the path list is a pure function of
    the flow. *)

type path = {
  src : int;
  dst : int;
  amount : int;  (** units routed along this path *)
  length : int;  (** arcs on the path; 0 never occurs ([src <> dst]) *)
  vertices : int array;
      (** the walked vertex sequence: [vertices.(0) = src],
          [vertices.(length) = dst]. Retained so callers can embed the
          path back into the host graph (expander-routing witnesses). *)
}

type t = {
  paths : path list;  (** ascending source order; walk order within one *)
  total : int;        (** total units decomposed *)
  max_length : int;
}

(** [decompose net] reads the flow currently held in [net] (which is not
    mutated) and lists its source -> sink paths.
    @raise Invalid_argument if the flow is not feasible (a walk sticks). *)
val decompose : Net.t -> t
