open Sparse_graph

(* Residual flow network over an undirected graph: edge e becomes the twin
   arc pair (2e: u -> v, 2e+1: v -> u), each initially carrying the edge's
   capacity, so pushing along one arc frees its twin and flow cancellation
   is automatic. Arcs are grouped by tail in CSR rows aligned with the
   graph's (sorted) adjacency, so iteration order — and therefore every
   downstream tie-break — is a pure function of the input graph. *)

type t = {
  graph : Graph.t;
  n : int;
  m : int;
  arc_head : int array;
  cap : int array;   (* residual capacity, mutated by push/relabel *)
  cap0 : int array;  (* initial capacity (cap0.(2e) = cap0.(2e+1) = c_e) *)
  first : int array; (* CSR offsets: arcs with tail v are arcs.(first.(v)) .. *)
  arcs : int array;  (* arc ids grouped by tail, neighbor-sorted per row *)
}

let of_graph ?(capacity = fun _ -> 1) g =
  let n = Graph.n g in
  let m = Graph.m g in
  let arc_head = Array.make (2 * m) 0 in
  let cap0 = Array.make (2 * m) 0 in
  Graph.iter_edges g (fun e u v ->
      let c = capacity e in
      if c < 0 then
        invalid_arg
          (Printf.sprintf "Flow.Net.of_graph: negative capacity %d on edge %d"
             c e);
      arc_head.(2 * e) <- v;
      arc_head.((2 * e) + 1) <- u;
      cap0.(2 * e) <- c;
      cap0.((2 * e) + 1) <- c);
  let first = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    first.(v + 1) <- first.(v) + Graph.degree g v
  done;
  let arcs = Array.make (2 * m) 0 in
  let cursor = Array.copy first in
  for v = 0 to n - 1 do
    (* the graph's rows are neighbor-sorted, so this row is too *)
    Graph.iter_incident g v (fun w e ->
        let a = if v < w then 2 * e else (2 * e) + 1 in
        arcs.(cursor.(v)) <- a;
        cursor.(v) <- cursor.(v) + 1)
  done;
  { graph = g; n; m; arc_head; cap = Array.copy cap0; cap0; first; arcs }

let reset net = Array.blit net.cap0 0 net.cap 0 (Array.length net.cap)

let twin a = a lxor 1

(* signed net flow on edge e, positive in the u -> v direction of the
   normalized endpoints: pushing f along 2e leaves cap.(2e) = c - f *)
let edge_flow net e = net.cap0.(2 * e) - net.cap.(2 * e)

let arc_flow net a = max 0 (net.cap0.(a) - net.cap.(a))

(* out-of-vertex imbalance: sum of net flow leaving v. Zero at interior
   vertices of a feasible flow; positive at sources, negative at sinks. *)
let divergence net v =
  let s = ref 0 in
  for i = net.first.(v) to net.first.(v + 1) - 1 do
    let a = net.arcs.(i) in
    s := !s + (net.cap0.(a) - net.cap.(a))
  done;
  !s

let feasible net =
  let ok = ref true in
  Array.iteri (fun a c -> if c < 0 || c > 2 * net.cap0.(a) then ok := false)
    net.cap;
  !ok
