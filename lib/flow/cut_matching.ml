open Sparse_graph

(* The cut-matching game (Khandekar-Rao-Vazirani style, with the
   practical knobs): the cut player sorts the vertices by a random
   projection vector and proposes the balanced bisection; the matching
   player tries to route a perfect matching across it with per-edge
   capacity ~ 1/tau and bounded push-relabel height. A routed matching
   averages the projection vectors (driving their variance potential
   down); a failed routing yields a level cut. The game ends with either
   a sparse cut or a sequence of embedded matchings that certifies the
   cluster behaves like an expander.

   Before any flow runs in a round, the projection vector itself is swept
   (Spectral.Sweep_cut.sweep): if the order already exposes a cut sparser
   than tau, the round is settled for free. *)

type params = {
  max_rounds_const : int;
  max_rounds_log : float;     (* rounds = const + ceil(log * log2 n) *)
  flow_vectors : int;         (* projection vectors maintained in parallel *)
  cap_scale : float;          (* per-edge capacity = ceil(cap_scale / tau) *)
  height_scale : float;       (* height limit = ceil(scale * log2 n / tau) *)
  potential_drop : float;     (* declare expander when P <= drop * P0 *)
  global_relabel_period : int;
  plateau_window : int;       (* accept after this many low-drop rounds; 0 off *)
  plateau_drop : float;       (* relative per-round drop counted as progress *)
  scale_vectors : bool;       (* scale flow_vectors down with cluster size *)
}

let default =
  {
    max_rounds_const = 4;
    max_rounds_log = 2.0;
    flow_vectors = 2;
    cap_scale = 1.0;
    height_scale = 1.0;
    potential_drop = 1e-3;
    global_relabel_period = 8;
    plateau_window = 0;
    plateau_drop = 0.;
    scale_vectors = false;
  }

let adaptive =
  { default with plateau_window = 2; plateau_drop = 0.05; scale_vectors = true }

type witness = {
  rounds : int;            (* rounds actually played *)
  matchings : (int * int) array list;  (* newest first, one per routed round *)
  embeddings : int array array list;
      (* aligned with [matchings]: embeddings.(r).(i) is the real vertex
         path routing pair matchings.(r).(i), src first, dst last *)
  congestion : int;        (* per-edge capacity all matchings routed under *)
  max_path_length : int;   (* dilation over every embedded matching path *)
  potential : float;       (* final / initial projection variance *)
}

type cut = { side : bool array; conductance : float; via : string }

type verdict = Expander of witness | Cut of cut

type stats = { rounds_played : int; flow_calls : int }

let trivial_witness =
  { rounds = 0; matchings = []; embeddings = []; congestion = 0;
    max_path_length = 0; potential = 0. }

(* mean-centered variance of a projection vector *)
let potential_of vecs =
  let total = ref 0. in
  Array.iter
    (fun x ->
      let n = Array.length x in
      let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
      Array.iter (fun v -> total := !total +. (( v -. mean) *. (v -. mean))) x)
    vecs;
  !total

let log2f x = log x /. log 2.

let run ?(params = default) g ~tau ~seed =
  let n = Graph.n g in
  if n <= 3 || Graph.m g = 0 || tau <= 0. then
    (Expander trivial_witness, { rounds_played = 0; flow_calls = 0 })
  else begin
    let rounds_cap =
      params.max_rounds_const
      + int_of_float (ceil (params.max_rounds_log *. log2f (float_of_int n)))
    in
    let cap = max 1 (int_of_float (ceil (params.cap_scale /. tau))) in
    let limit =
      min (n + 1)
        (max 2
           (int_of_float
              (ceil (params.height_scale *. log2f (float_of_int n) /. tau))))
    in
    let net = Net.of_graph ~capacity:(fun _ -> cap) g in
    let k =
      let fv = max 1 params.flow_vectors in
      if params.scale_vectors then
        (* small clusters mix with fewer projection vectors; one per ~7
           doubling levels, capped at the configured count *)
        let lg = int_of_float (ceil (log2f (float_of_int n))) in
        max 1 (min fv (lg / 7))
      else fv
    in
    let vecs =
      Array.init k (fun i ->
          let st =
            Random.State.make
              [| Parallel.Pool.derive_seed seed ((i * 7_368_787) + 1) |]
          in
          Array.init n (fun _ -> if Random.State.bool st then 1. else -1.))
    in
    let p0 = max epsilon_float (potential_of vecs) in
    let order = Array.init n (fun v -> v) in
    let supply = Array.make n 0 in
    let sink_cap = Array.make n 0 in
    let matchings = ref [] in
    let embeddings = ref [] in
    let max_path_length = ref 0 in
    let verdict = ref None in
    let round = ref 0 in
    let flow_calls = ref 0 in
    let prev_potential = ref p0 in
    let plateau_streak = ref 0 in
    while !verdict = None && !round < rounds_cap do
      let active = vecs.(!round mod k) in
      (* flow-free check: sweep the projection order itself *)
      let swept = Spectral.Sweep_cut.sweep g active in
      if swept.Spectral.Sweep_cut.conductance < tau then begin
        Obs.Metric.incr "cm.projection_cuts";
        verdict :=
          Some
            (Cut
               { side = swept.Spectral.Sweep_cut.side;
                 conductance = swept.Spectral.Sweep_cut.conductance;
                 via = "projection" })
      end
      else begin
        (* balanced bisection of the projection order, ties by index *)
        Array.sort
          (fun a b ->
            let c = compare active.(a) active.(b) in
            if c <> 0 then c else compare a b)
          order;
        let half = n / 2 in
        Array.fill supply 0 n 0;
        Array.fill sink_cap 0 n 0;
        for i = 0 to half - 1 do
          supply.(order.(i)) <- 1
        done;
        for i = half to n - 1 do
          sink_cap.(order.(i)) <- 1
        done;
        Net.reset net;
        incr flow_calls;
        let outcome =
          Push_relabel.run ~global_relabel_period:params.global_relabel_period
            net ~supply ~sink_cap ~limit
        in
        if Push_relabel.fully_routed outcome then begin
          (* embed the matching, average the vectors along its pairs *)
          let dec = Path_decompose.decompose net in
          if dec.Path_decompose.max_length > !max_path_length then
            max_path_length := dec.Path_decompose.max_length;
          let pairs =
            Array.of_list
              (List.map
                 (fun p -> (p.Path_decompose.src, p.Path_decompose.dst))
                 dec.Path_decompose.paths)
          in
          matchings := pairs :: !matchings;
          embeddings :=
            Array.of_list
              (List.map
                 (fun p -> p.Path_decompose.vertices)
                 dec.Path_decompose.paths)
            :: !embeddings;
          Array.iter
            (fun x ->
              Array.iter
                (fun (a, b) ->
                  let avg = (x.(a) +. x.(b)) /. 2. in
                  x.(a) <- avg;
                  x.(b) <- avg)
                pairs)
            vecs;
          let p = potential_of vecs in
          let accept () =
            verdict :=
              Some
                (Expander
                   { rounds = !round + 1;
                     matchings = !matchings;
                     embeddings = !embeddings;
                     congestion = cap;
                     max_path_length = !max_path_length;
                     potential = p /. p0 })
          in
          if p <= params.potential_drop *. p0 then accept ()
          else if params.plateau_window > 0 then begin
            (* adaptive budget: successive routed rounds that barely move
               the potential mean the remaining variance is already spread
               across the embedded matchings — stop paying for more flow *)
            let rel = (!prev_potential -. p) /. max epsilon_float !prev_potential in
            if rel < params.plateau_drop then incr plateau_streak
            else plateau_streak := 0;
            if !plateau_streak >= params.plateau_window then begin
              Obs.Metric.incr "cm.plateau_exits";
              accept ()
            end
          end;
          prev_potential := p
        end
        else begin
          (* routing failed: the level structure certifies a cut *)
          Obs.Metric.incr "cm.flow_cuts";
          let level =
            Push_relabel.level_cut g ~height:outcome.Push_relabel.height ~limit
          in
          let side, conductance, via =
            match level with
            | Some (side, c)
              when c <= swept.Spectral.Sweep_cut.conductance ->
                (side, c, "flow")
            | Some _ | None ->
                ( swept.Spectral.Sweep_cut.side,
                  swept.Spectral.Sweep_cut.conductance,
                  "projection-fallback" )
          in
          verdict := Some (Cut { side; conductance; via })
        end
      end;
      incr round
    done;
    let v =
      match !verdict with
      | Some v -> v
      | None ->
          (* rounds exhausted with every matching routed: accept *)
          Expander
            { rounds = !round;
              matchings = !matchings;
              embeddings = !embeddings;
              congestion = cap;
              max_path_length = !max_path_length;
              potential = potential_of vecs /. p0 }
    in
    Obs.Metric.count "cm.rounds" !round;
    Obs.Metric.count "cm.flow_calls" !flow_calls;
    (v, { rounds_played = !round; flow_calls = !flow_calls })
  end
