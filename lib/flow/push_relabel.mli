(** Weighted push-relabel max-flow with bounded-height early termination.

    The solver works in the multi-source / multi-sink supply form used by
    the cut-matching game: every vertex may carry integer [supply] (units
    of excess to route) and integer [sink_cap] (units it can absorb).
    Heights are capped at [limit]: a vertex lifted to the cap retires with
    its remaining excess, and the level structure of a retired run yields
    a cut certificate ({!level_cut}).

    With [limit >= n + 1] the routed value is the exact maximum flow —
    unsaturated sinks never activate, so they stay at height 0, and any
    vertex whose excess can still reach one keeps height below [n].

    The inner loops (push, relabel, gap, global relabel) are
    allocation-free and counted; the counters are also recorded as
    [flow.*] Obs metrics on every run. *)

type outcome = {
  routed : int;          (** units absorbed at sinks (incl. self-absorption) *)
  supply_total : int;
  height : int array;
  excess : int array;    (** unrouted excess left at each vertex *)
  absorbed : int array;  (** units absorbed at each sink *)
  pushes : int;
  relabels : int;
  gap_jumps : int;
  global_relabels : int;
}

(** [routed = supply_total]: every unit reached a sink. *)
val fully_routed : outcome -> bool

(** [run ?global_relabel_period net ~supply ~sink_cap ~limit] routes the
    supplies toward the sinks over the residual network, mutating
    [net.cap]. [global_relabel_period] scales the work budget between
    exact-distance rebuilds (default 8 passes over the arcs).
    @raise Invalid_argument on negative supplies/capacities, length
    mismatches, or [limit < 1]. *)
val run :
  ?global_relabel_period:int -> Net.t -> supply:int array ->
  sink_cap:int array -> limit:int -> outcome

(** [max_flow_st ?capacity g ~s ~t] is the exact s-t max flow of the
    undirected graph under the per-edge capacities (default 1): builds a
    fresh network, saturates [s]'s supply, and runs with [limit = n + 1];
    excess the preflow parks at interior vertices is then drained back to
    [s]. Returns [(value, net, outcome)] with a clean s-t flow left in
    [net] — divergence is [value] at [s], [-value] at [t], zero
    elsewhere. [outcome] is the first (forward) run's.
    @raise Invalid_argument if [s = t] or either endpoint is out of range. *)
val max_flow_st :
  ?capacity:(int -> int) -> Sparse_graph.Graph.t -> s:int -> t:int ->
  int * Net.t * outcome

(** [level_cut g ~height ~limit] sweeps the height thresholds of a
    terminated bounded run: for each level [l], the side
    [{v | height v >= l}] is separated from the unsaturated sinks; the
    threshold of minimum conductance wins. [None] when every height is 0
    (nothing was relabeled, so there is no level structure to cut). *)
val level_cut :
  Sparse_graph.Graph.t -> height:int array -> limit:int ->
  (bool array * float) option
