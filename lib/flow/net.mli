(** Residual flow network over an undirected graph.

    Edge [e = (u, v)] (normalized [u < v]) becomes the twin arc pair
    [2e : u -> v] and [2e + 1 : v -> u], each with the edge's capacity;
    pushing along an arc frees its twin, so flow in opposite directions
    cancels and the per-edge net flow always satisfies [|f_e| <= c_e].
    Arcs are grouped by tail in CSR rows aligned with the graph's sorted
    adjacency, so iteration order is deterministic. *)

type t = {
  graph : Sparse_graph.Graph.t;
  n : int;
  m : int;
  arc_head : int array;  (** arc id -> head vertex *)
  cap : int array;       (** residual capacity, mutated by the solvers *)
  cap0 : int array;      (** initial capacity *)
  first : int array;     (** CSR offsets of [arcs] by tail vertex *)
  arcs : int array;      (** arc ids grouped by tail, neighbor-sorted *)
}

(** [of_graph ?capacity g] builds the residual network; [capacity]
    (default [fun _ -> 1]) gives each undirected edge's capacity.
    @raise Invalid_argument on a negative capacity. *)
val of_graph : ?capacity:(int -> int) -> Sparse_graph.Graph.t -> t

(** Restore all residual capacities to their initial values. *)
val reset : t -> unit

(** [twin a] is the reverse arc of [a] ([a lxor 1]). *)
val twin : int -> int

(** [edge_flow net e] is the signed net flow on edge [e], positive in the
    [u -> v] direction of the normalized endpoints. *)
val edge_flow : t -> int -> int

(** [arc_flow net a] is the non-negative flow along arc [a] (zero when the
    net flow runs along the twin). *)
val arc_flow : t -> int -> int

(** [divergence net v] is the total net flow leaving [v]: zero at interior
    vertices of a feasible flow, positive at sources, negative at sinks. *)
val divergence : t -> int -> int

(** Structural feasibility: every residual capacity is within
    [0 .. cap0 + cap0(twin)]. *)
val feasible : t -> bool
