(** Cheap cut attempts tried before each cut-matching game.

    Each heuristic costs [O(n + m)] (plus one sort for the sweeps); a hit
    skips an entire game of flow computations on the cluster. *)

type cut = {
  side : bool array;
  conductance : float;
  source : string;  (** ["component"], ["degree"], or ["bfs"] *)
}

(** Some zero-conductance cut separating vertex 0's connected component
    when the graph is disconnected; [None] when connected or [n <= 1]. *)
val component_cut : Sparse_graph.Graph.t -> cut option

(** Best prefix cut of the degree order ([None] when [n <= 1]). *)
val degree_cut : Sparse_graph.Graph.t -> cut option

(** Best prefix cut of the BFS double-sweep order ([None] when [n <= 1]
    or the graph has no edges). *)
val bfs_cut : Sparse_graph.Graph.t -> cut option

(** [cheapest g ~tau] is a component cut if one exists, else the best of
    the sweeps when its conductance is strictly below [tau], else
    [None]. *)
val cheapest : Sparse_graph.Graph.t -> tau:float -> cut option
