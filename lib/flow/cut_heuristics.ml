open Sparse_graph

(* Cheap cut attempts tried before any flow is run: a disconnected
   component (conductance zero), a degree-order sweep (splits skewed
   degree profiles such as stars-with-tails), and a BFS double-sweep
   (exact on paths, trees, and cycles). Each costs O(n + m) or one sort;
   a hit saves an entire cut-matching game on the cluster. *)

type cut = {
  side : bool array;
  conductance : float;
  source : string;  (* "component" | "degree" | "bfs" *)
}

let component_cut g =
  let n = Graph.n g in
  if n <= 1 then None
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.push 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Graph.iter_neighbors g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.push w queue
          end)
    done;
    if !count = n then None
    else Some { side = seen; conductance = 0.; source = "component" }
  end

let degree_cut g =
  let n = Graph.n g in
  if n <= 1 then None
  else
    let embedding = Array.init n (fun v -> float_of_int (Graph.degree g v)) in
    let c = Spectral.Sweep_cut.sweep g embedding in
    Some { side = c.Spectral.Sweep_cut.side;
           conductance = c.Spectral.Sweep_cut.conductance;
           source = "degree" }

let bfs_cut g =
  let n = Graph.n g in
  if n <= 1 || Graph.m g = 0 then None
  else
    let c = Spectral.Sweep_cut.bfs_sweep g in
    Some { side = c.Spectral.Sweep_cut.side;
           conductance = c.Spectral.Sweep_cut.conductance;
           source = "bfs" }

(* best heuristic cut strictly sparser than [tau], if any; the component
   cut short-circuits (the game assumes a connected cluster) *)
let cheapest g ~tau =
  match component_cut g with
  | Some _ as hit -> hit
  | None ->
      let better best cand =
        match (best, cand) with
        | None, c -> c
        | b, None -> b
        | Some b, Some c -> if c.conductance < b.conductance then cand else best
      in
      let best = better (degree_cut g) (bfs_cut g) in
      (match best with
       | Some c when c.conductance < tau -> best
       | _ -> None)
