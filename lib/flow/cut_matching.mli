(** The cut-matching game: certify a cluster as a near-expander or find a
    sparse cut.

    Each round, the cut player sorts the vertices by a random projection
    vector (seeded via [Parallel.Pool.derive_seed], so the game is a pure
    function of [(g, tau, seed, params)]) and proposes the balanced
    bisection; the matching player routes a perfect matching across it
    with per-edge capacity [ceil(cap_scale / tau)] and push-relabel
    height bounded by [ceil(height_scale * log2 n / tau)]. Routed
    matchings average the projection vectors (a potential argument: the
    variance halves along matched pairs); a failed routing yields a level
    cut. Before any flow runs, the projection order itself is swept — a
    conductance below [tau] settles the round for free. *)

type params = {
  max_rounds_const : int;
  max_rounds_log : float;   (** rounds = const + ceil(log * log2 n) *)
  flow_vectors : int;       (** projection vectors maintained in parallel *)
  cap_scale : float;        (** per-edge capacity = ceil(cap_scale / tau) *)
  height_scale : float;     (** height limit = ceil(scale * log2 n / tau) *)
  potential_drop : float;   (** declare expander when P <= drop * P0 *)
  global_relabel_period : int;
  plateau_window : int;
      (** accept as an expander after this many consecutive routed rounds
          whose relative potential drop stays below [plateau_drop];
          [0] disables the early exit *)
  plateau_drop : float;
  scale_vectors : bool;
      (** scale the projection-vector count down with cluster size
          (one per ~7 doubling levels, capped at [flow_vectors]) *)
}

val default : params

(** [default] with the adaptive budgets switched on: plateau early-exit
    after 2 stalled rounds at a 5% relative-drop threshold, and
    size-scaled projection vectors. Used by rebuild-mode witness games in
    [Route.Hierarchy]; [default] keeps the decomposition engine's
    behaviour bit-identical. *)
val adaptive : params

(** Everything needed to audit an acceptance: the routed matchings embed
    in the cluster with per-edge congestion [congestion] and path length
    at most [max_path_length]. *)
type witness = {
  rounds : int;
  matchings : (int * int) array list;  (** newest first, one per routed round *)
  embeddings : int array array list;
      (** aligned with [matchings]: [embeddings.(r).(i)] is the vertex
          sequence (src first, dst last, real edges between consecutive
          entries) along which pair [matchings.(r).(i)] embeds *)
  congestion : int;
  max_path_length : int;
  potential : float;  (** final / initial projection variance *)
}

type cut = {
  side : bool array;
  conductance : float;
  via : string;  (** ["projection"], ["flow"], or ["projection-fallback"] *)
}

type verdict = Expander of witness | Cut of cut

type stats = { rounds_played : int; flow_calls : int }

(** [run ?params g ~tau ~seed] plays the game on a connected cluster.
    Clusters with [n <= 3], no edges, or [tau <= 0] are accepted with a
    trivial witness. *)
val run :
  ?params:params -> Sparse_graph.Graph.t -> tau:float -> seed:int ->
  verdict * stats
