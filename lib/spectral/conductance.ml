open Sparse_graph

let volume g mask =
  let s = ref 0 in
  Array.iteri (fun v inside -> if inside then s := !s + Graph.degree g v) mask;
  !s

let boundary g mask =
  Graph.fold_edges g
    (fun acc _ u v -> if mask.(u) <> mask.(v) then acc + 1 else acc)
    0

let trivial mask =
  let any = ref false and all = ref true in
  Array.iter
    (fun b ->
      if b then any := true else all := false)
    mask;
  (not !any) || !all

let of_cut g mask =
  if trivial mask then 0.
  else begin
    let vol_s = volume g mask in
    let vol_rest = (2 * Graph.m g) - vol_s in
    let denom = min vol_s vol_rest in
    if denom = 0 then infinity
    else float_of_int (boundary g mask) /. float_of_int denom
  end

let sparsity_of_cut g mask =
  if trivial mask then 0.
  else begin
    let size_s = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
    let denom = min size_s (Graph.n g - size_s) in
    float_of_int (boundary g mask) /. float_of_int denom
  end

let enumeration_limit = 24

let exact_cut g =
  let n = Graph.n g in
  if n > enumeration_limit then
    invalid_arg "Conductance.exact: graph too large for enumeration";
  if n < 2 then (0., Array.make n false)
  else begin
    let adj = Array.make n 0 in
    Graph.iter_edges g (fun _ u v ->
        adj.(u) <- adj.(u) lor (1 lsl v);
        adj.(v) <- adj.(v) lor (1 lsl u));
    let deg = Array.init n (Graph.degree g) in
    let total_vol = 2 * Graph.m g in
    let best = ref infinity in
    let best_mask = ref 1 in
    (* fix vertex 0 inside S to halve the enumeration *)
    let half = 1 lsl (n - 1) in
    for rest = 0 to half - 1 do
      let s = (rest lsl 1) lor 1 in
      if s <> (1 lsl n) - 1 then begin
        let vol = ref 0 and cut = ref 0 in
        for v = 0 to n - 1 do
          if s land (1 lsl v) <> 0 then begin
            vol := !vol + deg.(v);
            cut := !cut + Popcount.popcount (adj.(v) land lnot s)
          end
        done;
        let denom = min !vol (total_vol - !vol) in
        let phi =
          if denom = 0 then infinity
          else float_of_int !cut /. float_of_int denom
        in
        if phi < !best then begin
          best := phi;
          best_mask := s
        end
      end
    done;
    let mask = Array.init n (fun v -> !best_mask land (1 lsl v) <> 0) in
    ((if !best = infinity then 0. else !best), mask)
  end

let exact g = fst (exact_cut g)

let is_expander_exact g phi = exact g >= phi

let mask_of_list n vs =
  let mask = Array.make n false in
  List.iter (fun v -> mask.(v) <- true) vs;
  mask
