open Sparse_graph

(* Andersen-Chung-Lang push: maintain (p, r) with p the approximation and r
   the residual; repeatedly push at a vertex whose residual exceeds
   eps * deg, moving alpha of it into p and spreading the rest (lazily) to
   the neighbors. *)
let ppr g ~seed_vertex ~alpha ~eps =
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Local_cluster.ppr: need 0 < alpha < 1";
  if eps <= 0. then invalid_arg "Local_cluster.ppr: need eps > 0";
  let n = Graph.n g in
  if seed_vertex < 0 || seed_vertex >= n then
    invalid_arg "Local_cluster.ppr: seed vertex out of range";
  let p = Hashtbl.create 64 in
  let r = Hashtbl.create 64 in
  let get tbl v = try Hashtbl.find tbl v with Not_found -> 0. in
  Hashtbl.replace r seed_vertex 1.;
  let queue = Queue.create () in
  Queue.add seed_vertex queue;
  let in_queue = Hashtbl.create 64 in
  Hashtbl.replace in_queue seed_vertex ();
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Hashtbl.remove in_queue v;
    let d = float_of_int (max 1 (Graph.degree g v)) in
    let rv = get r v in
    if rv > eps *. d then begin
      Hashtbl.replace p v (get p v +. (alpha *. rv));
      (* lazy walk: half of the non-absorbed mass stays, half spreads *)
      let keep = (1. -. alpha) *. rv /. 2. in
      Hashtbl.replace r v keep;
      let share = (1. -. alpha) *. rv /. (2. *. d) in
      Graph.iter_neighbors g v (fun w ->
          Hashtbl.replace r w (get r w +. share);
          let dw = float_of_int (max 1 (Graph.degree g w)) in
          if get r w > eps *. dw && not (Hashtbl.mem in_queue w) then begin
            Hashtbl.replace in_queue w ();
            Queue.add w queue
          end);
      (* the kept residual may itself still exceed the threshold *)
      if keep > eps *. d && not (Hashtbl.mem in_queue v) then begin
        Hashtbl.replace in_queue v ();
        Queue.add v queue
      end
    end
  done;
  Hashtbl.fold (fun v mass acc -> (v, mass) :: acc) p []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sweep_cut g vector =
  let n = Graph.n g in
  let support =
    List.filter (fun (_, mass) -> mass > 0.) vector
    |> List.map (fun (v, mass) ->
           (v, mass /. float_of_int (max 1 (Graph.degree g v))))
    |> List.sort (fun (va, a) (vb, b) ->
           (* descending mass; ties broken by ascending vertex id so the
              sweep order (and hence the cut) is well-defined *)
           let c = compare b a in
           if c <> 0 then c else compare va vb)
  in
  if support = [] then invalid_arg "Local_cluster.sweep_cut: empty support";
  if List.length support >= n then
    invalid_arg "Local_cluster.sweep_cut: support covers the whole graph";
  let total_vol = 2 * Graph.m g in
  let inside = Array.make n false in
  let cut = ref 0 and vol = ref 0 in
  let best = ref infinity in
  let best_prefix = ref 0 in
  List.iteri
    (fun i (v, _) ->
      let to_inside =
        Graph.fold_neighbors g v
          (fun acc w -> if inside.(w) then acc + 1 else acc)
          0
      in
      inside.(v) <- true;
      cut := !cut + Graph.degree g v - (2 * to_inside);
      vol := !vol + Graph.degree g v;
      let denom = min !vol (total_vol - !vol) in
      let phi =
        if denom = 0 then if !cut = 0 then 0. else infinity
        else float_of_int !cut /. float_of_int denom
      in
      if phi < !best then begin
        best := phi;
        best_prefix := i + 1
      end)
    support;
  let side = Array.make n false in
  List.iteri
    (fun i (v, _) -> if i < !best_prefix then side.(v) <- true)
    support;
  { Sweep_cut.side; conductance = !best; lambda2 = None }

let find g ~seed_vertex ~target_volume =
  let eps = 1. /. (10. *. float_of_int (max 1 target_volume)) in
  let vector = ppr g ~seed_vertex ~alpha:0.05 ~eps in
  sweep_cut g vector
