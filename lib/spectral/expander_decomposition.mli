(** (epsilon, phi) expander decomposition (Theorems 2.1 / 2.2 interface).

    The decomposition partitions the vertex set so that at most an
    [epsilon] fraction of edges cross between clusters and every cluster's
    induced subgraph has conductance at least [phi], with
    [phi = epsilon^O(1) / log^O(1) n] as in Theorem 2.1.

    Implementation (see DESIGN.md, substitution 1): recursive spectral
    bipartitioning. A cluster is split along its best Fiedler sweep cut
    whenever that cut's conductance falls below a threshold
    [tau = epsilon / (2 log2(2m))]; a standard charging argument (each edge
    is cut at most once, each split removes at most [tau * min-side-volume]
    edges, and the recursion halves the volume) bounds the inter-cluster
    edges by [epsilon * m]. Accepted clusters certify conductance
    [phi >= tau^2 / 4] by Cheeger's inequality (exactly verified for small
    clusters). *)

(** Per-cluster routing witness retained from the recursion that produced
    the cluster. [w_path] is the cluster's address in the recursion tree
    (child ranks from the root) — label order is exactly the
    lexicographic order of these paths, so the tree can be rebuilt from
    them. [w_matchings] (possibly empty) lists the cut-matching game's
    routed matchings, newest first, each as the matched [(src, dst)]
    pairs plus the aligned embedded vertex paths, all in original vertex
    ids; [w_congestion] / [w_dilation] bound the embedding's per-edge
    congestion and path length. [w_source] records which engine accepted
    the cluster ("spectral", "cutmatching", "exact", "trivial",
    "baseline"). Plain data on purpose: [lib/flow] fills it in, anything
    above may consume it without depending on the flow engine. *)
type cluster_witness = {
  w_path : int list;
  w_matchings : ((int * int) array * int array array) list;
  w_congestion : int;
  w_dilation : int;
  w_source : string;
}

(** A witness with no matchings, for engines that certify acceptance
    without routing anything. *)
val no_witness : path:int list -> source:string -> cluster_witness

type t = {
  labels : int array;        (** vertex -> cluster id in [0 .. k-1] *)
  k : int;                   (** number of clusters *)
  inter_edges : int list;    (** ids of inter-cluster edges, [E^r] *)
  epsilon : float;           (** requested epsilon *)
  phi : float;               (** certified conductance target [tau^2 / 4] *)
  tau : float;               (** sweep-cut acceptance threshold *)
  witnesses : cluster_witness array;
      (** indexed by cluster label; [witnesses.(l).w_path] addresses
          cluster [l] in the recursion tree *)
}

(** Parameters for the recursive splitter. *)
type params = {
  power_iters : int;     (** power-iteration steps per split (default 120) *)
  exact_limit : int;     (** clusters up to this size are certified by
                             exhaustive conductance (default 14) *)
  seed : int;
}

val default_params : params

(** [decompose ?params ?pool g ~epsilon] computes the decomposition. The
    recursion is a task graph: independent clusters on the same frontier
    are split concurrently on [pool] (default sequential), and labels are
    assigned afterwards in the DFS pre-order of the recursion tree, so the
    result is identical for every pool size. Per-split sweep-cut seeds are
    derived from the cluster's identity (depth, smallest member, size), not
    from shared state.
    @raise Invalid_argument unless [0 < epsilon < 1]. *)
val decompose :
  ?params:params -> ?pool:Parallel.Pool.t -> Sparse_graph.Graph.t ->
  epsilon:float -> t

(** Fraction of edges that are inter-cluster, [|E^r| / m] (0 when m = 0). *)
val inter_fraction : Sparse_graph.Graph.t -> t -> float

(** [clusters ?pool g t] materializes each cluster: vertex list, induced
    subgraph, and vertex/edge mappings. Independent clusters build on
    [pool]. *)
val clusters :
  ?pool:Parallel.Pool.t -> Sparse_graph.Graph.t -> t ->
  (int list * Sparse_graph.Graph.t * Sparse_graph.Graph_ops.mapping) array

(** [verify g t] checks the two decomposition requirements and returns
    [(inter_ok, min_cluster_conductance_lb)]:
    [inter_ok] is [|E^r| <= epsilon * m]; the float is the smallest
    per-cluster conductance bound (exact value for clusters up to
    [exact_limit], sweep-cut upper bound for larger clusters — an upper
    bound can only under-certify, never over-certify). *)
val verify :
  ?params:params -> ?pool:Parallel.Pool.t -> Sparse_graph.Graph.t -> t ->
  bool * float

(** Naive baseline for ablation: BFS balls of fixed radius, no conductance
    control. Same result shape, with [phi = 0.]. *)
val bfs_ball_baseline :
  Sparse_graph.Graph.t -> radius:int -> t
