(** Bit-population count for the exhaustive conductance enumeration. *)

(** Number of set bits in the (non-negative) argument. *)
val popcount : int -> int
