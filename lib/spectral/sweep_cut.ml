open Sparse_graph

type cut = {
  side : bool array;
  conductance : float;
  lambda2 : float option;
}

let fiedler g ~iters ~seed =
  let n = Graph.n g in
  if Graph.m g = 0 then invalid_arg "Sweep_cut.fiedler: graph has no edges";
  let sqrt_deg = Array.init n (fun v -> sqrt (float_of_int (Graph.degree g v))) in
  let top = Array.copy sqrt_deg in
  Linalg.normalize top;
  let st = Random.State.make [| seed; 211 |] in
  let x = Array.init n (fun _ -> Random.State.float st 2. -. 1.) in
  Linalg.orthogonalize_against top x;
  Linalg.normalize x;
  (* one application of W = (I + D^{-1/2} A D^{-1/2}) / 2 *)
  let apply x =
    let y = Array.make n 0. in
    for u = 0 to n - 1 do
      y.(u) <- y.(u) +. (x.(u) /. 2.);
      if sqrt_deg.(u) > 0. then begin
        let xu = x.(u) /. sqrt_deg.(u) in
        Graph.iter_neighbors g u (fun w ->
            y.(w) <- y.(w) +. (xu /. (2. *. sqrt_deg.(w))))
      end
    done;
    y
  in
  let cur = ref x in
  let mu = ref 0. in
  for _ = 1 to iters do
    let y = apply !cur in
    Linalg.orthogonalize_against top y;
    mu := Linalg.dot !cur y /. Linalg.dot !cur !cur;
    Linalg.normalize y;
    cur := y
  done;
  (* walk eigenvalue mu = 1 - lambda2 / 2 for the lazy normalized walk *)
  let lambda2 = 2. *. (1. -. !mu) in
  let embedding =
    Array.init n (fun v ->
        if sqrt_deg.(v) > 0. then !cur.(v) /. sqrt_deg.(v) else !cur.(v))
  in
  (embedding, lambda2)

let sweep g embedding =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sweep_cut.sweep: need at least 2 vertices";
  let order = Array.init n Fun.id in
  (* ties between equal embedding values break by vertex id: Array.sort is
     unstable, so without the tie-break the returned cut would depend on
     sort internals rather than on the input *)
  Array.sort
    (fun a b ->
      let c = compare embedding.(a) embedding.(b) in
      if c <> 0 then c else compare a b)
    order;
  let total_vol = 2 * Graph.m g in
  let inside = Array.make n false in
  let cut = ref 0 in
  let vol = ref 0 in
  let best = ref infinity in
  let best_prefix = ref 0 in
  for i = 0 to n - 2 do
    let v = order.(i) in
    (* moving v inside: edges to inside stop crossing, edges to outside start *)
    let to_inside =
      Graph.fold_neighbors g v (fun acc w -> if inside.(w) then acc + 1 else acc) 0
    in
    inside.(v) <- true;
    cut := !cut + Graph.degree g v - (2 * to_inside);
    vol := !vol + Graph.degree g v;
    let denom = min !vol (total_vol - !vol) in
    let phi =
      if denom = 0 then if !cut = 0 then 0. else infinity
      else float_of_int !cut /. float_of_int denom
    in
    if phi < !best then begin
      best := phi;
      best_prefix := i + 1
    end
  done;
  let side = Array.make n false in
  for i = 0 to !best_prefix - 1 do
    side.(order.(i)) <- true
  done;
  { side; conductance = !best; lambda2 = None }

let best_cut g ~iters ~seed =
  let embedding, lambda2 = fiedler g ~iters ~seed in
  let cut = sweep g embedding in
  { cut with lambda2 = Some lambda2 }

let bfs_sweep g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sweep_cut.bfs_sweep: need at least 2 vertices";
  let d0 = Traversal.bfs g 0 in
  let far = ref 0 in
  Array.iteri (fun v d -> if d > d0.(!far) then far := v) d0;
  let dist = Traversal.bfs g !far in
  (* unreachable vertices sort last, so a disconnected graph yields the
     zero-conductance component cut *)
  let embedding =
    Array.map
      (fun d -> if d < 0 then float_of_int n +. 1. else float_of_int d)
      dist
  in
  sweep g embedding

let tree_cut g =
  let n = Graph.n g in
  if n < 2 || Graph.m g = 0 then
    invalid_arg "Sweep_cut.tree_cut: need a connected graph with an edge";
  (* iterative DFS from 0: tin/tout intervals and subtree volumes *)
  let tin = Array.make n (-1) and tout = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let order = ref [] in
  let clock = ref 0 in
  let stack = ref [ (0, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, closing) :: rest ->
        stack := rest;
        if closing then begin
          tout.(v) <- !clock - 1
        end
        else if tin.(v) < 0 then begin
          tin.(v) <- !clock;
          incr clock;
          order := v :: !order;
          stack := (v, true) :: !stack;
          Graph.iter_neighbors g v (fun w ->
              if tin.(w) < 0 then begin
                parent.(w) <- v;
                stack := (w, false) :: !stack
              end)
        end
  done;
  (* order holds reverse DFS preorder: descendants come before parents, so
     one pass accumulates subtree volumes and path counts *)
  let depth = Array.make n 0 in
  List.iter
    (fun v -> if parent.(v) >= 0 then depth.(v) <- depth.(parent.(v)) + 1)
    (List.rev !order);
  let subtree_vol = Array.make n 0 in
  (* diff counts: a non-tree edge (u, v) crosses exactly the subtrees rooted
     on the tree path between u and v; mark +1 at u and v, -2 at their lca,
     and subtree-sum *)
  let diff = Array.make n 0 in
  let lca u v =
    let u = ref u and v = ref v in
    while !u <> !v do
      if depth.(!u) >= depth.(!v) then u := parent.(!u) else v := parent.(!v)
    done;
    !u
  in
  Graph.iter_edges g (fun _ u v ->
      if parent.(v) <> u && parent.(u) <> v then begin
        (* non-tree edge (tree edges are exactly parent links) *)
        diff.(u) <- diff.(u) + 1;
        diff.(v) <- diff.(v) + 1;
        let a = lca u v in
        diff.(a) <- diff.(a) - 2
      end);
  let path_count = diff in
  List.iter
    (fun v ->
      subtree_vol.(v) <- subtree_vol.(v) + Graph.degree g v;
      let p = parent.(v) in
      if p >= 0 then begin
        subtree_vol.(p) <- subtree_vol.(p) + subtree_vol.(v);
        path_count.(p) <- path_count.(p) + path_count.(v)
      end)
    !order;
  let inside v root = tin.(root) <= tin.(v) && tin.(v) <= tout.(root) in
  let total_vol = 2 * Graph.m g in
  let best_root = ref (-1) in
  let best_phi = ref infinity in
  for root = 0 to n - 1 do
    if parent.(root) >= 0 then begin
      let crossing = 1 + path_count.(root) in
      let denom = min subtree_vol.(root) (total_vol - subtree_vol.(root)) in
      let phi =
        if denom = 0 then infinity
        else float_of_int crossing /. float_of_int denom
      in
      if phi < !best_phi then begin
        best_phi := phi;
        best_root := root
      end
    end
  done;
  if !best_root < 0 then invalid_arg "Sweep_cut.tree_cut: disconnected graph"
  else begin
    let side = Array.init n (fun v -> inside v !best_root) in
    { side; conductance = !best_phi; lambda2 = None }
  end

let combined_cut g ~iters ~seed =
  let spectral = best_cut g ~iters ~seed in
  let bfs = bfs_sweep g in
  let candidates =
    if Traversal.is_connected g then [ spectral; bfs; tree_cut g ]
    else [ spectral; bfs ]
  in
  List.fold_left
    (fun best c -> if c.conductance < best.conductance then c else best)
    spectral candidates

let certified_lower_bound cut =
  let from_sweep = cut.conductance *. cut.conductance /. 4. in
  match cut.lambda2 with
  | None -> from_sweep
  | Some l2 -> max from_sweep (l2 /. 2.)
