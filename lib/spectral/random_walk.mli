(** Uniform lazy random walks and mixing time, as in Section 2 of the paper.

    The lazy walk stays put with probability 1/2 and otherwise moves to a
    uniformly random neighbor. Distributions are dense float arrays indexed
    by vertex. *)

(** [stationary g] is [pi(u) = deg(u) / vol(V)]. Requires [m > 0]. *)
val stationary : Sparse_graph.Graph.t -> float array

(** [step g p] is one lazy-walk step applied to distribution [p]:
    [p'(u) = p(u)/2 + sum_(w in N(u)) p(w) / (2 deg(w))]. Isolated vertices
    keep their mass. *)
val step : Sparse_graph.Graph.t -> float array -> float array

(** [distribution g v t] is the walk distribution after [t] steps from
    [v]. *)
val distribution : Sparse_graph.Graph.t -> int -> int -> float array

(** [is_mixed g p] tests the paper's mixing criterion
    [|p(u) - pi(u)| <= pi(u) / n] for all [u] in the support of the
    stationary distribution. Degree-0 vertices are excluded: their
    threshold [pi(u) / n] is 0, so any isolated vertex would report
    "never mixes" even though the lazy walk is exact there. *)
val is_mixed : Sparse_graph.Graph.t -> float array -> bool

(** [mixing_time_from g v ~max_t] is the smallest [t <= max_t] whose
    distribution from [v] satisfies {!is_mixed}, or [None]. *)
val mixing_time_from : Sparse_graph.Graph.t -> int -> max_t:int -> int option

(** [mixing_time g ~max_t] is the maximum of {!mixing_time_from} over
    start vertices in the stationary support (a walk started on a
    degree-0 vertex stays there, trivially exact for its component) —
    the paper's [tau_mix(G)] — or [None] if some vertex fails to mix
    within [max_t]. Quadratic in [n]: for tests and small graphs. *)
val mixing_time : Sparse_graph.Graph.t -> max_t:int -> int option

(** [sample_walk g ~start ~steps ~rng] samples one lazy-walk trajectory and
    returns the visited vertices, [start] first, length [steps + 1]. *)
val sample_walk :
  Sparse_graph.Graph.t -> start:int -> steps:int -> rng:Random.State.t ->
  int array
