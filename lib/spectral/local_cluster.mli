(** Local clustering by approximate personalized PageRank (the
    Andersen–Chung–Lang refinement of Spielman–Teng's Nibble).

    Expander decompositions descend from local clustering: given a seed
    vertex inside a low-conductance piece, an approximate PPR vector
    concentrates on that piece, and a sweep over it exposes the cut —
    without ever touching the rest of the graph. This is the sequential
    engine behind the decomposition algorithms the paper cites ([84],
    [19, 20]); exposed here both as a substrate and for the test suite's
    cross-checks against the global sweep. *)

(** [ppr g ~seed_vertex ~alpha ~eps] computes an eps-approximate PageRank
    vector with restart probability [alpha] by the push algorithm; the
    residual never exceeds [eps * deg(v)] at any vertex. Sparse output:
    [(vertex, mass)] pairs.
    @raise Invalid_argument unless [0 < alpha < 1] and [eps > 0]. *)
val ppr :
  Sparse_graph.Graph.t -> seed_vertex:int -> alpha:float -> eps:float ->
  (int * float) list

(** [sweep_cut g ppr_vector] sweeps vertices by [mass / degree] and returns
    the best prefix cut among the PPR support, as a {!Sweep_cut.cut}.
    @raise Invalid_argument if the support is empty or covers everything. *)
val sweep_cut :
  Sparse_graph.Graph.t -> (int * float) list -> Sweep_cut.cut

(** [find g ~seed_vertex ~target_volume] picks push parameters from the
    target volume and returns the best local cut found. *)
val find :
  Sparse_graph.Graph.t -> seed_vertex:int -> target_volume:int ->
  Sweep_cut.cut
