(** Fiedler-vector computation and Cheeger sweep rounding.

    [fiedler] runs power iteration on the lazy normalized walk matrix
    [W = (I + D^(-1/2) A D^(-1/2)) / 2], deflating the known top eigenvector
    [d^(1/2)]. The returned embedding is [D^(-1/2) x], whose sweep cuts
    satisfy Cheeger's inequality: the best sweep cut's conductance [c] obeys
    [lambda_2 / 2 <= Phi(G) <= c <= sqrt(2 * lambda_2)], giving the certified
    lower bound [Phi(G) >= c^2 / 4] used by the expander decomposition. *)

type cut = {
  side : bool array;     (** membership mask of the smaller-volume side *)
  conductance : float;   (** conductance of this cut *)
  lambda2 : float option;
      (** Rayleigh-quotient estimate of the spectral gap, when the cut came
          from a converged spectral embedding; [None] for cuts produced by
          sweeps of non-spectral orders (BFS, tree, degree, projection), so
          no NaN placeholder can leak into reports or benches *)
}

(** [fiedler g ~iters ~seed] returns the (approximate) second-eigenvector
    embedding and its eigenvalue estimate [lambda_2] of the normalized
    Laplacian. Requires a graph with at least one edge. *)
val fiedler :
  Sparse_graph.Graph.t -> iters:int -> seed:int -> float array * float

(** [sweep g embedding] scans the vertices in embedding order and returns
    the prefix cut with minimum conductance. Requires [1 < n]. The
    [lambda2] field is [None] (unknown from the embedding alone). *)
val sweep : Sparse_graph.Graph.t -> float array -> cut

(** [best_cut g ~iters ~seed] combines {!fiedler} and {!sweep}. On a
    disconnected graph it returns a zero-conductance component cut. *)
val best_cut : Sparse_graph.Graph.t -> iters:int -> seed:int -> cut

(** [bfs_sweep g] sweeps the BFS-distance order from a double-sweep
    endpoint: cheap, and finds the structural bottleneck exactly on paths,
    trees, and cycles, where power iteration converges slowly (the spectral
    gap is tiny). [lambda2] is [None]. *)
val bfs_sweep : Sparse_graph.Graph.t -> cut

(** [tree_cut g] evaluates, for every edge of a DFS spanning tree, the cut
    that separates the subtree below it, and returns the best; exact on
    trees (where the optimum is a single-edge cut) and a useful candidate
    on tree-like graphs. Requires a connected graph with at least one
    edge. [lambda2] is [None]. *)
val tree_cut : Sparse_graph.Graph.t -> cut

(** [combined_cut g ~iters ~seed] is the best of {!best_cut}, {!bfs_sweep},
    and {!tree_cut} — what the expander decomposition uses. *)
val combined_cut : Sparse_graph.Graph.t -> iters:int -> seed:int -> cut

(** [certified_lower_bound cut] is [max(lambda2 / 2, cut.conductance^2 / 4)]
    when [lambda2] is [Some], else [cut.conductance^2 / 4]: a lower bound on
    [Phi(G)] valid when the embedding has converged (see module header). *)
val certified_lower_bound : cut -> float
