(** Cut conductance and sparsity, following Section 2 of the paper.

    A cut is represented by a membership mask [side : bool array] over the
    vertices of the graph ([true] = inside S). *)

(** [volume g mask] is the sum of degrees of the vertices in S. *)
val volume : Sparse_graph.Graph.t -> bool array -> int

(** [boundary g mask] counts the edges crossing the cut, i.e. [|d(S)|]. *)
val boundary : Sparse_graph.Graph.t -> bool array -> int

(** [of_cut g mask] is [Phi(S) = |d(S)| / min(vol S, vol V\S)]; [0.] when S
    is empty or everything (matching the paper's convention). *)
val of_cut : Sparse_graph.Graph.t -> bool array -> float

(** [sparsity_of_cut g mask] is [Psi(S) = |d(S)| / min(|S|, |V\S|)]
    (Lemma 2.5); [0.] on trivial cuts. *)
val sparsity_of_cut : Sparse_graph.Graph.t -> bool array -> float

(** [exact g] is the graph conductance [Phi(G)]: the minimum of [of_cut] over
    all non-trivial cuts, by exhaustive enumeration. [0.] for graphs with
    fewer than 2 vertices.
    @raise Invalid_argument if [Graph.n g > 24] (enumeration would blow up);
    use {!Sweep_cut} bounds for larger graphs. *)
val exact : Sparse_graph.Graph.t -> float

(** [exact_cut g] additionally returns a minimizing cut mask.
    @raise Invalid_argument as {!exact}. *)
val exact_cut : Sparse_graph.Graph.t -> float * bool array

(** [is_expander_exact g phi] tests [Phi(G) >= phi] exactly (small graphs
    only, same limit as {!exact}). *)
val is_expander_exact : Sparse_graph.Graph.t -> float -> bool

(** [mask_of_list n vs] builds a membership mask from a vertex list. *)
val mask_of_list : int -> int list -> bool array
