let dot x y =
  let s = ref 0. in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm x = sqrt (dot x x)

let axpy a x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let normalize x =
  let nrm = norm x in
  if nrm > 0. then scale (1. /. nrm) x

let orthogonalize_against b x = axpy (-.dot b x) b x
