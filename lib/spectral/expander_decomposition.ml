open Sparse_graph

type cluster_witness = {
  w_path : int list;
  w_matchings : ((int * int) array * int array array) list;
  w_congestion : int;
  w_dilation : int;
  w_source : string;
}

let no_witness ~path ~source =
  { w_path = path; w_matchings = []; w_congestion = 0; w_dilation = 0;
    w_source = source }

type t = {
  labels : int array;
  k : int;
  inter_edges : int list;
  epsilon : float;
  phi : float;
  tau : float;
  witnesses : cluster_witness array;
}

type params = {
  power_iters : int;
  exact_limit : int;
  seed : int;
}

let default_params = { power_iters = 120; exact_limit = 14; seed = 0 }

(* Split one cluster (given as an induced subgraph) if its best sweep cut is
   below tau; returns the two sides in original-vertex ids, or None if the
   cluster is accepted as a phi-expander. [seed] drives the power iteration
   and must be a pure function of the cluster's identity (see [task_seed])
   so that parallel and sequential runs agree bit for bit. *)
let try_split params sub (mapping : Graph_ops.mapping) tau ~seed =
  let n = Graph.n sub in
  if n < 2 then None
  else if Graph.m sub = 0 then begin
    (* split isolated vertices off one at a time *)
    Some ([ mapping.to_orig.(0) ],
          List.init (n - 1) (fun i -> mapping.to_orig.(i + 1)))
  end
  else begin
    let split_along side =
      let left = ref [] and right = ref [] in
      for v = n - 1 downto 0 do
        if side.(v) then left := mapping.to_orig.(v) :: !left
        else right := mapping.to_orig.(v) :: !right
      done;
      Some (!left, !right)
    in
    if n <= params.exact_limit then begin
      let phi_exact, side = Conductance.exact_cut sub in
      if phi_exact >= tau then None else split_along side
    end
    else begin
      let cut = Sweep_cut.combined_cut sub ~iters:params.power_iters ~seed in
      if cut.conductance >= tau then None else split_along cut.side
    end
  end

(* One node of the recursion task graph: a candidate cluster, identified by
   the path of child ranks from the root. Tasks on the frontier share no
   state, so each level runs on the pool; accepted clusters are sorted by
   path afterwards, which is exactly the DFS pre-order a sequential
   left-to-right recursion would label them in. *)
type task = { rev_path : int list; depth : int; vs : int list }

type outcome = Accept | Drop | Split of int list list

let decompose ?(params = default_params) ?(pool = Parallel.Pool.sequential) g
    ~epsilon =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Expander_decomposition.decompose: need 0 < epsilon < 1";
  Obs.Span.with_ "decompose" @@ fun () ->
  let n = Graph.n g in
  let m = Graph.m g in
  let tau =
    if m = 0 then epsilon
    else epsilon /. (2. *. (log (float_of_int (2 * m)) /. log 2.))
  in
  (* per-task seed from the cluster's identity (recursion depth, smallest
     member, size), never from global mutable state *)
  let task_seed ~depth ~anchor ~sub_n =
    Parallel.Pool.derive_seed params.seed
      ((depth * 1_000_003) lxor (anchor * 8191) lxor sub_n)
  in
  let step t =
    match t.vs with
    | [] -> Drop
    | [ _ ] -> Accept
    | vs ->
        let sub, mapping = Graph_ops.induced_subgraph g vs in
        (* a cut may disconnect the subgraph; re-split by components *)
        (match Traversal.component_list sub with
        | [] -> Drop
        | [ _ ] -> (
            let seed =
              task_seed ~depth:t.depth ~anchor:(List.hd vs)
                ~sub_n:(Graph.n sub)
            in
            match try_split params sub mapping tau ~seed with
            | None -> Accept
            | Some (left, right) -> Split [ left; right ])
        | many ->
            Split
              (List.map
                 (fun comp -> List.map (fun v -> mapping.to_orig.(v)) comp)
                 many))
  in
  let accepted = ref [] in
  let frontier =
    ref
      (List.mapi
         (fun i vs -> { rev_path = [ i ]; depth = 0; vs })
         (Traversal.component_list g))
  in
  (* one observability span per recursion level: the frontier wave at
     depth d runs inside "level-d", so the trace shows the recursion's
     shape and each level's task/accept counts are measured *)
  let wave = ref 0 in
  while !frontier <> [] do
    Obs.Span.with_ (Printf.sprintf "level-%d" !wave) (fun () ->
        let tasks = Array.of_list !frontier in
        Obs.Metric.count "tasks" (Array.length tasks);
        let outcomes = Parallel.Pool.map pool step tasks in
        let next = ref [] in
        Array.iteri
          (fun i outcome ->
            let t = tasks.(i) in
            match outcome with
            | Accept ->
                Obs.Metric.incr "accepted";
                accepted := (List.rev t.rev_path, t.vs) :: !accepted
            | Drop -> ()
            | Split children ->
                Obs.Metric.incr "split";
                List.iteri
                  (fun j vs ->
                    next :=
                      { rev_path = j :: t.rev_path; depth = t.depth + 1; vs }
                      :: !next)
                  children)
          outcomes;
        frontier := List.rev !next);
    incr wave
  done;
  let accepted =
    List.sort (fun (p1, _) (p2, _) -> compare (p1 : int list) p2) !accepted
  in
  let labels = Array.make n (-1) in
  let next_label = ref 0 in
  List.iter
    (fun (_, vs) ->
      let l = !next_label in
      incr next_label;
      List.iter (fun v -> labels.(v) <- l) vs)
    accepted;
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  if Obs.enabled () then begin
    Obs.Metric.count "clusters" !next_label;
    Obs.Metric.count "inter_edges" (List.length inter_edges);
    Obs.Metric.set_max "levels" !wave;
    List.iter
      (fun (_, vs) -> Obs.Metric.hist "cluster_size" (List.length vs))
      accepted
  end;
  let witnesses =
    Array.of_list
      (List.map (fun (path, _) -> no_witness ~path ~source:"spectral") accepted)
  in
  {
    labels;
    k = !next_label;
    inter_edges;
    epsilon;
    phi = tau *. tau /. 4.;
    tau;
    witnesses;
  }

let inter_fraction g t =
  let m = Graph.m g in
  if m = 0 then 0.
  else float_of_int (List.length t.inter_edges) /. float_of_int m

let clusters ?(pool = Parallel.Pool.sequential) g t =
  let members = Array.make t.k [] in
  for v = Graph.n g - 1 downto 0 do
    members.(t.labels.(v)) <- v :: members.(t.labels.(v))
  done;
  Parallel.Pool.map pool
    (fun vs ->
      let sub, mapping = Graph_ops.induced_subgraph g vs in
      (vs, sub, mapping))
    members

let verify ?(params = default_params) ?(pool = Parallel.Pool.sequential) g t =
  let m = Graph.m g in
  let inter_ok =
    float_of_int (List.length t.inter_edges) <= (t.epsilon *. float_of_int m) +. 1e-9
  in
  (* per-cluster conductance certification fans out on the pool; the min is
     folded sequentially in cluster order *)
  let worst =
    Parallel.Pool.map_reduce pool
      ~map:(fun (_, sub, _) ->
        if Graph.n sub >= 2 && Graph.m sub > 0 then
          if Graph.n sub <= params.exact_limit then Conductance.exact sub
          else
            (Sweep_cut.combined_cut sub ~iters:params.power_iters
               ~seed:params.seed)
              .conductance
        else infinity)
      ~reduce:min ~init:infinity
      (clusters ~pool g t)
  in
  (inter_ok, worst)

let bfs_ball_baseline g ~radius =
  let n = Graph.n g in
  let labels = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if labels.(v) < 0 then begin
      let l = !next in
      incr next;
      let dist = Traversal.bfs g v in
      for u = 0 to n - 1 do
        if labels.(u) < 0 && dist.(u) >= 0 && dist.(u) <= radius then
          labels.(u) <- l
      done
    end
  done;
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  {
    labels;
    k = !next;
    inter_edges;
    epsilon = 1.;
    phi = 0.;
    tau = 0.;
    witnesses =
      Array.init !next (fun i -> no_witness ~path:[ i ] ~source:"baseline");
  }
