open Sparse_graph

type t = {
  labels : int array;
  k : int;
  inter_edges : int list;
  epsilon : float;
  phi : float;
  tau : float;
}

type params = {
  power_iters : int;
  exact_limit : int;
  seed : int;
}

let default_params = { power_iters = 120; exact_limit = 14; seed = 0 }

(* Split one cluster (given as an induced subgraph) if its best sweep cut is
   below tau; returns the two sides in original-vertex ids, or None if the
   cluster is accepted as a phi-expander. *)
let try_split params sub (mapping : Graph_ops.mapping) tau depth =
  let n = Graph.n sub in
  if n < 2 then None
  else if Graph.m sub = 0 then begin
    (* split isolated vertices off one at a time *)
    Some ([ mapping.to_orig.(0) ],
          List.init (n - 1) (fun i -> mapping.to_orig.(i + 1)))
  end
  else begin
    let split_along side =
      let left = ref [] and right = ref [] in
      for v = n - 1 downto 0 do
        if side.(v) then left := mapping.to_orig.(v) :: !left
        else right := mapping.to_orig.(v) :: !right
      done;
      Some (!left, !right)
    in
    if n <= params.exact_limit then begin
      let phi_exact, side = Conductance.exact_cut sub in
      if phi_exact >= tau then None else split_along side
    end
    else begin
      let cut =
        Sweep_cut.combined_cut sub ~iters:params.power_iters
          ~seed:(params.seed + (31 * depth) + n)
      in
      if cut.conductance >= tau then None else split_along cut.side
    end
  end

let decompose ?(params = default_params) g ~epsilon =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Expander_decomposition.decompose: need 0 < epsilon < 1";
  let n = Graph.n g in
  let m = Graph.m g in
  let tau =
    if m = 0 then epsilon
    else epsilon /. (2. *. (log (float_of_int (2 * m)) /. log 2.))
  in
  let labels = Array.make n (-1) in
  let next_label = ref 0 in
  let accept vs =
    let l = !next_label in
    incr next_label;
    List.iter (fun v -> labels.(v) <- l) vs
  in
  (* process connected pieces independently; recursion by explicit stack *)
  let stack = ref (Traversal.component_list g) in
  let rec drain () =
    match !stack with
    | [] -> ()
    | vs :: rest ->
        stack := rest;
        (match vs with
        | [] -> ()
        | [ v ] -> accept [ v ]
        | _ ->
            let sub, mapping = Graph_ops.induced_subgraph g vs in
            (* a cut may disconnect the subgraph; re-split by components *)
            let comps = Traversal.component_list sub in
            (match comps with
            | [] -> ()
            | [ _ ] -> (
                match try_split params sub mapping tau !next_label with
                | None -> accept vs
                | Some (left, right) -> stack := left :: right :: !stack)
            | many ->
                let lift comp = List.map (fun v -> mapping.to_orig.(v)) comp in
                stack := List.map lift many @ !stack));
        drain ()
  in
  drain ();
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  {
    labels;
    k = !next_label;
    inter_edges;
    epsilon;
    phi = tau *. tau /. 4.;
    tau;
  }

let inter_fraction g t =
  let m = Graph.m g in
  if m = 0 then 0.
  else float_of_int (List.length t.inter_edges) /. float_of_int m

let clusters g t = fst (Graph_ops.cluster_partition g t.labels t.k)

let verify ?(params = default_params) g t =
  let m = Graph.m g in
  let inter_ok =
    float_of_int (List.length t.inter_edges) <= (t.epsilon *. float_of_int m) +. 1e-9
  in
  let worst = ref infinity in
  Array.iter
    (fun (_, sub, _) ->
      if Graph.n sub >= 2 && Graph.m sub > 0 then begin
        let phi =
          if Graph.n sub <= params.exact_limit then Conductance.exact sub
          else
            (Sweep_cut.combined_cut sub ~iters:params.power_iters
               ~seed:params.seed)
              .conductance
        in
        if phi < !worst then worst := phi
      end)
    (clusters g t);
  (inter_ok, !worst)

let bfs_ball_baseline g ~radius =
  let n = Graph.n g in
  let labels = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if labels.(v) < 0 then begin
      let l = !next in
      incr next;
      let dist = Traversal.bfs g v in
      for u = 0 to n - 1 do
        if labels.(u) < 0 && dist.(u) >= 0 && dist.(u) <= radius then
          labels.(u) <- l
      done
    end
  done;
  let inter_edges =
    Graph.fold_edges g
      (fun acc e u v -> if labels.(u) <> labels.(v) then e :: acc else acc)
      []
    |> List.rev
  in
  { labels; k = !next; inter_edges; epsilon = 1.; phi = 0.; tau = 0. }
