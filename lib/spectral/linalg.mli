(** Small dense-vector kernels used by the spectral routines. *)

val dot : float array -> float array -> float
val norm : float array -> float

(** [axpy a x y] updates [y := y + a * x] in place. *)
val axpy : float -> float array -> float array -> unit

(** [scale a x] updates [x := a * x] in place. *)
val scale : float -> float array -> unit

(** [normalize x] scales [x] to unit Euclidean norm in place; a zero vector
    is left unchanged. *)
val normalize : float array -> unit

(** [orthogonalize_against b x] removes from [x] its component along [b]
    (assumed unit norm), in place. *)
val orthogonalize_against : float array -> float array -> unit
