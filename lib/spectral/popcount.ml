let table =
  lazy
    (let t = Array.make 65536 0 in
     for i = 1 to 65535 do
       t.(i) <- t.(i lsr 1) + (i land 1)
     done;
     t)

let popcount x =
  let t = Lazy.force table in
  let rec go x acc =
    if x = 0 then acc else go (x lsr 16) (acc + t.(x land 0xffff))
  in
  go x 0
