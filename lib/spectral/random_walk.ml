open Sparse_graph

let stationary g =
  let vol = float_of_int (2 * Graph.m g) in
  if vol = 0. then invalid_arg "Random_walk.stationary: graph has no edges";
  Array.init (Graph.n g) (fun v -> float_of_int (Graph.degree g v) /. vol)

let step g p =
  let n = Graph.n g in
  let q = Array.make n 0. in
  for u = 0 to n - 1 do
    let d = Graph.degree g u in
    if d = 0 then q.(u) <- q.(u) +. p.(u)
    else begin
      q.(u) <- q.(u) +. (p.(u) /. 2.);
      let share = p.(u) /. (2. *. float_of_int d) in
      Graph.iter_neighbors g u (fun w -> q.(w) <- q.(w) +. share)
    end
  done;
  q

let distribution g v t =
  let p = ref (Array.init (Graph.n g) (fun u -> if u = v then 1. else 0.)) in
  for _ = 1 to t do
    p := step g !p
  done;
  !p

let is_mixed g p =
  let pi = stationary g in
  let n = float_of_int (Graph.n g) in
  let ok = ref true in
  (* the check is restricted to the support of the stationary distribution:
     a degree-0 vertex has pi = 0, so its threshold pi/n is 0 and any graph
     with an isolated vertex would report "never mixes" — even though the
     lazy walk is exact there (the mass never moves) *)
  Array.iteri
    (fun u pu ->
      if pi.(u) > 0. && abs_float (pu -. pi.(u)) > pi.(u) /. n then
        ok := false)
    p;
  !ok

let mixing_time_from g v ~max_t =
  let p = ref (Array.init (Graph.n g) (fun u -> if u = v then 1. else 0.)) in
  let rec go t =
    if is_mixed g !p then Some t
    else if t >= max_t then None
    else begin
      p := step g !p;
      go (t + 1)
    end
  in
  go 0

let mixing_time g ~max_t =
  (* starts outside the stationary support are skipped: the walk from a
     degree-0 vertex stays there forever, which is exact for its (trivial)
     component but can never match the stationary distribution of the rest
     of the graph *)
  let rec go v worst =
    if v = Graph.n g then Some worst
    else if Graph.degree g v = 0 then go (v + 1) worst
    else
      match mixing_time_from g v ~max_t with
      | None -> None
      | Some t -> go (v + 1) (max worst t)
  in
  if Graph.n g = 0 then None else go 0 0

let sample_walk g ~start ~steps ~rng =
  let visits = Array.make (steps + 1) start in
  let cur = ref start in
  for i = 1 to steps do
    let d = Graph.degree g !cur in
    if d > 0 && Random.State.bool rng then
      cur := Graph.neighbor_at g !cur (Random.State.int rng d);
    visits.(i) <- !cur
  done;
  visits
