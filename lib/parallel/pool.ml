type t = { jobs : int }

let sequential = { jobs = 1 }

let default_jobs () =
  match Sys.getenv_opt "EXPANDER_JOBS" with
  | Some s when String.trim s <> "" ->
      (* a malformed value must not silently fall back to the machine's
         domain count: parity-sensitive runs pin their worker count through
         this variable, and a typo (EXPANDER_JOBS=O, =0, =-2) changing the
         pool size unnoticed is exactly the failure mode to reject *)
      (match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Parallel.Pool.default_jobs: EXPANDER_JOBS=%S is not a \
                positive integer"
               s))
  | Some _ | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  { jobs = max 1 jobs }

let jobs t = t.jobs

(* Worker domains set this flag so that nested maps run inline: the live
   domain count is bounded by the outermost pool's [jobs]. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let mapi pool f arr =
  let n = Array.length arr in
  let workers = min pool.jobs n in
  if workers <= 1 || Domain.DLS.get in_worker then
    (* sequential path: tasks still get their pool.task spans so the
       deterministic observability aggregate is identical at any jobs
       value (Obs.Span.task is a no-op while Obs is disabled) *)
    Array.mapi (fun i x -> Obs.Span.task i (fun () -> f i x)) arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* the fan-out caller's span path: installed as every worker domain's
       ambient path so a task aggregates under the same path whether it
       runs inline or on a fresh domain *)
    let span_base = Obs.Span.current_path () in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match Obs.Span.task i (fun () -> f i arr.(i)) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
      done
    in
    let domains =
      Array.init (workers - 1) (fun _ ->
          (* single-writer discipline: a task writes only results.(i) and
             errors.(i) for indices i it claimed via Atomic.fetch_and_add,
             so no two domains ever touch the same slot *)
          (* lint: allow P002 slot i is written only by the claiming task *)
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              Obs.Span.set_ambient span_base;
              work ()))
    in
    (* the calling domain is a worker too; flag it so its tasks also treat
       nested maps as sequential *)
    Domain.DLS.set in_worker true;
    let caller_error = match work () with () -> None | exception e -> Some e in
    Domain.DLS.set in_worker false;
    Array.iter Domain.join domains;
    (match caller_error with Some e -> raise e | None -> ());
    (* deterministic error choice: lowest-indexed failing task wins *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    (* lint: allow S001 every slot is filled once the workers join *)
    Array.map (function Some v -> v | None -> assert false) results
  end

let map pool f arr = mapi pool (fun _ x -> f x) arr

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

let map_reduce pool ~map:f ~reduce ~init arr =
  Array.fold_left reduce init (map pool f arr)

(* splitmix64-style finalizer: decorrelates seeds that differ in one bit.
   The multipliers are the 63-bit truncations of the usual constants. *)
let derive_seed base salt =
  let mix z =
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
    let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
    z lxor (z lsr 31)
  in
  mix (base + (salt * 0x1e3779b97f4a7c15)) land max_int

(* ------------------------------------------------------------------ *)
(* Persistent worker team                                              *)
(* ------------------------------------------------------------------ *)

(* A [Team] keeps its domains alive across many [run] calls so a
   round-loop (the sharded CONGEST simulator steps its shards once per
   simulated round) pays one mutex broadcast per round instead of one
   domain spawn per shard per round. Tasks are assigned statically by
   block partition, so the same task always lands on the same worker —
   no work stealing, no scheduling nondeterminism to reason about. *)
module Team = struct
  (* what workers run between generations; a plain function slot (not an
     option) so arming a generation stores [f] itself — wrapping in [Some]
     would box a fresh block every round on the barrier hot path *)
  let no_task (_ : int) = ()

  type state = {
    tasks : int;
    workers : int; (* spawned domains + the calling domain *)
    mutable fn : int -> unit;
    mutable generation : int;
    mutable unfinished : int; (* spawned workers still in the current gen *)
    mutable stopped : bool;
    errors : exn option array; (* per task, reset at each generation *)
    mu : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
  }

  type team = { st : state; mutable domains : unit Domain.t array }

  (* worker [w]'s static block of tasks: the caller is worker 0. The
     block bounds are computed inline rather than returned from a helper:
     this runs once per worker per simulated round and a (lo, hi) tuple
     return would allocate on every call *)
  (* lint: hot *)
  let run_block st w f =
    let per = st.tasks / st.workers and extra = st.tasks mod st.workers in
    let lo = (w * per) + min w extra in
    let hi = lo + per + if w < extra then 1 else 0 in
    for t = lo to hi - 1 do
      match f t with
      | () -> ()
      | exception e -> st.errors.(t) <- Some e
    done

  (* lint: hot *)
  let worker_loop st w =
    Domain.DLS.set in_worker true;
    let seen = ref 0 in
    Mutex.lock st.mu;
    let continue = ref true in
    while !continue do
      while (not st.stopped) && st.generation = !seen do
        Condition.wait st.start st.mu
      done;
      if st.stopped then continue := false
      else begin
        seen := st.generation;
        let f = st.fn in
        Mutex.unlock st.mu;
        run_block st w f;
        Mutex.lock st.mu;
        st.unfinished <- st.unfinished - 1;
        if st.unfinished = 0 then Condition.signal st.finished
      end
    done;
    Mutex.unlock st.mu

  let create pool ~tasks =
    if tasks < 0 then invalid_arg "Parallel.Pool.Team.create: tasks < 0";
    let workers =
      (* a nested team (created from inside a pool worker) spawns nothing:
         the outermost pool's [jobs] stays the live-domain bound *)
      if Domain.DLS.get in_worker then 1 else max 1 (min pool.jobs tasks)
    in
    let st =
      {
        tasks;
        workers;
        fn = no_task;
        generation = 0;
        unfinished = 0;
        stopped = false;
        errors = Array.make (max 1 tasks) None;
        mu = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
      }
    in
    let span_base = Obs.Span.current_path () in
    let domains =
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () ->
              Obs.Span.set_ambient span_base;
              worker_loop st (i + 1)))
    in
    { st; domains }

  (* deterministic error choice: lowest-indexed failing task wins, the
     same contract as [mapi]. A plain loop, not Array.iteri — this sits
     on the per-round barrier path and must not build a closure *)
  (* lint: hot *)
  let raise_first st =
    for t = 0 to Array.length st.errors - 1 do
      match st.errors.(t) with
      | Some exn ->
          st.errors.(t) <- None;
          raise exn
      | None -> ()
    done

  (* lint: hot *)
  let run team f =
    let st = team.st in
    Array.fill st.errors 0 (Array.length st.errors) None;
    if st.workers <= 1 then begin
      (* inline path: same run-every-task-then-raise-lowest semantics as
         the parallel path, so a failure cannot change which tasks ran *)
      let was_worker = Domain.DLS.get in_worker in
      Domain.DLS.set in_worker true;
      for t = 0 to st.tasks - 1 do
        match f t with () -> () | exception e -> st.errors.(t) <- Some e
      done;
      Domain.DLS.set in_worker was_worker;
      raise_first st
    end
    else begin
      Mutex.lock st.mu;
      st.fn <- f;
      st.generation <- st.generation + 1;
      st.unfinished <- st.workers - 1;
      Condition.broadcast st.start;
      Mutex.unlock st.mu;
      let was_worker = Domain.DLS.get in_worker in
      Domain.DLS.set in_worker true;
      run_block st 0 f;
      Domain.DLS.set in_worker was_worker;
      Mutex.lock st.mu;
      while st.unfinished > 0 do
        Condition.wait st.finished st.mu
      done;
      st.fn <- no_task;
      Mutex.unlock st.mu;
      raise_first st
    end

  let shutdown team =
    let st = team.st in
    Mutex.lock st.mu;
    st.stopped <- true;
    Condition.broadcast st.start;
    Mutex.unlock st.mu;
    Array.iter Domain.join team.domains;
    team.domains <- [||]
end
