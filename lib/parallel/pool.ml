type t = { jobs : int }

let sequential = { jobs = 1 }

let default_jobs () =
  match Sys.getenv_opt "EXPANDER_JOBS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  { jobs = max 1 jobs }

let jobs t = t.jobs

(* Worker domains set this flag so that nested maps run inline: the live
   domain count is bounded by the outermost pool's [jobs]. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let mapi pool f arr =
  let n = Array.length arr in
  let workers = min pool.jobs n in
  if workers <= 1 || Domain.DLS.get in_worker then
    (* sequential path: tasks still get their pool.task spans so the
       deterministic observability aggregate is identical at any jobs
       value (Obs.Span.task is a no-op while Obs is disabled) *)
    Array.mapi (fun i x -> Obs.Span.task i (fun () -> f i x)) arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* the fan-out caller's span path: installed as every worker domain's
       ambient path so a task aggregates under the same path whether it
       runs inline or on a fresh domain *)
    let span_base = Obs.Span.current_path () in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match Obs.Span.task i (fun () -> f i arr.(i)) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
      done
    in
    let domains =
      Array.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              Obs.Span.set_ambient span_base;
              work ()))
    in
    (* the calling domain is a worker too; flag it so its tasks also treat
       nested maps as sequential *)
    Domain.DLS.set in_worker true;
    let caller_error = match work () with () -> None | exception e -> Some e in
    Domain.DLS.set in_worker false;
    Array.iter Domain.join domains;
    (match caller_error with Some e -> raise e | None -> ());
    (* deterministic error choice: lowest-indexed failing task wins *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    (* lint: allow S001 every slot is filled once the workers join *)
    Array.map (function Some v -> v | None -> assert false) results
  end

let map pool f arr = mapi pool (fun _ x -> f x) arr

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

let map_reduce pool ~map:f ~reduce ~init arr =
  Array.fold_left reduce init (map pool f arr)

(* splitmix64-style finalizer: decorrelates seeds that differ in one bit.
   The multipliers are the 63-bit truncations of the usual constants. *)
let derive_seed base salt =
  let mix z =
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
    let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
    z lxor (z lsr 31)
  in
  mix (base + (salt * 0x1e3779b97f4a7c15)) land max_int
