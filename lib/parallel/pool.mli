(** Fixed-size [Domain]-based worker pool with deterministic fork/join maps.

    A pool is a worker-count budget: [map]/[mapi]/[map_reduce] fan the task
    array out over at most [jobs] domains (the calling domain included) and
    join before returning. Results are written into a slot chosen by task
    index, and reductions fold the per-task results sequentially in index
    order, so the output is bit-identical to a sequential run no matter how
    the scheduler interleaves the workers.

    Determinism contract: provided each task function is a pure function of
    its input (no shared mutable state, no global RNG — derive per-task
    randomness from the task's identity with {!derive_seed}), every call
    with the same inputs returns the same outputs for every [jobs] value.

    Nested calls are safe and bounded: a [map] issued from inside a pool
    worker runs sequentially inline, so the total number of live domains
    never exceeds the outermost pool's [jobs]. *)

type t

(** The one-worker pool: every map runs inline in the calling domain and
    spawns nothing. *)
val sequential : t

(** [default_jobs ()] is the [EXPANDER_JOBS] environment variable when it
    parses as a positive integer, otherwise
    [Domain.recommended_domain_count ()] (the variable unset, or set to
    whitespace only).

    @raise Invalid_argument if [EXPANDER_JOBS] is set to anything else —
    a zero, negative or unparseable value is a typo that must not
    silently change the worker count of a parity-sensitive run. *)
val default_jobs : unit -> int

(** [create ?jobs ()] makes a pool of [jobs] workers (default
    {!default_jobs}; values below 1 are clamped to 1). Pools hold no live
    domains between calls, so they need no teardown. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [mapi pool f arr] is [Array.mapi f arr] computed on the pool. If a task
    raises, the exception of the lowest-indexed failing task is re-raised
    after all workers join. *)
val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list pool f l] is [List.map f l] computed on the pool. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce pool ~map ~reduce ~init arr] folds the mapped results in
    task-index order: [reduce (... (reduce init (map a0)) ...) (map an)]. *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c

(** [derive_seed base salt] mixes a base seed with a task identity (an
    index, a vertex id, a recursion depth — anything stable across runs)
    into an independent non-negative stream seed. Use it to give each
    parallel task its own deterministic randomness. *)
val derive_seed : int -> int -> int

(** Persistent worker team: a fixed task count fanned out over domains
    that stay parked between calls, for callers that re-run the same
    task partition many times (one barrier per call instead of one
    domain spawn per task per call — the sharded CONGEST simulator runs
    one {!Team.run} per simulated round).

    Tasks are assigned statically: task [t] always runs on the same
    worker (block partition, the calling domain is worker 0), so there
    is no scheduling nondeterminism. The determinism contract of the
    pool applies unchanged: task functions must not share mutable state
    except by a discipline the caller enforces between calls. *)
module Team : sig
  type team

  (** [create pool ~tasks] spawns [min (jobs pool) tasks - 1] worker
      domains (none when the pool is sequential, [tasks <= 1], or the
      caller is itself a pool worker — nested teams run inline, keeping
      the outermost pool's [jobs] the live-domain bound). The team must
      be released with {!shutdown}. *)
  val create : t -> tasks:int -> team

  (** [run team f] executes [f t] for every task [t] in [0, tasks) and
      returns when all have finished. Every task runs even if some
      raise; the exception of the lowest-indexed failing task is then
      re-raised, exactly like {!mapi}. Not reentrant: do not call [run]
      from inside a task of the same team. *)
  val run : team -> (int -> unit) -> unit

  (** [shutdown team] stops and joins the worker domains. Idempotent.
      Calling {!run} after [shutdown] deadlocks the parallel path; don't. *)
  val shutdown : team -> unit
end
