module SSet = Set.Make (String)

type t = { keys : SSet.t; lines : string list }

let empty = { keys = SSet.empty; lines = [] }

let key ~rule ~file ~line = Printf.sprintf "%s\t%s\t%d" rule file line

let parse content =
  let lines = String.split_on_char '\n' content in
  let keys =
    List.fold_left
      (fun acc line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then acc
        else
          match String.split_on_char '\t' line with
          | rule :: file :: ln :: _ -> (
              match int_of_string_opt ln with
              | Some l -> SSet.add (key ~rule ~file ~line:l) acc
              | None -> acc)
          | _ -> acc)
      SSet.empty lines
  in
  { keys; lines }

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse content
  end
  else empty

let mem t (f : Finding.t) =
  SSet.mem (key ~rule:f.rule ~file:f.file ~line:f.line) t.keys

let of_findings findings =
  let sorted = List.sort_uniq Finding.order findings in
  let lines =
    "# lint baseline: grandfathered findings (rule<TAB>file<TAB>line<TAB>message)."
    :: "# Regenerate with: dune exec bin/lint.exe -- --write-baseline lint.baseline"
    :: List.map
         (fun (f : Finding.t) ->
           Printf.sprintf "%s\t%s\t%d\t%s" f.rule f.file f.line f.message)
         sorted
  in
  let keys =
    List.fold_left
      (fun acc (f : Finding.t) ->
        SSet.add (key ~rule:f.rule ~file:f.file ~line:f.line) acc)
      SSet.empty sorted
  in
  { keys; lines }

let to_string t = String.concat "\n" t.lines ^ "\n"

let size t = SSet.cardinal t.keys
