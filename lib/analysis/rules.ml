(* The shipped rule set, in catalog order. *)

let all : Rule.t list =
  [
    Rules_determinism.d001;
    Rules_determinism.d002;
    Rules_determinism.d003;
    Rules_parallel.p001;
    Rules_races.p002;
    Rules_races.p003;
    Rules_alloc.a001;
    Rules_hygiene.h001;
    Rules_hygiene.s001;
  ]

let find id = List.find_opt (fun (r : Rule.t) -> r.id = id) all
