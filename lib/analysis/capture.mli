(** Closure-capture layer shared by the parallel-safety rules: finds every
    task expression handed to a [Parallel.Pool] entrypoint (through
    task-forwarding wrappers, by fixpoint) and computes the writes a
    closure performs on variables it does not bind itself. Purely
    syntactic: mutability is proven by the write form ([:=],
    [Array.set], a record-field assignment, ...), never by types.
    [Atomic] operations are deliberately not write forms — atomics are
    the sanctioned cross-domain channel (P003 polices their misuse). *)

(** How a pool entrypoint consumes task functions: positional index among
    the [Nolabel] arguments, or labelled arguments. *)
type task_spec = Positional of int list | Labelled of string list

(** Entry points whose function arguments run on other domains:
    [Pool.map]/[mapi]/[map_list]/[map_reduce], [Pool.Team.run],
    [Domain.spawn]. *)
val pool_entrypoints : (string list * task_spec) list

val spec_of_callee : string list -> task_spec option
val task_args_of :
  task_spec ->
  (Asttypes.arg_label * Parsetree.expression) list ->
  Parsetree.expression list

(** Local [let]-bound names inside a definition body with their
    right-hand sides, so a task passed by local name can be chased. *)
val local_bindings :
  Parsetree.expression -> Parsetree.expression Map.Make(String).t

(** Resolve every identifier mentioned by an expression into call-graph
    seeds, expanding through the enclosing definition's [locals]. *)
val seeds_of_expr :
  Project.t ->
  module_name:string ->
  locals:Parsetree.expression Map.Make(String).t ->
  Parsetree.expression ->
  string list

(** A task expression flowing into a pool entrypoint. Wrapper-parameter
    forwards ([let par_run f = Pool.map pool f data]) are not sites —
    the site is at the outer caller that supplies the closure. *)
type site = {
  def : Callgraph.def;  (** definition whose body contains the call *)
  task : Parsetree.expression;  (** the task argument, peeled *)
  loc : Location.t;  (** location of the pool application *)
}

(** All task sites in the project, in deterministic (definition, source
    position) order. *)
val task_sites : Project.t -> Callgraph.t -> site list

(** One write to a variable the expression did not bind: the base
    variable name, the write form that proved mutability, and where. *)
type write = { subject : string; form : string; loc : Location.t }

(** [free_writes ~bound e] walks [e] tracking the lexical environment
    ([bound] seeds it) and returns every write whose base variable is
    free in [e] — i.e. captured from an enclosing scope. *)
val free_writes : ?bound:string list -> Parsetree.expression -> write list
