type t = {
  path : string;
  content : string;
  ast : Parsetree.structure option;
  parse_error : string option;
  suppressions : (int * string) list;
}

(* Scan one line of text for "lint: allow RULE"; the comment syntax is
   checked loosely on purpose so the marker works inside any comment
   style. Returns the rule id when present. *)
let suppression_of_line line =
  let marker = "lint:" in
  let mlen = String.length marker in
  let len = String.length line in
  let rec find i =
    if i + mlen > len then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some after ->
      let rec skip_ws i =
        if i < len && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1)
        else i
      in
      let i = skip_ws after in
      let kw = "allow" in
      let klen = String.length kw in
      if i + klen > len || String.sub line i klen <> kw then None
      else
        let i = skip_ws (i + klen) in
        let is_rule_char c =
          (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        in
        let rec stop j = if j < len && is_rule_char line.[j] then stop (j + 1) else j in
        let j = stop i in
        if j > i then Some (String.sub line i (j - i)) else None

let scan_suppressions content =
  let lines = String.split_on_char '\n' content in
  let _, acc =
    List.fold_left
      (fun (lnum, acc) line ->
        match suppression_of_line line with
        | Some rule -> (lnum + 1, (lnum, rule) :: acc)
        | None -> (lnum + 1, acc))
      (1, []) lines
  in
  List.rev acc

let of_string ~path content =
  let lexbuf = Lexing.from_string content in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  let ast, parse_error =
    match Parse.implementation lexbuf with
    | ast -> (Some ast, None)
    | exception e ->
        (None, Some (Printf.sprintf "parse error: %s" (Printexc.to_string e)))
  in
  { path; content; ast; parse_error; suppressions = scan_suppressions content }

let load ?file ~path () =
  let file = Option.value file ~default:path in
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  of_string ~path content

let module_name t =
  let base = Filename.remove_extension (Filename.basename t.path) in
  String.capitalize_ascii base

let suppressed t ~rule ~line =
  List.exists
    (fun (l, r) -> r = rule && (l = line || l = line - 1))
    t.suppressions
