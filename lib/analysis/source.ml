type prescan = {
  suppressions : (int * string) list;
  hot_lines : int list;
}

type t = {
  path : string;
  content : string;
  ast : Parsetree.structure option;
  parse_error : string option;
  suppressions : (int * string) list;
  hot_lines : int list;
}

(* Scan one line of text for a "lint:" marker; the comment syntax is
   checked loosely on purpose so the markers work inside any comment
   style. Two keywords exist:
     lint: allow RULE reason   — suppress RULE here / on the next line
     lint: hot                 — the binding on this (or the next) line is
                                 a hot-path root for the A001 rule *)
type marker = Allow of string | Hot

let marker_of_line line =
  let text = "lint:" in
  let mlen = String.length text in
  let len = String.length line in
  let rec find i =
    if i + mlen > len then None
    else if String.sub line i mlen = text then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some after ->
      let rec skip_ws i =
        if i < len && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1)
        else i
      in
      let i = skip_ws after in
      let starts_with kw =
        let klen = String.length kw in
        i + klen <= len && String.sub line i klen = kw
      in
      if starts_with "hot" then Some Hot
      else if starts_with "allow" then begin
        let i = skip_ws (i + String.length "allow") in
        let is_rule_char c =
          (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        in
        let rec stop j =
          if j < len && is_rule_char line.[j] then stop (j + 1) else j
        in
        let j = stop i in
        if j > i then Some (Allow (String.sub line i (j - i))) else None
      end
      else None

let prescan content =
  let lines = String.split_on_char '\n' content in
  let _, sup, hot =
    List.fold_left
      (fun (lnum, sup, hot) line ->
        match marker_of_line line with
        | Some (Allow rule) -> (lnum + 1, (lnum, rule) :: sup, hot)
        | Some Hot -> (lnum + 1, sup, lnum :: hot)
        | None -> (lnum + 1, sup, hot))
      (1, [], []) lines
  in
  { suppressions = List.rev sup; hot_lines = List.rev hot }

let of_string ?prescan:pre ~path content =
  let lexbuf = Lexing.from_string content in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  let ast, parse_error =
    match Parse.implementation lexbuf with
    | ast -> (Some ast, None)
    | exception e ->
        (None, Some (Printf.sprintf "parse error: %s" (Printexc.to_string e)))
  in
  let pre = match pre with Some p -> p | None -> prescan content in
  {
    path;
    content;
    ast;
    parse_error;
    suppressions = pre.suppressions;
    hot_lines = pre.hot_lines;
  }

let load ?file ~path () =
  let file = Option.value file ~default:path in
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  of_string ~path content

let module_name t =
  let base = Filename.remove_extension (Filename.basename t.path) in
  String.capitalize_ascii base

let suppressed t ~rule ~line =
  List.exists
    (fun (l, r) -> r = rule && (l = line || l = line - 1))
    t.suppressions

let hot_marked t ~line =
  List.exists (fun l -> l = line || l = line - 1) t.hot_lines
