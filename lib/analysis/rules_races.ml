(* P002 cross-domain capture race, P003 atomic read-modify-write misuse.

   P001 catches tasks that reach TOPLEVEL mutable state through the call
   graph. P002 closes the remaining gap: a task closure that captures a
   LOCAL mutable value of its enclosing definition (a ref, array, table
   or record allocated before the fan-out) and writes it. Shard-private
   state — allocated inside the task body or received as a task argument
   — is bound inside the closure and therefore never reported; writes
   through Atomic are not write forms at all. P003 polices the sanctioned
   channel itself: Atomic.get followed by Atomic.set on the same atomic
   inside one definition is a lost-update window dressed up as atomic
   code. *)

open Parsetree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* P002: captured-state write in a pooled task                          *)
(* ------------------------------------------------------------------ *)

let p002_check ctx =
  let project = ctx.Rule.project in
  let graph = ctx.Rule.graph in
  let findings = ref [] in
  List.iter
    (fun (site : Capture.site) ->
      let locals = Capture.local_bindings site.def.body in
      let def_scope =
        let params =
          List.filter_map (fun (_, n) -> n) site.def.params
        in
        List.fold_left
          (fun s n -> SSet.add n s)
          (SMap.fold (fun n _ s -> SSet.add n s) locals SSet.empty)
          params
      in
      (* writes performed by the task and by every local helper it can
         reach; helper-local writes to their own parameters are bound
         inside the helper, so only writes that stay free — i.e. resolve
         lexically in the enclosing definition — survive *)
      let visited = ref SSet.empty in
      let writes = ref [] in
      let rec analyze expr =
        writes := !writes @ Capture.free_writes expr;
        List.iter
          (fun comps ->
            match comps with
            | [ n ] when SMap.mem n locals && not (SSet.mem n !visited) ->
                visited := SSet.add n !visited;
                analyze (SMap.find n locals)
            | _ -> ())
          (Ast_scan.collect_paths expr)
      in
      (match Ast_scan.path_of site.task with
      | Some [ n ] when SMap.mem n locals ->
          visited := SSet.add n !visited;
          analyze (SMap.find n locals)
      | Some _ -> () (* qualified/toplevel task: P001's territory *)
      | None -> analyze site.task);
      (* one subject, one entry: first write wins; only state that lives
         in the enclosing definition counts (module-level state is P001's) *)
      let by_subject =
        List.fold_left
          (fun acc (w : Capture.write) ->
            if SSet.mem w.subject def_scope && not (SMap.mem w.subject acc)
            then SMap.add w.subject w acc
            else acc)
          SMap.empty !writes
      in
      if not (SMap.is_empty by_subject) then begin
        let described =
          SMap.bindings by_subject
          |> List.map (fun (n, (w : Capture.write)) ->
                 Printf.sprintf "%s (%s at line %d)" n w.form
                   w.loc.Location.loc_start.Lexing.pos_lnum)
          |> String.concat ", "
        in
        findings :=
          Finding.v ~rule:"P002" ~severity:Finding.Error ~loc:site.loc
            (Printf.sprintf
               "pooled task writes state captured from its enclosing \
                definition: %s; tasks race on it across domains — make the \
                state shard-private (allocate it in the task, or pass each \
                task its own slice) or go through Atomic"
               described)
          :: !findings
      end)
    (Capture.task_sites project graph);
  List.rev !findings

let p002 =
  {
    Rule.id = "P002";
    severity = Finding.Error;
    scope = Rule.Global;
    title = "cross-domain write to captured state";
    doc =
      "A closure fanned out on the Parallel.Pool (map / mapi / map_list / \
       map_reduce / Team.run / Domain.spawn) runs on several domains at \
       once. If it mutates a ref, array, Hashtbl, Buffer or mutable record \
       field captured from the enclosing definition, the tasks race: the \
       write form proves the mutation, the capture proves the sharing. \
       State allocated inside the task body or passed per task is private \
       and never flagged; Atomic operations are the sanctioned channel.";
    fix =
      "Partition the state: allocate it inside the task body, hand each \
       task its own slice or accumulator and merge after the join, or \
       switch the shared cell to Atomic with fetch_and_add / \
       compare_and_set. A deliberate single-writer discipline (each task \
       writes only indices it owns) is fine but must carry an allow \
       comment naming the discipline.";
    check = p002_check;
  }

(* ------------------------------------------------------------------ *)
(* P003: Atomic.get-then-set read-modify-write                          *)
(* ------------------------------------------------------------------ *)

(* textual subject of an atomic operand: identifier path or field chain *)
let rec atomic_subject (e : expression) =
  match (Ast_scan.peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | Pexp_field (r, { txt; _ }) -> (
      let field =
        match Longident.flatten txt with
        | [] -> None
        | comps -> Some (List.nth comps (List.length comps - 1))
      in
      match (atomic_subject r, field) with
      | Some base, Some f -> Some (base ^ "." ^ f)
      | _ -> None)
  | _ -> None

let atomic_op comps =
  match comps with
  | [ "Atomic"; op ] | [ "Stdlib"; "Atomic"; op ] -> Some op
  | _ -> None

(* gets and sets on atomics inside one definition body *)
let atomic_uses body =
  let gets = ref SSet.empty in
  let sets = ref [] in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, (Asttypes.Nolabel, target) :: _) -> (
          match
            Option.bind (Ast_scan.path_of (Ast_scan.peel f)) atomic_op
          with
          | Some "get" ->
              Option.iter
                (fun s -> gets := SSet.add s !gets)
                (atomic_subject target)
          | Some "set" ->
              Option.iter
                (fun s -> sets := (s, e.pexp_loc) :: !sets)
                (atomic_subject target)
          | _ -> ())
      | _ -> ());
  (!gets, List.rev !sets)

let p003_check ctx =
  Rule.per_source ctx (fun _src str ->
      let acc = ref [] in
      (* one definition = one value binding; get+set on the same atomic
         in separate definitions (an [enable] / [is_enabled] pair) is the
         normal publish/observe pattern and stays silent *)
      let check_vb (vb : value_binding) =
        let gets, sets = atomic_uses vb.pvb_expr in
        let seen = ref SSet.empty in
        List.iter
          (fun (s, loc) ->
            if SSet.mem s gets && not (SSet.mem s !seen) then begin
              seen := SSet.add s !seen;
              acc :=
                Finding.v ~rule:"P003" ~severity:Finding.Error ~loc
                  (Printf.sprintf
                     "Atomic.get followed by Atomic.set on '%s' is a \
                      read-modify-write with a lost-update window; use \
                      Atomic.fetch_and_add, Atomic.compare_and_set or \
                      Atomic.exchange"
                     s)
                :: !acc
            end)
          sets
      in
      let it =
        {
          Ast_iterator.default_iterator with
          value_binding =
            (fun self vb ->
              check_vb vb;
              Ast_iterator.default_iterator.value_binding self vb);
        }
      in
      it.structure it str;
      List.rev !acc)

let p003 =
  {
    Rule.id = "P003";
    severity = Finding.Error;
    scope = Rule.Per_source;
    title = "atomic read-modify-write via get/set";
    doc =
      "Atomic.set (Atomic.get a + 1)-style updates are not atomic: another \
       domain can update between the read and the write and its update is \
       silently lost. The atomics API has single-instruction forms for \
       every read-modify-write this repo needs; get-then-set on the same \
       atomic inside one definition is therefore always a bug or a \
       misleading way to write a plain publish.";
    fix =
      "Counters: Atomic.fetch_and_add (or Atomic.incr). \
       Compare-and-update loops: retry with Atomic.compare_and_set on the \
       value read. Swaps: Atomic.exchange. A plain publish that does not \
       depend on the value read should not read at all — drop the get.";
    check = p003_check;
  }
