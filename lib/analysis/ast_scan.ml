(* Small shared helpers for walking Parsetrees. Everything here is pure
   syntax: no typing information is available, so rules that use these
   helpers are heuristics with deliberately conservative shapes. *)

open Parsetree

let path_of (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let path_str comps = String.concat "." comps

(* strip constraints/coercions/newtypes so shape checks see the payload *)
let rec peel (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel e
  | Pexp_newtype (_, e) -> peel e
  | _ -> e

(* callee of an application, peeled; [f x y] and [f] both give [f] *)
let head (e : expression) =
  match (peel e).pexp_desc with Pexp_apply (f, _) -> peel f | _ -> peel e

let suffix_matches comps ~suffix =
  let lc = List.length comps and ls = List.length suffix in
  lc >= ls
  && List.filteri (fun i _ -> i >= lc - ls) comps = suffix

(* visit every expression under a structure (or expression), including
   nested module bindings *)
let iter_expressions_str str f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

let iter_expressions_expr root f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it root

(* all identifier paths mentioned anywhere under [root] *)
let collect_paths root =
  let acc = ref [] in
  iter_expressions_expr root (fun e ->
      match path_of e with Some p -> acc := p :: !acc | None -> ());
  List.rev !acc

let pat_var (p : pattern) =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

(* leading fun-parameters of a binding body: [fun a ?(b=1) ~c () -> ...] *)
let params_of (e : expression) =
  let rec go acc e =
    match (peel e).pexp_desc with
    | Pexp_fun (label, _, pat, body) -> go ((label, pat_var pat) :: acc) body
    | _ -> List.rev acc
  in
  go [] e

(* Is [e] syntactically a float-valued expression? Used by H001; only
   shapes that are unambiguously float count, so plain identifiers never
   qualify. *)
let float_fns =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "exp"; "log";
    "log10"; "ceil"; "floor"; "float_of_int"; "float_of_string"; "float";
    "cos"; "sin"; "tan"; "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "mod_float";
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let is_floatish (e : expression) =
  let e = peel e in
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident _ -> (
      match path_of e with
      | Some comps ->
          let last = List.nth comps (List.length comps - 1) in
          List.mem last float_consts
      | None -> false)
  | Pexp_apply (f, _) -> (
      match path_of (peel f) with
      | Some [ fn ] -> List.mem fn float_fns
      | Some ("Float" :: _) -> true
      | Some comps -> suffix_matches comps ~suffix:[ "Stdlib"; "**" ]
      | None -> false)
  | _ -> false

(* every variable bound by a pattern, however deep *)
let pat_vars (p : pattern) =
  let acc = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (p, { txt; _ }) ->
        acc := txt :: !acc;
        go p
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, p))
    | Ppat_variant (_, Some p)
    | Ppat_constraint (p, _)
    | Ppat_lazy p
    | Ppat_exception p
    | Ppat_open (_, p) ->
        go p
    | Ppat_record (fields, _) -> List.iter (fun (_, p) -> go p) fields
    | Ppat_or (a, b) ->
        (* both sides bind the same names; visiting both only duplicates *)
        go a;
        go b
    | _ -> ()
  in
  go p;
  List.sort_uniq compare !acc

(* [loc_within inner outer]: character-range containment in one file *)
let loc_within (inner : Location.t) (outer : Location.t) =
  inner.loc_start.pos_fname = outer.loc_start.pos_fname
  && inner.loc_start.pos_cnum >= outer.loc_start.pos_cnum
  && inner.loc_end.pos_cnum <= outer.loc_end.pos_cnum
