type status = Fresh | Suppressed | Baselined

type report = {
  files_scanned : int;
  results : (Finding.t * status) list;
  baseline_size : int;
}

(* ------------------------------------------------------------------ *)
(* Source-tree loading                                                  *)
(* ------------------------------------------------------------------ *)

let dune_library_name content =
  (* first "(name X)" in the dune file; a token scan is enough for this
     repo's dune dialect *)
  let len = String.length content in
  let is_token_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec find i =
    if i + 5 > len then None
    else if String.sub content i 5 = "(name" then begin
      let rec skip j =
        if j < len && (content.[j] = ' ' || content.[j] = '\n' || content.[j] = '\t')
        then skip (j + 1)
        else j
      in
      let s = skip (i + 5) in
      let rec stop j =
        if j < len && is_token_char content.[j] then stop (j + 1) else j
      in
      let e = stop s in
      if e > s then Some (String.sub content s (e - s)) else None
    end
    else find (i + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let load_tree ?(pool = Parallel.Pool.sequential) ~root ~dirs () =
  let files = ref [] in
  let libraries = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then begin
      let entries = Sys.readdir abs in
      Array.sort compare entries;
      Array.iter
        (fun name ->
          if String.length name > 0 && name.[0] <> '.' && name.[0] <> '_'
          then begin
            let rel' = Filename.concat rel name in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix name ".ml" then
              files := (rel', abs') :: !files
            else if name = "dune" then
              match dune_library_name (read_file abs') with
              | Some lib -> libraries := (rel, lib) :: !libraries
              | None -> ()
          end)
        entries
    end
  in
  List.iter walk dirs;
  (* file reads and the comment-marker prescan fan out over the pool;
     PARSING stays on this domain because the compiler-libs lexer keeps
     global state (its string buffer, docstring registry) and is not
     domain-safe. Pool maps return in task-index order, so the source
     list is identical at every --jobs value. *)
  let read =
    Parallel.Pool.map_list pool
      (fun (rel, abs) ->
        let content = read_file abs in
        (rel, content, Source.prescan content))
      (List.rev !files)
  in
  let sources =
    List.map
      (fun (rel, content, pre) -> Source.of_string ~prescan:pre ~path:rel content)
      read
  in
  (sources, List.rev !libraries)

(* ------------------------------------------------------------------ *)
(* Analysis                                                             *)
(* ------------------------------------------------------------------ *)

let analyze ?(pool = Parallel.Pool.sequential) ?(rules = Rules.all)
    ?(libraries = []) ?(baseline = Baseline.empty) sources =
  let parsed =
    List.filter_map
      (fun (s : Source.t) ->
        match s.ast with Some str -> Some (s, str) | None -> None)
      sources
  in
  let project = Project.build ~libraries sources in
  let graph = Callgraph.build project parsed in
  let ctx = { Rule.sources = parsed; project; graph } in
  let parse_failures =
    List.filter_map
      (fun (s : Source.t) ->
        Option.map
          (fun msg ->
            Finding.at ~rule:"E000" ~severity:Finding.Error ~file:s.path
              ~line:1 ~col:0 msg)
          s.parse_error)
      sources
  in
  let per_source_rules, global_rules =
    List.partition (fun (r : Rule.t) -> r.scope = Rule.Per_source) rules
  in
  (* a Per_source rule's findings for a file depend only on that file's
     (immutable) AST plus the shared read-only project/graph, so the
     checks fan out one task per source; Global rules (call-graph chases,
     wrapper fixpoints) run here. Pool maps join in task-index order and
     the final sort below is total, so the report is byte-identical at
     every --jobs value. *)
  let per_source_findings =
    Parallel.Pool.map_list pool
      (fun (src, str) ->
        let sub = { Rule.sources = [ (src, str) ]; project; graph } in
        List.concat_map (fun (r : Rule.t) -> r.check sub) per_source_rules)
      parsed
  in
  let raw =
    parse_failures
    @ List.concat per_source_findings
    @ List.concat_map (fun (r : Rule.t) -> r.check ctx) global_rules
  in
  let by_path =
    List.fold_left
      (fun acc (s : Source.t) -> (s.path, s) :: acc)
      [] sources
  in
  let status_of (f : Finding.t) =
    let suppressed =
      match List.assoc_opt f.file by_path with
      | Some src -> Source.suppressed src ~rule:f.rule ~line:f.line
      | None -> false
    in
    if suppressed then Suppressed
    else if Baseline.mem baseline f then Baselined
    else Fresh
  in
  let results =
    List.sort_uniq
      (fun (a, _) (b, _) -> Finding.order a b)
      (List.map (fun f -> (f, status_of f)) raw)
  in
  {
    files_scanned = List.length sources;
    results;
    baseline_size = Baseline.size baseline;
  }

let fresh report =
  List.filter_map
    (fun (f, st) -> if st = Fresh then Some f else None)
    report.results

let counts report =
  List.fold_left
    (fun (f, s, b) (_, st) ->
      match st with
      | Fresh -> (f + 1, s, b)
      | Suppressed -> (f, s + 1, b)
      | Baselined -> (f, s, b + 1))
    (0, 0, 0) report.results

let exit_code report = if fresh report = [] then 0 else 1

let to_text report =
  let fresh_findings = fresh report in
  let f, s, b = counts report in
  let body = List.map Finding.to_text fresh_findings in
  let summary =
    Printf.sprintf
      "lint: %d file%s scanned; %d finding%s (%d new, %d suppressed, %d \
       baselined)"
      report.files_scanned
      (if report.files_scanned = 1 then "" else "s")
      (f + s + b)
      (if f + s + b = 1 then "" else "s")
      f s b
  in
  String.concat "\n" (body @ [ summary ]) ^ "\n"

let status_name = function
  | Fresh -> "fresh"
  | Suppressed -> "suppressed"
  | Baselined -> "baselined"

let to_json report =
  let f, s, b = counts report in
  let rule_counts =
    List.fold_left
      (fun acc ((fi : Finding.t), st) ->
        if st = Suppressed then acc
        else
          let cur = Option.value (List.assoc_opt fi.rule acc) ~default:0 in
          (fi.rule, cur + 1) :: List.remove_assoc fi.rule acc)
      [] report.results
    |> List.sort compare
  in
  let findings_json =
    List.map
      (fun (fi, st) ->
        Finding.to_json
          ~extra:[ ("status", Printf.sprintf "%S" (status_name st)) ]
          fi)
      report.results
  in
  let severities =
    List.map
      (fun (r : Rule.t) ->
        Printf.sprintf "%S: %S" r.id (Finding.severity_name r.severity))
      Rules.all
  in
  String.concat "\n"
    [
      "{";
      "  \"version\": 2,";
      Printf.sprintf "  \"severities\": {%s},"
        (String.concat ", " severities);
      Printf.sprintf "  \"files_scanned\": %d," report.files_scanned;
      Printf.sprintf "  \"new\": %d," f;
      Printf.sprintf "  \"suppressed\": %d," s;
      Printf.sprintf "  \"baselined\": %d," b;
      Printf.sprintf "  \"baseline_size\": %d," report.baseline_size;
      Printf.sprintf "  \"counts\": {%s},"
        (String.concat ", "
           (List.map
              (fun (r, c) -> Printf.sprintf "%S: %d" r c)
              rule_counts));
      Printf.sprintf "  \"findings\": [%s]"
        (if findings_json = [] then ""
         else "\n    " ^ String.concat ",\n    " findings_json ^ "\n  ");
      "}";
    ]
  ^ "\n"
