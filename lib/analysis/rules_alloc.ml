(* A001: allocation on a hot path. A binding marked [(* lint: hot *)] is
   a per-event / per-message inner-loop function: the sharded simulator's
   step and push helpers, the codec pack/unpack bodies, the Team barrier.
   The PR-5/6 performance claims assume these paths allocate nothing per
   call, so any AST-level allocation site in a hot root — or in any
   project function it calls, transitively — is a finding.

   Heuristic boundaries, chosen to keep the rule quiet on honest code:

   - [ref] cells are NOT counted: the compiler unboxes local refs that
     do not escape (Simplif.eliminate_ref), and hot loops here use them
     exactly that way.
   - a named local function ([let go = fun ... in]) is transparent: the
     closure is built once per call of the enclosing function, not once
     per loop iteration, so the shell is free but its BODY is scanned.
   - error paths are exempt: [raise] / [invalid_arg] / [failwith] /
     [assert] applications and [try]-handler branches allocate only when
     the hot path is already dead. The transitive chase also ignores
     references that appear only inside exempt subtrees.
   - structured constants ([Some 1], [("a", "b")]) are static data, not
     allocations. *)

open Parsetree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

let skip_heads = [ "raise"; "raise_notrace"; "invalid_arg"; "failwith" ]

let is_skip_head comps =
  match comps with
  | [ op ] | [ "Stdlib"; op ] -> List.mem op skip_heads
  | _ -> false

(* allocating stdlib calls by callee-path suffix; [ref] deliberately
   absent (see header), [Atomic.make] absent (setup code, not loop code) *)
let alloc_call_modules =
  [
    ( "String",
      [
        "concat"; "sub"; "make"; "init"; "map"; "mapi"; "cat"; "trim";
        "escaped"; "uppercase_ascii"; "lowercase_ascii"; "split_on_char";
        "of_seq"; "to_seq";
      ] );
    ( "Array",
      [
        "make"; "init"; "append"; "copy"; "sub"; "of_list"; "to_list";
        "concat"; "map"; "mapi"; "make_matrix"; "of_seq"; "to_seq";
      ] );
    ( "Bytes",
      [
        "create"; "make"; "copy"; "sub"; "cat"; "of_string"; "to_string";
        "sub_string"; "extend";
      ] );
    ( "List",
      [
        "map"; "mapi"; "rev"; "append"; "rev_append"; "init"; "filter";
        "filter_map"; "concat"; "concat_map"; "sort"; "sort_uniq";
        "stable_sort"; "merge"; "split"; "combine"; "cons"; "of_seq";
        "to_seq";
      ] );
    ("Buffer", [ "create"; "contents"; "to_bytes" ]);
    ("Hashtbl", [ "create"; "copy"; "of_seq" ]);
    ("Queue", [ "create" ]);
    ("Stack", [ "create" ]);
  ]

let alloc_single_names =
  [ "^"; "@"; "string_of_int"; "string_of_float"; "string_of_bool" ]

let alloc_call comps =
  match comps with
  | [ op ] | [ "Stdlib"; op ] when List.mem op alloc_single_names ->
      Some (Printf.sprintf "allocating call %s" op)
  | _ -> (
      match
        List.find_opt
          (fun (m, fns) ->
            List.exists
              (fun fn ->
                Ast_scan.suffix_matches comps ~suffix:[ m; fn ]
                && List.length comps <= 3)
              fns)
          alloc_call_modules
      with
      | Some _ ->
          Some
            (Printf.sprintf "allocating call %s" (Ast_scan.path_str comps))
      | None -> (
          match comps with
          | ("Printf" | "Format") :: _ :: _ ->
              Some
                (Printf.sprintf "%s boxes its arguments"
                   (Ast_scan.path_str comps))
          | _ -> None))

(* structured constants are statically allocated *)
let rec is_static_const (e : expression) =
  match (Ast_scan.peel e).pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some arg) -> is_static_const arg
  | Pexp_tuple es -> List.for_all is_static_const es
  | Pexp_variant (_, None) -> true
  | Pexp_variant (_, Some arg) -> is_static_const arg
  | _ -> false

(* strip a definition's own leading fun shell: building that closure is a
   per-definition cost, not a per-call one *)
let rec strip_fun_shell (e : expression) =
  match (Ast_scan.peel e).pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_fun_shell body
  | _ -> Ast_scan.peel e

type alloc = { loc : Location.t; what : string }

type scan_state = {
  allocs : alloc list ref;
  paths : string list list ref;  (* identifier paths seen OUTSIDE exempt
                                    subtrees, for the transitive chase *)
  arity_of : string list -> (string * int) option;
      (* resolve a callee to (qname, required positional params) for
         partial-application detection *)
}

(* allocation sites in [e], which is already inside a hot body (shells
   stripped by the caller) *)
let rec scan st (e : expression) =
  match e.pexp_desc with
  | Pexp_assert _ -> ()
  | Pexp_try (body, _handlers) -> scan st body
  | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          let rhs = Ast_scan.peel vb.pvb_expr in
          match rhs.pexp_desc with
          | Pexp_fun _ ->
              (* named local fun: shell free, body hot *)
              scan st (strip_fun_shell rhs)
          | Pexp_function cases -> List.iter (scan_case st) cases
          | _ -> scan st vb.pvb_expr)
        vbs;
      scan st body
  | Pexp_fun (_, default, _, body) ->
      (* an anonymous closure built mid-body IS a per-call allocation *)
      note st e.pexp_loc "closure";
      Option.iter (scan st) default;
      scan st body
  | Pexp_function cases ->
      note st e.pexp_loc "closure";
      List.iter (scan_case st) cases
  | Pexp_lazy body ->
      note st e.pexp_loc "lazy block";
      scan st body
  | Pexp_tuple es ->
      if not (is_static_const e) then note st e.pexp_loc "tuple";
      List.iter (scan st) es
  | Pexp_record (fields, base) ->
      note st e.pexp_loc "record";
      List.iter (fun (_, v) -> scan st v) fields;
      Option.iter (scan st) base
  | Pexp_array es ->
      if es <> [] then note st e.pexp_loc "array literal";
      List.iter (scan st) es
  | Pexp_construct ({ txt; _ }, Some arg) ->
      if not (is_static_const e) then begin
        let name = String.concat "." (Longident.flatten txt) in
        note st e.pexp_loc (Printf.sprintf "constructor %s" name)
      end;
      scan st arg
  | Pexp_variant (_, Some arg) ->
      if not (is_static_const e) then
        note st e.pexp_loc "polymorphic variant";
      scan st arg
  | Pexp_apply (f, args) -> (
      let head = Ast_scan.path_of (Ast_scan.peel f) in
      let effective_head =
        (* [raise @@ Foo x] and [x |> failwith]: dispatch through the
           pipe operators so the error-path carve-out still applies *)
        match (head, args) with
        | Some [ "@@" ], [ (_, l); _ ] ->
            Ast_scan.path_of (Ast_scan.head l)
        | Some [ "|>" ], [ _; (_, r) ] ->
            Ast_scan.path_of (Ast_scan.head r)
        | _ -> head
      in
      match effective_head with
      | Some comps when is_skip_head comps -> ()
      | _ ->
          (match head with
          | Some comps -> (
              (match alloc_call comps with
              | Some what -> note st e.pexp_loc what
              | None -> ());
              match st.arity_of comps with
              | Some (qname, required) ->
                  let given =
                    List.length
                      (List.filter
                         (fun (l, _) -> l = Asttypes.Nolabel)
                         args)
                  in
                  if given < required then
                    note st e.pexp_loc
                      (Printf.sprintf
                         "partial application of %s (%d of %d arguments)"
                         qname given required)
              | None -> ())
          | None -> ());
          scan st f;
          List.iter (fun (_, a) -> scan st a) args)
  | Pexp_match (scrut, cases) ->
      scan st scrut;
      List.iter (scan_case st) cases
  | Pexp_sequence (a, b) ->
      scan st a;
      scan st b
  | Pexp_ifthenelse (c, t, e') ->
      scan st c;
      scan st t;
      Option.iter (scan st) e'
  | Pexp_while (c, b) ->
      scan st c;
      scan st b
  | Pexp_for (_, lo, hi, _, b) ->
      scan st lo;
      scan st hi;
      scan st b
  | Pexp_setfield (r, _, v) ->
      scan st r;
      scan st v
  | Pexp_field (r, _) -> scan st r
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> scan st inner
  | Pexp_newtype (_, inner) | Pexp_open (_, inner) -> scan st inner
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
      scan st body
  | Pexp_ident { txt; _ } -> st.paths := Longident.flatten txt :: !(st.paths)
  | Pexp_constant _ | Pexp_construct (_, None) | Pexp_variant (_, None)
  | Pexp_unreachable | Pexp_extension _ ->
      ()
  | _ ->
      (* exotic nodes (objects, first-class modules, ...) do not appear on
         hot paths in this tree; stay silent rather than guess *)
      ()

and scan_case st (c : case) =
  (* [match ... with exception e -> ...] branches are error paths *)
  match c.pc_lhs.ppat_desc with
  | Ppat_exception _ -> ()
  | _ ->
      Option.iter (scan st) c.pc_guard;
      scan st c.pc_rhs

and note st loc what =
  st.allocs := { loc; what } :: !(st.allocs)

(* scan a definition body: strip the fun shell; a codec-style record of
   closures ([{ pack = (fun ...); unpack = ... }]) is also shell — the
   record and its closures exist once, the closure BODIES are hot *)
let scan_def_body st body =
  let core = strip_fun_shell body in
  match core.pexp_desc with
  | Pexp_record (fields, base) ->
      List.iter
        (fun ((_, v) : Longident.t Location.loc * expression) ->
          match (Ast_scan.peel v).pexp_desc with
          | Pexp_fun _ -> scan st (strip_fun_shell v)
          | Pexp_function cases -> List.iter (scan_case st) cases
          | _ -> scan st v)
        fields;
      Option.iter (scan st) base
  | Pexp_function cases -> List.iter (scan_case st) cases
  | _ -> scan st core

let function_shaped (d : Callgraph.def) =
  d.params <> []
  ||
  match (Ast_scan.peel d.body).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* hot-marked value bindings anywhere in a source (module level or local) *)
let hot_roots_of_source (src : Source.t) str =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match Ast_scan.pat_var vb.pvb_pat with
          | Some name
            when Source.hot_marked src
                   ~line:vb.pvb_loc.Location.loc_start.Lexing.pos_lnum ->
              acc := (name, vb) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  List.rev !acc

let a001_check ctx =
  let project = ctx.Rule.project in
  let graph = ctx.Rule.graph in
  let findings = ref [] in
  let reported = ref SSet.empty in
  let emit ~root (a : alloc) =
    let key =
      Printf.sprintf "%s:%d:%d:%s" a.loc.Location.loc_start.Lexing.pos_fname
        a.loc.Location.loc_start.Lexing.pos_lnum
        (a.loc.Location.loc_start.Lexing.pos_cnum
        - a.loc.Location.loc_start.Lexing.pos_bol)
        a.what
    in
    if not (SSet.mem key !reported) then begin
      reported := SSet.add key !reported;
      findings :=
        Finding.v ~rule:"A001" ~severity:Finding.Warning ~loc:a.loc
          (Printf.sprintf
             "%s on the hot path rooted at '%s'; hot functions must not \
              allocate per call — hoist the value, reuse a preallocated \
              buffer, or drop the hot marker if the cost is intended"
             a.what root)
        :: !findings
    end
  in
  let arity_for module_name comps =
    match Project.resolve project ~current_module:module_name comps with
    | None -> None
    | Some q -> (
        match Callgraph.find graph q with
        | Some d ->
            let required =
              List.length
                (List.filter
                   (fun ((l : Asttypes.arg_label), _) -> l = Asttypes.Nolabel)
                   d.params)
            in
            if required > 0 then Some (q, required) else None
        | None -> None)
  in
  (* transitive chase across project functions, attributed to [root];
     only references seen outside exempt subtrees are followed *)
  let rec chase ~root ~visited ~module_name body =
    let st =
      {
        allocs = ref [];
        paths = ref [];
        arity_of = arity_for module_name;
      }
    in
    scan_def_body st body;
    List.iter (fun a -> emit ~root a) (List.rev !(st.allocs));
    List.iter
      (fun comps ->
        match Project.resolve project ~current_module:module_name comps with
        | None -> ()
        | Some q ->
            if not (SSet.mem q !visited) then begin
              visited := SSet.add q !visited;
              match Callgraph.find graph q with
              | Some d when function_shaped d ->
                  chase ~root ~visited ~module_name:d.module_name d.body
              | _ -> ()
            end)
      (List.rev !(st.paths))
  in
  List.iter
    (fun ((src : Source.t), str) ->
      List.iter
        (fun (name, (vb : value_binding)) ->
          let visited = ref SSet.empty in
          chase ~root:name ~visited
            ~module_name:(Source.module_name src)
            vb.pvb_expr)
        (hot_roots_of_source src str))
    ctx.Rule.sources;
  List.rev !findings

let a001 =
  {
    Rule.id = "A001";
    severity = Finding.Warning;
    scope = Rule.Global;
    title = "allocation on a hot path";
    doc =
      "A [lint: hot] marker declares a function to be per-event inner-loop \
       code whose zero-allocation behavior the performance claims rest on \
       (the sharded simulator's step and push helpers, codec pack/unpack, \
       the Team barrier). The rule scans the marked body and every project \
       function it calls, transitively, for AST-level allocation sites: \
       constructors with arguments, tuples, records, closures built \
       mid-body, array/list literals, string concatenation, allocating \
       stdlib calls, partial applications and Printf boxing. Error paths \
       (raise/invalid_arg/failwith/assert and try-handlers) are exempt, as \
       are local refs (unboxed by the compiler) and once-per-definition \
       closure shells.";
    fix =
      "Hoist the allocation out of the loop: preallocate buffers in the \
       enclosing setup and reuse them, return results through caller-owned \
       mutable slots instead of tuples or options, saturate partial \
       applications. Growth sites of amortized structures (doubling an \
       array) are legitimate — keep them behind an allow comment naming \
       the amortization argument.";
    check = a001_check;
  }
