(* Rule plumbing: the context handed to every rule and the rule record.
   Rules see the whole project at once so cross-module rules (P001, P002,
   A001) and per-file rules share one interface. *)

type ctx = {
  sources : (Source.t * Parsetree.structure) list;
  project : Project.t;
  graph : Callgraph.t;
}

(* A [Per_source] rule's findings for a file depend only on that file's
   AST, so the engine may fan the checks out across the domain pool (one
   sub-context per source). [Global] rules need the whole project at once
   (call graph, wrapper fixpoints) and always run sequentially. *)
type scope = Per_source | Global

type t = {
  id : string;
  severity : Finding.severity;
  scope : scope;
  title : string;
  doc : string;  (* one-paragraph rationale, used by --rules *)
  fix : string;  (* how to remediate a finding, used by --explain *)
  check : ctx -> Finding.t list;
}

(* convenience: run [f] once per parsed source *)
let per_source ctx f =
  List.concat_map (fun (src, str) -> f src str) ctx.sources
