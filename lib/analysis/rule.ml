(* Rule plumbing: the context handed to every rule and the rule record.
   Rules see the whole project at once so cross-module rules (P001) and
   per-file rules share one interface. *)

type ctx = {
  sources : (Source.t * Parsetree.structure) list;
  project : Project.t;
  graph : Callgraph.t;
}

type t = {
  id : string;
  severity : Finding.severity;
  title : string;
  doc : string;  (* one-paragraph rationale, used by --rules *)
  check : ctx -> Finding.t list;
}

(* convenience: run [f] once per parsed source *)
let per_source ctx f =
  List.concat_map (fun (src, str) -> f src str) ctx.sources
