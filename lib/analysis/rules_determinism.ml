(* D001 global PRNG, D002 unordered-iteration escape, D003 wall clock.
   These guard the repo's core property: every theorem-level table is a
   deterministic function of (inputs, seeds), byte-identical at any
   --jobs value. *)

open Parsetree

let finding = Finding.v ~severity:Finding.Error

(* ------------------------------------------------------------------ *)
(* D001: global PRNG                                                    *)
(* ------------------------------------------------------------------ *)

let d001_check ctx =
  Rule.per_source ctx (fun _src str ->
      let acc = ref [] in
      Ast_scan.iter_expressions_str str (fun e ->
          match Ast_scan.path_of e with
          | Some [ "Random"; fn ] ->
              acc :=
                finding ~rule:"D001" ~loc:e.pexp_loc
                  (Printf.sprintf
                     "global PRNG Random.%s: results depend on hidden shared \
                      state; use a seeded Random.State (derive per-task \
                      seeds with Parallel.Pool.derive_seed)"
                     fn)
                :: !acc
          | Some [ "Random"; "State"; "make_self_init" ] ->
              acc :=
                finding ~rule:"D001" ~loc:e.pexp_loc
                  "Random.State.make_self_init seeds from the environment; \
                   pass an explicit seed instead"
                :: !acc
          | _ -> ());
      List.rev !acc)

let d001 =
  {
    Rule.id = "D001";
    severity = Finding.Error;
    scope = Rule.Per_source;
    title = "global PRNG use";
    doc =
      "The global Random state is shared, hidden input: any draw from it \
       makes output depend on call order (and under the domain pool, on the \
       scheduler). All randomness must flow from explicit Random.State \
       values seeded from task identity.";
    fix =
      "Thread a Random.State.t from the experiment configuration down to \
       the draw site; for pooled tasks derive an independent stream with \
       Parallel.Pool.derive_seed base task_id and make a fresh state per \
       task.";
    check = d001_check;
  }

(* ------------------------------------------------------------------ *)
(* D002: hash-order escape                                              *)
(* ------------------------------------------------------------------ *)

let sorters =
  [
    [ "List"; "sort" ];
    [ "List"; "sort_uniq" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

let is_sorter e =
  match Ast_scan.path_of (Ast_scan.head e) with
  | Some comps ->
      List.exists (fun s -> Ast_scan.suffix_matches comps ~suffix:s) sorters
  | None -> false

(* ranges (as locations) whose contents are considered order-sanitized
   because the value is piped into a sort before escaping *)
let sanitized_ranges str =
  let ranges = ref [] in
  Ast_scan.iter_expressions_str str (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) when is_sorter f ->
          List.iter (fun (_, (a : expression)) -> ranges := a.pexp_loc :: !ranges) args
      | Pexp_apply (op, [ (_, lhs); (_, rhs) ]) -> (
          match Ast_scan.path_of op with
          | Some [ "|>" ] when is_sorter rhs ->
              ranges := lhs.pexp_loc :: !ranges
          | Some [ "@@" ] when is_sorter op || is_sorter lhs ->
              ranges := rhs.pexp_loc :: !ranges
          | _ -> ())
      | _ -> ());
  !ranges

let contains_list_escape body =
  let found = ref false in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) ->
          found := true
      | Pexp_apply (f, _) -> (
          match Ast_scan.path_of (Ast_scan.peel f) with
          | Some [ "@" ] -> found := true
          | Some comps
            when Ast_scan.suffix_matches comps ~suffix:[ "List"; "append" ]
                 || Ast_scan.suffix_matches comps
                      ~suffix:[ "List"; "rev_append" ]
                 || Ast_scan.suffix_matches comps ~suffix:[ "Array"; "append" ]
            ->
              found := true
          | _ -> ())
      | _ -> ());
  !found

(* names bound to refs locally inside [body] (the callback's own
   accumulators, which are order-safe) *)
let local_ref_names body =
  let acc = ref [] in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match
                ( Ast_scan.pat_var vb.pvb_pat,
                  Ast_scan.path_of (Ast_scan.head vb.pvb_expr) )
              with
              | Some n, Some [ "ref" ] -> acc := n :: !acc
              | _ -> ())
            vbs
      | _ -> ());
  !acc

(* order-sensitive effects inside a Hashtbl.iter callback: mutating a ref
   that outlives the callback (counter or list accumulator), or drawing
   from a stateful PRNG, both of which consume state in hash order *)
let iter_callback_hazard body =
  let locals = local_ref_names body in
  let hazard = ref None in
  let set loc msg = if !hazard = None then hazard := Some (loc, msg) in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          match Ast_scan.path_of (Ast_scan.peel f) with
          | Some [ ("incr" | "decr") ] -> (
              match args with
              | [ (_, arg) ] -> (
                  match Ast_scan.path_of (Ast_scan.peel arg) with
                  | Some [ n ] when not (List.mem n locals) ->
                      set e.pexp_loc
                        (Printf.sprintf
                           "counter '%s' is advanced in hash-iteration order" n)
                  | _ -> ())
              | _ -> ())
          | Some [ ":=" ] -> (
              match args with
              | [ (_, lhs); (_, rhs) ] -> (
                  match Ast_scan.path_of (Ast_scan.peel lhs) with
                  | Some [ n ]
                    when (not (List.mem n locals))
                         && contains_list_escape rhs ->
                      set e.pexp_loc
                        (Printf.sprintf
                           "list accumulated into '%s' in hash-iteration \
                            order" n)
                  | _ -> ())
              | _ -> ())
          | Some ("Random" :: _) ->
              set e.pexp_loc
                "stateful PRNG stream consumed in hash-iteration order"
          | _ -> ())
      | _ -> ());
  !hazard

let d002_check ctx =
  Rule.per_source ctx (fun _src str ->
      let ranges = sanitized_ranges str in
      let sanitized loc =
        List.exists (fun r -> Ast_scan.loc_within loc r) ranges
      in
      let acc = ref [] in
      Ast_scan.iter_expressions_str str (fun e ->
          match e.pexp_desc with
          | Pexp_apply (f, (_, first) :: _) -> (
              match Ast_scan.path_of (Ast_scan.peel f) with
              | Some comps
                when Ast_scan.suffix_matches comps ~suffix:[ "Hashtbl"; "fold" ]
                ->
                  let folder = Ast_scan.peel first in
                  let escaping =
                    match folder.pexp_desc with
                    | Pexp_fun _ -> contains_list_escape folder
                    | _ -> false
                  in
                  if escaping && not (sanitized e.pexp_loc) then
                    acc :=
                      finding ~rule:"D002" ~loc:e.pexp_loc
                        "Hashtbl.fold builds a list in hash-iteration order \
                         that escapes unsorted; pipe the result through \
                         List.sort (or iterate keys in a sorted order)"
                      :: !acc
              | Some comps
                when Ast_scan.suffix_matches comps ~suffix:[ "Hashtbl"; "iter" ]
                -> (
                  match (Ast_scan.peel first).pexp_desc with
                  | Pexp_fun _ -> (
                      match iter_callback_hazard (Ast_scan.peel first) with
                      | Some (loc, why) ->
                          acc :=
                            finding ~rule:"D002" ~loc
                              (Printf.sprintf
                                 "Hashtbl.iter callback is order-sensitive \
                                  (%s); iterate entries in a sorted order \
                                  instead"
                                 why)
                            :: !acc
                      | None -> ())
                  | _ -> ())
              | Some comps
                when List.exists
                       (fun s -> Ast_scan.suffix_matches comps ~suffix:s)
                       [
                         [ "Hashtbl"; "to_seq" ];
                         [ "Hashtbl"; "to_seq_keys" ];
                         [ "Hashtbl"; "to_seq_values" ];
                       ]
                     && not (sanitized e.pexp_loc) ->
                  acc :=
                    finding ~rule:"D002" ~loc:e.pexp_loc
                      "Hashtbl.to_seq yields entries in hash-iteration \
                       order; sort before the sequence escapes"
                    :: !acc
              | _ -> ())
          | _ -> ());
      List.rev !acc)

let d002 =
  {
    Rule.id = "D002";
    severity = Finding.Error;
    scope = Rule.Per_source;
    title = "unordered-iteration escape";
    doc =
      "Hashtbl iteration order is a function of hashing internals, not of \
       the data. A list or stream built in that order that escapes without \
       a sort makes output depend on it; so does a counter or PRNG stream \
       advanced once per entry. Iterate sorted keys, or sort the result \
       before it escapes.";
    fix =
      "Pipe the escaping value through List.sort / List.sort_uniq before \
       it leaves the fold, or replace the iteration with a walk over \
       sorted keys (Hashtbl.fold into a list, sort, then process).";
    check = d002_check;
  }

(* ------------------------------------------------------------------ *)
(* D003: wall clock in result paths                                     *)
(* ------------------------------------------------------------------ *)

let clock_fns =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "mktime" ];
    [ "Sys"; "time" ];
  ]

(* Obs.Clock is the single sanctioned wall-clock sink: every timing read in
   the tree goes through it, so the raw primitives are allowed there and
   nowhere else. *)
let is_sanctioned_clock_module (src : Source.t) =
  let p = src.Source.path in
  let suffix = "lib/obs/clock.ml" in
  let lp = String.length p and ls = String.length suffix in
  lp >= ls
  && String.sub p (lp - ls) ls = suffix
  && (lp = ls || p.[lp - ls - 1] = '/')

let d003_check ctx =
  Rule.per_source ctx (fun src str ->
      if is_sanctioned_clock_module src then []
      else
      let acc = ref [] in
      Ast_scan.iter_expressions_str str (fun e ->
          match Ast_scan.path_of e with
          | Some comps
            when List.exists
                   (fun c -> Ast_scan.suffix_matches comps ~suffix:c)
                   clock_fns
                 && List.length comps = 2 ->
              acc :=
                finding ~rule:"D003" ~loc:e.pexp_loc
                  (Printf.sprintf
                     "wall clock %s in a result path makes output \
                      time-dependent; route timing reads through Obs.Clock \
                      (lib/obs/clock.ml), the only sanctioned clock module"
                     (Ast_scan.path_str comps))
                :: !acc
          | _ -> ());
      List.rev !acc)

let d003 =
  {
    Rule.id = "D003";
    severity = Finding.Error;
    scope = Rule.Per_source;
    title = "wall clock in result path";
    doc =
      "Unix.gettimeofday / Sys.time readings folded into results destroy \
       reproducibility. The only sanctioned site is Obs.Clock \
       (lib/obs/clock.ml), the observability subsystem's clock module; \
       everything else must take timestamps from it.";
    fix =
      "Replace the raw primitive with Obs.Clock.now () (or a duration \
       taken through Obs.Clock) and keep the reading out of \
       theorem-level outputs; timing belongs in the observability \
       report, not in results.";
    check = d003_check;
  }
