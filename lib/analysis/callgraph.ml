module SMap = Map.Make (String)
module SSet = Set.Make (String)

type def = {
  qname : string;
  module_name : string;
  name : string;
  loc : Location.t;
  mutable_kind : string option;
  params : (Asttypes.arg_label * string option) list;
  body : Parsetree.expression;
  refs : string list;
}

type t = {
  by_qname : def SMap.t;
  aliases : string SMap.t;
      (* "Pool.run_block" -> "Pool.Team.run_block": submodule values are
         also reachable under their file-module-qualified short name, which
         is what Project.resolve produces for intra-file references *)
}

(* constructors whose application at a toplevel binding makes the binding
   shared mutable state (a data race when reached from pooled tasks) *)
let mutable_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let mutable_kind_of body =
  let body = Ast_scan.peel body in
  match body.Parsetree.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Ast_scan.path_of (Ast_scan.peel f) with
      | Some comps
        when List.exists
               (fun ctor -> Ast_scan.suffix_matches comps ~suffix:ctor)
               mutable_ctors
             && List.length comps <= 3 ->
          Some (Ast_scan.path_str comps)
      | _ -> None)
  | _ -> None

let resolve_refs project ~current_module body =
  let seen = ref SSet.empty in
  List.iter
    (fun comps ->
      match Project.resolve project ~current_module comps with
      | Some q -> seen := SSet.add q !seen
      | None -> ())
    (Ast_scan.collect_paths body);
  SSet.elements !seen

let build project sources =
  let by_qname = ref SMap.empty in
  let aliases = ref SMap.empty in
  List.iter
    (fun ((src : Source.t), str) ->
      let m = Source.module_name src in
      (* walk structure items, descending into nested modules so values
         inside [module Team = struct ... end] become defs too; [mpath] is
         the submodule path below the file module *)
      let rec walk mpath (items : Parsetree.structure) =
        List.iter
          (fun (item : Parsetree.structure_item) ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun (vb : Parsetree.value_binding) ->
                    match Ast_scan.pat_var vb.pvb_pat with
                    | None -> ()
                    | Some name ->
                        let qname =
                          String.concat "." ((m :: mpath) @ [ name ])
                        in
                        let d =
                          {
                            qname;
                            module_name = m;
                            name;
                            loc = vb.pvb_loc;
                            mutable_kind = mutable_kind_of vb.pvb_expr;
                            params = Ast_scan.params_of vb.pvb_expr;
                            body = vb.pvb_expr;
                            refs =
                              resolve_refs project ~current_module:m
                                vb.pvb_expr;
                          }
                        in
                        if not (SMap.mem qname !by_qname) then begin
                          by_qname := SMap.add qname d !by_qname;
                          (* intra-file references to a submodule value
                             resolve to "File.value"; point that short name
                             here unless a toplevel value owns it *)
                          if mpath <> [] then begin
                            let short = m ^ "." ^ name in
                            if not (SMap.mem short !aliases) then
                              aliases := SMap.add short qname !aliases
                          end
                        end)
                  vbs
            | Pstr_module mb -> (
                match (mb.pmb_name.txt, mb.pmb_expr.Parsetree.pmod_desc) with
                | Some sub, Pmod_structure inner ->
                    walk (mpath @ [ sub ]) inner
                | _ -> ())
            | _ -> ())
          items
      in
      walk [] str)
    sources;
  (* an alias must never shadow a genuine toplevel value *)
  let aliases =
    SMap.filter (fun short _ -> not (SMap.mem short !by_qname)) !aliases
  in
  { by_qname = !by_qname; aliases }

let find t q =
  match SMap.find_opt q t.by_qname with
  | Some d -> Some d
  | None -> (
      match SMap.find_opt q t.aliases with
      | Some primary -> SMap.find_opt primary t.by_qname
      | None -> None)

let defs t = List.map snd (SMap.bindings t.by_qname)

let reachable t seeds =
  let rec go visited = function
    | [] -> visited
    | q :: rest ->
        if SSet.mem q visited then go visited rest
        else
          let visited = SSet.add q visited in
          let next =
            match find t q with Some d -> d.refs | None -> []
          in
          go visited (next @ rest)
  in
  SSet.elements (go SSet.empty seeds)

let reachable_mutable t seeds =
  List.filter_map
    (fun q ->
      match find t q with
      | Some d when d.mutable_kind <> None -> Some d
      | _ -> None)
    (reachable t seeds)
