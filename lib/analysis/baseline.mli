(** Checked-in grandfathered findings. A baseline entry matches a finding
    by (rule, file, line); matched findings are reported as "baselined"
    and do not fail the build. The file format is line-oriented:

    {v
    # comment
    RULE<TAB>file<TAB>line<TAB>message (informational)
    v} *)

type t

val empty : t

val parse : string -> t

(** [load path] is [empty] when the file does not exist. *)
val load : string -> t

val mem : t -> Finding.t -> bool

val of_findings : Finding.t list -> t

val to_string : t -> string

val size : t -> int
