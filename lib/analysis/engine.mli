(** The analysis driver: load sources, run the rule set, fold in
    suppressions and the baseline, render reports. *)

type status = Fresh | Suppressed | Baselined

type report = {
  files_scanned : int;
  results : (Finding.t * status) list;  (** sorted by location *)
  baseline_size : int;
}

(** Recursively collect [dirs] (relative to [root]) for [*.ml] files and
    dune library names. Returns sources (paths relative to [root], sorted)
    and the (dir -> library-name) map read from dune files. Directories
    that do not exist are skipped; directory entries starting with ['.']
    or ['_'] are pruned. File reads and comment prescans fan out over
    [pool] (default: sequential); parsing stays on the calling domain
    because the compiler-libs lexer is not domain-safe. The result is
    identical at every pool size. *)
val load_tree :
  ?pool:Parallel.Pool.t ->
  root:string ->
  dirs:string list ->
  unit ->
  Source.t list * (string * string) list

(** Run [rules] (default: the full set) over the sources. Suppression
    comments and the baseline are applied here; parse failures surface as
    E000 findings. [Per_source] rules fan out over [pool] (default:
    sequential), one task per source; [Global] rules run on the calling
    domain. Findings are totally ordered by location, so the report is
    byte-identical at every pool size. *)
val analyze :
  ?pool:Parallel.Pool.t ->
  ?rules:Rule.t list ->
  ?libraries:(string * string) list ->
  ?baseline:Baseline.t ->
  Source.t list ->
  report

val fresh : report -> Finding.t list

(** Per-status counts as (fresh, suppressed, baselined). *)
val counts : report -> int * int * int

(** Human-readable listing of fresh findings plus a summary line. *)
val to_text : report -> string

(** Full machine-readable report (all statuses, per-rule counts). *)
val to_json : report -> string

(** 0 when no fresh findings, 1 otherwise. *)
val exit_code : report -> int
