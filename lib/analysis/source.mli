(** One .ml source unit: raw text, its Parsetree (when it parses), and the
    lint-suppression comments found in the text. *)

type t = {
  path : string;  (** repo-relative path used in findings *)
  content : string;
  ast : Parsetree.structure option;
  parse_error : string option;  (** set when [ast] is [None] *)
  suppressions : (int * string) list;
      (** (line, rule id) for each [(* lint: allow RULE reason *)] comment *)
}

(** Parse [content] as an implementation; never raises — parse failures are
    recorded in [parse_error]. *)
val of_string : path:string -> string -> t

(** Read the file at [file] (defaults to [path]) and parse it. *)
val load : ?file:string -> path:string -> unit -> t

(** Capitalized module name derived from the basename, e.g.
    ["lib/graph/union_find.ml"] -> ["Union_find"]. *)
val module_name : t -> string

(** A suppression on line [l] covers findings of the same rule on line [l]
    (trailing comment) and line [l + 1] (comment on the preceding line). *)
val suppressed : t -> rule:string -> line:int -> bool
