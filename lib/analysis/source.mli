(** One .ml source unit: raw text, its Parsetree (when it parses), and the
    lint markers ([allow] suppressions, [hot] annotations) found in the
    text. *)

(** Comment-marker scan of a file's raw text, separated from parsing so a
    parallel loader can fan the text scans out across domains while the
    compiler-libs parser (which keeps global lexer state) stays on one. *)
type prescan = {
  suppressions : (int * string) list;
  hot_lines : int list;
}

type t = {
  path : string;  (** repo-relative path used in findings *)
  content : string;
  ast : Parsetree.structure option;
  parse_error : string option;  (** set when [ast] is [None] *)
  suppressions : (int * string) list;
      (** (line, rule id) for each [(* lint: allow RULE reason *)] comment *)
  hot_lines : int list;
      (** lines carrying a [(* lint: hot *)] marker (A001 roots) *)
}

(** Scan [content] for lint comment markers without parsing it. *)
val prescan : string -> prescan

(** Parse [content] as an implementation; never raises — parse failures are
    recorded in [parse_error]. When [prescan] is given, the marker scan is
    reused instead of recomputed. *)
val of_string : ?prescan:prescan -> path:string -> string -> t

(** Read the file at [file] (defaults to [path]) and parse it. *)
val load : ?file:string -> path:string -> unit -> t

(** Capitalized module name derived from the basename, e.g.
    ["lib/graph/union_find.ml"] -> ["Union_find"]. *)
val module_name : t -> string

(** A suppression on line [l] covers findings of the same rule on line [l]
    (trailing comment) and line [l + 1] (comment on the preceding line). *)
val suppressed : t -> rule:string -> line:int -> bool

(** A [lint: hot] marker on line [l] marks a binding starting on line [l]
    (trailing comment) or line [l + 1] (comment on the preceding line). *)
val hot_marked : t -> line:int -> bool
