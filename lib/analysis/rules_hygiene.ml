(* H001 float equality, S001 Obj/assert-false in library code. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* H001: float equality                                                 *)
(* ------------------------------------------------------------------ *)

let eq_ops = [ "="; "<>"; "=="; "!=" ]

let h001_check ctx =
  Rule.per_source ctx (fun _src str ->
      let acc = ref [] in
      Ast_scan.iter_expressions_str str (fun e ->
          match e.pexp_desc with
          | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
              match Ast_scan.path_of op with
              | Some [ o ] when List.mem o eq_ops ->
                  if Ast_scan.is_floatish a || Ast_scan.is_floatish b then
                    acc :=
                      Finding.v ~rule:"H001" ~severity:Finding.Warning
                        ~loc:e.pexp_loc
                        (Printf.sprintf
                           "(%s) on a float expression is exact equality; \
                            compare against a tolerance, or suppress if the \
                            value is an exact sentinel"
                           o)
                      :: !acc
              | Some comps
                when Ast_scan.suffix_matches comps ~suffix:[ "compare" ]
                     && List.length comps <= 2 ->
                  if Ast_scan.is_floatish a || Ast_scan.is_floatish b then
                    acc :=
                      Finding.v ~rule:"H001" ~severity:Finding.Warning
                        ~loc:e.pexp_loc
                        "polymorphic compare on float expressions; use \
                         Float.compare with an explicit tolerance policy"
                      :: !acc
              | _ -> ())
          | _ -> ());
      List.rev !acc)

let h001 =
  {
    Rule.id = "H001";
    severity = Finding.Warning;
    scope = Rule.Per_source;
    title = "float equality";
    doc =
      "Exact =/<>/compare on floats is almost always a rounding bug waiting \
       for a different optimization level or evaluation order. Equality \
       against exact sentinels (0., 1., infinity) is legitimate but must be \
       visible: suppress the finding or grandfather it in the baseline.";
    fix =
      "Compare with an explicit tolerance (Float.abs (a -. b) <= eps) \
       chosen from the quantity's scale, or Float.compare for orderings; \
       exact-sentinel comparisons keep the operator but carry a lint \
       allow comment naming the sentinel.";
    check = h001_check;
  }

(* ------------------------------------------------------------------ *)
(* S001: Obj.* / assert false in library code                           *)
(* ------------------------------------------------------------------ *)

let in_library (src : Source.t) =
  String.length src.path >= 4 && String.sub src.path 0 4 = "lib/"

let s001_check ctx =
  Rule.per_source ctx (fun src str ->
      if not (in_library src) then []
      else begin
        let acc = ref [] in
        Ast_scan.iter_expressions_str str (fun e ->
            match e.pexp_desc with
            | Pexp_assert inner -> (
                match (Ast_scan.peel inner).pexp_desc with
                | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None)
                  ->
                    acc :=
                      Finding.v ~rule:"S001" ~severity:Finding.Warning
                        ~loc:e.pexp_loc
                        "assert false dies without context; raise \
                         invalid_arg / a dedicated exception describing the \
                         offending input, or suppress if the branch is \
                         unreachable by construction"
                      :: !acc
                | _ -> ())
            | _ -> (
                match Ast_scan.path_of e with
                | Some ("Obj" :: _ :: _) ->
                    acc :=
                      Finding.v ~rule:"S001" ~severity:Finding.Warning
                        ~loc:e.pexp_loc
                        "Obj.* subverts the type system; library code must \
                         not depend on representation details"
                      :: !acc
                | _ -> ()));
        List.rev !acc
      end)

let s001 =
  {
    Rule.id = "S001";
    severity = Finding.Warning;
    scope = Rule.Per_source;
    title = "Obj.* / assert false in library code";
    doc =
      "Library entry points are exercised with adversarial inputs by the \
       CONGEST simulator and the bench grid; anonymous aborts (assert \
       false) and representation tricks (Obj.*) turn bad inputs into \
       undiagnosable failures. Reachable branches must raise a described \
       error; genuinely unreachable ones carry an allow comment saying why.";
    fix =
      "Raise invalid_arg / failwith with a message naming the offending \
       input instead of assert false; delete the Obj.* use or move the \
       trick behind a described, allow-commented boundary if it is truly \
       unavoidable.";
    check = s001_check;
  }
