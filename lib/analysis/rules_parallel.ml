(* P001: domain-unsafety. A function handed to the Parallel.Pool fan-out
   runs concurrently on several domains; if its call graph reaches
   toplevel mutable state (a ref, Hashtbl, Buffer, ... bound at module
   level) the tasks race on it. The check walks from every task argument
   of Pool.map / mapi / map_list / map_reduce — including through project
   wrappers whose parameter is forwarded into a pool call, discovered by
   fixpoint — and reports any reachable toplevel mutable binding. *)

open Parsetree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* how a callee consumes task functions: positional index among Nolabel
   args, or labelled arguments *)
type task_spec = Positional of int list | Labelled of string list

let pool_entrypoints =
  [
    ([ "Pool"; "map" ], Positional [ 1 ]);
    ([ "Pool"; "mapi" ], Positional [ 1 ]);
    ([ "Pool"; "map_list" ], Positional [ 1 ]);
    ([ "Pool"; "map_reduce" ], Labelled [ "map"; "reduce" ]);
  ]

let spec_of_callee comps =
  match
    List.find_opt
      (fun (suffix, _) -> Ast_scan.suffix_matches comps ~suffix)
      pool_entrypoints
  with
  | Some (_, spec) -> Some spec
  | None -> None

(* positional args = Nolabel args in order *)
let task_args_of spec args =
  match spec with
  | Positional wanted ->
      let positional =
        List.filter_map
          (function Asttypes.Nolabel, e -> Some e | _ -> None)
          args
      in
      List.filteri (fun i _ -> List.mem i wanted) positional
  | Labelled names ->
      List.filter_map
        (function
          | Asttypes.Labelled l, e when List.mem l names -> Some e
          | _ -> None)
        args

(* local let-bound names inside a toplevel definition body, with their
   right-hand sides, so a task passed by (local) name can be chased *)
let local_bindings body =
  let acc = ref SMap.empty in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match Ast_scan.pat_var vb.pvb_pat with
              | Some n -> acc := SMap.add n vb.pvb_expr !acc
              | None -> ())
            vbs
      | _ -> ());
  !acc

(* Resolve every identifier mentioned by [expr] into call-graph seeds,
   expanding through the enclosing definition's local bindings. *)
let seeds_of_expr ctx ~module_name ~locals expr =
  let project = ctx.Rule.project in
  let seeds = ref SSet.empty in
  let visited_locals = ref SSet.empty in
  let rec expand expr =
    List.iter
      (fun comps ->
        (match comps with
        | [ n ] when SMap.mem n locals && not (SSet.mem n !visited_locals) ->
            visited_locals := SSet.add n !visited_locals;
            expand (SMap.find n locals)
        | _ -> ());
        match Project.resolve project ~current_module:module_name comps with
        | Some q -> seeds := SSet.add q !seeds
        | None -> ())
      (Ast_scan.collect_paths expr)
  in
  expand expr;
  SSet.elements !seeds

let describe_hits hits =
  String.concat ", "
    (List.map
       (fun (d : Callgraph.def) ->
         Printf.sprintf "%s (%s at %s:%d)" d.qname
           (Option.value d.mutable_kind ~default:"mutable")
           d.loc.Location.loc_start.Lexing.pos_fname
           d.loc.Location.loc_start.Lexing.pos_lnum)
       hits)

let check ctx =
  let graph = ctx.Rule.graph in
  let project = ctx.Rule.project in
  (* task-forwarding wrappers: def qname -> spec of parameters that flow
     into a pool call; grown to fixpoint *)
  let wrappers = ref SMap.empty in
  let findings = ref [] in
  let reported = ref SSet.empty in
  (* one scan pass over every toplevel definition; [record] either emits
     findings (final round) or only grows the wrapper map *)
  let scan ~emit =
    List.iter
      (fun (d : Callgraph.def) ->
        let locals = local_bindings d.body in
        let param_names =
          List.filteri (fun _ (_, n) -> n <> None) d.params
          |> List.map (fun (lbl, n) -> (lbl, Option.get n))
        in
        Ast_scan.iter_expressions_expr d.body (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                let callee_spec =
                  match Ast_scan.path_of (Ast_scan.peel f) with
                  | Some comps -> (
                      match spec_of_callee comps with
                      | Some spec -> Some spec
                      | None -> (
                          match
                            Project.resolve project
                              ~current_module:d.module_name comps
                          with
                          | Some q -> SMap.find_opt q !wrappers
                          | None -> None))
                  | None -> None
                in
                match callee_spec with
                | None -> ()
                | Some spec ->
                    List.iter
                      (fun (task : expression) ->
                        let task = Ast_scan.peel task in
                        match Ast_scan.path_of task with
                        | Some [ n ]
                          when List.exists
                                 (fun (_, p) -> p = n)
                                 param_names ->
                            (* the task is one of this definition's own
                               parameters: mark the wrapper *)
                            let positional_index =
                              let rec go i = function
                                | [] -> None
                                | (Asttypes.Nolabel, p) :: rest ->
                                    if p = n then Some (Positional [ i ])
                                    else go (i + 1) rest
                                | (Asttypes.Labelled l, p) :: rest ->
                                    if p = n then Some (Labelled [ l ])
                                    else go i rest
                                | _ :: rest -> go i rest
                              in
                              go 0 param_names
                            in
                            Option.iter
                              (fun spec_new ->
                                let merged =
                                  match
                                    (SMap.find_opt d.qname !wrappers, spec_new)
                                  with
                                  | Some (Positional a), Positional b ->
                                      Positional
                                        (List.sort_uniq compare (a @ b))
                                  | Some (Labelled a), Labelled b ->
                                      Labelled (List.sort_uniq compare (a @ b))
                                  | Some old, _ -> old
                                  | None, s -> s
                                in
                                wrappers := SMap.add d.qname merged !wrappers)
                              positional_index
                        | _ when emit ->
                            let seeds =
                              seeds_of_expr ctx ~module_name:d.module_name
                                ~locals task
                            in
                            let hits =
                              Callgraph.reachable_mutable graph seeds
                            in
                            if hits <> [] then begin
                              let key =
                                Printf.sprintf "%s:%d"
                                  e.pexp_loc.Location.loc_start.Lexing.pos_fname
                                  e.pexp_loc.Location.loc_start.Lexing.pos_lnum
                              in
                              if not (SSet.mem key !reported) then begin
                                reported := SSet.add key !reported;
                                findings :=
                                  Finding.v ~rule:"P001"
                                    ~severity:Finding.Error ~loc:e.pexp_loc
                                    (Printf.sprintf
                                       "parallel task reaches toplevel \
                                        mutable state: %s; pooled tasks must \
                                        be pure — thread state through task \
                                        inputs or per-task copies"
                                       (describe_hits hits))
                                  :: !findings
                              end
                            end
                        | _ -> ())
                      (task_args_of spec args))
            | _ -> ()))
      (Callgraph.defs graph)
  in
  (* rounds 1..k: discover wrappers to fixpoint (bounded); final round:
     emit findings with the complete wrapper map *)
  let rec fixpoint i prev =
    scan ~emit:false;
    let now = SMap.cardinal !wrappers in
    if now <> prev && i < 10 then fixpoint (i + 1) now
  in
  fixpoint 0 (-1);
  scan ~emit:true;
  List.rev !findings

let p001 =
  {
    Rule.id = "P001";
    severity = Finding.Error;
    title = "domain-unsafe parallel task";
    doc =
      "Functions fanned out on the Parallel.Pool run on several domains at \
       once. If a task's call graph (followed across modules through the \
       dune library map) reaches a toplevel ref/Hashtbl/Buffer/... the \
       tasks race on shared state and the jobs-independence contract \
       breaks. State must arrive through task inputs.";
    check;
  }
