(* P001: domain-unsafety. A function handed to the Parallel.Pool fan-out
   runs concurrently on several domains; if its call graph reaches
   toplevel mutable state (a ref, Hashtbl, Buffer, ... bound at module
   level) the tasks race on it. Task sites — including through project
   wrappers whose parameter is forwarded into a pool call — come from the
   shared Capture layer; this rule chases each task's call graph across
   modules and reports any reachable toplevel mutable binding. *)

module SSet = Set.Make (String)

let describe_hits hits =
  String.concat ", "
    (List.map
       (fun (d : Callgraph.def) ->
         Printf.sprintf "%s (%s at %s:%d)" d.qname
           (Option.value d.mutable_kind ~default:"mutable")
           d.loc.Location.loc_start.Lexing.pos_fname
           d.loc.Location.loc_start.Lexing.pos_lnum)
       hits)

let check ctx =
  let graph = ctx.Rule.graph in
  let project = ctx.Rule.project in
  let findings = ref [] in
  let reported = ref SSet.empty in
  List.iter
    (fun (site : Capture.site) ->
      let locals = Capture.local_bindings site.def.body in
      let seeds =
        Capture.seeds_of_expr project ~module_name:site.def.module_name
          ~locals site.task
      in
      let hits = Callgraph.reachable_mutable graph seeds in
      if hits <> [] then begin
        let key =
          Printf.sprintf "%s:%d"
            site.loc.Location.loc_start.Lexing.pos_fname
            site.loc.Location.loc_start.Lexing.pos_lnum
        in
        if not (SSet.mem key !reported) then begin
          reported := SSet.add key !reported;
          findings :=
            Finding.v ~rule:"P001" ~severity:Finding.Error ~loc:site.loc
              (Printf.sprintf
                 "parallel task reaches toplevel mutable state: %s; pooled \
                  tasks must be pure — thread state through task inputs or \
                  per-task copies"
                 (describe_hits hits))
            :: !findings
        end
      end)
    (Capture.task_sites project graph);
  List.rev !findings

let p001 =
  {
    Rule.id = "P001";
    severity = Finding.Error;
    scope = Rule.Global;
    title = "domain-unsafe parallel task";
    doc =
      "Functions fanned out on the Parallel.Pool run on several domains at \
       once. If a task's call graph (followed across modules through the \
       dune library map) reaches a toplevel ref/Hashtbl/Buffer/... the \
       tasks race on shared state and the jobs-independence contract \
       breaks. State must arrive through task inputs.";
    fix =
      "Move the state into the task's inputs: allocate it inside the task \
       body, pass a per-task copy, or fold per-task partial results in \
       the reduce step. If the binding is genuinely immutable after \
       initialization, restructure it so the linter can see that (plain \
       let of a computed value, not a mutated container).";
    check;
  }
