(* Closure-capture layer shared by the parallel-safety rules (P001, P002)
   and reusable by anything that needs to reason about what a closure
   handed to the domain pool touches. Two services live here:

   - task-site discovery: every expression passed as a task function to a
     Parallel.Pool entrypoint (map / mapi / map_list / map_reduce /
     Team.run / Domain.spawn), found through project wrappers whose
     parameter is forwarded into a pool call (fixpoint, as P001 always
     did);

   - a free-write analysis: the writes a closure performs on variables it
     does NOT bind itself. Mutability is proven by the write FORM
     ([:=], [Array.set], [Hashtbl.replace], a record-field set, ...), so
     no type information is needed. [Atomic.set] is deliberately absent
     from the write table: atomic writes are the sanctioned way to share
     state across domains (P003 separately polices get-then-set). *)

open Parsetree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Pool entrypoints and task-argument extraction                        *)
(* ------------------------------------------------------------------ *)

(* how a callee consumes task functions: positional index among Nolabel
   args, or labelled arguments *)
type task_spec = Positional of int list | Labelled of string list

let pool_entrypoints =
  [
    ([ "Pool"; "map" ], Positional [ 1 ]);
    ([ "Pool"; "mapi" ], Positional [ 1 ]);
    ([ "Pool"; "map_list" ], Positional [ 1 ]);
    ([ "Pool"; "map_reduce" ], Labelled [ "map"; "reduce" ]);
    ([ "Pool"; "Team"; "run" ], Positional [ 1 ]);
    ([ "Team"; "run" ], Positional [ 1 ]);
    ([ "Domain"; "spawn" ], Positional [ 0 ]);
  ]

let spec_of_callee comps =
  match
    List.find_opt
      (fun (suffix, _) -> Ast_scan.suffix_matches comps ~suffix)
      pool_entrypoints
  with
  | Some (_, spec) -> Some spec
  | None -> None

(* positional args = Nolabel args in order *)
let task_args_of spec args =
  match spec with
  | Positional wanted ->
      let positional =
        List.filter_map
          (function Asttypes.Nolabel, e -> Some e | _ -> None)
          args
      in
      List.filteri (fun i _ -> List.mem i wanted) positional
  | Labelled names ->
      List.filter_map
        (function
          | Asttypes.Labelled l, e when List.mem l names -> Some e
          | _ -> None)
        args

(* local let-bound names inside a definition body, with their right-hand
   sides, so a task passed by (local) name can be chased *)
let local_bindings body =
  let acc = ref SMap.empty in
  Ast_scan.iter_expressions_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match Ast_scan.pat_var vb.pvb_pat with
              | Some n -> acc := SMap.add n vb.pvb_expr !acc
              | None -> ())
            vbs
      | _ -> ());
  !acc

(* Resolve every identifier mentioned by [expr] into call-graph seeds,
   expanding through the enclosing definition's local bindings. *)
let seeds_of_expr project ~module_name ~locals expr =
  let seeds = ref SSet.empty in
  let visited_locals = ref SSet.empty in
  let rec expand expr =
    List.iter
      (fun comps ->
        (match comps with
        | [ n ] when SMap.mem n locals && not (SSet.mem n !visited_locals) ->
            visited_locals := SSet.add n !visited_locals;
            expand (SMap.find n locals)
        | _ -> ());
        match Project.resolve project ~current_module:module_name comps with
        | Some q -> seeds := SSet.add q !seeds
        | None -> ())
      (Ast_scan.collect_paths expr)
  in
  expand expr;
  SSet.elements !seeds

(* ------------------------------------------------------------------ *)
(* Task-site discovery (wrapper fixpoint)                               *)
(* ------------------------------------------------------------------ *)

type site = {
  def : Callgraph.def;  (* definition whose body contains the call *)
  task : expression;  (* the task argument, peeled *)
  loc : Location.t;  (* location of the pool application *)
}

let task_sites project graph =
  (* task-forwarding wrappers: def qname -> spec of parameters that flow
     into a pool call; grown to fixpoint *)
  let wrappers = ref SMap.empty in
  let sites = ref [] in
  let scan ~collect =
    List.iter
      (fun (d : Callgraph.def) ->
        let param_names =
          List.filteri (fun _ (_, n) -> n <> None) d.params
          |> List.map (fun (lbl, n) -> (lbl, Option.get n))
        in
        Ast_scan.iter_expressions_expr d.body (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                let callee_spec =
                  match Ast_scan.path_of (Ast_scan.peel f) with
                  | Some comps -> (
                      match spec_of_callee comps with
                      | Some spec -> Some spec
                      | None -> (
                          match
                            Project.resolve project
                              ~current_module:d.module_name comps
                          with
                          | Some q -> SMap.find_opt q !wrappers
                          | None -> None))
                  | None -> None
                in
                match callee_spec with
                | None -> ()
                | Some spec ->
                    List.iter
                      (fun (task : expression) ->
                        let task = Ast_scan.peel task in
                        match Ast_scan.path_of task with
                        | Some [ n ]
                          when List.exists (fun (_, p) -> p = n) param_names
                          ->
                            (* the task is one of this definition's own
                               parameters: mark the wrapper; the real task
                               closure lives at the outer caller *)
                            let positional_index =
                              let rec go i = function
                                | [] -> None
                                | (Asttypes.Nolabel, p) :: rest ->
                                    if p = n then Some (Positional [ i ])
                                    else go (i + 1) rest
                                | (Asttypes.Labelled l, p) :: rest ->
                                    if p = n then Some (Labelled [ l ])
                                    else go i rest
                                | _ :: rest -> go i rest
                              in
                              go 0 param_names
                            in
                            Option.iter
                              (fun spec_new ->
                                let merged =
                                  match
                                    ( SMap.find_opt d.qname !wrappers,
                                      spec_new )
                                  with
                                  | Some (Positional a), Positional b ->
                                      Positional
                                        (List.sort_uniq compare (a @ b))
                                  | Some (Labelled a), Labelled b ->
                                      Labelled
                                        (List.sort_uniq compare (a @ b))
                                  | Some old, _ -> old
                                  | None, s -> s
                                in
                                wrappers := SMap.add d.qname merged !wrappers)
                              positional_index
                        | _ when collect ->
                            sites :=
                              { def = d; task; loc = e.pexp_loc } :: !sites
                        | _ -> ())
                      (task_args_of spec args))
            | _ -> ()))
      (Callgraph.defs graph)
  in
  (* rounds 1..k: discover wrappers to fixpoint (bounded); final round:
     collect sites with the complete wrapper map *)
  let rec fixpoint i prev =
    scan ~collect:false;
    let now = SMap.cardinal !wrappers in
    if now <> prev && i < 10 then fixpoint (i + 1) now
  in
  fixpoint 0 (-1);
  scan ~collect:true;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Free-write analysis                                                  *)
(* ------------------------------------------------------------------ *)

type write = { subject : string; form : string; loc : Location.t }

(* Write forms: (callee path suffix, positional index of the mutated
   subject among the Nolabel args). A single-name form matches only bare
   or Stdlib-qualified uses, so e.g. [Metric.incr] (which takes a metric
   NAME, not a ref) never matches the [incr] entry. *)
let write_forms =
  [
    ([ ":=" ], 0);
    ([ "incr" ], 0);
    ([ "decr" ], 0);
    ([ "Array"; "set" ], 0);
    ([ "Array"; "unsafe_set" ], 0);
    ([ "Array"; "fill" ], 0);
    ([ "Array"; "blit" ], 2);
    ([ "Array"; "sort" ], 1);
    ([ "Array"; "stable_sort" ], 1);
    ([ "Array"; "fast_sort" ], 1);
    ([ "Bytes"; "set" ], 0);
    ([ "Bytes"; "unsafe_set" ], 0);
    ([ "Bytes"; "fill" ], 0);
    ([ "Bytes"; "blit" ], 2);
    ([ "Hashtbl"; "replace" ], 0);
    ([ "Hashtbl"; "add" ], 0);
    ([ "Hashtbl"; "remove" ], 0);
    ([ "Hashtbl"; "reset" ], 0);
    ([ "Hashtbl"; "clear" ], 0);
    ([ "Hashtbl"; "filter_map_inplace" ], 1);
    ([ "Buffer"; "add_char" ], 0);
    ([ "Buffer"; "add_string" ], 0);
    ([ "Buffer"; "add_bytes" ], 0);
    ([ "Buffer"; "add_substring" ], 0);
    ([ "Buffer"; "add_buffer" ], 0);
    ([ "Buffer"; "clear" ], 0);
    ([ "Buffer"; "reset" ], 0);
    ([ "Buffer"; "truncate" ], 0);
    ([ "Queue"; "push" ], 1);
    ([ "Queue"; "add" ], 1);
    ([ "Queue"; "pop" ], 0);
    ([ "Queue"; "take" ], 0);
    ([ "Queue"; "clear" ], 0);
    ([ "Stack"; "push" ], 1);
    ([ "Stack"; "pop" ], 0);
    ([ "Stack"; "clear" ], 0);
  ]

let write_form comps =
  let matches suffix =
    match suffix with
    | [ op ] -> comps = [ op ] || comps = [ "Stdlib"; op ]
    | _ ->
        Ast_scan.suffix_matches comps ~suffix
        && List.length comps <= List.length suffix + 1
  in
  Option.map
    (fun (suffix, idx) -> (Ast_scan.path_str suffix, idx))
    (List.find_opt (fun (suffix, _) -> matches suffix) write_forms)

(* the variable at the base of a write subject: peel record fields,
   dereferences and array indexing down to a simple name. Qualified
   (module-level) subjects give [None]: shared toplevel state is P001's
   domain, capture analysis is about lexically captured locals. *)
let rec base_ident (e : expression) =
  let e = Ast_scan.peel e in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with [ n ] -> Some n | _ -> None)
  | Pexp_field (r, _) -> base_ident r
  | Pexp_apply (f, args) -> (
      match Ast_scan.path_of (Ast_scan.peel f) with
      | Some comps
        when comps = [ "!" ]
             || Ast_scan.suffix_matches comps ~suffix:[ "Array"; "get" ]
             || Ast_scan.suffix_matches comps
                  ~suffix:[ "Array"; "unsafe_get" ]
             || Ast_scan.suffix_matches comps ~suffix:[ "Bytes"; "get" ] -> (
          match
            List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
          with
          | Some (_, a) -> base_ident a
          | None -> None)
      | _ -> None)
  | _ -> None

(* visit the immediate sub-expressions of [e] (one level down) *)
let iter_immediate_subexprs (e : expression) f =
  let at_root = ref true in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e' ->
          if !at_root then begin
            at_root := false;
            Ast_iterator.default_iterator.expr self e'
          end
          else f e');
    }
  in
  it.expr it e

let free_writes ?(bound = []) (root : expression) =
  let acc = ref [] in
  let add_pat b p =
    List.fold_left (fun b n -> SSet.add n b) b (Ast_scan.pat_vars p)
  in
  let note bound ~form ~loc subj =
    match base_ident subj with
    | Some n when not (SSet.mem n bound) ->
        acc := { subject = n; form; loc } :: !acc
    | _ -> ()
  in
  let rec go bound (e : expression) =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
        let bound' =
          List.fold_left (fun b vb -> add_pat b vb.pvb_pat) bound vbs
        in
        let rhs_bound =
          if rf = Asttypes.Recursive then bound' else bound
        in
        List.iter (fun vb -> go rhs_bound vb.pvb_expr) vbs;
        go bound' body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (go bound) default;
        go (add_pat bound pat) body
    | Pexp_function cases -> List.iter (case bound) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go bound scrut;
        List.iter (case bound) cases
    | Pexp_for (pat, lo, hi, _, body) ->
        go bound lo;
        go bound hi;
        go (add_pat bound pat) body
    | Pexp_letop { let_; ands; body } ->
        go bound let_.pbop_exp;
        List.iter (fun a -> go bound a.pbop_exp) ands;
        let bound' =
          List.fold_left
            (fun b (op : binding_op) -> add_pat b op.pbop_pat)
            bound (let_ :: ands)
        in
        go bound' body
    | Pexp_setfield (r, _, v) ->
        note bound ~form:"field <-" ~loc:e.pexp_loc r;
        go bound r;
        go bound v
    | Pexp_apply (f, args) ->
        (match Ast_scan.path_of (Ast_scan.peel f) with
        | Some comps -> (
            match write_form comps with
            | Some (form, idx) -> (
                let positional =
                  List.filter_map
                    (function Asttypes.Nolabel, a -> Some a | _ -> None)
                    args
                in
                match List.nth_opt positional idx with
                | Some subj -> note bound ~form ~loc:e.pexp_loc subj
                | None -> ())
            | None -> ())
        | None -> ());
        go bound f;
        List.iter (fun (_, a) -> go bound a) args
    | _ -> iter_immediate_subexprs e (go bound)
  and case bound (c : case) =
    let b = add_pat bound c.pc_lhs in
    Option.iter (go b) c.pc_guard;
    go b c.pc_rhs
  in
  go (List.fold_left (fun b n -> SSet.add n b) SSet.empty bound) root;
  List.rev !acc
